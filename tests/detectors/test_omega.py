"""Failure-detector oracles: Ω and Ωx semantics."""

import pytest

from repro.detectors import FailureDetector, OmegaLeader, OmegaX
from repro.memory import ObjectStore, SnapshotObject
from repro.runtime import (CrashPlan, ObjectProxy, RoundRobinAdversary,
                           run_processes)


def observe(detector, n, rounds, crash_plan=None, pad_steps=0):
    """Each process queries the oracle ``rounds`` times; returns the
    per-process observation sequences."""
    store = ObjectStore()
    store.add(detector)
    store.add(SnapshotObject("pad", n))
    oracle = ObjectProxy(detector.name)
    pad = ObjectProxy("pad")

    def prog(pid):
        seen = []
        for k in range(rounds):
            out = yield oracle.query()
            seen.append(out)
            for _ in range(pad_steps):
                yield pad.snapshot()
        return tuple(seen)

    res = run_processes({i: prog(i) for i in range(n)}, store,
                        adversary=RoundRobinAdversary(),
                        crash_plan=crash_plan)
    return res


class TestBinding:
    def test_unbound_query_raises(self):
        det = OmegaLeader()
        with pytest.raises(RuntimeError, match="never bound"):
            det.apply(0, "query", ())

    def test_query_is_readonly(self):
        assert OmegaLeader().is_readonly("query")

    def test_oracle_flag(self):
        assert OmegaLeader().oracle
        assert isinstance(OmegaX(x=2), FailureDetector)


class TestOmegaLeader:
    def test_immediately_stable_without_crashes(self):
        res = observe(OmegaLeader(stabilize_after=0), n=3, rounds=4)
        for seq in res.decisions.values():
            assert seq == (0, 0, 0, 0)

    def test_eventually_excludes_crashed(self):
        res = observe(OmegaLeader(stabilize_after=0), n=3, rounds=6,
                      crash_plan=CrashPlan.at_own_step({0: 3}))
        for pid, seq in res.decisions.items():
            assert seq[-1] == 1            # new leader after p0 dies
        assert 0 not in res.decisions      # p0 crashed

    def test_unstable_phase_rotates(self):
        det = OmegaLeader(stabilize_after=10 ** 6, rotation_period=1)
        res = observe(det, n=3, rounds=6, pad_steps=1)
        outputs = {o for seq in res.decisions.values() for o in seq}
        assert len(outputs) > 1            # disagreement over time

    def test_validation(self):
        with pytest.raises(ValueError):
            OmegaLeader(stabilize_after=-1)
        with pytest.raises(ValueError):
            OmegaLeader(rotation_period=0)


class TestOmegaX:
    def test_output_is_sorted_x_set(self):
        res = observe(OmegaX(x=2, stabilize_after=0), n=4, rounds=3)
        for seq in res.decisions.values():
            for out in seq:
                assert len(out) == 2
                assert out == tuple(sorted(out))

    def test_stable_set_contains_a_correct_process(self):
        res = observe(OmegaX(x=2, stabilize_after=0), n=4, rounds=8,
                      crash_plan=CrashPlan.at_own_step({0: 3, 1: 4}))
        for seq in res.decisions.values():
            final = seq[-1]
            assert set(final) & {2, 3}     # someone alive

    def test_same_final_set_everywhere(self):
        res = observe(OmegaX(x=3, stabilize_after=0), n=5, rounds=5)
        finals = {seq[-1] for seq in res.decisions.values()}
        assert len(finals) == 1

    def test_x_capped_by_population(self):
        res = observe(OmegaX(x=9, stabilize_after=0), n=3, rounds=1)
        assert all(len(seq[0]) == 3 for seq in res.decisions.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            OmegaX(x=0)
