"""Test&set, (m,l)-set agreement, CAS, queues/stacks: the hierarchy zoo."""

import math

import pytest

from repro.memory import (BOTTOM, ObjectStore, ProtocolViolation,
                          RegisterArray)
from repro.objects import (CompareAndSwapObject, KSetObject, SharedQueue,
                           SharedStack, TestAndSetObject, WINNER, LOSER,
                           XConsensusObject, consensus2_from_queue,
                           consensus2_from_tas, consensus_from_cas,
                           kset_object_implementable, tas_from_consensus)
from repro.runtime import ObjectProxy, SeededRandomAdversary, run_processes


class TestTestAndSet:
    def test_first_wins(self):
        tas = TestAndSetObject("t")
        assert tas.apply(2, "test_and_set", ()) is True
        assert tas.apply(0, "test_and_set", ()) is False
        assert tas.winner == 2

    def test_one_shot(self):
        tas = TestAndSetObject("t")
        tas.apply(0, "test_and_set", ())
        with pytest.raises(ProtocolViolation):
            tas.apply(0, "test_and_set", ())

    def test_derived_from_consensus(self):
        """tas_from_consensus: exactly one winner among concurrent callers."""
        store = ObjectStore()
        store.add(XConsensusObject("c", [0, 1, 2]))
        proxy = ObjectProxy("c")

        def prog(pid):
            won = yield from tas_from_consensus(proxy, pid)
            return won

        res = run_processes({i: prog(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(4))
        wins = [pid for pid, won in res.decisions.items() if won]
        assert len(wins) == 1


class TestKSetObject:
    def test_at_most_ell_distinct(self):
        obj = KSetObject("k", range(5), ell=2)
        outs = [obj.apply(i, "propose", (f"v{i}",)) for i in range(5)]
        assert len(set(outs)) <= 2
        assert set(outs) <= {f"v{i}" for i in range(5)}

    def test_anchor_semantics(self):
        obj = KSetObject("k", range(4), ell=2)
        assert obj.apply(0, "propose", ("a",)) == "a"
        assert obj.apply(1, "propose", ("b",)) == "b"
        assert obj.apply(2, "propose", ("c",)) == "a"
        assert obj.apply(3, "peek", ()) == ["a", "b"]

    def test_one_shot(self):
        obj = KSetObject("k", range(2), ell=1)
        obj.apply(0, "propose", ("a",))
        with pytest.raises(ProtocolViolation):
            obj.apply(0, "propose", ("b",))

    def test_consensus_number_is_ceil_m_over_ell(self):
        assert KSetObject("k", range(6), ell=2).consensus_number == 3
        assert KSetObject("k", range(6), ell=6).consensus_number == 1

    def test_implementability_criterion(self):
        # ceil(m/x) <= l  (group construction possible)
        assert kset_object_implementable(m=6, ell=3, x=2)
        assert not kset_object_implementable(m=6, ell=2, x=2)
        assert kset_object_implementable(m=4, ell=1, x=4)
        with pytest.raises(ValueError):
            kset_object_implementable(0, 1, 1)


class TestCompareAndSwap:
    def test_cas_semantics(self):
        cas = CompareAndSwapObject("c")
        assert cas.apply(0, "compare_and_swap", (BOTTOM, "a")) is BOTTOM
        assert cas.apply(1, "compare_and_swap", (BOTTOM, "b")) == "a"
        assert cas.apply(2, "read", ()) == "a"

    def test_infinite_consensus_number(self):
        assert CompareAndSwapObject("c").consensus_number == math.inf

    def test_consensus_from_cas_many_processes(self):
        store = ObjectStore()
        store.add(CompareAndSwapObject("c"))
        proxy = ObjectProxy("c")

        def prog(pid):
            decided = yield from consensus_from_cas(proxy, f"v{pid}")
            return decided

        res = run_processes({i: prog(i) for i in range(6)}, store,
                            adversary=SeededRandomAdversary(8))
        assert len(res.decided_values) == 1


class TestQueueStack:
    def test_queue_fifo(self):
        q = SharedQueue("q")
        q.apply(0, "enqueue", (1,))
        q.apply(0, "enqueue", (2,))
        assert q.apply(1, "dequeue", ()) == 1
        assert q.apply(1, "dequeue", ()) == 2
        assert q.apply(1, "dequeue", ()) is BOTTOM

    def test_stack_lifo(self):
        s = SharedStack("s")
        s.apply(0, "push", (1,))
        s.apply(0, "push", (2,))
        assert s.apply(1, "pop", ()) == 2
        assert s.apply(1, "peek", ()) == 1
        s.apply(1, "pop", ())
        assert s.apply(1, "pop", ()) is BOTTOM

    def test_consensus_number_two(self):
        assert SharedQueue("q").consensus_number == 2
        assert SharedStack("s").consensus_number == 2

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_herlihy_2consensus_from_queue(self, seed):
        store = ObjectStore()
        store.add(SharedQueue("q", initial=[WINNER, LOSER]))
        store.add(RegisterArray("ann", 2))
        q, ann = ObjectProxy("q"), ObjectProxy("ann")

        def prog(pid):
            decided = yield from consensus2_from_queue(
                q, ann, pid, 1 - pid, f"v{pid}")
            return decided

        res = run_processes({0: prog(0), 1: prog(1)}, store,
                            adversary=SeededRandomAdversary(seed))
        assert len(res.decided_values) == 1
        assert res.decided_values <= {"v0", "v1"}


class TestConsensusFromTAS:
    """The other half of cn(T&S) = 2: consensus for 2 from one T&S."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_agreement_validity(self, seed):
        store = ObjectStore()
        store.add(TestAndSetObject("t"))
        store.add(RegisterArray("ann", 2))
        t, ann = ObjectProxy("t"), ObjectProxy("ann")

        def prog(pid):
            decided = yield from consensus2_from_tas(
                t, ann, pid, 1 - pid, f"v{pid}")
            return decided

        res = run_processes({0: prog(0), 1: prog(1)}, store,
                            adversary=SeededRandomAdversary(seed))
        assert len(res.decided_values) == 1
        assert res.decided_values <= {"v0", "v1"}

    def test_exhaustively(self):
        from repro.runtime.explore import explore

        def build():
            store = ObjectStore()
            store.add(TestAndSetObject("t"))
            store.add(RegisterArray("ann", 2))
            t, ann = ObjectProxy("t"), ObjectProxy("ann")

            def prog(pid):
                decided = yield from consensus2_from_tas(
                    t, ann, pid, 1 - pid, f"v{pid}")
                return decided

            return {0: prog(0), 1: prog(1)}, store

        def check(result):
            assert len(result.decided_values) == 1
            assert result.decided_values <= {"v0", "v1"}

        stats = explore(build, check, max_steps=10)
        assert stats.complete_runs > 3
        assert stats.truncated_runs == 0

    def test_solo_decides_own(self):
        store = ObjectStore()
        store.add(TestAndSetObject("t"))
        store.add(RegisterArray("ann", 2))
        t, ann = ObjectProxy("t"), ObjectProxy("ann")

        def prog(pid):
            decided = yield from consensus2_from_tas(
                t, ann, pid, 1 - pid, "mine")
            return decided

        res = run_processes({0: prog(0)}, store)
        assert res.decisions[0] == "mine"
