"""Herlihy universal construction from consensus objects."""

import pytest

from repro.memory import build_store
from repro.objects import UniversalObject
from repro.runtime import SeededRandomAdversary, run_processes

from ..conftest import SEEDS


def counter_apply(state, op):
    if op == "inc":
        return state + 1, state + 1
    if op == "get":
        return state, state
    raise ValueError(op)


def queue_apply(state, op):
    kind, arg = op
    if kind == "enq":
        return state + (arg,), None
    if kind == "deq":
        if not state:
            return state, None
        return state[1:], state[0]
    raise ValueError(op)


class TestUniversalCounter:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_increments_are_linearized(self, seed):
        u = UniversalObject("cnt", [0, 1, 2], counter_apply, initial=0)

        def client(pid):
            session = u.session(pid)
            a = yield from session.run("inc")
            b = yield from session.run("inc")
            return (a, b)

        store = build_store(u.object_specs())
        res = run_processes({i: client(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(seed))
        returns = [v for pair in res.decisions.values() for v in pair]
        # 6 increments -> results are exactly a permutation of 1..6.
        assert sorted(returns) == [1, 2, 3, 4, 5, 6]

    def test_second_op_in_same_session(self):
        u = UniversalObject("cnt", [0], counter_apply, initial=0)

        def client(pid):
            s = u.session(pid)
            yield from s.run("inc")
            v = yield from s.run("get")
            return v

        store = build_store(u.object_specs())
        res = run_processes({0: client(0)}, store)
        assert res.decisions[0] == 1


class TestUniversalQueue:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_each_value_dequeued_once(self, seed):
        u = UniversalObject("q", [0, 1, 2], queue_apply, initial=())

        def client(pid):
            s = u.session(pid)
            yield from s.run(("enq", pid))
            out = yield from s.run(("deq", None))
            return out

        store = build_store(u.object_specs())
        res = run_processes({i: client(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(seed))
        dequeued = list(res.decisions.values())
        # three enqueues precede each process's dequeue attempt only in
        # some schedules; still, no value may be dequeued twice.
        got = [v for v in dequeued if v is not None]
        assert len(got) == len(set(got))
        assert set(got) <= {0, 1, 2}


class TestUniversalUnderCrashes:
    def test_wait_free_despite_crash(self):
        """A crashed client must not block the others (helping at work:
        its announced op may or may not be applied, but survivors always
        finish their own)."""
        from repro.runtime import CrashPlan
        u = UniversalObject("cnt", [0, 1, 2], counter_apply, initial=0)

        def client(pid):
            s = u.session(pid)
            a = yield from s.run("inc")
            b = yield from s.run("inc")
            return (a, b)

        store = build_store(u.object_specs())
        res = run_processes({i: client(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(5),
                            crash_plan=CrashPlan.at_own_step({0: 3}))
        assert res.decided_pids == {1, 2}
        returns = [v for pair in res.decisions.values() for v in pair]
        # four increments by survivors (+ possibly p0's helped ones):
        # results are distinct and positive.
        assert len(returns) == len(set(returns)) == 4
        assert all(v >= 1 for v in returns)
