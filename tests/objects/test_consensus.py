"""x-ported consensus objects."""

import pytest

from repro.memory import BOTTOM, PortViolation, ProtocolViolation
from repro.objects import XConsensusObject, consensus_array


class TestXConsensusObject:
    def test_first_proposal_decides(self):
        cons = XConsensusObject("c", [0, 1, 2])
        assert cons.apply(1, "propose", ("b",)) == "b"
        assert cons.apply(0, "propose", ("a",)) == "b"
        assert cons.winner == 1

    def test_agreement_validity(self):
        cons = XConsensusObject("c", [0, 1])
        results = {cons.apply(0, "propose", ("x",)),
                   cons.apply(1, "propose", ("y",))}
        assert len(results) == 1
        assert results <= {"x", "y"}

    def test_ports_static(self):
        cons = XConsensusObject("c", [0, 1])
        with pytest.raises(PortViolation):
            cons.apply(2, "propose", ("v",))

    def test_one_shot_per_process(self):
        cons = XConsensusObject("c", [0, 1])
        cons.apply(0, "propose", ("v",))
        with pytest.raises(ProtocolViolation):
            cons.apply(0, "propose", ("w",))

    def test_consensus_number_equals_port_count(self):
        assert XConsensusObject("c", range(5)).consensus_number == 5

    def test_peek(self):
        cons = XConsensusObject("c", [0])
        assert cons.apply(0, "peek", ()) is BOTTOM
        cons.apply(0, "propose", (9,))
        assert cons.apply(0, "peek", ()) == 9

    def test_needs_ports(self):
        with pytest.raises(ValueError):
            XConsensusObject("c", [])

    def test_consensus_array(self):
        objs = consensus_array("g", [[0, 1], [2, 3]])
        assert [o.name for o in objs] == ["g[0]", "g[1]"]
        assert objs[1].ports == frozenset({2, 3})
