"""Impossibility narratives, demonstrated as liveness-loss runs.

Impossibility theorems cannot be "run", but their operational content can:
whenever the adversary exceeds the bound the theory assigns to a
construction, the construction visibly loses liveness.  These demos pin
the mechanism the proofs are about.
"""

import pytest

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.algorithms import ConsensusFromXCons, KSetReadWrite, run_algorithm
from repro.core import SimulationAlgorithm, simulate_in_read_write
from repro.memory import ObjectStore
from repro.runtime import (CrashPlan, CrashPoint, op_on,
                           SeededRandomAdversary, run_processes)


class TestOneCrashKillsSafeAgreement:
    """The core of the 1-resilient consensus impossibility narrative via
    BG: one crash mid-propose permanently blocks a safe-agreement, hence
    one faulty simulator can stall one simulated process forever."""

    def test_blocked_forever(self):
        factory = SafeAgreementFactory(3)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from inst.propose(i, i)
            v = yield from inst.decide(i)
            return v

        res = run_processes({i: participant(i) for i in range(3)}, store,
                            crash_plan=CrashPlan.at_own_step({0: 2}))
        assert res.deadlocked and res.blocked_pids == {1, 2}


class TestExceedingTheorem1Bound:
    def test_over_crashing_the_target_blocks_everyone(self):
        """Section 3 simulation of consensus-from-one-object at t=1 >
        floor(t'/x)=0: a single targeted crash kills the only XSAFE_AG
        object and with it every simulated process."""
        src = ConsensusFromXCons(n=3, x=3)
        sim = simulate_in_read_write(src, t=1, check=False)
        plan = CrashPlan.before_operation(
            0, op_on("XSAFE_AG", "write"), occurrence=2)
        res = run_algorithm(sim, [1, 2, 3], crash_plan=plan,
                            max_steps=300_000)
        assert res.deadlocked
        assert not res.decisions


class TestExceedingTheorem3Bound:
    def test_x_owner_crashes_block_a_simulated_process(self):
        """Section 4 at t' beyond the band: crash x simulators inside the
        SAME x-safe-agreement and more processes block than the source
        resilience absorbs; with a consensus source (t = 0) nobody can
        decide."""
        n, x = 4, 2
        src = KSetReadWrite(n=n, t=0, k=1)   # consensus, failure-free
        factory = XSafeAgreementFactory(n, x)
        sim = SimulationAlgorithm(
            src, n_simulators=n, resilience=2,  # beyond t*x + x-1 = 1
            snap_agreement=factory, obj_agreement=factory,
            label="overband")
        # two simulators crash inside the consensus scan of the same
        # agreement (the input agreement of thread 0, the first one both
        # touch under round-robin).
        plan = CrashPlan({
            0: CrashPoint(before_matching=op_on("XSA_XCONS", "propose")),
            1: CrashPoint(before_matching=op_on("XSA_XCONS", "propose")),
        })
        res = run_algorithm(sim, [1, 2, 3, 4], crash_plan=plan,
                            max_steps=300_000)
        # thread 0 is dead for every simulator; consensus (t=0 source)
        # requires ALL inputs, so no simulated process ever decides.
        assert res.deadlocked
        assert not res.decisions

    def test_same_crashes_within_band_are_absorbed(self):
        """Identical crash pattern, but the source is 1-resilient (t=1,
        so t' = 3 is inside the band): the blocked simulated process is
        absorbed and everyone decides."""
        n, x = 4, 2
        src = KSetReadWrite(n=n, t=1, k=2)
        factory = XSafeAgreementFactory(n, x)
        sim = SimulationAlgorithm(
            src, n_simulators=n, resilience=3,
            snap_agreement=factory, obj_agreement=factory,
            label="inband")
        plan = CrashPlan({
            0: CrashPoint(before_matching=op_on("XSA_XCONS", "propose")),
            1: CrashPoint(before_matching=op_on("XSA_XCONS", "propose")),
        })
        res = run_algorithm(sim, [1, 2, 3, 4], crash_plan=plan,
                            max_steps=500_000)
        assert res.decided_pids == {2, 3}, res.summary()
        assert len(res.decided_values) <= 2


class TestSourceResilienceIsALimit:
    def test_t_resilient_source_blocks_beyond_t_simulated_crashes(self):
        """kset_rw(t=1) needs n-1 inputs; blocking 2 simulated processes
        (two dead safe-agreements in the x=1 simulation) stalls it."""
        n = 4
        src = KSetReadWrite(n=n, t=1, k=2)
        factory = SafeAgreementFactory(n)
        sim = SimulationAlgorithm(
            src, n_simulators=n, resilience=2,   # > floor(t'/1) ... t=1
            snap_agreement=factory, label="overbg")
        # two simulators crash mid-propose in DIFFERENT input agreements:
        # under round-robin q0 touches ("input",0) first; delay q1 so its
        # first propose lands in ("input",1)'s window.
        plan = CrashPlan({
            0: CrashPoint(before_matching=op_on("SAFE_AG", "write"),
                          occurrence=2),
            1: CrashPoint(before_matching=op_on("SAFE_AG", "write"),
                          occurrence=4),
        })
        res = run_algorithm(sim, [1, 2, 3, 4], crash_plan=plan,
                            max_steps=500_000)
        # Either the run deadlocks (both threads blocked at every live
        # simulator) or -- if the crashes happened to land in the same
        # agreement -- it completes; assert the former occurred for this
        # pinned schedule.
        assert res.deadlocked, res.summary()
