"""Broad parameter matrices for Theorems 1 and 3.

These sweeps run the two simulations across the whole small-parameter
lattice (every legal (n, t', x, t) shape up to the size the suite can
afford), with both early and staggered mid-run crashes at the full
budget.  Together with the property tests they make the headline
theorems' coverage systematic rather than anecdotal.
"""

import itertools

import pytest

from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.core import simulate_in_read_write, simulate_with_xcons
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask


def staggered(victims, first=3, gap=4):
    return CrashPlan.at_own_step(
        {v: first + gap * i for i, v in enumerate(victims)})


def theorem3_shapes():
    """All (n, t, x, t') with the target at the top of the band and
    n small enough to keep the suite fast."""
    shapes = []
    for t, x in itertools.product((0, 1, 2), (1, 2, 3)):
        t_prime = t * x + (x - 1)
        n = max(t_prime + 2, 3)
        if n <= 7:
            shapes.append((n, t, x, t_prime))
    return shapes


class TestTheorem3Matrix:
    @pytest.mark.parametrize("n,t,x,t_prime", theorem3_shapes())
    def test_band_top_with_full_crash_budget(self, n, t, x, t_prime):
        k = t + 1
        src = KSetReadWrite(n=n, t=t, k=k)
        alg = src if x == 1 else simulate_with_xcons(src, t_prime, x)
        inputs = list(range(n))
        res = run_algorithm(alg, inputs,
                            crash_plan=staggered(range(t_prime)),
                            max_steps=10_000_000)
        verdict = KSetAgreementTask(k).validate_run(inputs, res)
        assert verdict.ok, f"{alg.name}: {verdict.explain()}"

    @pytest.mark.parametrize("n,t,x,t_prime", theorem3_shapes())
    @pytest.mark.parametrize("seed", [1, 8])
    def test_band_top_random_schedule_no_crash(self, n, t, x, t_prime,
                                               seed):
        k = t + 1
        src = KSetReadWrite(n=n, t=t, k=k)
        alg = src if x == 1 else simulate_with_xcons(src, t_prime, x)
        inputs = [10 * (i + 1) for i in range(n)]
        res = run_algorithm(alg, inputs,
                            adversary=SeededRandomAdversary(seed),
                            max_steps=10_000_000)
        verdict = KSetAgreementTask(k).validate_run(inputs, res)
        assert verdict.ok, f"{alg.name}: {verdict.explain()}"


def theorem1_shapes():
    shapes = []
    for n, x in itertools.product((4, 6), (2, 3)):
        if x > n:
            continue
        t = (n - 1) // x
        shapes.append((n, x, t))
    return shapes


class TestTheorem1Matrix:
    @pytest.mark.parametrize("n,x,t", theorem1_shapes())
    def test_at_the_bound_with_full_crash_budget(self, n, x, t):
        src = GroupedKSetFromXCons(n=n, x=x)     # wait-free, k=ceil(n/x)
        sim = simulate_in_read_write(src, t=t)
        inputs = list(range(n))
        plan = staggered(range(t)) if t else CrashPlan.none()
        res = run_algorithm(sim, inputs, crash_plan=plan,
                            max_steps=10_000_000)
        verdict = KSetAgreementTask(src.k).validate_run(inputs, res)
        assert verdict.ok, f"{sim.name}: {verdict.explain()}"

    @pytest.mark.parametrize("n,x,t", theorem1_shapes())
    @pytest.mark.parametrize("seed", [2, 9])
    def test_random_schedules(self, n, x, t, seed):
        src = GroupedKSetFromXCons(n=n, x=x)
        sim = simulate_in_read_write(src, t=t)
        inputs = list(range(100, 100 + n))
        res = run_algorithm(sim, inputs,
                            adversary=SeededRandomAdversary(seed),
                            max_steps=10_000_000)
        verdict = KSetAgreementTask(src.k).validate_run(inputs, res)
        assert verdict.ok, f"{sim.name}: {verdict.explain()}"


class TestRoundTripMatrix:
    """Section 3 after Section 4 (and vice versa) across the lattice."""

    @pytest.mark.parametrize("t,x", [(1, 2), (1, 3)])
    def test_up_then_down(self, t, x):
        t_prime = t * x + x - 1
        n = t_prime + 2
        src = KSetReadWrite(n=n, t=t, k=t + 1)
        up = simulate_with_xcons(src, t_prime=t_prime, x=x)
        down = simulate_in_read_write(up, t=t)
        assert down.model().t == t and down.model().x == 1
        inputs = list(range(n))
        res = run_algorithm(down, inputs,
                            crash_plan=staggered(range(t)),
                            max_steps=30_000_000)
        verdict = KSetAgreementTask(t + 1).validate_run(inputs, res)
        assert verdict.ok, verdict.explain()

    @pytest.mark.parametrize("x", [2])
    def test_down_then_up(self, x):
        src = GroupedKSetFromXCons(n=4, x=x)     # k = 2
        down = simulate_in_read_write(src, t=1)
        up = simulate_with_xcons(down, t_prime=2 * x - 1, x=x)
        inputs = [5, 6, 7, 8]
        res = run_algorithm(up, inputs,
                            adversary=SeededRandomAdversary(4),
                            max_steps=30_000_000)
        verdict = KSetAgreementTask(2).validate_run(inputs, res)
        assert verdict.ok, verdict.explain()
