"""More exhaustive interleaving enumerations: x_compete and the Figure 4
object translation, proven over every schedule of tiny instances."""

import pytest

from repro.agreement import SafeAgreementFactory, x_compete
from repro.bg import SimulatorState, sim_object_op
from repro.memory import ObjectStore, SnapshotObject, TASFamily
from repro.runtime import ObjectProxy
from repro.runtime.explore import explore
from repro.runtime.ops import LocalOp

TS = ObjectProxy("TS")


class TestXCompeteExhaustive:
    @pytest.mark.parametrize("n,x", [(2, 1), (2, 2), (3, 2)])
    def test_all_schedules(self, n, x):
        def build():
            store = ObjectStore()
            store.add(TASFamily("TS"))

            def competitor(i):
                won = yield from x_compete(TS, "k", x, i)
                return won

            return {i: competitor(i) for i in range(n)}, store

        def check(result):
            winners = sum(1 for won in result.decisions.values() if won)
            assert winners == min(n, x)
            if n <= x:
                assert all(result.decisions.values())

        stats = explore(build, check, max_steps=n * x + 2)
        assert stats.truncated_runs == 0
        assert stats.complete_runs >= 2


def strip_local(gen):
    """Single-thread driver: local mutex ops always succeed."""
    result = None
    started = False
    while True:
        try:
            op = gen.send(result) if started else next(gen)
            started = True
        except StopIteration as stop:
            return stop.value
        if isinstance(op, LocalOp):
            result = None
            continue
        result = yield op


class TestFigure4Exhaustive:
    def test_object_agreement_all_schedules(self):
        """Every interleaving of two simulators simulating one shared
        one-shot object: both obtain the same agreed outcome, exactly one
        agreement instance is used."""
        n_sims = 2
        factory = SafeAgreementFactory(n_sims, family_name="XSAFE_AG")

        def build():
            store = ObjectStore()
            store.add(SnapshotObject("MEM", n_sims))
            store.add_all(factory.shared_objects())

            def sim(i):
                state = SimulatorState(i, 2, factory, factory)
                out = yield from strip_local(
                    sim_object_op(state, "obj", f"v{i}"))
                return out

            return {i: sim(i) for i in range(n_sims)}, store

        def check(result):
            assert len(result.decided_values) == 1
            assert result.decided_values <= {"v0", "v1"}
            xs = result.store["XSAFE_AG"]
            assert xs.instance_count == 1

        stats = explore(build, check, max_steps=18)
        assert stats.truncated_runs == 0
        assert stats.complete_runs > 5
