"""The solvability frontier, located empirically.

The calculus says: k-set agreement is solvable in ASM(n, t', x) iff
k > floor(t'/x).  The *possibility* side is demonstrated by running the
paper's own construction (Section 4 over the classic read/write
algorithm); the boundary's other side by showing that the construction's
preconditions fail exactly there (the impossibility itself is a theorem,
not a runnable artifact -- see DESIGN.md).
"""

import pytest

from repro.algorithms import KSetReadWrite
from repro.core import (ModelViolation, kset_solvable, simulate_with_xcons)
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import run_and_validate


def build_kset_solver(n, t_prime, x, k):
    """The paper's constructive recipe for k-set agreement in
    ASM(n, t', x) with k > floor(t'/x): run the t0-resilient read/write
    algorithm (t0 = floor(t'/x) < k) under the Section 4 simulation."""
    t0 = t_prime // x
    src = KSetReadWrite(n=n, t=t0, k=k)
    if x == 1:
        return src
    return simulate_with_xcons(src, t_prime=t_prime, x=x)


FRONTIER_CASES = [
    # (n, t', x): solvable for k = floor(t'/x)+1, construction fails at k.
    (5, 3, 2),
    (6, 5, 2),
    (6, 4, 3),
    (5, 4, 4),
    (5, 2, 1),
]


class TestFrontier:
    @pytest.mark.parametrize("n,t_prime,x", FRONTIER_CASES)
    def test_solvable_side_runs(self, n, t_prime, x):
        k = t_prime // x + 1
        assert kset_solvable(ASM(n, t_prime, x), k)
        alg = build_kset_solver(n, t_prime, x, k)
        run_and_validate(alg, KSetAgreementTask(k), list(range(n)),
                         adversary=SeededRandomAdversary(1),
                         max_steps=5_000_000)

    @pytest.mark.parametrize("n,t_prime,x", FRONTIER_CASES)
    def test_solvable_side_survives_t_prime_crashes(self, n, t_prime, x):
        k = t_prime // x + 1
        alg = build_kset_solver(n, t_prime, x, k)
        victims = {v: 3 + 2 * v for v in range(t_prime)}
        run_and_validate(alg, KSetAgreementTask(k), list(range(n)),
                         crash_plan=CrashPlan.at_own_step(victims),
                         max_steps=5_000_000)

    @pytest.mark.parametrize("n,t_prime,x", FRONTIER_CASES)
    def test_unsolvable_side_has_no_construction(self, n, t_prime, x):
        """At k = floor(t'/x) the calculus says NO; accordingly the
        paper's construction cannot even be instantiated: the inner
        read/write algorithm would need t >= k, which k-set agreement
        forbids (KSetReadWrite enforces t < k), and lowering t breaks
        Theorem 3's precondition."""
        k = t_prime // x
        if k == 0:
            pytest.skip("0-set agreement is not a task")
        assert not kset_solvable(ASM(n, t_prime, x), k)
        t0 = t_prime // x
        with pytest.raises(ValueError):
            KSetReadWrite(n=n, t=t0, k=k)   # t0 = k: not allowed
        if x > 1 and k >= 2:
            weaker = KSetReadWrite(n=n, t=k - 1, k=k)
            with pytest.raises(ModelViolation):
                simulate_with_xcons(weaker, t_prime=t_prime, x=x)


class TestUselessBoostEmpirically:
    def test_boost_within_class_changes_nothing(self):
        """ASM(6, 5, 2) and ASM(6, 5, 2+...) -- the Section 5.4
        observation, checked by running the same source through both
        targets: both solve 3-set agreement (index 2)."""
        src = KSetReadWrite(n=6, t=2, k=3)
        for x in (2,):
            sim = simulate_with_xcons(src, t_prime=5, x=x)
            run_and_validate(sim, KSetAgreementTask(3),
                             [1, 2, 3, 4, 5, 6],
                             adversary=SeededRandomAdversary(4),
                             max_steps=5_000_000)
        # boosting x to 3 at t'=5 moves the index (5//3=1): consensus-2
        # becomes solvable -- i.e. the boost is NOT useless there,
        # matching useless_boost's verdict.
        from repro.core import useless_boost
        assert not useless_boost(t=5, x=2, delta_x=1)
        assert useless_boost(t=5, x=3, delta_x=2)
