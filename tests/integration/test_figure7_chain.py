"""Figure 7 executed: the full equivalence chain as nested simulations.

ASM(n1, t1, x1) -> ASM(n1, t, 1) -> ASM(t+1, t, 1) -> ASM(n2, t, 1)
                                                   -> ASM(n2, t2, x2)

Every intermediate algorithm is runnable; we run the composite in the
final model and validate the original task.
"""

import pytest

from repro.algorithms import GroupedKSetFromXCons, KSetReadWrite
from repro.core import (bg_reduce, plan_transfer, simulate_in_read_write,
                        simulate_with_xcons, transfer_algorithm)
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import run_and_validate


class TestManualChain:
    def test_two_hop_chain(self):
        """ASM(4,3,2) --Sec3--> ASM(4,1,1) --Sec4--> ASM(4,3,2): a round
        trip through the canonical model returns to an equivalent model,
        and the composite still solves the task."""
        src = GroupedKSetFromXCons(n=4, x=2)           # 2-set agreement
        down = simulate_in_read_write(src, t=1)        # ASM(4,1,1)
        up = simulate_with_xcons(down, t_prime=3, x=2)  # ASM(4,3,2)
        assert up.model() == ASM(4, 3, 2)
        run_and_validate(up, KSetAgreementTask(2), [10, 20, 30, 40],
                         adversary=SeededRandomAdversary(0),
                         max_steps=5_000_000)

    def test_chain_through_waitfree_core(self):
        """ASM(5,1,1) --BG--> ASM(2,1,1) --Sec4--> ASM(2,1,2)... the BG
        core then re-expanded: validates that the wait-free canonical
        model really is a universal interchange point."""
        src = KSetReadWrite(n=5, t=1, k=2)
        core = bg_reduce(src)                          # ASM(2,1,1)
        assert core.model() == ASM(2, 1, 1)
        run_and_validate(core, KSetAgreementTask(2), [1, 2],
                         crash_plan=CrashPlan.at_own_step({0: 7}))

    @pytest.mark.slow
    def test_three_hop_chain_with_crashes(self):
        src = GroupedKSetFromXCons(n=4, x=2)
        down = simulate_in_read_write(src, t=1)
        up = simulate_with_xcons(down, t_prime=2, x=2)
        res = run_and_validate(up, KSetAgreementTask(2), [10, 20, 30, 40],
                               crash_plan=CrashPlan.at_own_step(
                                   {1: 9, 3: 21}),
                               max_steps=8_000_000)
        assert res.crashed_pids == {1, 3}


class TestPlannedTransfer:
    @pytest.mark.parametrize("target", [
        ASM(5, 2, 2),    # same index (1), bigger x
        ASM(4, 1, 1),    # canonical
        ASM(5, 3, 3),    # index 1 via x=3
    ])
    def test_transfer_preserves_task(self, target):
        src = KSetReadWrite(n=5, t=1, k=2)
        alg = transfer_algorithm(src, target)
        assert alg.model() == target
        run_and_validate(alg, KSetAgreementTask(2),
                         list(range(target.n)),
                         adversary=SeededRandomAdversary(3),
                         max_steps=8_000_000)

    def test_plan_and_execution_agree_on_models(self):
        src = GroupedKSetFromXCons(n=4, x=2)
        target = ASM(4, 2, 2)
        steps = plan_transfer(src.model(), target)
        alg = transfer_algorithm(src, target)
        assert steps[-1].target == alg.model() == target
