"""Consensus becomes solvable exactly at x = t + 1.

"when x > t, all tasks can be solved" (paper, Section 1.2 footnote on
model parameters) -- and for x <= t consensus is impossible
(floor(t/x) >= 1).  The possible side is executed via the paper's own
Section 4 construction over the failure-free read/write consensus.
"""

import pytest

from repro.algorithms import KSetReadWrite, run_algorithm
from repro.core import consensus_solvable, simulate_with_xcons
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import ConsensusTask


class TestConsensusFrontier:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_calculus_frontier(self, t):
        n = t + 3
        assert not consensus_solvable(ASM(n, t, t))
        assert consensus_solvable(ASM(n, t, t + 1))

    @pytest.mark.parametrize("t", [1, 2])
    @pytest.mark.parametrize("seed", [0, 4])
    def test_consensus_at_x_equals_t_plus_1_executes(self, t, seed):
        """ASM(n, t, t+1): lift the failure-free consensus (t0 = 0
        read/write) with x = t+1; floor(t/(t+1)) = 0 = t0, so Theorem 3
        applies and the result survives t crashes."""
        n = t + 3
        source = KSetReadWrite(n=n, t=0, k=1)   # consensus, t0 = 0
        lifted = simulate_with_xcons(source, t_prime=t, x=t + 1)
        assert lifted.model() == ASM(n, t, t + 1)
        inputs = [7 * (i + 1) for i in range(n)]
        victims = {v: 3 + 2 * v for v in range(t)}
        res = run_algorithm(lifted, inputs,
                            adversary=SeededRandomAdversary(seed),
                            crash_plan=CrashPlan.at_own_step(victims),
                            max_steps=10_000_000)
        verdict = ConsensusTask().validate_run(inputs, res)
        assert verdict.ok, verdict.explain()

    @pytest.mark.parametrize("t", [1, 2])
    def test_construction_refuses_x_equals_t(self, t):
        """At x = t the same lift violates Theorem 3's precondition:
        floor(t/t) = 1 > 0 = source resilience."""
        from repro.core import ModelViolation
        n = t + 3
        source = KSetReadWrite(n=n, t=0, k=1)
        with pytest.raises(ModelViolation, match="Theorem 3"):
            simulate_with_xcons(source, t_prime=t, x=t)
