"""Exhaustive (bounded) model checking of the paper's core objects.

For tiny configurations, EVERY interleaving is enumerated -- these are
proofs-by-exhaustion, not samples.
"""

import pytest

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.agreement.adopt_commit import COMMIT, AdoptCommit, \
    adopt_commit_specs
from repro.algorithms.splitter_renaming import splitter, STOP, RIGHT, DOWN
from repro.memory import ObjectStore, build_store, make_spec
from repro.objects import WINNER, LOSER, consensus2_from_queue
from repro.runtime import CrashPlan, ObjectProxy
from repro.runtime.explore import ExplorationStats, explore


class TestExploreHarness:
    def test_stats_rendering(self):
        stats = ExplorationStats(complete_runs=3, truncated_runs=1,
                                 max_depth_seen=7)
        assert stats.total_runs == 4
        assert "3 complete" in str(stats)

    def test_run_cap(self):
        mem = ObjectProxy("mem")

        def build():
            from repro.memory import SnapshotObject
            store = ObjectStore()
            store.add(SnapshotObject("mem", 3))

            def prog(pid):
                for _ in range(6):
                    yield mem.write(pid, pid)

            return {i: prog(i) for i in range(3)}, store

        with pytest.raises(RuntimeError, match="max_runs"):
            explore(build, lambda r: None, max_steps=18, max_runs=50)


class TestSafeAgreementExhaustive:
    def make_build(self, n):
        def build():
            factory = SafeAgreementFactory(n)
            store = ObjectStore()
            store.add_all(factory.shared_objects())

            def participant(i):
                inst = factory.instance("k")
                yield from inst.propose(i, f"v{i}")
                decided = yield from inst.decide(i)
                return decided

            return {i: participant(i) for i in range(n)}, store
        return build

    def test_all_schedules_two_processes(self):
        def check(result):
            assert len(result.decided_values) == 1
            assert result.decided_values <= {"v0", "v1"}
            assert result.decided_pids == {0, 1}

        stats = explore(self.make_build(2), check, max_steps=20)
        assert stats.complete_runs > 10
        assert stats.truncated_runs == 0

    def test_all_schedules_with_one_crash(self):
        seen_deadlocks = []

        def check(result):
            # safety always; liveness unless the crash hit mid-propose.
            assert len(result.decided_values) <= 1
            assert result.decided_values <= {"v0", "v1"}
            if result.deadlocked:
                seen_deadlocks.append(result)
            else:
                assert result.decided_pids == {1}

        stats = explore(self.make_build(2), check,
                        crash_plan_factory=lambda:
                        CrashPlan.at_own_step({0: 2}),
                        max_steps=24)
        # the mid-propose crash blocks p1 in EVERY schedule here
        assert seen_deadlocks
        assert stats.truncated_runs == 0


class TestXSafeAgreementExhaustive:
    def test_all_schedules_two_processes_x2(self):
        n, x = 2, 2

        def build():
            factory = XSafeAgreementFactory(n, x)
            store = ObjectStore()
            store.add_all(factory.shared_objects())

            def participant(i):
                inst = factory.instance("k")
                yield from inst.propose(i, f"v{i}")
                decided = yield from inst.decide(i)
                return decided

            return {i: participant(i) for i in range(n)}, store

        def check(result):
            assert len(result.decided_values) == 1
            assert result.decided_values <= {"v0", "v1"}
            assert result.decided_pids == {0, 1}

        stats = explore(build, check, max_steps=30, max_runs=150_000)
        assert stats.complete_runs > 100
        assert stats.truncated_runs == 0


class TestAdoptCommitExhaustive:
    @pytest.mark.parametrize("values", [("a", "a"), ("a", "b")])
    def test_all_schedules(self, values):
        n = 2

        def build():
            store = build_store(adopt_commit_specs(n))

            def proposer(pid):
                out = yield from AdoptCommit("k", n).propose(
                    pid, values[pid])
                return out

            return {i: proposer(i) for i in range(n)}, store

        def check(result):
            outs = list(result.decisions.values())
            committed = {v for tag, v in outs if tag == COMMIT}
            assert len(committed) <= 1
            if committed:
                v = committed.pop()
                assert all(value == v for _, value in outs)
            if values[0] == values[1]:
                assert all(tag == COMMIT for tag, _ in outs)

        stats = explore(build, check, max_steps=16)
        assert stats.complete_runs > 10
        assert stats.truncated_runs == 0


class TestSplitterExhaustive:
    @pytest.mark.parametrize("n", [2, 3])
    def test_all_schedules(self, n):
        def build():
            store = build_store([make_spec("register_family", "sx"),
                                 make_spec("register_family", "sy")])
            x, y = ObjectProxy("sx"), ObjectProxy("sy")

            def prog(pid):
                out = yield from splitter(x, y, (0, 0), pid)
                return out

            return {i: prog(i) for i in range(n)}, store

        def check(result):
            outs = list(result.decisions.values())
            assert outs.count(STOP) <= 1
            assert outs.count(RIGHT) <= n - 1
            assert outs.count(DOWN) <= n - 1

        stats = explore(build, check, max_steps=4 * n + 2)
        assert stats.truncated_runs == 0
        assert stats.complete_runs > (10 if n == 2 else 100)


class TestQueueConsensusExhaustive:
    def test_all_schedules(self):
        def build():
            store = build_store([
                make_spec("queue", "q", initial=(WINNER, LOSER)),
                make_spec("register_array", "ann", size=2),
            ])
            q, ann = ObjectProxy("q"), ObjectProxy("ann")

            def prog(pid):
                decided = yield from consensus2_from_queue(
                    q, ann, pid, 1 - pid, f"v{pid}")
                return decided

            return {i: prog(i) for i in range(2)}, store

        def check(result):
            assert len(result.decided_values) == 1
            assert result.decided_values <= {"v0", "v1"}

        stats = explore(build, check, max_steps=12)
        assert stats.complete_runs > 3
        assert stats.truncated_runs == 0
