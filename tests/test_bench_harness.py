"""The benchmark harness helpers (benchmarks/harness.py)."""

import json
import os

from benchmarks.harness import (RESULTS_DIR, cost_row, header, run_once,
                                write_json, write_report)
from repro.algorithms import KSetReadWrite
from repro.analysis.metrics import METRICS_SCHEMA_VERSION
from repro.runtime import CrashPlan


class TestHarness:
    def test_run_once_seeded(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3], seed=5)
        assert res.decided_pids == {0, 1, 2}

    def test_run_once_round_robin(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        a = run_once(algo, [1, 2, 3], seed=None)
        b = run_once(algo, [1, 2, 3], seed=None)
        assert a.decisions == b.decisions

    def test_run_once_with_crash_plan(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3],
                       crash_plan=CrashPlan.initially_dead([0]))
        assert res.crashed_pids == {0}

    def test_header_shape(self):
        lines = header("Title", "sub1", "sub2")
        assert lines[0] == "Title"
        assert lines[1] == "=" * 5
        assert lines[2:4] == ["sub1", "sub2"]
        assert lines[-1] == ""

    def test_cost_row_format(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3])
        row = cost_row("label", res)
        assert row.startswith("label")
        assert "steps=" in row

    def test_write_report_roundtrip(self):
        path = write_report("_harness_selftest", ["line1", "line2"])
        assert path.startswith(RESULTS_DIR)
        try:
            with open(path) as handle:
                assert handle.read() == "line1\nline2\n"
        finally:
            os.remove(path)
            os.remove(os.path.join(RESULTS_DIR, "_harness_selftest.json"))

    def test_write_report_emits_versioned_json_twin(self):
        write_report("_harness_selftest", ["Title line", "row"],
                     data={"series": [1, 2, 3]})
        json_path = os.path.join(RESULTS_DIR, "_harness_selftest.json")
        try:
            with open(json_path) as handle:
                record = json.load(handle)
        finally:
            os.remove(json_path)
            os.remove(os.path.join(RESULTS_DIR, "_harness_selftest.txt"))
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["kind"] == "bench_report"
        assert record["name"] == "_harness_selftest"
        assert record["data"]["title"] == "Title line"
        assert record["data"]["lines"] == ["Title line", "row"]
        assert record["data"]["series"] == [1, 2, 3]

    def test_write_report_replaces_atomically(self, monkeypatch):
        # A writer interrupted before the final os.replace must leave
        # the previous report intact and clean up its temp file -- an
        # aborted bench can never publish a truncated table.
        path = write_report("_harness_selftest", ["old content"])
        try:
            import repro.analysis.metrics as metrics_mod

            def boom(src, dst):
                raise KeyboardInterrupt("interrupted mid-bench")

            monkeypatch.setattr(metrics_mod.os, "replace", boom)
            try:
                write_report("_harness_selftest", ["new content"])
                assert False, "interruption did not propagate"
            except KeyboardInterrupt:
                pass
            monkeypatch.undo()
            with open(path) as handle:
                assert handle.read() == "old content\n"
            leftovers = [name for name in os.listdir(RESULTS_DIR)
                         if name.startswith("._harness_selftest")]
            assert leftovers == []
        finally:
            os.remove(path)
            os.remove(os.path.join(RESULTS_DIR, "_harness_selftest.json"))

    def test_write_json_standalone(self):
        path = write_json("_harness_selftest", ["only line"],
                          data={"k": 1})
        try:
            with open(path) as handle:
                record = json.load(handle)
        finally:
            os.remove(path)
        assert record["data"]["k"] == 1
        assert record["data"]["title"] == "only line"
