"""The benchmark harness helpers (benchmarks/harness.py)."""

import os

from benchmarks.harness import (RESULTS_DIR, cost_row, header, run_once,
                                write_report)
from repro.algorithms import KSetReadWrite
from repro.runtime import CrashPlan


class TestHarness:
    def test_run_once_seeded(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3], seed=5)
        assert res.decided_pids == {0, 1, 2}

    def test_run_once_round_robin(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        a = run_once(algo, [1, 2, 3], seed=None)
        b = run_once(algo, [1, 2, 3], seed=None)
        assert a.decisions == b.decisions

    def test_run_once_with_crash_plan(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3],
                       crash_plan=CrashPlan.initially_dead([0]))
        assert res.crashed_pids == {0}

    def test_header_shape(self):
        lines = header("Title", "sub1", "sub2")
        assert lines[0] == "Title"
        assert lines[1] == "=" * 5
        assert lines[2:4] == ["sub1", "sub2"]
        assert lines[-1] == ""

    def test_cost_row_format(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_once(algo, [1, 2, 3])
        row = cost_row("label", res)
        assert row.startswith("label")
        assert "steps=" in row

    def test_write_report_roundtrip(self):
        path = write_report("_harness_selftest", ["line1", "line2"])
        assert path.startswith(RESULTS_DIR)
        with open(path) as handle:
            assert handle.read() == "line1\nline2\n"
        os.remove(path)
