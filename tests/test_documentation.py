"""Documentation deliverable enforcement.

Every public module, class and function of the library must carry a
docstring -- checked mechanically so the guarantee survives refactors.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.runtime", "repro.memory", "repro.objects",
    "repro.agreement", "repro.bg", "repro.core", "repro.algorithms",
    "repro.tasks", "repro.analysis", "repro.detectors", "repro.sync",
    "repro.messaging", "repro.generative",
]


def iter_modules():
    for name in PACKAGES:
        package = importlib.import_module(name)
        yield package
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=name + "."):
            yield importlib.import_module(info.name)


def public_members(module):
    for attr in dir(module):
        if attr.startswith("_"):
            continue
        obj = getattr(module, attr)
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield attr, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in iter_modules()
                        if not (m.__doc__ or "").strip()]
        assert not undocumented, undocumented

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for attr, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{attr}")
        assert not undocumented, undocumented

    def test_public_methods_of_core_classes_documented(self):
        from repro.algorithms.protocol import Algorithm
        from repro.memory.base import SharedObject
        from repro.runtime.run import RunResult
        from repro.tasks.task import Task
        undocumented = []
        for cls in (Algorithm, SharedObject, RunResult, Task):
            for attr, member in inspect.getmembers(cls):
                if attr.startswith("_"):
                    continue
                if callable(member) and not (
                        getattr(member, "__doc__", None) or "").strip():
                    undocumented.append(f"{cls.__name__}.{attr}")
        assert not undocumented, undocumented


class TestPackageSurface:
    def test_all_lists_are_accurate(self):
        for name in PACKAGES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol}"

    def test_version(self):
        assert repro.__version__
