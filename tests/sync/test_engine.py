"""The synchronous round engine."""

import pytest

from repro.memory.store import ObjectStore
from repro.sync import SyncAlgorithm, SyncCrash, SyncPhase, run_sync


class EchoAll(SyncAlgorithm):
    """Every round, broadcast own state; state becomes the received map.
    Lets tests observe delivery semantics directly."""

    def __init__(self, n, rounds=1):
        self.n = n
        self.rounds = rounds

    def build_store(self):
        return ObjectStore()

    def initial_state(self, pid, value):
        return value

    def message(self, pid, state, r):
        return (pid, r)

    def update(self, pid, state, r, received):
        return received

    def decide(self, pid, state):
        return state


class TestDelivery:
    def test_full_delivery_without_crashes(self):
        res = run_sync(EchoAll(3), ["a", "b", "c"])
        for pid, inbox in res.decisions.items():
            assert set(inbox) == {0, 1, 2}
            assert inbox[1] == (1, 0)

    def test_before_objects_crash_is_silent(self):
        crashes = [SyncCrash(0, 0, SyncPhase.BEFORE_OBJECTS)]
        res = run_sync(EchoAll(3), ["a", "b", "c"], crashes)
        assert res.crashed == {0}
        for inbox in res.decisions.values():
            assert 0 not in inbox

    def test_before_broadcast_crash_is_silent(self):
        crashes = [SyncCrash(0, 0, SyncPhase.BEFORE_BROADCAST)]
        res = run_sync(EchoAll(3), ["a", "b", "c"], crashes)
        for inbox in res.decisions.values():
            assert 0 not in inbox

    def test_partial_broadcast_reaches_exactly_the_subset(self):
        crashes = [SyncCrash(0, 0, SyncPhase.DURING_BROADCAST,
                             delivered_to=frozenset({2}))]
        res = run_sync(EchoAll(3), ["a", "b", "c"], crashes)
        assert 0 not in res.decisions[1]
        assert res.decisions[2][0] == (0, 0)

    def test_crashed_process_takes_no_further_rounds(self):
        crashes = [SyncCrash(0, 0, SyncPhase.DURING_BROADCAST)]
        res = run_sync(EchoAll(3, rounds=2), ["a", "b", "c"], crashes)
        for inbox in res.decisions.values():
            assert 0 not in inbox          # round-1 inbox has no p0

    def test_crash_in_later_round_only(self):
        crashes = [SyncCrash(1, 1, SyncPhase.BEFORE_OBJECTS)]
        res = run_sync(EchoAll(3, rounds=2), ["a", "b", "c"], crashes)
        assert res.crashed == {1}
        assert 1 not in res.decisions


class TestValidation:
    def test_input_length_checked(self):
        with pytest.raises(ValueError):
            run_sync(EchoAll(3), ["a"])

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError):
            run_sync(EchoAll(3), ["a", "b", "c"],
                     [SyncCrash(0, 0), SyncCrash(0, 1)])

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            SyncCrash(0, -1)

    def test_deterministic_given_seed(self):
        runs = [run_sync(EchoAll(4, rounds=2), list("abcd"), seed=5)
                for _ in range(2)]
        assert runs[0].decisions == runs[1].decisions
