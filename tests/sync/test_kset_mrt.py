"""Synchronous k-set agreement in MRT-optimal rounds."""

import itertools

import pytest

from repro.sync import SyncCrash, SyncKSetMRT, SyncPhase, committee_size, \
    mrt_rounds, run_sync


def worst_case_crashes(algo):
    """Spend the full budget t ruining whole committees (d crashes per
    ruined round) -- the adversary strategy behind the lower bound."""
    crashes = []
    budget = algo.t
    r = 0
    while budget >= algo.d and r < algo.rounds:
        for victim in algo.committee(r):
            crashes.append(SyncCrash(victim, r,
                                     SyncPhase.BEFORE_OBJECTS))
        budget -= algo.d
        r += 1
    # leftover crashes: partial sabotage of the next committee.
    for victim in algo.committee(r)[:budget]:
        crashes.append(SyncCrash(victim, r, SyncPhase.DURING_BROADCAST,
                                 delivered_to=frozenset({victim + 1})))
    return crashes


class TestFormulas:
    def test_committee_size(self):
        assert committee_size(k=2, m=2, ell=1) == 4
        assert committee_size(k=3, m=2, ell=2) == 2 + 1
        assert committee_size(k=1, m=3, ell=1) == 3
        assert committee_size(k=2, m=1, ell=1) == 2

    def test_rounds_match_mrt_closed_form(self):
        from repro.core import mrt_sync_rounds
        for t, k, m, ell in itertools.product(
                range(0, 8), (1, 2, 3), (1, 2, 3), (1, 2)):
            if ell > min(k, m):
                continue
            assert mrt_rounds(t, k, m, ell) == \
                mrt_sync_rounds(t, k, m, ell)

    def test_needs_disjoint_committees(self):
        with pytest.raises(ValueError, match="disjoint"):
            SyncKSetMRT(n=4, t=4, k=1, m=1, ell=1)  # needs n >= 4+1

    def test_ell_at_most_m(self):
        with pytest.raises(ValueError):
            SyncKSetMRT(n=9, t=1, k=2, m=1, ell=2)


CASES = [
    # (n, t, k, m, ell)
    (8, 3, 2, 1, 1),      # classic k-set: rounds = 3//2+1 = 2
    (9, 4, 1, 2, 1),      # consensus with 2-consensus objects: 3 rounds
    (10, 4, 2, 2, 1),     # d=4: 2 rounds
    (9, 3, 2, 2, 2),      # (2,2) objects are trivial; d=2+0... k//l=1
    (12, 5, 3, 2, 2),     # d = 2*1 + 1 = 3: 2 rounds
]


class TestCorrectness:
    @pytest.mark.parametrize("n,t,k,m,ell", CASES)
    def test_failure_free(self, n, t, k, m, ell):
        algo = SyncKSetMRT(n, t, k, m, ell)
        res = run_sync(algo, list(range(n)))
        assert len(res.decided_values) <= k
        assert res.decided_values <= set(range(n))
        assert set(res.decisions) == set(range(n))

    @pytest.mark.parametrize("n,t,k,m,ell", CASES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_worst_case_adversary(self, n, t, k, m, ell, seed):
        algo = SyncKSetMRT(n, t, k, m, ell)
        crashes = worst_case_crashes(algo)
        assert len(crashes) <= t
        res = run_sync(algo, list(range(n)), crashes, seed=seed)
        assert len(res.decided_values) <= k, (
            f"{algo.name}: {sorted(res.decided_values)}")
        assert res.decided_values <= set(range(n))

    @pytest.mark.parametrize("seed", range(8))
    def test_scattered_partial_crashes(self, seed):
        import random
        rng = random.Random(seed)
        algo = SyncKSetMRT(n=10, t=4, k=2, m=2, ell=1)
        victims = rng.sample(range(10), 4)
        crashes = []
        for v in victims:
            r = rng.randrange(algo.rounds)
            subset = frozenset(rng.sample(range(10),
                                          rng.randrange(0, 10)))
            crashes.append(SyncCrash(v, r, SyncPhase.DURING_BROADCAST,
                                     delivered_to=subset))
        res = run_sync(algo, list(range(10)), crashes, seed=seed)
        assert len(res.decided_values) <= 2
        assert res.decided_values <= set(range(10))

    def test_round_count_is_tight_downward(self):
        """One round fewer than MRT lets the adversary force > k values:
        the algorithm's round count is not slack."""
        algo = SyncKSetMRT(n=10, t=4, k=2, m=2, ell=1)   # 2 rounds
        algo.rounds = 1                                   # cheat: 1 round
        # ruin the single round completely: silence its whole committee.
        crashes = [SyncCrash(v, 0, SyncPhase.BEFORE_OBJECTS)
                   for v in algo.committee(0)]
        res = run_sync(algo, list(range(10)), crashes)
        # nobody heard anything: everyone keeps its own input -> 6 values.
        assert len(res.decided_values) > 2
