"""Frame codec failure modes: every malformed input is a typed, prompt error.

ISSUE 10 satellite: a truncated length prefix, a checksum mismatch, an
oversize frame and a protocol-version mismatch must each raise their
dedicated :class:`~repro.runtime.wire.WireError` subclass -- and a read
from a peer that stops mid-frame must fail by deadline rather than hang.
"""

import socket
import struct
import threading
from time import monotonic

import pytest

from repro.runtime import wire
from repro.runtime.wire import (BadMagic, ChecksumMismatch, ConnectionClosed,
                                FrameTooLarge, FrameTruncated,
                                VersionMismatch, WireError, WireTimeout,
                                encode_frame, recv_frame, send_frame,
                                split_frames, try_decode)


def _socketpair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def _header(magic=wire.MAGIC, version=wire.WIRE_VERSION, length=0, crc=0):
    return struct.Struct("!4sBII").pack(magic, version, length, crc)


class TestRoundTrip:
    def test_encode_decode_round_trip(self):
        body = {"type": "grant", "shard": 3, "prefix": [1, 2], "sleep": []}
        frame = encode_frame(body)
        decoded, consumed = try_decode(frame)
        assert decoded == body
        assert consumed == len(frame)

    def test_encoding_is_deterministic(self):
        body = {"b": 1, "a": 2, "nested": {"z": 0, "y": 1}}
        assert encode_frame(body) == encode_frame(body)
        # Key order in the source dict must not matter.
        assert encode_frame({"a": 2, "b": 1, "nested": {"y": 1, "z": 0}}) \
            == encode_frame(body)

    def test_socket_round_trip(self):
        a, b = _socketpair()
        try:
            body = {"type": "heartbeat", "shard": 7}
            send_frame(a, body, deadline=monotonic() + 5.0)
            assert recv_frame(b, deadline=monotonic() + 5.0) == body
        finally:
            a.close()
            b.close()


class TestTruncation:
    def test_truncated_length_prefix_over_socket(self):
        """EOF after a partial header is FrameTruncated, not a hang."""
        a, b = _socketpair()
        try:
            a.sendall(_header(length=64)[:6])  # 6 of 13 header bytes
            a.close()
            with pytest.raises(FrameTruncated):
                recv_frame(b, deadline=monotonic() + 5.0)
        finally:
            b.close()

    def test_truncated_payload_over_socket(self):
        frame = encode_frame({"type": "hello", "worker": "w"})
        a, b = _socketpair()
        try:
            a.sendall(frame[:-4])  # whole header, partial payload
            a.close()
            with pytest.raises(FrameTruncated):
                recv_frame(b, deadline=monotonic() + 5.0)
        finally:
            b.close()

    def test_clean_eof_between_frames_is_connection_closed(self):
        a, b = _socketpair()
        try:
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b, deadline=monotonic() + 5.0)
        finally:
            b.close()

    def test_partial_buffer_is_not_an_error(self):
        """try_decode on a frame prefix asks for more bytes, quietly."""
        frame = encode_frame({"type": "idle"})
        for cut in (0, 1, wire.HEADER_SIZE - 1, wire.HEADER_SIZE,
                    len(frame) - 1):
            assert try_decode(frame[:cut]) is None


class TestChecksum:
    def test_corrupted_payload_is_checksum_mismatch(self):
        frame = bytearray(encode_frame({"type": "ok", "renewed": True}))
        frame[-1] ^= 0xFF
        with pytest.raises(ChecksumMismatch):
            try_decode(bytes(frame))

    def test_corrupted_payload_over_socket(self):
        frame = bytearray(encode_frame({"type": "ok", "renewed": True}))
        frame[wire.HEADER_SIZE] ^= 0x55
        a, b = _socketpair()
        try:
            a.sendall(bytes(frame))
            with pytest.raises(ChecksumMismatch):
                recv_frame(b, deadline=monotonic() + 5.0)
        finally:
            a.close()
            b.close()


class TestOversizeAndVersion:
    def test_oversize_header_rejected_before_payload(self):
        """A hostile length field fails from the header alone."""
        with pytest.raises(FrameTooLarge):
            try_decode(_header(length=wire.MAX_FRAME_BYTES + 1))

    def test_oversize_encode_refused(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 1024})

    def test_version_mismatch(self):
        frame = bytearray(encode_frame({"type": "idle"}))
        frame[4] = wire.WIRE_VERSION + 1  # version byte follows the magic
        with pytest.raises(VersionMismatch):
            try_decode(bytes(frame))

    def test_bad_magic(self):
        with pytest.raises(BadMagic):
            try_decode(_header(magic=b"HTTP", length=0))

    def test_non_object_payload_rejected(self):
        import json
        import zlib
        payload = json.dumps([1, 2, 3]).encode()
        frame = _header(length=len(payload),
                        crc=zlib.crc32(payload)) + payload
        with pytest.raises(WireError):
            try_decode(frame)


class TestDeadline:
    def test_stalled_read_fires_deadline(self):
        """A peer that sends half a frame then stalls cannot hang us."""
        a, b = _socketpair()
        try:
            a.sendall(_header(length=64))  # promises 64 bytes, sends none
            start = monotonic()
            with pytest.raises(WireTimeout):
                recv_frame(b, deadline=monotonic() + 0.2)
            assert monotonic() - start < 2.0
        finally:
            a.close()
            b.close()

    def test_expired_deadline_fails_immediately(self):
        a, b = _socketpair()
        try:
            with pytest.raises(WireTimeout):
                recv_frame(b, deadline=monotonic() - 1.0)
        finally:
            a.close()
            b.close()

    def test_stalled_header_read_fires_deadline(self):
        """Even the 13-byte header read honours the deadline."""
        a, b = _socketpair()
        try:
            a.sendall(_header(length=0)[:3])
            start = monotonic()
            with pytest.raises(WireTimeout):
                recv_frame(b, deadline=monotonic() + 0.2)
            assert monotonic() - start < 2.0
        finally:
            a.close()
            b.close()


class TestSplitFrames:
    def test_splits_concatenated_frames(self):
        f1 = encode_frame({"type": "request", "worker_id": 1})
        f2 = encode_frame({"type": "heartbeat", "shard": 0})
        tail = f1[: wire.HEADER_SIZE + 2]
        frames, rest = split_frames(f1 + f2 + tail)
        assert frames == [f1, f2]
        assert rest == tail

    def test_non_protocol_bytes_pass_through(self):
        blob = b"GET / HTTP/1.1\r\n\r\n"
        frames, rest = split_frames(blob)
        assert frames == []
        assert rest == blob

    def test_content_agnostic(self):
        """Corrupt payloads still split on boundaries (chaos proxy path)."""
        frame = bytearray(encode_frame({"type": "ok"}))
        frame[-1] ^= 0xFF  # checksum now wrong; boundaries still valid
        frames, rest = split_frames(bytes(frame))
        assert frames == [bytes(frame)]
        assert rest == b""


class TestErrorTaxonomy:
    def test_every_failure_is_a_wire_error(self):
        for exc in (FrameTruncated, ConnectionClosed, ChecksumMismatch,
                    FrameTooLarge, VersionMismatch, BadMagic, WireTimeout):
            assert issubclass(exc, WireError)
