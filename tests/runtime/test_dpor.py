"""Dynamic partial-order reduction: soundness, shrinking, footprints.

The core soundness obligation is Mazurkiewicz-trace equivalence: two
schedules that differ only in the order of *independent* steps reach the
same terminal state, so exploring one representative per trace must
observe exactly the same terminal-state SET as naive enumeration.  These
tests compare the two engines on seeded micro-programs (including one
with a crash plan) where naive enumeration is cheap enough to be the
ground truth.
"""

import pytest

from repro.memory import ObjectStore
from repro.memory.registers import AtomicRegister, RegisterArray
from repro.runtime import (CounterexampleFound, CrashPlan, ObjectProxy,
                           explore, explore_dpor, replay_schedule,
                           shrink_schedule)
from repro.runtime.ops import (EMPTY_FOOTPRINT, WHOLE, Footprint, conflicts)


# ---------------------------------------------------------------------------
# footprint algebra
# ---------------------------------------------------------------------------

class TestFootprints:
    def test_read_read_is_independent(self):
        a = Footprint.read("r")
        b = Footprint.read("r")
        assert not conflicts(a, b)

    def test_write_conflicts_with_read_same_location(self):
        assert conflicts(Footprint.write("r"), Footprint.read("r"))
        assert conflicts(Footprint.read("r"), Footprint.write("r"))

    def test_write_write_conflicts(self):
        assert conflicts(Footprint.write("r"), Footprint.write("r"))

    def test_distinct_objects_are_independent(self):
        assert not conflicts(Footprint.write("a"), Footprint.write("b"))

    def test_distinct_keys_are_independent(self):
        a = Footprint.write("arr", 0)
        b = Footprint.write("arr", 1)
        assert not conflicts(a, b)

    def test_whole_overlaps_every_key(self):
        snap = Footprint.read("arr", WHOLE)
        cell = Footprint.write("arr", 3)
        assert conflicts(snap, cell)

    def test_tuple_keys_elementwise(self):
        a = Footprint.write("fam", ("k", 0))
        b = Footprint.write("fam", ("k", 1))
        c = Footprint.read("fam", ("k", WHOLE))
        assert not conflicts(a, b)
        assert conflicts(a, c)
        assert conflicts(b, c)

    def test_unknown_footprint_conflicts_conservatively(self):
        assert conflicts(None, EMPTY_FOOTPRINT)
        assert conflicts(Footprint.read("r"), None)

    def test_empty_footprint_commutes_with_everything(self):
        assert not conflicts(EMPTY_FOOTPRINT, Footprint.write("r"))
        assert not conflicts(EMPTY_FOOTPRINT, EMPTY_FOOTPRINT)

    def test_merge_unions_both_sides(self):
        m = Footprint.read("a").merge(Footprint.write("b"))
        assert conflicts(m, Footprint.write("a"))
        assert conflicts(m, Footprint.read("b"))
        assert not m.is_readonly


# ---------------------------------------------------------------------------
# micro-programs: DPOR visits the same terminal states as naive
# ---------------------------------------------------------------------------

def _terminal_states(build, crash_plan_factory=None, max_steps=30,
                     reduction="naive"):
    """Explore and collect the set of distinct terminal states."""
    seen = set()

    def record(result):
        seen.add((frozenset(result.statuses.items()),
                  frozenset(result.decisions.items()),
                  result.deadlocked))

    stats = explore(build, record, crash_plan_factory=crash_plan_factory,
                    max_steps=max_steps, reduction=reduction)
    return seen, stats


def _build_independent_writers():
    """3 processes writing/reading disjoint cells: all steps commute."""
    arr = ObjectProxy("arr")

    def build():
        store = ObjectStore()
        store.add(RegisterArray("arr", 3))

        def prog(pid):
            yield arr.write(pid, pid * 10)
            mine = yield arr.read(pid)
            return mine

        return {i: prog(i) for i in range(3)}, store

    return build


def _build_racing_writers():
    """3 processes racing on one register: order matters."""
    reg = ObjectProxy("reg")

    def build():
        store = ObjectStore()
        store.add(AtomicRegister("reg", 0))

        def prog(pid):
            yield reg.write(pid)
            final = yield reg.read()
            return final

        return {i: prog(i) for i in range(3)}, store

    return build


def _build_crashy_race():
    """2 writers + a crash of p0: crash timing is part of the state."""
    reg = ObjectProxy("reg")

    def build():
        store = ObjectStore()
        store.add(AtomicRegister("reg", "init"))

        def prog(pid):
            yield reg.write(f"w{pid}")
            seen = yield reg.read()
            return seen

        return {i: prog(i) for i in range(2)}, store

    return build, (lambda: CrashPlan.at_own_step({0: 2}))


class TestDporMatchesNaive:
    def test_independent_writers_collapse_to_one_run(self):
        build = _build_independent_writers()
        naive_states, naive_stats = _terminal_states(build)
        dpor_states, dpor_stats = _terminal_states(build, reduction="dpor")
        assert dpor_states == naive_states
        assert len(dpor_states) == 1
        # Every interleaving is equivalent: one representative suffices.
        assert dpor_stats.complete_runs == 1
        assert dpor_stats.complete_runs < naive_stats.complete_runs
        assert dpor_stats.pruned_runs > 0

    def test_racing_writers_same_terminal_states(self):
        build = _build_racing_writers()
        naive_states, naive_stats = _terminal_states(build)
        dpor_states, dpor_stats = _terminal_states(build, reduction="dpor")
        assert dpor_states == naive_states
        # The race is real: more than one distinct outcome survives.
        assert len(dpor_states) > 1
        assert dpor_stats.complete_runs <= naive_stats.complete_runs

    def test_crash_plan_same_terminal_states(self):
        build, plan = _build_crashy_race()
        naive_states, _ = _terminal_states(build, crash_plan_factory=plan)
        dpor_states, _ = _terminal_states(build, crash_plan_factory=plan,
                                          reduction="dpor")
        assert dpor_states == naive_states

    def test_explore_rejects_unknown_reduction(self):
        build = _build_independent_writers()
        with pytest.raises(ValueError, match="unknown reduction"):
            explore(build, lambda r: None, reduction="magic")


# ---------------------------------------------------------------------------
# inclusive max_runs bound (the historical off-by-one)
# ---------------------------------------------------------------------------

class TestRunBudget:
    def _exact_run_count(self, build):
        stats = explore(build, lambda r: None, max_steps=30)
        return stats.total_runs

    def test_budget_equal_to_schedule_count_passes(self):
        build = _build_racing_writers()
        count = self._exact_run_count(build)
        stats = explore(build, lambda r: None, max_steps=30,
                        max_runs=count)
        assert stats.total_runs == count

    def test_budget_one_below_schedule_count_raises(self):
        build = _build_racing_writers()
        count = self._exact_run_count(build)
        with pytest.raises(RuntimeError, match="max_runs"):
            explore(build, lambda r: None, max_steps=30,
                    max_runs=count - 1)

    def test_dpor_budget_is_inclusive_too(self):
        build = _build_racing_writers()
        count = explore_dpor(build, lambda r: None,
                             max_steps=30).total_runs
        assert explore_dpor(build, lambda r: None, max_steps=30,
                            max_runs=count).total_runs == count
        with pytest.raises(RuntimeError, match="max_runs"):
            explore_dpor(build, lambda r: None, max_steps=30,
                         max_runs=count - 1)


# ---------------------------------------------------------------------------
# stats rendering
# ---------------------------------------------------------------------------

class TestStats:
    def test_reduction_ratio_without_pruning_is_one(self):
        stats = explore(_build_racing_writers(), lambda r: None,
                        max_steps=30)
        assert stats.pruned_runs == 0
        assert stats.reduction_ratio == 1.0
        assert "pruned" not in str(stats)

    def test_reduction_ratio_with_pruning(self):
        stats = explore_dpor(_build_independent_writers(),
                             lambda r: None, max_steps=30)
        assert 0.0 < stats.reduction_ratio < 1.0
        assert "pruned" in str(stats)


# ---------------------------------------------------------------------------
# counterexample shrinking
# ---------------------------------------------------------------------------

def _build_buggy_handoff():
    """p0 pads then writes a flag; p1 pads then reads it.

    The injected "bug": the check asserts p1 always observes the flag,
    which only holds when p1's read is scheduled after p0's write.
    """
    regs = ObjectProxy("regs")

    def build():
        store = ObjectStore()
        store.add(RegisterArray("regs", 8))

        def writer():
            yield regs.write(1, 0)
            yield regs.write(2, 0)
            yield regs.write(3, 0)
            yield regs.write(0, 1)
            return "done"

        def reader():
            yield regs.write(4, 0)
            yield regs.write(5, 0)
            yield regs.write(6, 0)
            flag = yield regs.read(0)
            return flag

        return {0: writer(), 1: reader()}, store

    return build


def _check_handoff(result):
    assert result.decisions.get(1) == 1, "reader missed the flag"


class TestShrinking:
    def test_explorer_raises_counterexample_found(self):
        with pytest.raises(CounterexampleFound) as info:
            explore_dpor(_build_buggy_handoff(), _check_handoff,
                         max_steps=12)
        ce = info.value.counterexample
        assert info.value.stats is not None
        # Shrunk, replayable, and no longer than the original schedule.
        assert len(ce.prefix) <= len(ce.original_schedule)
        assert len(ce.schedule) <= len(ce.original_schedule)
        assert ce.reproduces()

    def test_shrunk_prefix_is_locally_minimal(self):
        with pytest.raises(CounterexampleFound) as info:
            explore_dpor(_build_buggy_handoff(), _check_handoff,
                         max_steps=12)
        ce = info.value.counterexample
        # The minimal failure needs all four of p1's steps before p0's
        # flag write: prefix [1, 1, 1, 1], completed by p0.
        assert ce.prefix == [1, 1, 1, 1]
        result = replay_schedule(_build_buggy_handoff(), ce.schedule)
        with pytest.raises(AssertionError):
            _check_handoff(result)

    def test_shrink_schedule_direct(self):
        # A deliberately padded failing schedule: p1 runs first but with
        # p0 interleaved harmlessly in between.
        schedule = [0, 1, 0, 1, 0, 1, 1, 0]
        result = replay_schedule(_build_buggy_handoff(), schedule)
        with pytest.raises(AssertionError):
            _check_handoff(result)
        ce = shrink_schedule(_build_buggy_handoff(), _check_handoff,
                             schedule)
        assert len(ce.prefix) <= len(schedule)
        assert ce.prefix == [1, 1, 1, 1]
        assert ce.reproduces()
        assert "prefix" in ce.describe()

    def test_shrink_rejects_passing_schedule(self):
        # p0 completes first: the reader sees the flag, check passes.
        schedule = [0, 0, 0, 0, 1, 1, 1, 1]
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_schedule(_build_buggy_handoff(), _check_handoff,
                            schedule)

    def test_shrinking_can_be_disabled(self):
        with pytest.raises(CounterexampleFound) as info:
            explore_dpor(_build_buggy_handoff(), _check_handoff,
                         max_steps=12, shrink=False)
        ce = info.value.counterexample
        assert ce.prefix == ce.original_schedule
        assert ce.reproduces()
