"""Crash plans and crash points."""

import pytest

from repro.runtime import CrashPlan, CrashPoint, Invocation, op_on


class TestCrashPoint:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError):
            CrashPoint()
        with pytest.raises(ValueError):
            CrashPoint(own_step=1, before_matching=lambda inv: True)

    def test_own_step_is_one_based(self):
        with pytest.raises(ValueError):
            CrashPoint(own_step=0)
        point = CrashPoint(own_step=1)
        assert point.should_crash(0, Invocation("m", "w", ()))

    def test_own_step_boundary(self):
        point = CrashPoint(own_step=3)
        assert not point.should_crash(0, None)
        assert not point.should_crash(1, None)
        assert point.should_crash(2, None)

    def test_predicate_occurrence(self):
        point = CrashPoint(before_matching=op_on("mem", "write"),
                           occurrence=2)
        w = Invocation("mem", "write", (0, 1))
        s = Invocation("mem", "snapshot", ())
        assert not point.should_crash(0, w)   # first match
        assert not point.should_crash(1, s)   # non-match
        assert point.should_crash(2, w)       # second match

    def test_occurrence_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashPoint(before_matching=lambda inv: True, occurrence=0)


class TestCrashPlan:
    def test_none_plan_is_empty(self):
        assert len(CrashPlan.none()) == 0
        assert not CrashPlan.none().should_crash(0, 0, None)

    def test_initially_dead(self):
        plan = CrashPlan.initially_dead([1, 3])
        assert plan.victims == {1, 3}
        assert plan.should_crash(1, 0, None)
        assert not plan.should_crash(0, 0, None)

    def test_merge_disjoint(self):
        merged = CrashPlan.initially_dead([0]).merge(
            CrashPlan.initially_dead([1]))
        assert merged.victims == {0, 1}

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            CrashPlan.initially_dead([0]).merge(
                CrashPlan.initially_dead([0]))

    def test_add_duplicate_raises(self):
        plan = CrashPlan.initially_dead([0])
        with pytest.raises(ValueError):
            plan.add(0, CrashPoint(own_step=2))

    def test_op_on_predicate(self):
        pred = op_on("mem")
        assert pred(Invocation("mem", "write", ()))
        assert pred(Invocation("mem", "snapshot", ()))
        assert not pred(Invocation("other", "write", ()))
        pred2 = op_on("mem", "write")
        assert not pred2(Invocation("mem", "snapshot", ()))


class TestPlanReuse:
    def test_reset_rearms_occurrence_counters(self):
        # Regression: a predicate crash point keeps a per-run match
        # counter; reset() (called by the scheduler at run start) must
        # re-arm it so one plan object can back any number of runs.
        point = CrashPoint(before_matching=op_on("mem", "write"),
                           occurrence=2)
        plan = CrashPlan({0: point})
        w = Invocation("mem", "write", (0, 1))
        for _ in range(2):
            plan.reset()
            assert not plan.should_crash(0, 0, w)
            assert plan.should_crash(0, 1, w)
