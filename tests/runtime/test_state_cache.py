"""Differential lockdown of the DPOR state cache.

The cache (``docs/performance.md``) folds subtrees rooted at
already-expanded states instead of re-executing them; a buggy
fingerprint would *silently drop counterexamples*.  This tier pins the
only acceptable behaviour: cache-on and cache-off produce the same
deterministic outcome -- same verdict, same
``ExplorationStats.deterministic_view``, same ddmin-shrunk
counterexample -- on every registry scenario and on a seeded slice of
the generative sweep.  The final test proves the harness has teeth: an
intentionally-colliding fingerprint stub makes the differential fail
(and, on ``broken-demo``, makes the cache miss a real violation).
"""

import pytest

from repro.generative.generator import generate_config
from repro.runtime import CounterexampleFound, Fingerprinter
from repro.runtime.dpor import explore_dpor
from repro.scenarios import build_scenario, check_scenarios

pytestmark = pytest.mark.cache

#: The seeded generative slice: explorable configurations drawn from
#: this seed, scanning tape indices in order until the slice is full.
GENERATIVE_SEED = 17
GENERATIVE_SLICE = 100

SCENARIOS = check_scenarios(n=3)


def _outcome(sc, state_cache, fingerprinter=None):
    """The deterministic observable outcome of one exploration.

    Verdict, ``deterministic_view``, the exact run counts, and (for a
    violation) the ddmin-shrunk counterexample.  Run counts are
    compared too: the cache's no-op-plant hit rule makes reuse exact,
    not merely sound, so even ``total_runs`` must agree bit-for-bit.
    """
    try:
        stats = explore_dpor(sc.build, sc.check,
                             crash_plan_factory=sc.crash_plan_factory,
                             max_steps=sc.max_steps,
                             max_runs=sc.max_runs,
                             state_cache=state_cache,
                             fingerprinter=fingerprinter)
    except CounterexampleFound as exc:
        cex = exc.counterexample
        stats = exc.stats
        return ("violation",
                stats.deterministic_view() if stats is not None else None,
                (list(cex.prefix), list(cex.tail), list(cex.schedule)))
    return ("passed", stats.deterministic_view(),
            (stats.total_runs, stats.complete_runs, stats.truncated_runs,
             stats.pruned_runs, stats.max_depth_seen))


class TestRegistryDifferential:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_cache_is_outcome_invisible(self, name):
        sc = SCENARIOS[name]
        assert _outcome(sc, state_cache=True) \
            == _outcome(sc, state_cache=False)

    def test_expected_verdicts_unchanged(self):
        # The differential alone would pass if *both* modes broke the
        # same way; pin the absolute verdicts as well.
        for name, sc in SCENARIOS.items():
            verdict = _outcome(sc, state_cache=True)[0]
            expected = "violation" if sc.expect_violation else "passed"
            assert verdict == expected, name

    def test_identical_ddmin_counterexample(self):
        sc = SCENARIOS["broken-demo"]
        on = _outcome(sc, state_cache=True)
        off = _outcome(sc, state_cache=False)
        assert on[0] == off[0] == "violation"
        # The shrunk prefix/tail and the original schedule all agree.
        assert on[2] == off[2]


class TestGenerativeSliceDifferential:
    def test_seeded_slice_agrees(self):
        compared = 0
        index = 0
        while compared < GENERATIVE_SLICE:
            config = generate_config(GENERATIVE_SEED, index)
            name = f"generated:{GENERATIVE_SEED}:{index}"
            index += 1
            if not config.explorable:
                continue
            sc = build_scenario(name)
            assert _outcome(sc, state_cache=True) \
                == _outcome(sc, state_cache=False), name
            compared += 1
        assert compared == GENERATIVE_SLICE


class _CollidingFingerprinter(Fingerprinter):
    """Maximally unsound stub: every state shares one fingerprint."""

    def fingerprint(self, system):
        return ("collide-everything",)


class TestHarnessCatchesUnsoundCaching:
    def test_colliding_stub_diverges(self):
        # The differential harness must flag a fingerprint that merges
        # distinct states; if this stub ever agrees with cache-off, the
        # tier has lost its teeth.
        sc = SCENARIOS["safe-agreement"]
        stub = _outcome(sc, state_cache=True,
                        fingerprinter=_CollidingFingerprinter())
        assert stub != _outcome(sc, state_cache=False)

    def test_colliding_stub_drops_a_real_counterexample(self):
        # The concrete catastrophe the tier guards against: with every
        # state merged, broken-demo's genuine violation is skipped as
        # "already expanded" and the sweep reports a pass.
        sc = SCENARIOS["broken-demo"]
        stub = _outcome(sc, state_cache=True,
                        fingerprinter=_CollidingFingerprinter())
        off = _outcome(sc, state_cache=False)
        assert off[0] == "violation"
        assert stub[0] == "passed"
