"""Adversary strategies: fairness, reproducibility, targeting."""

import pytest

from repro.runtime import (PriorityAdversary, RoundRobinAdversary,
                           ScriptedAdversary, SeededRandomAdversary)


class TestRoundRobin:
    def test_cycles_in_order(self):
        adv = RoundRobinAdversary()
        picks = [adv.pick([0, 1, 2], i) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_disabled(self):
        adv = RoundRobinAdversary()
        assert adv.pick([0, 1, 2], 0) == 0
        assert adv.pick([0, 2], 1) == 2  # 1 disabled, wrap past it
        assert adv.pick([0, 2], 2) == 0

    def test_reset(self):
        adv = RoundRobinAdversary()
        adv.pick([0, 1], 0)
        adv.reset()
        assert adv.pick([0, 1], 0) == 0

    def test_fairness_window(self):
        adv = RoundRobinAdversary()
        enabled = [0, 1, 2, 3]
        picks = [adv.pick(enabled, i) for i in range(8)]
        # every process scheduled within any window of len(enabled).
        for start in range(4):
            assert set(picks[start:start + 4]) == set(enabled)


class TestSeededRandom:
    def test_reproducible(self):
        a, b = SeededRandomAdversary(5), SeededRandomAdversary(5)
        enabled = list(range(4))
        assert [a.pick(enabled, i) for i in range(50)] == \
            [b.pick(enabled, i) for i in range(50)]

    def test_reset_replays(self):
        adv = SeededRandomAdversary(5)
        first = [adv.pick([0, 1, 2], i) for i in range(20)]
        adv.reset()
        assert [adv.pick([0, 1, 2], i) for i in range(20)] == first

    def test_different_seeds_differ(self):
        enabled = list(range(5))
        seq = {seed: tuple(SeededRandomAdversary(seed).pick(enabled, i)
                           for i in range(30))
               for seed in (1, 2)}
        assert seq[1] != seq[2]

    def test_only_enabled_picked(self):
        adv = SeededRandomAdversary(9)
        for i in range(100):
            assert adv.pick([3, 7], i) in (3, 7)


class TestPriority:
    def test_prefers_listed(self):
        adv = PriorityAdversary([2, 0])
        assert adv.pick([0, 1, 2], 0) == 2
        assert adv.pick([0, 1], 1) == 0
        assert adv.pick([1], 2) == 1  # falls back

    def test_fallback_round_robin(self):
        adv = PriorityAdversary([])
        assert [adv.pick([0, 1], i) for i in range(4)] == [0, 1, 0, 1]


class TestScripted:
    def test_replays_script(self):
        adv = ScriptedAdversary([1, 1, 0])
        assert [adv.pick([0, 1], i) for i in range(3)] == [1, 1, 0]

    def test_skips_disabled_script_entries(self):
        adv = ScriptedAdversary([1, 0])
        assert adv.pick([0], 0) == 0  # 1 not enabled: skip to 0

    def test_falls_back_after_script(self):
        adv = ScriptedAdversary([1])
        adv.pick([0, 1], 0)
        assert adv.pick([0, 1], 1) in (0, 1)


class TestReprs:
    def test_round_robin_repr(self):
        assert repr(RoundRobinAdversary()) == "RoundRobinAdversary()"

    def test_seeded_repr_round_trips(self):
        # Audit reports record adversaries by repr; a failing seeded run
        # is only reproducible if eval(repr) rebuilds the same RNG.
        adv = SeededRandomAdversary(seed=5)
        assert repr(adv) == "SeededRandomAdversary(seed=5)"
        clone = eval(repr(adv),
                     {"SeededRandomAdversary": SeededRandomAdversary})
        picks = [adv.pick([0, 1, 2], i) for i in range(16)]
        assert [clone.pick([0, 1, 2], i) for i in range(16)] == picks
