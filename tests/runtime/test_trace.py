"""Event traces: recording, querying, rendering."""

from repro.memory import ObjectStore, SnapshotObject
from repro.runtime import (CrashPlan, EventKind, ObjectProxy, Trace,
                           run_processes)

MEM = ObjectProxy("mem")


def simple_run(record_trace=True):
    def prog(pid):
        yield MEM.write(pid, pid)
        snap = yield MEM.snapshot()
        return snap[pid]

    store = ObjectStore()
    store.add(SnapshotObject("mem", 2))
    return run_processes({0: prog(0), 1: prog(1)}, store,
                         crash_plan=CrashPlan.initially_dead([1]),
                         record_trace=record_trace)


class TestTrace:
    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(EventKind.STEP, 0)
        assert len(trace) == 0

    def test_run_without_trace_has_none(self):
        assert simple_run(record_trace=False).trace is None

    def test_events_in_order_with_indices(self):
        res = simple_run()
        indices = [e.index for e in res.trace]
        assert indices == sorted(indices)

    def test_queries(self):
        res = simple_run()
        trace = res.trace
        assert len(trace.crashes()) == 1
        assert trace.crashes()[0].pid == 1
        assert len(trace.decisions()) == 1
        assert all(e.pid == 0 for e in trace.by_pid(0))
        assert all(e.invocation.obj == "mem"
                   for e in trace.on_object("mem"))
        assert len(trace.steps()) == 2  # p0's write + snapshot

    def test_render_truncates(self):
        res = simple_run()
        out = res.trace.render(limit=1)
        assert "more events" in out

    def test_reprs_cover_kinds(self):
        res = simple_run()
        text = res.trace.render()
        assert "decides" in text
        assert "crash" in text
