"""The multiprocess exploration backend: pool, sharding, recovery.

Fast correctness tests for :mod:`repro.runtime.parallel` -- the heavier
cross-scenario serial-vs-parallel comparisons live in
``tests/properties/test_parallel_differential.py`` (``parallel`` tier).
"""

import os

import pytest

from repro.runtime import CounterexampleFound, explore, explore_dpor
from repro.runtime.parallel import (explore_parallel, fork_available,
                                    resolve_jobs, run_pool)
from repro.scenarios import ScenarioRef, build_scenario, check_scenarios


def _square(x):
    return x * x


def _sleep_then_square(x):
    from time import sleep
    sleep(x)
    return 0


class TestResolveJobs:
    def test_none_means_one(self):
        assert resolve_jobs(None) == 1

    def test_auto_is_cpu_count(self):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)

    def test_ints_and_int_strings(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs("4") == 4
        assert resolve_jobs(1) == 1

    @pytest.mark.parametrize("bad", [0, -3, "0", "banana", 2.5, True])
    def test_rejects_non_positive_and_garbage(self, bad):
        with pytest.raises(ValueError, match="positive integer or 'auto'"):
            resolve_jobs(bad)


class TestRunPool:
    def test_results_in_payload_order(self):
        outcomes = run_pool(list(range(10)), _square, jobs=3)
        assert outcomes == [(i * i, None) for i in range(10)]

    def test_serial_degradation_paths(self):
        # jobs=1 and single-payload both stay in-process.
        assert run_pool([3, 4], _square, jobs=1) == [(9, None), (16, None)]
        assert run_pool([5], _square, jobs=8) == [(25, None)]
        assert run_pool([], _square, jobs=4) == []

    def test_task_exception_becomes_error_outcome(self):
        def boom(x):
            if x == 2:
                raise ValueError("bad payload")
            return x

        outcomes = run_pool([1, 2, 3], boom, jobs=2)
        assert outcomes[0] == (1, None)
        assert outcomes[1] == (None, "ValueError: bad payload")
        assert outcomes[2] == (3, None)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_sigkilled_worker_task_is_recovered(self):
        # The fault plan SIGKILLs whichever worker picks up payload 2;
        # the coordinator must re-run that task in-process and still
        # return every outcome in order.
        outcomes = run_pool([1, 2, 3, 4], _square, jobs=2,
                            fault_plan={2: "sigkill"})
        assert outcomes == [(1, None), (4, None), (9, None), (16, None)]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_reexecution_failure_surfaces_as_error(self):
        # 'sigkill,raise': the worker dies AND the in-process re-run
        # fails, so the outcome must be an error, not a hang or a lie.
        outcomes = run_pool([1, 2], _square, jobs=2,
                            fault_plan={0: "sigkill,raise"})
        assert outcomes[0] == (None, "RuntimeError: injected shard fault")
        assert outcomes[1] == (4, None)


class TestScenarioRef:
    def test_ref_resolves_to_registry_scenario(self):
        ref = ScenarioRef("safe-agreement", n=2)
        sc = ref.resolve()
        assert sc.name == "safe-agreement"
        stats = explore(sc.build, sc.check, max_steps=sc.max_steps,
                        reduction="dpor")
        assert stats.complete_runs > 0

    def test_ref_is_picklable(self):
        import pickle
        ref = ScenarioRef("x-safe-agreement", n=3, x=2)
        assert pickle.loads(pickle.dumps(ref)) == ref

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("no-such-scenario")


class TestExploreParallel:
    def test_jobs_one_equals_jobs_two_dpor(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        s1 = explore(sc.build, sc.check, max_steps=sc.max_steps,
                     reduction="dpor", jobs=1)
        s2 = explore(sc.build, sc.check, max_steps=sc.max_steps,
                     reduction="dpor", jobs=2)
        assert s1 == s2
        assert s1.complete_runs > 0 and s1.truncated_runs == 0

    def test_sharded_naive_matches_classic_naive_exactly(self):
        # Naive sharding partitions the schedule tree exactly, so even
        # the classic (jobs=None) engine must agree run for run.
        sc = check_scenarios(n=2)["safe-agreement"]
        classic = explore(sc.build, sc.check, max_steps=sc.max_steps,
                          reduction="naive")
        sharded = explore(sc.build, sc.check, max_steps=sc.max_steps,
                          reduction="naive", jobs=2)
        assert (classic.complete_runs, classic.truncated_runs) == \
            (sharded.complete_runs, sharded.truncated_runs)

    def test_explore_dpor_jobs_kwarg_routes_to_parallel(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        via_dpor = explore_dpor(sc.build, sc.check,
                                max_steps=sc.max_steps, jobs=2)
        via_explore = explore(sc.build, sc.check, max_steps=sc.max_steps,
                              reduction="dpor", jobs=2)
        assert via_dpor == via_explore

    def test_scenario_ref_entry_point(self):
        stats = explore_parallel(jobs=2, max_steps=12,
                                 scenario=ScenarioRef("queue-2cons"))
        assert stats.complete_runs == 2

    def test_counterexample_identical_across_job_counts(self):
        sc = check_scenarios()["broken-demo"]
        found = []
        for jobs in (1, 2):
            with pytest.raises(CounterexampleFound) as excinfo:
                explore(sc.build, sc.check, max_steps=sc.max_steps,
                        reduction="dpor", jobs=jobs)
            found.append(excinfo.value)
        assert found[0].counterexample.prefix == \
            found[1].counterexample.prefix
        assert found[0].counterexample.schedule == \
            found[1].counterexample.schedule
        assert found[0].stats == found[1].stats
        assert found[0].counterexample.reproduces()

    def test_budget_error_is_deterministic(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        messages = []
        for jobs in (1, 2):
            with pytest.raises(RuntimeError, match="max_runs") as excinfo:
                explore(sc.build, sc.check, max_steps=sc.max_steps,
                        max_runs=2, reduction="dpor", jobs=jobs)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_unknown_reduction_rejected(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        with pytest.raises(ValueError, match="unknown reduction"):
            explore_parallel(sc.build, sc.check, jobs=2,
                             reduction="magic")
        with pytest.raises(ValueError, match="explore_parallel needs"):
            explore_parallel(jobs=2)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestWorkerFailureRecovery:
    """Satellite: SIGKILL a pool worker mid-exploration.

    adopt-commit at n=3 is the smallest registry scenario whose schedule
    tree outgrows the frontier target, so real shards reach real workers
    (2-process scenarios fit inside the frontier and would test nothing).
    """

    def test_killed_worker_stats_match_serial(self):
        sc = check_scenarios(n=3)["adopt-commit"]
        serial = explore_parallel(sc.build, sc.check,
                                  max_steps=sc.max_steps, jobs=1)
        killed = explore_parallel(sc.build, sc.check,
                                  max_steps=sc.max_steps, jobs=2,
                                  fault_plan={0: "sigkill"})
        assert killed == serial

    def test_reexecution_failure_raises_runtime_error(self):
        # 'sigkill,raise' fails the orphaned shard's in-process re-run
        # too: the coordinator must raise RuntimeError (the CLI maps it
        # to exit code 2), never return partial statistics.
        sc = check_scenarios(n=3)["adopt-commit"]
        with pytest.raises(RuntimeError,
                           match="parallel exploration failed on shard"):
            explore_parallel(sc.build, sc.check, max_steps=sc.max_steps,
                             jobs=2, fault_plan={0: "sigkill,raise"})


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestWedgedWorkerTeardown:
    """Bugfix regression: teardown of a worker that stops responding.

    ``fault_plan={-1: "sigstop"}`` makes each worker SIGSTOP itself on
    receipt of the shutdown sentinel -- the moment the old teardown
    relied on SIGTERM alone.  A stopped process leaves SIGTERM pending
    forever, so the coordinator must escalate to SIGKILL and then
    *reap* the corpse with a final blocking join; skipping that join is
    exactly the zombie leak this class pins down.  ``_JOIN_TIMEOUT`` is
    shrunk so the escalation path runs in milliseconds.
    """

    @pytest.fixture(autouse=True)
    def fast_escalation(self, monkeypatch):
        import repro.runtime.parallel as par
        monkeypatch.setattr(par, "_JOIN_TIMEOUT", 0.2)

    @staticmethod
    def _leaked_children():
        """(pid, state) for every child of this process that is a
        zombie ('Z', dead but unreaped) or stopped ('T', wedged)."""
        me = str(os.getpid())
        leaked = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/stat") as handle:
                    # Field 2 (comm) may contain spaces; split after it.
                    fields = handle.read().rsplit(")", 1)[1].split()
            except OSError:
                continue  # raced with process exit
            state, ppid = fields[0], fields[1]
            if ppid == me and state in ("Z", "T"):
                leaked.append((int(entry), state))
        return leaked

    def test_run_pool_reaps_wedged_workers(self):
        import multiprocessing

        outcomes = run_pool(list(range(8)), _square, jobs=2,
                            fault_plan={-1: "sigstop"})
        assert outcomes == [(i * i, None) for i in range(8)]
        assert self._leaked_children() == []
        assert multiprocessing.active_children() == []

    def test_explore_parallel_reaps_wedged_workers(self):
        sc = check_scenarios(n=3)["adopt-commit"]
        serial = explore_parallel(sc.build, sc.check,
                                  max_steps=sc.max_steps, jobs=1)
        wedged = explore_parallel(sc.build, sc.check,
                                  max_steps=sc.max_steps, jobs=2,
                                  fault_plan={-1: "sigstop"})
        assert wedged == serial
        assert self._leaked_children() == []


class TestRetryLadder:
    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_flaky_task_survives_multi_attempt_recovery(self, monkeypatch):
        # 'flaky' fails in the worker AND on the first in-process retry,
        # succeeding only from the second retry on: a single
        # re-execution would surface an error, the capped-backoff
        # ladder must not.  Backoff is zeroed so the test stays fast.
        from repro.runtime import parallel
        monkeypatch.setattr(parallel, "_RETRY_BACKOFF_BASE", 0.0)
        outcomes = run_pool([1, 2], _square, jobs=2,
                            fault_plan={0: "flaky"})
        assert outcomes == [(1, None), (4, None)]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_backoff_is_clamped_to_remaining_deadline(self, monkeypatch):
        # Bugfix regression: the ladder used to sleep the full computed
        # backoff even when the wall-clock budget had almost none of it
        # left.  With a 30s base and ~1.5s of budget, a clamped retry
        # finishes in seconds; the old code slept straight through the
        # deadline.
        from time import monotonic

        from repro.runtime import parallel
        monkeypatch.setattr(parallel, "_RETRY_BACKOFF_BASE", 30.0)
        start = monotonic()
        outcomes = run_pool([1, 2], _square, jobs=2,
                            fault_plan={0: "flaky"},
                            deadline=start + 1.5)
        assert outcomes == [(1, None), (4, None)]
        assert monotonic() - start < 10.0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_exhausted_deadline_raises_timeout_not_oversleep(
            self, monkeypatch):
        # A ladder that reaches the deadline must surface the budget
        # interrupt immediately -- never start another multi-second
        # backoff first.
        from time import monotonic

        from repro.runtime import parallel
        from repro.runtime.explore import ExplorationInterrupted
        monkeypatch.setattr(parallel, "_RETRY_BACKOFF_BASE", 30.0)
        start = monotonic()
        with pytest.raises(ExplorationInterrupted) as excinfo:
            run_pool([1, 2], _square, jobs=2,
                     fault_plan={0: "flaky"},
                     deadline=start - 1.0)
        assert excinfo.value.reason == "timeout"
        assert "retrying task 0" in str(excinfo.value)
        assert monotonic() - start < 10.0


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestLeaseRecovery:
    """A wedged worker's lease lapses and its task is re-granted.

    ``fault_plan={0: "sigstop"}`` makes the worker SIGSTOP itself on
    receipt of task 0, *before* its first heartbeat: no EOF ever
    arrives (the process is alive), so only lease expiry can free the
    task.  Timeouts are shrunk so expiry happens in milliseconds.
    """

    @pytest.fixture(autouse=True)
    def fast_leases(self, monkeypatch):
        from repro.runtime import parallel
        monkeypatch.setattr(parallel, "_LEASE_TIMEOUT", 0.5)
        monkeypatch.setattr(parallel, "_HEARTBEAT_INTERVAL", 0.1)
        monkeypatch.setattr(parallel, "_JOIN_TIMEOUT", 0.2)

    def test_stopped_worker_task_is_regranted_to_a_live_one(self):
        grants = []
        task_log = []
        outcomes = run_pool([1, 2, 3], _square, jobs=2,
                            fault_plan={0: "sigstop"},
                            task_log=task_log,
                            on_grant=lambda idx, wid: grants.append(
                                (idx, wid)))
        assert outcomes == [(1, None), (4, None), (9, None)]
        # Task 0 was granted at least twice: once to the worker that
        # wedged, then again after its lease lapsed.
        assert len([g for g in grants if g[0] == 0]) >= 2
        # The result for task 0 came from an executed task, not the
        # stopped holder (which never reports).
        executed = [entry for entry in task_log if entry["index"] == 0]
        assert len(executed) == 1

    def test_heartbeats_keep_a_slow_task_leased(self):
        # A healthy-but-slow task must NOT be re-granted: its worker's
        # heartbeats renew the lease well past the raw timeout.
        task_log = []
        outcomes = run_pool([0.9, 0.0], _sleep_then_square, jobs=2,
                            task_log=task_log)
        assert outcomes == [(0, None), (0, None)]
        assert len(task_log) == 2  # every task executed exactly once
