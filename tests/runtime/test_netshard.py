"""Protocol-core unit tests for the multi-machine shard service.

These drive :class:`~repro.runtime.netshard.ShardServer`'s transport-free
protocol core (``begin`` / ``handle_message`` / ``tick`` /
``run_one_inprocess``) directly with explicit ``now`` values -- no
sockets, no sleeping -- plus the deterministic backoff schedule and the
ISSUE 10 satellite pinning every timing path to ``time.monotonic``.
The live-socket behaviour is covered by the ``network`` differential
tier in ``tests/properties/test_network_differential.py``.
"""

import pytest

from repro.runtime import lease as lease_mod
from repro.runtime.explore import ExplorationStats
from repro.runtime.frontier import stats_to_dict
from repro.runtime.lease import LeaseTable
from repro.runtime.netshard import (CONNECT_BACKOFF_CAP, ShardServer,
                                    ShardWorker, backoff_delay)

#: Tiny synthetic shard table: (prefix, sleep-set) pairs as the frontier
#: produces them.  The runner is a stand-in for execute_shard.
PAYLOADS = [((0,), frozenset()), ((1,), frozenset({0})),
            ((2,), frozenset({0, 1}))]


def _runner(payload):
    prefix, _sleep = payload
    return (ExplorationStats(complete_runs=1 + prefix[0]), {})


def _server(**kwargs):
    server = ShardServer(config={"scenario": "adopt-commit"}, **kwargs)
    server.begin(PAYLOADS, _runner)
    return server


def _stats_body(shard, worker_id, runs=5):
    return {"type": "complete", "worker_id": worker_id, "shard": shard,
            "stats": stats_to_dict(ExplorationStats(complete_runs=runs)),
            "counters": {"states_cached": 1}}


class TestHello:
    def test_hello_assigns_worker_id_and_ships_config(self):
        server = _server()
        reply = server.handle_message({"type": "hello", "worker": "w0"},
                                      now=0.0)
        assert reply["type"] == "welcome"
        assert reply["config"] == {"scenario": "adopt-commit"}
        assert isinstance(reply["worker_id"], int)

    def test_rehello_keeps_worker_id(self):
        """Reconnecting under the same name must preserve identity --
        that is what lets live leases survive a connection blip."""
        server = _server()
        first = server.handle_message({"type": "hello", "worker": "w0"},
                                      now=0.0)
        again = server.handle_message({"type": "hello", "worker": "w0"},
                                      now=1.0)
        assert again["worker_id"] == first["worker_id"]
        assert server.tallies["reconnects"] == 1
        assert server.tallies["connections"] == 1

    def test_distinct_names_get_distinct_ids(self):
        server = _server()
        a = server.handle_message({"type": "hello", "worker": "a"}, now=0.0)
        b = server.handle_message({"type": "hello", "worker": "b"}, now=0.0)
        assert a["worker_id"] != b["worker_id"]

    def test_hello_without_name_is_an_error(self):
        server = _server()
        assert server.handle_message({"type": "hello"},
                                     now=0.0)["type"] == "error"

    def test_unknown_worker_id_is_an_error(self):
        server = _server()
        reply = server.handle_message({"type": "request", "worker_id": 99},
                                      now=0.0)
        assert reply["type"] == "error"

    def test_unknown_frame_type_is_an_error_not_a_crash(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        reply = server.handle_message({"type": "steal", "worker_id": wid},
                                      now=0.0)
        assert reply["type"] == "error"


class TestGrantAndComplete:
    def test_grant_carries_prefix_and_sorted_sleep(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        assert grant["type"] == "grant"
        assert grant["shard"] == 0
        assert grant["prefix"] == [0]
        assert grant["sleep"] == []

    def test_request_is_idempotent_while_lease_lives(self):
        """A worker whose grant reply was lost re-requests and gets the
        same shard back instead of leaking a second lease."""
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        g1 = server.handle_message({"type": "request", "worker_id": wid},
                                   now=0.0)
        g2 = server.handle_message({"type": "request", "worker_id": wid},
                                   now=1.0)
        assert g2 == g1

    def test_completion_from_holder_is_accepted(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        reply = server.handle_message(_stats_body(grant["shard"], wid),
                                      now=1.0)
        assert reply == {"type": "ok", "accepted": True}
        assert server.outcomes[grant["shard"]] is not None
        assert server.tallies["remote_shards"] == 1

    def test_duplicate_completion_is_rejected(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        server.handle_message(_stats_body(grant["shard"], wid), now=1.0)
        dup = server.handle_message(_stats_body(grant["shard"], wid, 999),
                                    now=2.0)
        assert dup == {"type": "ok", "accepted": False}
        # First result stands: 5 complete runs, not the replayed 999.
        (stats, _counters), _err = server.outcomes[grant["shard"]]
        assert stats.complete_runs == 5

    def test_stale_completion_after_expiry_is_rejected(self):
        """The lease lapsed and the shard moved on: the former holder's
        result -- possibly replayed from a previous incarnation of the
        run -- must not be applied (the planted-mutant discipline)."""
        server = _server(lease_timeout=10.0)
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        server.tick(now=100.0)  # expire the lease
        reply = server.handle_message(_stats_body(grant["shard"], wid, 999),
                                      now=100.0)
        assert reply == {"type": "ok", "accepted": False}
        assert server.outcomes[grant["shard"]] is None
        assert server.tallies["stale_rejections"] == 1

    def test_heartbeat_renews_only_for_the_holder(self):
        server = _server(lease_timeout=10.0)
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        other = server.handle_message({"type": "hello", "worker": "o"},
                                      now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        ok = server.handle_message(
            {"type": "heartbeat", "worker_id": wid,
             "shard": grant["shard"]}, now=5.0)
        stale = server.handle_message(
            {"type": "heartbeat", "worker_id": other,
             "shard": grant["shard"]}, now=5.0)
        assert ok == {"type": "ok", "renewed": True}
        assert stale == {"type": "ok", "renewed": False}

    def test_worker_reported_error_routes_to_inprocess_fallback(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        reply = server.handle_message(
            {"type": "complete", "worker_id": wid, "shard": grant["shard"],
             "error": "MemoryError: worker box too small"}, now=1.0)
        assert reply == {"type": "ok", "accepted": False}
        # The coordinator re-runs it itself and the real outcome lands.
        assert server.run_one_inprocess()
        assert server.outcomes[grant["shard"]] is not None
        assert server.tallies["inprocess_shards"] == 1

    def test_bad_shard_index_is_an_error(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        assert server.handle_message(_stats_body(17, wid),
                                     now=0.0)["type"] == "error"


class TestRegrantLadder:
    def test_expired_lease_is_regranted(self):
        server = _server(lease_timeout=10.0)
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        grant = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        server.tick(now=100.0)
        regrant = server.handle_message(
            {"type": "request", "worker_id": wid}, now=100.0)
        # The lapsed shard comes back at the head of the queue.
        assert regrant["shard"] == grant["shard"]
        assert server.tallies["regrants"] == 1

    def test_regrant_budget_exhaustion_goes_inprocess_only(self):
        """After regrant_max lapses the shard is the coordinator's
        alone -- the fork pool's _REGRANT_MAX ladder, verbatim."""
        server = _server(lease_timeout=10.0, regrant_max=2)
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        now = 0.0
        for _ in range(3):  # grant, lapse; regrants 1, 2, 3 > max
            grant = server.handle_message(
                {"type": "request", "worker_id": wid}, now=now)
            assert grant["shard"] == 0
            now += 100.0
            server.tick(now=now)
        # Shard 0 is no longer grantable remotely...
        next_grant = server.handle_message(
            {"type": "request", "worker_id": wid}, now=now)
        assert next_grant["shard"] != 0
        # ...but the coordinator still runs it: throughput lost, never
        # coverage.
        assert server.run_one_inprocess()
        assert server.outcomes[0] is not None

    def test_run_to_completion_inprocess(self):
        server = _server()
        while server.run_one_inprocess():
            pass
        assert server.done
        assert all(err is None for _value, err in server.outcomes)
        assert server.tallies["inprocess_shards"] == len(PAYLOADS)

    def test_done_reply_once_everything_settled(self):
        server = _server()
        wid = server.handle_message({"type": "hello", "worker": "w"},
                                    now=0.0)["worker_id"]
        while server.run_one_inprocess():
            pass
        reply = server.handle_message({"type": "request", "worker_id": wid},
                                      now=0.0)
        assert reply == {"type": "done"}


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay("w", 3) == backoff_delay("w", 3)

    def test_distinct_keys_desynchronize(self):
        assert backoff_delay("worker-a", 2) != backoff_delay("worker-b", 2)

    def test_exponential_up_to_cap(self):
        base = 0.05
        for attempt in range(12):
            delay = backoff_delay("w", attempt, base, CONNECT_BACKOFF_CAP)
            raw = min(base * 2 ** attempt, CONNECT_BACKOFF_CAP)
            assert raw * 0.5 <= delay < raw

    def test_cap_holds_forever(self):
        assert backoff_delay("w", 10_000) < CONNECT_BACKOFF_CAP


class TestMonotonicClockPin:
    """ISSUE 10 satellite: no timing path may read the wall clock.

    Wall time (``time.time``) can step backwards under NTP; a lease or
    backoff schedule driven by it would mis-expire.  These tests
    monkeypatch the clock sources and pin that only ``time.monotonic``
    matters.
    """

    def test_wall_clock_jump_does_not_expire_leases(self, monkeypatch):
        """A 1000-second wall-clock step must be invisible to leases."""
        import time
        monkeypatch.setattr(time, "time", lambda: 2_000_000_000.0)
        table = LeaseTable(timeout=10.0)
        table.grant(0, worker=1)
        assert table.expired() == []  # real monotonic barely advanced
        assert table.holder(0) == 1

    def test_lease_expiry_is_driven_by_monotonic(self, monkeypatch):
        """Advancing the patched monotonic source alone expires leases."""
        fake = [100.0]
        monkeypatch.setattr(lease_mod, "monotonic", lambda: fake[0])
        table = LeaseTable(timeout=10.0)
        table.grant(0, worker=1)
        assert table.expired() == []
        fake[0] += 10.0
        assert [lease.shard for lease in table.expired()] == [0]
        # A renewal (heartbeat) under the fake clock pushes expiry out.
        assert table.renew(0, worker=1)
        fake[0] += 9.0
        assert table.expired() == []

    def test_backoff_delay_reads_no_clock(self, monkeypatch):
        """The backoff schedule is a pure function of (key, attempt)."""
        import time
        before = backoff_delay("w", 4)
        monkeypatch.setattr(time, "time", lambda: 0.0)
        monkeypatch.setattr(time, "monotonic", lambda: 123456.0)
        assert backoff_delay("w", 4) == before

    def test_server_protocol_clock_is_injectable_monotonic(self,
                                                           monkeypatch):
        """handle_message/tick default their ``now`` to monotonic, not
        wall time: patch both and watch which one matters."""
        from repro.runtime import netshard as netshard_mod
        import time
        fake = [500.0]
        monkeypatch.setattr(netshard_mod, "monotonic", lambda: fake[0])
        monkeypatch.setattr(time, "time", lambda: 9e9)  # wild wall clock
        server = _server(lease_timeout=10.0)
        wid = server.handle_message({"type": "hello", "worker": "w"})
        grant = server.handle_message({"type": "request",
                                       "worker_id": wid["worker_id"]})
        server.tick()  # wall clock says eons passed; monotonic says 0s
        assert server.tallies["regrants"] == 0
        fake[0] += 100.0
        server.tick()
        assert server.tallies["regrants"] == 1
        assert grant["type"] == "grant"

    def test_worker_sleep_is_injectable(self):
        """The worker's backoff sleeps through an injected callable --
        tests (and this one) never block on real time."""
        naps = []
        worker = ShardWorker("127.0.0.1", 1, name="pin",
                             connect_attempts=3, sleep=naps.append)
        with pytest.raises(Exception):
            worker._connect()  # nothing listens on port 1
        assert naps == [backoff_delay("pin", 0), backoff_delay("pin", 1)]
