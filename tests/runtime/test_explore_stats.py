"""``ExplorationStats.merge``: the deterministic shard-combining rule."""

import itertools

from repro.runtime import ExplorationStats, ShardViolation


def _viol(order_key, schedule=None, message="AssertionError: boom"):
    return ShardViolation(order_key=tuple(order_key),
                          schedule=tuple(schedule or order_key),
                          message=message)


class TestMergeCounts:
    def test_empty_plus_empty(self):
        merged = ExplorationStats().merge(ExplorationStats())
        assert merged == ExplorationStats()

    def test_empty_is_identity(self):
        stats = ExplorationStats(complete_runs=7, truncated_runs=2,
                                 max_depth_seen=9, pruned_runs=4)
        assert ExplorationStats().merge(stats) == stats
        assert stats.merge(ExplorationStats()) == stats

    def test_disjoint_counts_add(self):
        a = ExplorationStats(complete_runs=3, truncated_runs=1,
                             max_depth_seen=5, pruned_runs=2)
        b = ExplorationStats(complete_runs=10, truncated_runs=0,
                             max_depth_seen=8, pruned_runs=1)
        merged = a.merge(b)
        assert merged.complete_runs == 13
        assert merged.truncated_runs == 1
        assert merged.max_depth_seen == 8  # watermark, not a sum
        assert merged.pruned_runs == 3
        assert merged.total_runs == 14
        assert merged.violation is None

    def test_operands_not_mutated(self):
        a = ExplorationStats(complete_runs=1)
        b = ExplorationStats(complete_runs=2, violation=_viol((0,)))
        a.merge(b)
        assert a.complete_runs == 1 and a.violation is None
        assert b.complete_runs == 2 and b.violation is not None


class TestMergeViolations:
    def test_one_sided_violation_survives(self):
        v = _viol((1, 0))
        assert ExplorationStats(violation=v).merge(
            ExplorationStats()).violation == v
        assert ExplorationStats().merge(
            ExplorationStats(violation=v)).violation == v

    def test_both_sides_first_by_prefix_order_wins(self):
        early = _viol((0, 1), message="early")
        late = _viol((1, 0), message="late")
        assert ExplorationStats(violation=early).merge(
            ExplorationStats(violation=late)).violation == early
        # ... and in the other merge order too: worker timing must not
        # decide which counterexample the coordinator reports.
        assert ExplorationStats(violation=late).merge(
            ExplorationStats(violation=early)).violation == early

    def test_prefix_order_is_lexicographic_not_length(self):
        shallow = _viol((0, 1))          # shard rooted higher in the tree
        deep = _viol((0, 0, 5))          # longer but lexicographically first
        merged = ExplorationStats(violation=shallow).merge(
            ExplorationStats(violation=deep))
        assert merged.violation == deep

    def test_equal_keys_left_operand_wins(self):
        a = _viol((2,), message="a")
        b = _viol((2,), message="b")
        assert ExplorationStats(violation=a).merge(
            ExplorationStats(violation=b)).violation == a

    def test_fold_order_independence(self):
        shards = [
            ExplorationStats(complete_runs=1, violation=_viol((3,))),
            ExplorationStats(complete_runs=2),
            ExplorationStats(complete_runs=4, violation=_viol((1, 2))),
            ExplorationStats(truncated_runs=1, violation=_viol((1, 1))),
        ]
        results = set()
        for perm in itertools.permutations(shards):
            merged = ExplorationStats()
            for shard in perm:
                merged = merged.merge(shard)
            results.add((merged.total_runs, merged.violation.order_key))
        assert results == {(8, (1, 1))}
