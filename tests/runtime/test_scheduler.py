"""Scheduler semantics: atomic steps, crashes, spins, deadlock detection."""

import pytest

from repro.memory import BOTTOM, ObjectStore, SnapshotObject
from repro.runtime import (CrashPlan, Invocation, ObjectProxy, ProcessStatus,
                           RoundRobinAdversary, ScheduleError,
                           SeededRandomAdversary, run_processes)
from repro.runtime.ops import LocalOp, wait_until

MEM = ObjectProxy("mem")


def fresh_store(n=3):
    store = ObjectStore()
    store.add(SnapshotObject("mem", n))
    return store


def writer_then_count(pid, n):
    yield MEM.write(pid, pid * 10)
    snap = yield MEM.snapshot()
    return sum(1 for e in snap if e is not BOTTOM)


class TestBasicExecution:
    def test_all_processes_decide(self):
        res = run_processes({i: writer_then_count(i, 3) for i in range(3)},
                            fresh_store())
        assert res.decided_pids == {0, 1, 2}
        assert not res.deadlocked and not res.out_of_steps

    def test_step_counting(self):
        res = run_processes({0: writer_then_count(0, 3)}, fresh_store())
        assert res.steps == 2  # one write + one snapshot

    def test_decision_value_is_generator_return(self):
        def prog(pid):
            yield MEM.write(pid, "v")
            return "decided!"
        res = run_processes({0: prog(0)}, fresh_store())
        assert res.decisions[0] == "decided!"

    def test_process_without_ops_decides_immediately(self):
        def prog():
            return 42
            yield  # pragma: no cover
        res = run_processes({0: prog()}, fresh_store())
        assert res.decisions[0] == 42
        assert res.steps == 0

    def test_round_robin_interleaving_is_deterministic(self):
        runs = [run_processes({i: writer_then_count(i, 3)
                               for i in range(3)}, fresh_store(),
                              adversary=RoundRobinAdversary(),
                              record_trace=True)
                for _ in range(2)]
        assert [e.pid for e in runs[0].trace.steps()] == \
            [e.pid for e in runs[1].trace.steps()]

    def test_seeded_adversary_is_reproducible(self):
        results = [run_processes({i: writer_then_count(i, 3)
                                  for i in range(3)}, fresh_store(),
                                 adversary=SeededRandomAdversary(99),
                                 record_trace=True)
                   for _ in range(2)]
        assert [e.pid for e in results[0].trace.events] == \
            [e.pid for e in results[1].trace.events]


class TestCrashes:
    def test_initially_dead_takes_no_step(self):
        res = run_processes({0: writer_then_count(0, 3),
                             1: writer_then_count(1, 3)},
                            fresh_store(),
                            crash_plan=CrashPlan.initially_dead([0]))
        assert res.statuses[0] is ProcessStatus.CRASHED
        assert res.decisions[1] == 1  # saw only its own write

    def test_crash_after_first_step(self):
        res = run_processes({0: writer_then_count(0, 3),
                             1: writer_then_count(1, 3)},
                            fresh_store(),
                            crash_plan=CrashPlan.at_own_step({0: 2}))
        # p0 wrote, then crashed before its snapshot.
        assert res.statuses[0] is ProcessStatus.CRASHED
        assert res.decisions[1] == 2  # p1 saw both writes (round robin)

    def test_crash_before_matching_operation(self):
        from repro.runtime import op_on
        plan = CrashPlan.before_operation(0, op_on("mem", "snapshot"))
        res = run_processes({0: writer_then_count(0, 3)}, fresh_store(),
                            crash_plan=plan)
        assert res.statuses[0] is ProcessStatus.CRASHED
        assert res.store["mem"].entries[0] == 0  # the write happened


class TestSpins:
    def test_spin_satisfied_by_other_process(self):
        def waiter(pid):
            snap = yield from wait_until(
                lambda: MEM.snapshot(), lambda s: s[1] is not BOTTOM)
            return snap[1]

        def writer(pid):
            yield MEM.write(pid, "late")
            return "w"

        res = run_processes({0: waiter(0), 1: writer(1)}, fresh_store())
        assert res.decisions[0] == "late"

    def test_unsatisfiable_spin_is_detected_as_deadlock(self):
        def waiter(pid):
            yield from wait_until(lambda: MEM.snapshot(),
                                  lambda s: s[2] == "never")

        res = run_processes({0: waiter(0)}, fresh_store())
        assert res.deadlocked
        assert res.statuses[0] is ProcessStatus.BLOCKED

    def test_deadlock_after_crash_of_needed_writer(self):
        def waiter(pid):
            snap = yield from wait_until(
                lambda: MEM.snapshot(), lambda s: s[1] is not BOTTOM)
            return snap

        def writer(pid):
            yield MEM.write(pid, "x")

        res = run_processes({0: waiter(0), 1: writer(1)}, fresh_store(),
                            crash_plan=CrashPlan.initially_dead([1]))
        assert res.deadlocked
        assert res.blocked_pids == {0}

    def test_spin_with_period_respects_longer_cycles(self):
        # A process alternating two conditions must not be retired before
        # both were re-checked: period=2 keeps it alive until the write.
        from repro.runtime.ops import SPIN_FAILED, SpinOp

        def alternating(pid):
            while True:
                r = yield SpinOp(MEM.snapshot(),
                                 lambda s: s[1] == "a", period=2)
                if r is not SPIN_FAILED:
                    return "via-a"
                r = yield SpinOp(MEM.snapshot(),
                                 lambda s: s[1] == "b", period=2)
                if r is not SPIN_FAILED:
                    return "via-b"

        def writer(pid):
            for _ in range(6):   # dawdle to let the waiter spin a while
                yield MEM.snapshot()
            yield MEM.write(pid, "b")

        res = run_processes({0: alternating(0), 1: writer(1)},
                            fresh_store())
        assert res.decisions[0] == "via-b"

    def test_spin_on_mutating_operation_rejected(self):
        from repro.runtime.ops import SpinOp

        def bad(pid):
            yield SpinOp(MEM.write(pid, 1), lambda _: True)

        with pytest.raises(ScheduleError):
            run_processes({0: bad(0)}, fresh_store())


class TestErrors:
    def test_local_op_leak_is_an_error(self):
        class Dummy(LocalOp):
            pass

        def bad(pid):
            yield Dummy()

        with pytest.raises(ScheduleError):
            run_processes({0: bad(0)}, fresh_store())

    def test_unknown_yield_is_an_error(self):
        def bad(pid):
            yield 12345

        with pytest.raises(ScheduleError):
            run_processes({0: bad(0)}, fresh_store())

    def test_process_exception_propagates(self):
        def bad(pid):
            yield MEM.write(pid, 1)
            raise ValueError("bug in process code")

        with pytest.raises(ValueError, match="bug in process code"):
            run_processes({0: bad(0)}, fresh_store())

    def test_out_of_steps_flagged(self):
        def spinner(pid):
            while True:
                yield MEM.write(pid, pid)

        res = run_processes({0: spinner(0)}, fresh_store(), max_steps=50)
        assert res.out_of_steps
        assert res.statuses[0] is ProcessStatus.RUNNING


class TestSpinChainReset:
    def test_own_real_step_breaks_the_spin_chain(self):
        """Regression: a process alternating failed spins with *read-only*
        real steps is not stuck -- the detector must not retire it.  (A BG
        simulator interleaves blocked threads' spins with a live thread's
        propose steps; see tests/integration/test_theorem_matrices.py for
        the end-to-end shape that exposed this.)"""
        from repro.runtime.ops import SPIN_FAILED, SpinOp

        progress = {"count": 0}

        def mixed(pid):
            # period=2 so two consecutive failures would retire us.
            while progress["count"] < 3:
                r = yield SpinOp(MEM.snapshot(), lambda s: False, period=2)
                assert r is SPIN_FAILED
                yield MEM.snapshot()           # real read-only step
                progress["count"] += 1
            yield MEM.write(pid, "done")       # real progress exists
            return "finished"

        res = run_processes({0: mixed(0)}, fresh_store())
        assert res.decisions[0] == "finished"
        assert not res.deadlocked

    def test_pure_spinner_with_period_still_retired(self):
        from repro.runtime.ops import SPIN_FAILED, SpinOp

        def spinner(pid):
            while True:
                r = yield SpinOp(MEM.snapshot(), lambda s: False, period=2)
                assert r is SPIN_FAILED

        res = run_processes({0: spinner(0)}, fresh_store())
        assert res.deadlocked
        assert res.statuses[0] is ProcessStatus.BLOCKED
