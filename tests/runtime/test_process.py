"""ProcessHandle lifecycle mechanics."""

import pytest

from repro.runtime import Invocation, NO_DECISION, ProcessStatus
from repro.runtime.process import ProcessHandle, describe_pending
from repro.runtime.ops import SpinOp


def gen_two_ops():
    yield Invocation("a", "read", ())
    got = yield Invocation("b", "read", ())
    return got


class TestAdvance:
    def test_first_advance_yields_first_op(self):
        handle = ProcessHandle(0, gen_two_ops())
        op = handle.advance()
        assert op == Invocation("a", "read", ())
        assert handle.pending is op
        assert handle.alive

    def test_inbox_flows_into_generator(self):
        handle = ProcessHandle(0, gen_two_ops())
        handle.advance()
        handle.inbox = None
        handle.advance()
        handle.inbox = "result!"
        assert handle.advance() is None
        assert handle.decision == "result!"
        assert handle.status is ProcessStatus.DECIDED
        assert handle.decided

    def test_none_return_is_no_decision(self):
        def gen():
            yield Invocation("a", "read", ())

        handle = ProcessHandle(0, gen())
        handle.advance()
        handle.advance()
        assert handle.status is ProcessStatus.DECIDED
        assert handle.decision is NO_DECISION
        assert not handle.decided

    def test_exception_marks_failed_and_reraises(self):
        def gen():
            yield Invocation("a", "read", ())
            raise RuntimeError("boom")

        handle = ProcessHandle(0, gen())
        handle.advance()
        with pytest.raises(RuntimeError, match="boom"):
            handle.advance()
        assert handle.status is ProcessStatus.FAILED
        assert handle.error is not None
        assert not handle.alive


class TestTerminalTransitions:
    def test_crash_closes_generator(self):
        closed = []

        def gen():
            try:
                yield Invocation("a", "read", ())
            finally:
                closed.append(True)

        handle = ProcessHandle(0, gen())
        handle.advance()
        handle.crash()
        assert handle.status is ProcessStatus.CRASHED
        assert closed == [True]
        assert handle.pending is None

    def test_mark_blocked(self):
        handle = ProcessHandle(0, gen_two_ops())
        handle.advance()
        handle.mark_blocked()
        assert handle.status is ProcessStatus.BLOCKED
        assert not handle.alive


class TestDescribePending:
    def test_invocation(self):
        assert "a.read()" in describe_pending(Invocation("a", "read", ()))

    def test_spin(self):
        op = SpinOp(Invocation("a", "read", ()), lambda v: True, 2)
        assert "spin" in describe_pending(op)

    def test_unknown(self):
        assert "non-schedulable" in describe_pending(42)
