"""Unit tests for operation descriptors and proxies."""

import pytest

from repro.runtime.ops import (SPIN_FAILED, Invocation, ObjectProxy, SpinOp,
                               indexed_proxy, spin, wait_until)


class TestInvocation:
    def test_fields(self):
        inv = Invocation("mem", "write", (1, "v"))
        assert inv.obj == "mem"
        assert inv.method == "write"
        assert inv.args == (1, "v")

    def test_repr_is_call_like(self):
        assert repr(Invocation("mem", "write", (1, "v"))) == \
            "mem.write(1, 'v')"

    def test_hashable_and_frozen(self):
        inv = Invocation("a", "b", ())
        assert inv in {inv}
        with pytest.raises(AttributeError):
            inv.obj = "c"


class TestObjectProxy:
    def test_builds_invocations(self):
        mem = ObjectProxy("mem")
        inv = mem.write(3, 10)
        assert inv == Invocation("mem", "write", (3, 10))

    def test_no_args(self):
        assert ObjectProxy("m").snapshot() == Invocation("m", "snapshot", ())

    def test_private_attributes_raise(self):
        with pytest.raises(AttributeError):
            ObjectProxy("m")._private

    def test_indexed_proxy_naming(self):
        p = indexed_proxy("x_cons", 3)
        assert p.name == "x_cons[3]"
        assert p.propose(9).obj == "x_cons[3]"


class TestSpin:
    def test_spin_constructor(self):
        inv = Invocation("m", "read", (0,))
        op = spin(inv, lambda v: v == 1, period=3)
        assert isinstance(op, SpinOp)
        assert op.invocation is inv
        assert op.period == 3

    def test_spin_failed_singleton(self):
        assert SPIN_FAILED is type(SPIN_FAILED)()
        assert repr(SPIN_FAILED) == "<SPIN_FAILED>"

    def test_wait_until_loops_until_satisfied(self):
        gen = wait_until(lambda: Invocation("m", "read", (0,)),
                         lambda v: v == "ok")
        op = next(gen)
        assert isinstance(op, SpinOp)
        op2 = gen.send(SPIN_FAILED)           # failed -> re-yields
        assert isinstance(op2, SpinOp)
        with pytest.raises(StopIteration) as stop:
            gen.send("ok")
        assert stop.value.value == "ok"

    def test_wait_until_fresh_invocation_each_round(self):
        counter = iter(range(100))
        gen = wait_until(lambda: Invocation("m", "read", (next(counter),)),
                         lambda v: False)
        first = next(gen)
        second = gen.send(SPIN_FAILED)
        assert first.invocation.args != second.invocation.args
