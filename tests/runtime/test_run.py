"""RunResult queries and the run harness."""

import pytest

from repro.memory import BOTTOM, ObjectStore, SnapshotObject
from repro.runtime import (CrashPlan, ObjectProxy, ProcessStatus,
                           run_processes)
from repro.runtime.ops import wait_until

MEM = ObjectProxy("mem")


def store3():
    store = ObjectStore()
    store.add(SnapshotObject("mem", 3))
    return store


def decider(pid, value):
    yield MEM.write(pid, value)
    return value


def blocker(pid):
    yield from wait_until(lambda: MEM.snapshot(),
                          lambda s: s[2] == "never")


class TestRunResult:
    def test_decided_queries(self):
        res = run_processes({0: decider(0, "a"), 1: decider(1, "b")},
                            store3())
        assert res.decided_pids == {0, 1}
        assert res.decided_values == {"a", "b"}
        assert res.all_correct_decided()

    def test_crash_queries(self):
        res = run_processes({0: decider(0, "a"), 1: decider(1, "b")},
                            store3(),
                            crash_plan=CrashPlan.initially_dead([1]))
        assert res.crashed_pids == {1}
        assert res.correct_pids == {0}
        assert res.all_correct_decided()

    def test_blocked_queries(self):
        res = run_processes({0: blocker(0)}, store3())
        assert res.blocked_pids == {0}
        assert not res.all_correct_decided()
        assert res.deadlocked

    def test_running_after_budget(self):
        def spinner(pid):
            while True:
                yield MEM.write(pid, pid)

        res = run_processes({0: spinner(0)}, store3(), max_steps=10)
        assert res.running_pids == {0}
        assert res.out_of_steps
        assert not res.all_correct_decided()

    def test_summary_mentions_everything(self):
        res = run_processes({0: decider(0, "a"), 1: blocker(1),
                             2: decider(2, "c")},
                            store3(),
                            crash_plan=CrashPlan.initially_dead([2]))
        text = res.summary()
        assert "decided=" in text
        assert "crashed=[2]" in text
        assert "blocked=[1]" in text
        assert "DEADLOCK" in text

    def test_store_attached(self):
        res = run_processes({0: decider(0, "a")}, store3())
        assert res.store["mem"].entries[0] == "a"

    def test_trace_optional(self):
        res = run_processes({0: decider(0, "a")}, store3())
        assert res.trace is None
        res = run_processes({0: decider(0, "a")}, store3(),
                            record_trace=True)
        assert len(res.trace) > 0


class TestStatuses:
    def test_status_partition(self):
        res = run_processes({0: decider(0, 1), 1: blocker(1),
                             2: decider(2, 3)},
                            store3(),
                            crash_plan=CrashPlan.initially_dead([2]))
        assert res.statuses[0] is ProcessStatus.DECIDED
        assert res.statuses[1] is ProcessStatus.BLOCKED
        assert res.statuses[2] is ProcessStatus.CRASHED
