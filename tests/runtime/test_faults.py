"""Byzantine fault plans: triggers, value rewrites, DPOR soundness."""

import pytest

from repro.memory import ObjectStore, SnapshotObject
from repro.runtime import (ArbitraryPropose, CounterexampleFound,
                           FaultBehavior, FaultPlan, FaultTrigger,
                           Invocation, ObjectProxy, ScriptedAdversary,
                           StaleReadReplay, byzantine_writer, explore,
                           op_on, run_processes)
from repro.scenarios import SOUND_SCENARIOS, build_scenario

MEM = ObjectProxy("mem")


def store3():
    store = ObjectStore()
    store.add(SnapshotObject("mem", 3))
    return store


class TestFaultTrigger:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError):
            FaultTrigger()
        with pytest.raises(ValueError):
            FaultTrigger(own_step=1, matching=lambda inv: True)

    def test_own_step_is_one_based(self):
        with pytest.raises(ValueError):
            FaultTrigger(own_step=0)

    def test_occurrence_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultTrigger(matching=lambda inv: True, occurrence=0)

    def test_fires_is_idempotent_per_step(self):
        # The scheduler consults the trigger twice per step (invocation
        # hook + result hook); the second call must not advance the
        # match counter, or occurrence=2 would fire one step early.
        trigger = FaultTrigger(matching=lambda inv: True, occurrence=2)
        inv = Invocation("mem", "write", (0, "v"))
        assert not trigger.fires(0, inv)
        assert not trigger.fires(0, inv)      # cached, not re-counted
        assert trigger.fires(1, inv)

    def test_persistent_own_step(self):
        trigger = FaultTrigger(own_step=2, once=False)
        assert not trigger.fires(0, None)
        assert trigger.fires(1, None)
        assert trigger.fires(2, None)

    def test_reset_rearms(self):
        trigger = FaultTrigger(matching=lambda inv: True)
        inv = Invocation("mem", "write", (0, "v"))
        assert trigger.fires(0, inv)
        trigger.reset()
        assert trigger.fires(0, inv)


def writer_then_done(pid, value):
    yield MEM.write(pid, value)
    return "done"


def snapshot_cell(cell):
    snap = yield MEM.snapshot()
    return snap[cell]


class TestBehaviors:
    def test_corrupt_write_observed_by_reader(self):
        plan = byzantine_writer(0, "evil")
        res = run_processes({0: writer_then_done(0, "good"),
                             1: snapshot_cell(0)},
                            store3(), crash_plan=plan)
        assert res.decisions[1] == "evil"

    def test_arbitrary_propose_replaces_last_arg(self):
        plan = FaultPlan().attach(
            0, ArbitraryPropose(
                FaultTrigger(matching=op_on("mem", "write")), value=99))
        res = run_processes({0: writer_then_done(0, 1),
                             1: snapshot_cell(0)},
                            store3(), crash_plan=plan)
        assert res.decisions[1] == 99

    def test_stale_read_replay_serves_cached_value(self):
        def writer():
            yield MEM.write(0, "v1")
            yield MEM.write(0, "v2")
            return "done"

        def reader():
            s1 = yield MEM.snapshot()
            s2 = yield MEM.snapshot()
            return (s1[0], s2[0])

        plan = FaultPlan().attach(
            1, StaleReadReplay(FaultTrigger(
                matching=op_on("mem", "snapshot"), once=False)))
        res = run_processes({0: writer(), 1: reader()}, store3(),
                            adversary=ScriptedAdversary([0, 1, 0, 1]),
                            crash_plan=plan)
        # Without the fault the second snapshot would observe "v2".
        assert res.decisions[1] == ("v1", "v1")

    def test_structure_rewrites_are_rejected(self):
        class Rogue(FaultBehavior):
            def rewrite_invocation(self, inv):
                return Invocation("elsewhere", inv.method, inv.args)

        plan = FaultPlan().attach(0, Rogue(FaultTrigger(own_step=1)))
        with pytest.raises(ValueError, match="footprint soundness"):
            run_processes({0: writer_then_done(0, "x")}, store3(),
                          crash_plan=plan)

    def test_plan_is_reusable_across_runs(self):
        # The scheduler resets the plan at run start; a once-triggered
        # behavior must fire again in the second run.
        plan = byzantine_writer(0, "evil", obj="mem", method="write",
                                occurrence=1, once=True)
        for _ in range(2):
            res = run_processes({0: writer_then_done(0, "good"),
                                 1: snapshot_cell(0)},
                                store3(), crash_plan=plan)
            assert res.decisions[1] == "evil"

    def test_byzantine_pids_and_repr(self):
        plan = byzantine_writer(2, "evil")
        assert plan.byzantine_pids == frozenset({2})
        assert "CorruptWrite" in repr(plan)


class TestNoFaultInvariance:
    @pytest.mark.parametrize("name", SOUND_SCENARIOS)
    def test_fault_plan_wrapper_is_bit_for_bit(self, name):
        # Lifting a scenario's crash plan into a (behavior-free)
        # FaultPlan must not change what DPOR explores: identical run
        # counts, depth and pruning -- the rewrite hooks are value-only
        # and inert when no behaviors are attached.
        scenario = build_scenario(name, n=2, x=2)

        def lifted_factory():
            if scenario.crash_plan_factory is None:
                return FaultPlan()
            return FaultPlan.from_crash_plan(
                scenario.crash_plan_factory())

        base = explore(scenario.build, scenario.check,
                       crash_plan_factory=scenario.crash_plan_factory,
                       max_steps=scenario.max_steps, reduction="dpor")
        lifted = explore(scenario.build, scenario.check,
                         crash_plan_factory=lifted_factory,
                         max_steps=scenario.max_steps, reduction="dpor")
        assert base == lifted


class TestExploreWithFaults:
    def test_explore_detects_byzantine_corruption(self):
        def build():
            def p0():
                yield MEM.write(0, "good")
                snap = yield MEM.snapshot()
                return snap[0]

            return {0: p0()}, store3()

        def check(result):
            assert result.decisions[0] == "good"

        with pytest.raises(CounterexampleFound):
            explore(build, check,
                    crash_plan_factory=lambda: byzantine_writer(0, "evil"),
                    max_steps=4, reduction="dpor")
