"""Unit tests for the canonical state fingerprint.

The DPOR state cache (``docs/performance.md``) is only sound if the
fingerprint never *merges* two states the remainder of a run could tell
apart.  These tests pin the two directions separately:

* representation noise that a run can NOT observe -- dict/set insertion
  order, lazy materialisation of default (``BOTTOM``) cells -- must not
  change the fingerprint (a split here would only cost cache misses,
  but it would also defeat the cache entirely);
* state a run CAN observe -- written values, type distinctions like
  ``True`` vs ``1``, armed-vs-fired fault triggers, message-fault
  occurrence counters -- must always change it.
"""

import pytest

from repro.memory.base import BOTTOM
from repro.memory.families import RegisterFamily, SnapshotFamily
from repro.messaging.engine import Envelope
from repro.messaging.faults import DropFault, MessageFaultPlan
from repro.runtime import Fingerprinter, ObjectProxy
from repro.runtime.faults import byzantine_writer

pytestmark = pytest.mark.cache


class TestCanon:
    def test_dict_insertion_order_is_invisible(self):
        f = Fingerprinter()
        assert f.canon({"a": 1, "b": 2}) == f.canon({"b": 2, "a": 1})

    def test_nested_dict_order_is_invisible(self):
        f = Fingerprinter()
        one = {"outer": [{"x": 1, "y": 2}], "z": {3, 1, 2}}
        two = {"z": {2, 1, 3}, "outer": [{"y": 2, "x": 1}]}
        assert f.canon(one) == f.canon(two)

    def test_set_element_order_is_invisible(self):
        f = Fingerprinter()
        assert f.canon({"p", "q", "r"}) == f.canon({"r", "p", "q"})

    def test_equal_hash_equal_scalars_of_distinct_type_split(self):
        # True == 1 == 1.0 in Python; a run that branches on type (or
        # formats the value) can tell them apart, so canon must too.
        f = Fingerprinter()
        forms = {repr(f.canon(v)) for v in (True, 1, 1.0)}
        assert len(forms) == 3

    def test_opaque_tokens_are_per_object_and_stable(self):
        f = Fingerprinter()

        class Mystery:
            pass

        a, b = Mystery(), Mystery()
        assert f.canon(a) == f.canon(a)
        assert f.canon(a) != f.canon(b)


class TestObjectFingerprint:
    def test_lazy_bottom_materialisation_is_invisible(self):
        # Snapshotting a never-written instance materialises its
        # [BOTTOM] * size cells; the audited state is unchanged, so the
        # fingerprint must be too.
        f = Fingerprinter()
        snap = SnapshotFamily("snap", size=3)
        before = f.object_fingerprint(snap)
        assert snap.op_snapshot(0, "k") == (BOTTOM, BOTTOM, BOTTOM)
        assert f.object_fingerprint(snap) == before

    def test_written_cell_changes_the_fingerprint(self):
        f = Fingerprinter()
        snap = SnapshotFamily("snap", size=3)
        before = f.object_fingerprint(snap)
        snap.op_write(1, "k", 1, "v")
        assert f.object_fingerprint(snap) != before

    def test_instance_insertion_order_is_invisible(self):
        # audit_state iterates the instances dict; two objects reaching
        # the same state through differently-ordered writes must agree.
        f = Fingerprinter()
        one, two = RegisterFamily("r"), RegisterFamily("r")
        one.op_write(0, "a", 1)
        one.op_write(0, "b", 2)
        two.op_write(0, "b", 2)
        two.op_write(0, "a", 1)
        assert f.object_fingerprint(one) == f.object_fingerprint(two)


class TestPlanFingerprint:
    def test_equal_fresh_fault_plans_agree(self):
        f = Fingerprinter()
        one = byzantine_writer(0, 99, obj="r")
        two = byzantine_writer(0, 99, obj="r")
        assert f.plan_fingerprint(one) == f.plan_fingerprint(two)

    def test_armed_and_fired_triggers_never_merge(self):
        # A fired (latched) persistent-corruption trigger rewrites every
        # later matching write; merging it with a fresh plan would hide
        # Byzantine behaviour from half the merged subtree.
        f = Fingerprinter()
        fresh = byzantine_writer(0, 99, obj="r")
        fired = byzantine_writer(0, 99, obj="r")
        inv = ObjectProxy("r").write("k", 1)
        assert fired.rewrite_invocation(0, 0, inv).args[-1] == 99
        assert f.plan_fingerprint(fired) != f.plan_fingerprint(fresh)

    def test_fired_trigger_fingerprint_is_not_memo_poisoned(self):
        # plan_fingerprint memoises atomic-tree states; firing mutates
        # the plan in place, so the memo must key on the *state*, not
        # the plan object.
        f = Fingerprinter()
        plan = byzantine_writer(0, 99, obj="r")
        before = f.plan_fingerprint(plan)
        plan.rewrite_invocation(0, 0, ObjectProxy("r").write("k", 1))
        assert f.plan_fingerprint(plan) != before
        plan.reset()
        assert f.plan_fingerprint(plan) == before

    def test_message_plan_occurrence_counters_never_merge(self):
        # After one matching send the drop rule is spent; the plan
        # treats the next send differently, so the states must split.
        f = Fingerprinter()
        fresh = MessageFaultPlan(faults=(DropFault(sender=0, dest=1),))
        spent = MessageFaultPlan(faults=(DropFault(sender=0, dest=1),))
        uids = iter(range(100, 200))
        env = Envelope(uid=1, sender=0, dest=1, payload="m")
        assert spent.on_send(env, lambda: next(uids)) == []
        assert f.plan_fingerprint(spent) != f.plan_fingerprint(fresh)

    def test_equal_fresh_message_plans_agree(self):
        f = Fingerprinter()
        one = MessageFaultPlan(faults=(DropFault(sender=0, dest=1),))
        two = MessageFaultPlan(faults=(DropFault(sender=0, dest=1),))
        assert f.plan_fingerprint(one) == f.plan_fingerprint(two)
