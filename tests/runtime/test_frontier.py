"""Unit tests for the on-disk frontier store and the lease table.

The resume *differential* (kill -9 mid-run, resume, compare bit-for-bit
-- ``tests/properties/test_resume_differential.py``) is the end-to-end
evidence; these tests pin the store's mechanics in isolation: header
round-trip, journal replay, torn-tail discard, compaction equivalence,
fingerprint validation, and the lease grant/renew/expire protocol.
"""

import json
import os

import pytest

from repro.runtime import ExplorationStats, FrontierMismatch, FrontierStore
from repro.runtime.explore import ShardViolation
from repro.runtime.frontier import (COMPACT_INTERVAL,
                                    FRONTIER_SCHEMA_VERSION,
                                    stats_from_dict, stats_to_dict)
from repro.runtime.lease import Lease, LeaseTable

FINGERPRINT = {"scenario": ["demo", 2, 1], "max_steps": 12,
               "max_runs": 1000, "reduction": "dpor",
               "prefix_factor": 4, "state_cache": True}

SHARDS = [((0,), ()), ((1,), (0,)), ((0, 1), (1,))]


def make_stats(complete=3, violation=False):
    v = None
    if violation:
        v = ShardViolation(order_key=(1, 0), schedule=(1, 0, 1),
                           message="agreement violated",
                           error_type="AssertionError")
    return ExplorationStats(complete_runs=complete, truncated_runs=1,
                            max_depth_seen=5, pruned_runs=2, violation=v)


def begin_store(path):
    store = FrontierStore(str(path))
    store.begin(FINGERPRINT, make_stats(0), {"peak_frontier_size": 3},
                SHARDS)
    return store


class TestStatsCodec:
    def test_round_trip_without_violation(self):
        stats = make_stats()
        assert stats_from_dict(stats_to_dict(stats)) == stats

    def test_round_trip_with_violation_is_bit_for_bit(self):
        # Tuples, not lists: a decoded ShardViolation must compare equal
        # to the live dataclass or the resume differential breaks.
        stats = make_stats(violation=True)
        decoded = stats_from_dict(json.loads(json.dumps(
            stats_to_dict(stats))))
        assert decoded == stats
        assert decoded.violation.order_key == (1, 0)

    def test_merge_of_decoded_equals_merge_of_live(self):
        a, b = make_stats(3), make_stats(5, violation=True)
        live = a.merge(b)
        decoded = stats_from_dict(stats_to_dict(a)).merge(
            stats_from_dict(stats_to_dict(b)))
        assert decoded == live


class TestStoreLifecycle:
    def test_header_round_trips(self, tmp_path):
        path = tmp_path / "frontier.jsonl"
        store = begin_store(path)
        store.close()
        assert store.exists()

        loaded = FrontierStore(str(path))
        loaded.load()
        assert loaded.fingerprint == FINGERPRINT
        assert loaded.expansion_stats == make_stats(0)
        assert loaded.expansion_counters == {"peak_frontier_size": 3}
        assert loaded.shards == SHARDS
        assert loaded.completed == {}
        assert loaded.pending_indices(len(SHARDS)) == [0, 1, 2]

    def test_journaled_completions_survive_reload(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.record_grant(1, worker=0)
        store.record_completion(1, make_stats(7), {"sleep_set_hits": 4})
        store.close()

        loaded = FrontierStore(store.path)
        loaded.load()
        assert set(loaded.completed) == {1}
        stats, counters = loaded.completed[1]
        assert stats == make_stats(7)
        assert counters == {"sleep_set_hits": 4}
        assert loaded.pending_indices(len(SHARDS)) == [0, 2]

    def test_completion_is_idempotent_per_shard(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.record_completion(0, make_stats(7), {})
        before = os.path.getsize(store.path)
        store.record_completion(0, make_stats(7), {})
        store.close()
        assert os.path.getsize(store.path) == before

    def test_grants_without_completion_stay_pending(self, tmp_path):
        # A crash between grant and completion must re-execute the
        # shard: grant lines are observability, never progress.
        store = begin_store(tmp_path / "frontier.jsonl")
        for idx in range(len(SHARDS)):
            store.record_grant(idx, worker=idx % 2)
        store.close()
        loaded = FrontierStore(store.path)
        loaded.load()
        assert loaded.pending_indices(len(SHARDS)) == [0, 1, 2]

    def test_torn_tail_is_discarded(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.record_completion(0, make_stats(7), {})
        store.close()
        with open(store.path, "a") as handle:
            handle.write('{"kind": "complete", "shard": 2, "sta')

        loaded = FrontierStore(store.path)
        loaded.load()
        assert set(loaded.completed) == {0}
        assert loaded.pending_indices(len(SHARDS)) == [1, 2]

    def test_compaction_folds_journal_into_header(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.record_completion(0, make_stats(7), {"cache_hits": 1})
        store.record_completion(2, make_stats(9), {})
        store.compact()
        store.close()

        with open(store.path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1  # header only; journal folded in

        loaded = FrontierStore(store.path)
        loaded.load()
        assert set(loaded.completed) == {0, 2}
        assert loaded.completed[0][0] == make_stats(7)
        assert loaded.pending_indices(len(SHARDS)) == [1]

    def test_compaction_triggers_automatically(self, tmp_path):
        many = [((i,), ()) for i in range(COMPACT_INTERVAL + 8)]
        store = FrontierStore(str(tmp_path / "frontier.jsonl"))
        store.begin(FINGERPRINT, make_stats(0), {}, many)
        for idx in range(COMPACT_INTERVAL + 2):
            store.record_completion(idx, make_stats(1), {})
        store.close()
        with open(store.path) as handle:
            lines = handle.read().splitlines()
        # At least one compaction ran: far fewer lines than completions.
        assert len(lines) < COMPACT_INTERVAL
        loaded = FrontierStore(store.path)
        loaded.load()
        assert len(loaded.completed) == COMPACT_INTERVAL + 2

    def test_merged_completed_stats_folds_in_shard_order(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.record_completion(2, make_stats(9), {})
        store.record_completion(0, make_stats(7, violation=True), {})
        merged = store.merged_completed_stats()
        store.close()
        assert merged == make_stats(7, violation=True).merge(make_stats(9))


class TestValidation:
    def test_matching_fingerprint_passes(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        store.validate(dict(FINGERPRINT))
        store.close()

    def test_mismatch_names_every_differing_key(self, tmp_path):
        store = begin_store(tmp_path / "frontier.jsonl")
        changed = dict(FINGERPRINT, max_steps=99, reduction="naive")
        with pytest.raises(FrontierMismatch) as excinfo:
            store.validate(changed)
        store.close()
        assert set(excinfo.value.mismatched) == {"max_steps", "reduction"}
        assert excinfo.value.mismatched["max_steps"] == (12, 99)
        assert "max_steps" in str(excinfo.value)
        assert "reduction" in str(excinfo.value)

    def test_empty_store_is_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        store = FrontierStore(str(path))
        with pytest.raises(ValueError, match="empty"):
            store.load()

    def test_foreign_header_is_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "exploration"}) + "\n")
        store = FrontierStore(str(path))
        with pytest.raises(ValueError, match="no header"):
            store.load()

    def test_future_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"kind": "frontier_header",
             "frontier_schema": FRONTIER_SCHEMA_VERSION + 1}) + "\n")
        store = FrontierStore(str(path))
        with pytest.raises(ValueError, match="schema"):
            store.load()


class TestLeaseTable:
    def test_grant_and_holder(self):
        table = LeaseTable(timeout=10.0)
        lease = table.grant(3, worker=1, now=100.0)
        assert isinstance(lease, Lease)
        assert lease.expires_at == 110.0
        assert table.holder(3) == 1
        assert table.holder(4) is None
        assert len(table) == 1

    def test_renew_extends_and_counts(self):
        table = LeaseTable(timeout=10.0)
        table.grant(3, worker=1, now=100.0)
        assert table.renew(3, worker=1, now=105.0)
        lease = table._leases[3]
        assert lease.expires_at == 115.0
        assert lease.renewals == 1

    def test_stale_holder_cannot_renew_a_regranted_lease(self):
        table = LeaseTable(timeout=10.0)
        table.grant(3, worker=1, now=100.0)
        table.grant(3, worker=2, now=111.0)  # re-grant after expiry
        assert not table.renew(3, worker=1, now=112.0)
        assert table.renew(3, worker=2, now=112.0)
        assert table.holder(3) == 2

    def test_renew_after_release_is_a_noop(self):
        table = LeaseTable(timeout=10.0)
        table.grant(3, worker=1, now=100.0)
        released = table.release(3)
        assert released is not None and released.shard == 3
        assert not table.renew(3, worker=1, now=101.0)
        assert len(table) == 0

    def test_expired_lists_lapsed_leases_in_shard_order(self):
        table = LeaseTable(timeout=10.0)
        table.grant(5, worker=0, now=100.0)
        table.grant(2, worker=1, now=100.0)
        table.grant(7, worker=2, now=109.0)
        lapsed = table.expired(now=110.0)
        assert [lease.shard for lease in lapsed] == [2, 5]

    def test_heartbeat_keeps_a_lease_alive(self):
        table = LeaseTable(timeout=10.0)
        table.grant(1, worker=0, now=100.0)
        for tick in range(1, 30):
            assert table.renew(1, worker=0, now=100.0 + tick)
        assert table.expired(now=130.0) == []
