"""Budget interruption: ExplorationInterrupted carries partial stats."""

import pytest

from repro.runtime import ExplorationInterrupted, explore
from repro.scenarios import build_scenario


class TestInterruption:
    def test_max_runs_carries_reason_and_partial_stats(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=2,
                    reduction="dpor")
        assert info.value.reason == "max_runs"
        assert info.value.stats is not None
        assert info.value.stats.total_runs == 2

    def test_timeout_carries_reason(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, timeout=1e-9,
                    reduction="dpor")
        assert info.value.reason == "timeout"

    def test_legacy_runtimeerror_match_still_works(self):
        # ExplorationInterrupted subclasses RuntimeError and keeps the
        # historical message, so pre-existing budget expectations hold.
        scenario = build_scenario("adopt-commit")
        with pytest.raises(RuntimeError, match="max_runs"):
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=1)

    def test_parallel_interrupt_carries_reason(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=2,
                    reduction="dpor", jobs=2)
        assert info.value.reason == "max_runs"
