"""Budget interruption: ExplorationInterrupted carries partial stats."""

import pytest

from repro.runtime import ExplorationInterrupted, explore
from repro.scenarios import build_scenario


class TestInterruption:
    def test_max_runs_carries_reason_and_partial_stats(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=2,
                    reduction="dpor")
        assert info.value.reason == "max_runs"
        assert info.value.stats is not None
        assert info.value.stats.total_runs == 2

    def test_timeout_carries_reason(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, timeout=1e-9,
                    reduction="dpor")
        assert info.value.reason == "timeout"

    def test_legacy_runtimeerror_match_still_works(self):
        # ExplorationInterrupted subclasses RuntimeError and keeps the
        # historical message, so pre-existing budget expectations hold.
        scenario = build_scenario("adopt-commit")
        with pytest.raises(RuntimeError, match="max_runs"):
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=1)

    def test_parallel_interrupt_carries_reason(self):
        scenario = build_scenario("adopt-commit")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=2,
                    reduction="dpor", jobs=2)
        assert info.value.reason == "max_runs"

    def test_warm_cache_interrupt_emits_valid_partial_record(self):
        # The state cache must not break budget interruption: when the
        # budget fires after the cache has already folded subtrees, the
        # partial metrics record is still emitted, still schema v3, and
        # carries the cache counters accumulated so far.
        from repro.analysis.metrics import (METRICS_SCHEMA_VERSION,
                                            ExplorationMetrics)

        scenario = build_scenario("adopt-commit")
        metrics = ExplorationMetrics(scenario="adopt-commit",
                                     engine="dpor")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, max_runs=40,
                    reduction="dpor", state_cache=True, metrics=metrics)
        metrics.record_interrupted(info.value.reason, info.value.stats)
        record = metrics.finalize().to_dict()
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["outcome"] == "interrupted"
        assert record["partial"] is True
        assert record["interrupt_reason"] == "max_runs"
        assert record["total_runs"] == 40
        assert record["cache_hits"] > 0, \
            "budget chosen so the cache is warm when it fires"
        assert record["cache_skipped_runs"] > 0

    def test_timeout_with_cache_enabled_still_emits_record(self):
        # Same pinning for the wall-clock budget (`check --timeout`):
        # the record path works however early the deadline fires.
        from repro.analysis.metrics import ExplorationMetrics

        scenario = build_scenario("adopt-commit")
        metrics = ExplorationMetrics(scenario="adopt-commit",
                                     engine="dpor")
        with pytest.raises(ExplorationInterrupted) as info:
            explore(scenario.build, scenario.check,
                    max_steps=scenario.max_steps, timeout=1e-9,
                    reduction="dpor", state_cache=True, metrics=metrics)
        metrics.record_interrupted(info.value.reason, info.value.stats)
        record = metrics.finalize().to_dict()
        assert record["outcome"] == "interrupted"
        assert record["interrupt_reason"] == "timeout"
        assert record["partial"] is True
