"""The scenario grammar: batches, round-trips, and generated scenarios."""

import pickle

import pytest

from repro.generative import (EXPLORABLE_FAMILIES, FAMILIES,
                              GeneratedConfig, config_from_choices,
                              generate_batch, generate_config,
                              generated_scenario, scenario_for)
from repro.scenarios import CheckScenario, ScenarioRef, build_scenario

BATCH_SEED, BATCH_COUNT = 7, 200


class TestBatchGeneration:
    def test_batches_are_reproducible(self):
        assert generate_batch(BATCH_SEED, 50) \
            == generate_batch(BATCH_SEED, 50)

    def test_configs_are_independent_of_batch_size(self):
        # --resume and workers regenerate single configs by index, so
        # config i must not depend on how many neighbours were drawn.
        long = generate_batch(BATCH_SEED, 50)
        for i in (0, 7, 49):
            assert generate_config(BATCH_SEED, i) == long[i]

    def test_every_family_appears_in_the_pinned_batch(self):
        families = {cfg.family
                    for cfg in generate_batch(BATCH_SEED, BATCH_COUNT)}
        assert families == set(FAMILIES)

    def test_params_respect_the_grammar_bounds(self):
        for cfg in generate_batch(BATCH_SEED, BATCH_COUNT):
            p = cfg.params
            if cfg.family == "calculus":
                assert 0 <= p["t"] <= 12 and 1 <= p["x"] <= 6 \
                    and 1 <= p["k"] <= 6
            elif cfg.family == "construction":
                assert p["k"] >= 1 and p["n"] == p["k"] + 1
                assert p["t_prime"] // p["x"] == p["k"] - 1
                assert p["t_prime"] >= 1
            elif cfg.family == "blocking":
                assert 2 <= p["n"] <= 3 and 1 <= p["x"] <= p["n"] \
                    and 0 <= p["crashes"] <= p["n"]
            elif cfg.family == "renaming":
                assert 1 <= p["namespace"] <= 2 * p["n"]
            elif cfg.family == "snapshot":
                assert 0 <= p["k"] <= p["n"]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_batch(0, -1)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            GeneratedConfig(seed=0, index=0, family="nope", params={})


class TestChoiceRoundTrip:
    def test_tape_replay_rebuilds_family_and_params(self):
        for cfg in generate_batch(BATCH_SEED, 60):
            rebuilt = config_from_choices(cfg.choices)
            assert rebuilt.family == cfg.family
            assert rebuilt.params == cfg.params
            assert rebuilt.choices == cfg.choices
            assert rebuilt.seed == -1 and rebuilt.index == -1

    def test_arbitrary_tapes_are_total(self):
        # Any integer sequence is a valid configuration (modulo
        # reduction + zero padding) -- the shrinker's contract.
        for tape in ([], [0], [999], [3, 999, 999, 999, 7]):
            cfg = config_from_choices(tape)
            assert cfg.family in FAMILIES


class TestGeneratedScenarios:
    def _explorable(self, count=60):
        return [cfg for cfg in generate_batch(BATCH_SEED, count)
                if cfg.explorable]

    def test_explorable_configs_compile_to_scenarios(self):
        for cfg in self._explorable():
            scenario = scenario_for(cfg)
            assert isinstance(scenario, CheckScenario)
            assert scenario.name == cfg.name
            assert "[generated]" in scenario.description

    def test_non_explorable_families_raise(self):
        calculus = next(cfg for cfg in generate_batch(BATCH_SEED, 60)
                        if cfg.family == "calculus")
        with pytest.raises(KeyError, match="not explorable"):
            scenario_for(calculus)

    def test_registry_namespace_resolves_generated_names(self):
        cfg = self._explorable()[0]
        scenario = build_scenario(cfg.name)
        assert scenario.name == cfg.name
        assert scenario.description \
            == generated_scenario(cfg.seed, cfg.index).description

    def test_malformed_generated_names_raise_keyerror(self):
        for name in ("generated:oops", "generated:1:2:3",
                     "generated:a:b"):
            with pytest.raises(KeyError, match="malformed"):
                build_scenario(name)

    def test_scenario_ref_pickles_and_rebuilds(self):
        # The regression this PR fixes: scenario closures don't pickle,
        # so workers ship a by-name reference and rebuild from
        # (seed, index) -- the round-trip must survive a real pickle.
        cfg = self._explorable()[0]
        ref = ScenarioRef(cfg.name)
        clone = pickle.loads(pickle.dumps(ref))
        scenario = clone.resolve()
        assert scenario.name == cfg.name
        programs, store = scenario.build()
        assert len(programs) == cfg.params["n"]

    def test_explorable_set_matches_builders(self):
        assert EXPLORABLE_FAMILIES \
            == {"blocking", "byzantine", "renaming", "snapshot"}
