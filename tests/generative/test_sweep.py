"""The ``sweep`` tier: oracle cross-checks over synthesized batches.

Run just this tier with ``pytest -m sweep``; the CLI twin is
``python -m repro sweep --seed S --count N``.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.analysis.metrics import (METRICS_SCHEMA_VERSION,
                                    deterministic_view)
from repro.generative import (FAMILIES, SolvabilityOracle,
                              config_from_choices, execute_config,
                              run_sweep)
from repro.mutants import (SWEEP_MUTANT_COUNT, SWEEP_MUTANT_SEED,
                           get_mutant)

pytestmark = pytest.mark.sweep

PINNED_SEED = 7


def _ceil(t, x):
    return -((-t) // x)


def _records(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestSweepLibrary:
    def test_pinned_batch_agrees_everywhere(self):
        result = run_sweep(PINNED_SEED, 40)
        assert not result.interrupted
        assert len(result.outcomes) == 40
        assert result.disagreements == []
        assert result.agreement_rate == 1.0

    def test_soak_200_configs_cover_all_families(self):
        # The acceptance bar: >= 200 synthesized configurations with
        # 100% oracle/exploration agreement.
        result = run_sweep(PINNED_SEED, 200)
        assert not result.interrupted
        assert len(result.outcomes) == 200
        assert result.disagreements == []
        assert set(result.family_counts) == set(FAMILIES)

    def test_outcome_records_are_replayable(self):
        result = run_sweep(PINNED_SEED, 20)
        for outcome in result.outcomes:
            record = outcome.to_dict()
            replayed = execute_config(
                config_from_choices(record["choices"]))
            assert replayed.observed == record["observed"]
            assert replayed.agree

    def test_timeout_interrupts_with_resume_state(self):
        interrupted = run_sweep(PINNED_SEED, 200, timeout=0.05)
        assert interrupted.interrupted
        assert interrupted.interrupt_reason == "timeout"
        assert interrupted.remaining
        assert len(interrupted.outcomes) + len(interrupted.remaining) \
            + len(interrupted.skipped) == 200
        # Resuming with the verified indices finishes the batch.
        resumed = run_sweep(PINNED_SEED, 200,
                            skip=interrupted.verified)
        assert not resumed.interrupted
        assert sorted(resumed.skipped) == sorted(interrupted.verified)
        assert len(resumed.outcomes) == 200 - len(interrupted.verified)

    def test_sweep_record_shape(self):
        record = run_sweep(PINNED_SEED, 12).to_record()
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["kind"] == "sweep"
        assert record["name"] == f"sweep:seed={PINNED_SEED}"
        data = record["data"]
        assert data["partial"] is False
        assert data["completed"] == list(range(12))
        assert data["remaining"] == []
        assert data["agreement_rate"] == 1.0
        assert len(data["outcomes"]) == 12


class TestInjectedDisagreement:
    """A planted ceil-oracle must be caught and shrunk."""

    def test_ceil_oracle_disagrees_and_shrinks(self):
        result = run_sweep(PINNED_SEED, 40,
                           oracle=SolvabilityOracle(index_fn=_ceil))
        assert result.disagreements
        witness = result.disagreements[0]
        assert witness.shrunk_choices is not None
        assert len(witness.shrunk_choices) <= len(witness.config.choices)
        # The shrunk tape still reproduces the disagreement under the
        # mutated oracle -- and agrees under the honest one.
        shrunk = config_from_choices(witness.shrunk_choices)
        assert not execute_config(
            shrunk, oracle=SolvabilityOracle(index_fn=_ceil)).agree
        assert execute_config(shrunk).agree

    def test_mutant_is_pinned_to_the_sweep_stage(self):
        assert get_mutant("oracle-ceil-index").detect() == "sweep"

    def test_honest_oracle_is_clean_on_the_mutant_batch(self):
        # The mutant is only evidence if the same pinned batch agrees
        # fully under the honest oracle.
        result = run_sweep(SWEEP_MUTANT_SEED, SWEEP_MUTANT_COUNT,
                           shrink=False)
        assert result.disagreements == []
        assert len(result.outcomes) == SWEEP_MUTANT_COUNT


class TestSweepCLI:
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "12"]) == 0
        out = capsys.readouterr().out
        assert "12/12 configs (complete)" in out
        assert "agreement rate 1.000" in out

    def test_describe_lists_the_batch(self, capsys):
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "4", "--describe"]) == 0
        out = capsys.readouterr().out
        assert f"generated:{PINNED_SEED}:0" in out
        assert "choices=" in out

    def test_replay_executes_a_bare_tape(self, capsys):
        assert main(["sweep", "--replay", "0,1,1"]) == 0
        out = capsys.readouterr().out
        assert "calculus" in out

    def test_bad_replay_tape_exits_two(self, capsys):
        assert main(["sweep", "--replay", "1,banana"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_bad_count_and_jobs_exit_two(self, capsys):
        assert main(["sweep", "--count", "0"]) == 2
        assert main(["sweep", "--jobs", "banana"]) == 2

    def test_metrics_out_writes_versioned_record(self, tmp_path):
        out_path = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "12", "--metrics-out", out_path]) == 0
        (record,) = _records(out_path)
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["kind"] == "sweep"
        assert record["data"]["partial"] is False

    def test_timeout_exits_three_with_partial_record(self, tmp_path,
                                                     capsys):
        out_path = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--timeout", "0.05",
                     "--metrics-out", out_path]) == 3
        assert "INTERRUPTED" in capsys.readouterr().err
        (record,) = _records(out_path)
        data = record["data"]
        assert data["partial"] is True
        assert data["interrupt_reason"] == "timeout"
        assert data["remaining"]
        assert len(data["completed"]) + len(data["remaining"]) == 200
        # Atomic write: no temp droppings next to the record.
        assert os.listdir(tmp_path) == ["sweep.jsonl"]

    def test_resume_skips_verified_configs(self, tmp_path, capsys):
        out_path = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--timeout", "0.05",
                     "--metrics-out", out_path]) == 3
        first = _records(out_path)[-1]["data"]
        capsys.readouterr()
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--resume", out_path]) == 0
        out = capsys.readouterr().out
        assert (f"skipping {len(first['verified'])} "
                f"verified configuration(s)") in out
        assert "(complete)" in out

    def test_resume_from_missing_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["sweep", "--resume", missing]) == 2
        assert "resume" in capsys.readouterr().err

    def _partial_record(self, tmp_path):
        out_path = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--timeout", "0.05",
                     "--metrics-out", out_path]) == 3
        return out_path

    def test_resume_validates_count(self, tmp_path, capsys):
        # The batch is a pure function of (seed, count, generator
        # version): resuming 200 verified indices into a --count 120
        # batch would skip the wrong configurations, silently.
        out_path = self._partial_record(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "120", "--resume", out_path]) == 2
        err = capsys.readouterr().err
        assert "--count 200" in err
        assert "original --count" in err

    def test_resume_validates_generator_version(self, tmp_path, capsys):
        out_path = self._partial_record(tmp_path)
        records = _records(out_path)
        for record in records:
            if record.get("kind") == "sweep":
                record["data"]["generator_version"] = 999
        with open(out_path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        capsys.readouterr()
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--resume", out_path]) == 2
        err = capsys.readouterr().err
        assert "grammar version 999" in err
        assert "rerun without --resume" in err

    def test_record_predating_version_field_is_accepted(self, tmp_path,
                                                        capsys):
        # Records written before the generator_version field existed
        # resume as if current -- the field's absence is not a mismatch.
        out_path = self._partial_record(tmp_path)
        records = _records(out_path)
        for record in records:
            if record.get("kind") == "sweep":
                record["data"].pop("generator_version")
        with open(out_path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        capsys.readouterr()
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "200", "--resume", out_path]) == 0

    def test_sweep_record_carries_generator_version(self, tmp_path):
        from repro.generative import GENERATOR_VERSION
        out_path = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "12", "--metrics-out", out_path]) == 0
        (record,) = _records(out_path)
        assert record["data"]["generator_version"] == GENERATOR_VERSION


@pytest.mark.parallel
class TestSweepJobs:
    """Sharded exploration under ``--jobs`` stays deterministic."""

    def test_jobs_sweep_passes(self, capsys):
        assert main(["sweep", "--seed", str(PINNED_SEED),
                     "--count", "20", "--jobs", "2"]) == 0
        assert "20/20 configs (complete)" in capsys.readouterr().out

    def test_golden_determinism_across_job_counts(self, tmp_path):
        # Acceptance bar: same --seed => bit-identical sweep records
        # (timing stripped) for jobs=1 vs jobs=4.
        views = {}
        for jobs in ("1", "4"):
            out_path = str(tmp_path / f"jobs{jobs}.jsonl")
            assert main(["sweep", "--seed", "11", "--count", "24",
                         "--jobs", jobs,
                         "--metrics-out", out_path]) == 0
            (record,) = _records(out_path)
            views[jobs] = json.dumps(deterministic_view(record),
                                     sort_keys=True)
        assert views["1"] == views["4"]


class TestGeneratedCheckNamespace:
    """``check`` understands the ``generated:`` namespace."""

    def test_check_list_shows_the_namespace(self, capsys):
        assert main(["check", "--list"]) == 0
        assert "generated:S:I" in capsys.readouterr().out

    def test_check_runs_a_generated_scenario(self, capsys):
        # generated:7:1 is a blocking config with crashes < x: the
        # oracle predicts pass and exploration must concur.
        assert main(["check", f"generated:{PINNED_SEED}:1"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "[generated]" in out

    def test_check_rejects_malformed_generated_names(self, capsys):
        assert main(["check", "generated:bogus"]) == 2
        assert "malformed" in capsys.readouterr().err

    @pytest.mark.parallel
    def test_check_generated_composes_with_jobs(self, capsys):
        assert main(["check", f"generated:{PINNED_SEED}:1",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "jobs=2" in out
