"""Generative corollary sweep: generator, oracle, and cross-check tier."""
