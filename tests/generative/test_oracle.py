"""The solvability oracle against the paper's calculus."""

import pytest

from repro.generative import (Prediction, SolvabilityOracle, floor_index,
                              reference_index)
from repro.generative.oracle import (PASS, SOLVABLE, UNSOLVABLE,
                                     VIOLATION)
from repro.model import ASM


class TestIndexFunctions:
    def test_floor_matches_reference_across_the_lattice(self):
        for t in range(0, 30):
            for x in range(1, 10):
                assert floor_index(t, x) == reference_index(t, x)

    def test_floor_matches_the_model_resilience_index(self):
        for t in range(0, 15):
            for x in range(1, 6):
                n = max(t + 1, x)
                assert floor_index(t, x) == \
                    ASM(n=n, t=t, x=x).resilience_index

    @pytest.mark.parametrize("t,x", [(-1, 1), (0, 0), (3, -2)])
    def test_invalid_arguments_raise(self, t, x):
        with pytest.raises(ValueError):
            floor_index(t, x)
        with pytest.raises(ValueError):
            reference_index(t, x)


class TestPredictions:
    def test_kset_threshold_is_exactly_the_index(self):
        oracle = SolvabilityOracle()
        for t in range(0, 13):
            for x in range(1, 7):
                index = t // x
                assert oracle.kset_solvable(t, x, index).verdict \
                    == UNSOLVABLE
                assert oracle.kset_solvable(t, x, index + 1).verdict \
                    == SOLVABLE

    def test_equivalence_is_equal_indices(self):
        oracle = SolvabilityOracle()
        assert oracle.equivalent(6, 3, 4, 2)       # both index 2
        assert not oracle.equivalent(6, 3, 6, 2)   # 2 vs 3

    def test_blocking_needs_x_crashes_and_a_survivor(self):
        oracle = SolvabilityOracle()
        assert oracle.blocking(3, 2, 1).verdict == PASS     # < x crashes
        assert oracle.blocking(3, 2, 2).verdict == VIOLATION
        assert oracle.blocking(2, 2, 2).verdict == PASS     # nobody left

    def test_value_only_byzantine_is_harmless(self):
        oracle = SolvabilityOracle()
        assert oracle.byzantine_value_faults(2, 0).verdict == PASS
        assert oracle.byzantine_value_faults(2, 1).verdict == VIOLATION

    def test_renaming_namespace_bound(self):
        oracle = SolvabilityOracle()
        assert oracle.renaming(3, 3).verdict == PASS
        assert oracle.renaming(3, 2).verdict == VIOLATION

    def test_kview_bound(self):
        oracle = SolvabilityOracle()
        assert oracle.kview(3, 2).verdict == PASS
        assert oracle.kview(3, 1).verdict == VIOLATION

    def test_prediction_renders_its_derivation(self):
        prediction = SolvabilityOracle().kset_solvable(5, 2, 3)
        assert isinstance(prediction, Prediction)
        assert "index(t=5,x=2)=2" in str(prediction)


class TestInjectedCeilOracle:
    """An off-by-one index flips verdicts -- what the mutant plants."""

    @staticmethod
    def _ceil(t, x):
        return -((-t) // x)

    def test_ceil_flips_non_multiple_lattice_points(self):
        honest = SolvabilityOracle()
        mutated = SolvabilityOracle(index_fn=self._ceil)
        flipped = [(t, x) for t in range(1, 13) for x in range(2, 7)
                   if honest.kset_solvable(t, x, t // x + 1).verdict
                   != mutated.kset_solvable(t, x, t // x + 1).verdict]
        # Every non-multiple (t, x) point flips at k = floor + 1.
        assert flipped == [(t, x) for t in range(1, 13)
                           for x in range(2, 7) if t % x]

    def test_ceil_agrees_on_exact_multiples(self):
        honest = SolvabilityOracle()
        mutated = SolvabilityOracle(index_fn=self._ceil)
        for t in (0, 2, 4, 6):
            for k in range(1, 5):
                assert honest.kset_solvable(t, 2, k).verdict \
                    == mutated.kset_solvable(t, 2, k).verdict
