"""ChoiceSource: recorded tapes, replay, and the shrinker."""

import pytest

from repro.generative import ChoiceSource, shrink_choices


class TestChoiceSource:
    def test_same_seed_index_same_tape(self):
        draws_a = [ChoiceSource.from_seed(7, 3).choose(100)
                   for _ in range(1)]
        source_a = ChoiceSource.from_seed(7, 3)
        source_b = ChoiceSource.from_seed(7, 3)
        tape_a = [source_a.choose(100) for _ in range(20)]
        tape_b = [source_b.choose(100) for _ in range(20)]
        assert tape_a == tape_b
        assert source_a.choices == tape_a
        assert draws_a[0] == tape_a[0]

    def test_distinct_indices_give_distinct_tapes(self):
        tapes = set()
        for index in range(10):
            source = ChoiceSource.from_seed(7, index)
            tapes.add(tuple(source.choose(1000) for _ in range(8)))
        assert len(tapes) == 10

    def test_choices_stay_in_bounds(self):
        source = ChoiceSource.from_seed(0, 0)
        for bound in (1, 2, 3, 17):
            for _ in range(50):
                assert 0 <= source.choose(bound) < bound

    def test_replay_regenerates_exact_values(self):
        source = ChoiceSource.from_seed(42, 0)
        original = [source.choose(50) for _ in range(12)]
        replayed = ChoiceSource.from_choices(source.choices)
        assert [replayed.choose(50) for _ in range(12)] == original
        assert replayed.replaying
        assert not source.replaying

    def test_replay_reduces_modulo_bound(self):
        # Mutated tapes with out-of-range values stay valid -- the
        # totality property the shrinker relies on.
        replayed = ChoiceSource.from_choices([100, 7])
        assert replayed.choose(3) == 100 % 3
        assert replayed.choose(5) == 7 % 5

    def test_exhausted_tape_pads_zero(self):
        replayed = ChoiceSource.from_choices([1])
        assert replayed.choose(4) == 1
        assert replayed.choose(4) == 0
        assert replayed.choose(9) == 0
        assert replayed.choices == [1, 0, 0]

    def test_pick_indexes_options(self):
        source = ChoiceSource.from_choices([2])
        assert source.pick(["a", "b", "c"]) == "c"

    def test_bad_bound_and_bad_construction_raise(self):
        with pytest.raises(ValueError):
            ChoiceSource.from_seed(0, 0).choose(0)
        with pytest.raises(ValueError):
            ChoiceSource.from_seed(0, -1)
        with pytest.raises(ValueError):
            ChoiceSource()


class TestShrinkChoices:
    def test_shrinks_to_locally_minimal_witness(self):
        # Failure: some element >= 10 somewhere in the tape.
        def still_fails(tape):
            return any(v >= 10 for v in tape)

        shrunk = shrink_choices([3, 50, 7, 12, 9, 40], still_fails)
        assert still_fails(shrunk)
        assert len(shrunk) == 1
        # Value lowering halves toward the boundary.
        assert shrunk[0] < 20

    def test_shrinking_is_deterministic(self):
        def still_fails(tape):
            return sum(tape) >= 25

        first = shrink_choices([9, 9, 9, 9, 9], still_fails)
        second = shrink_choices([9, 9, 9, 9, 9], still_fails)
        assert first == second
        assert still_fails(first)

    def test_respects_attempt_budget(self):
        calls = []

        def still_fails(tape):
            calls.append(1)
            return True

        shrink_choices(list(range(64)), still_fails, max_attempts=10)
        assert len(calls) <= 10

    def test_non_shrinkable_failure_survives_unchanged(self):
        target = (5, 6, 7)

        def still_fails(tape):
            return tuple(tape) == target

        assert shrink_choices(target, still_fails) == target
