"""The concrete algorithms, validated against their tasks."""

import pytest

from repro.algorithms import (Algorithm, ConsensusFromXCons,
                              ConsensusReadWriteFailureFree,
                              GroupedKSetFromXCons, IdentityAlgorithm,
                              KSetReadWrite, RenamingFromTAS,
                              WriteThenSnapshot, groups, group_of,
                              run_algorithm)
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import (ConsensusTask, DistinctValuesTask,
                         KSetAgreementTask)

from ..conftest import SEEDS, crash_subsets, run_and_validate


class TestKSetReadWrite:
    def test_requires_t_below_k(self):
        with pytest.raises(ValueError):
            KSetReadWrite(n=5, t=2, k=2)
        with pytest.raises(ValueError):
            KSetReadWrite(n=5, t=2, k=6)

    def test_model(self):
        assert KSetReadWrite(n=5, t=2, k=3).model() == ASM(5, 2, 1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_solves_kset_no_crash(self, seed):
        algo = KSetReadWrite(n=5, t=2, k=3)
        run_and_validate(algo, KSetAgreementTask(3), [3, 1, 4, 1, 5],
                         adversary=SeededRandomAdversary(seed))

    @pytest.mark.parametrize("victims", crash_subsets(5, 2, limit=8))
    def test_solves_kset_under_crashes(self, victims):
        algo = KSetReadWrite(n=5, t=2, k=3)
        run_and_validate(algo, KSetAgreementTask(3), [3, 1, 4, 1, 5],
                         crash_plan=CrashPlan.initially_dead(victims))

    def test_at_most_t_plus_1_values(self):
        # the decision bound is t+1, strictly tighter than k when k > t+1.
        algo = KSetReadWrite(n=6, t=1, k=3)
        res = run_algorithm(algo, [6, 5, 4, 3, 2, 1],
                            adversary=SeededRandomAdversary(3))
        assert len(res.decided_values) <= 2

    def test_failure_free_consensus(self):
        algo = ConsensusReadWriteFailureFree(4)
        run_and_validate(algo, ConsensusTask(), [4, 2, 9, 4])

    def test_blocks_beyond_resilience(self):
        # t+1 crashes: survivors wait forever for n-t inputs.
        algo = KSetReadWrite(n=4, t=1, k=2)
        res = run_algorithm(algo, [1, 2, 3, 4],
                            crash_plan=CrashPlan.initially_dead([0, 1]),
                            enforce_model=False)
        assert res.deadlocked
        assert res.blocked_pids == {2, 3}


class TestXConsAlgorithms:
    def test_consensus_needs_enough_ports(self):
        with pytest.raises(ValueError):
            ConsensusFromXCons(n=5, x=4)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_consensus_wait_free(self, seed):
        algo = ConsensusFromXCons(n=4, x=4)
        run_and_validate(algo, ConsensusTask(), [9, 9, 3, 1],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.initially_dead([2]))

    def test_grouping(self):
        assert groups(7, 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert group_of(5, 3) == 1

    @pytest.mark.parametrize("n,x", [(6, 2), (7, 3), (5, 5), (4, 1)])
    def test_grouped_kset_bound(self, n, x):
        algo = GroupedKSetFromXCons(n=n, x=x)
        k = -(-n // x)
        assert algo.k == k
        run_and_validate(algo, KSetAgreementTask(k), list(range(n)),
                         adversary=SeededRandomAdversary(1))

    def test_grouped_kset_wait_free_under_heavy_crashes(self):
        algo = GroupedKSetFromXCons(n=6, x=2)
        run_and_validate(algo, KSetAgreementTask(3), list(range(6)),
                         crash_plan=CrashPlan.initially_dead([0, 2, 3, 5]))


class TestRenaming:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_distinct_names(self, seed):
        algo = RenamingFromTAS(5)
        res = run_and_validate(algo, DistinctValuesTask(), [None] * 5,
                               adversary=SeededRandomAdversary(seed))
        assert set(res.decisions.values()) <= set(range(5))

    def test_adaptive_with_crashes(self):
        algo = RenamingFromTAS(5)
        res = run_algorithm(algo, [None] * 5,
                            crash_plan=CrashPlan.initially_dead([1, 3]))
        names = list(res.decisions.values())
        assert len(names) == len(set(names)) == 3


class TestTrivialAlgorithms:
    def test_identity(self):
        algo = IdentityAlgorithm(3)
        res = run_algorithm(algo, ["a", "b", "c"])
        assert res.decisions == {0: "a", 1: "b", 2: "c"}
        assert res.steps == 0

    def test_write_then_snapshot(self):
        algo = WriteThenSnapshot(3)
        res = run_algorithm(algo, ["a", "b", "c"])
        for pid, (value, seen) in res.decisions.items():
            assert value == ["a", "b", "c"][pid]
            assert 1 <= seen <= 3


class TestAlgorithmABC:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IdentityAlgorithm(0)
        with pytest.raises(ValueError):
            KSetReadWrite(n=0, t=0, k=1)

    def test_run_checks_input_length(self):
        with pytest.raises(ValueError, match="inputs"):
            run_algorithm(IdentityAlgorithm(3), [1, 2])

    def test_run_enforces_crash_budget(self):
        algo = KSetReadWrite(n=4, t=1, k=2)
        with pytest.raises(Exception):
            run_algorithm(algo, [1, 2, 3, 4],
                          crash_plan=CrashPlan.initially_dead([0, 1]))

    def test_repr_mentions_model(self):
        assert "ASM(5, 2, 1)" in repr(KSetReadWrite(n=5, t=2, k=3))


class TestKSetDecisionBoundTightness:
    def test_adversary_achieves_t_plus_1_distinct_values(self):
        """The t+1 bound on distinct kset_rw decisions is tight: a
        staircase schedule (largest inputs write first, each reader
        snapshots before the next smaller value lands) extracts a new
        minimum per reader."""
        from repro.runtime import ScriptedAdversary
        n, t = 5, 2
        algo = KSetReadWrite(n=n, t=t, k=3)
        # inputs ascending by pid: p0 holds the global minimum.
        inputs = [0, 1, 2, 3, 4]
        # schedule: p2,p3,p4 write (n-t = 3 values present, min 2);
        # p4 snapshots & decides 2; p1 writes; p3 snapshots (min 1);
        # p0 writes; everyone else finishes (min 0).
        script = [2, 3, 4,      # writes of 2,3,4
                  4,            # p4 snapshot -> decides 2
                  1,            # p1 writes 1
                  3,            # p3 snapshot -> decides 1
                  0]            # p0 writes 0; rest round-robin
        res = run_algorithm(algo, inputs,
                            adversary=ScriptedAdversary(script))
        assert len(res.decided_values) == t + 1
        assert res.decided_values == {0, 1, 2}
