"""Ω-boosted consensus: indulgent safety, wait-free liveness.

The boosting story of paper Section 1.3 made operational: consensus,
impossible in ASM(n, t>=1, 1), becomes wait-free solvable once the model
is enriched with Ω -- and the Ωx variant funnels through consensus-
number-x objects.
"""

import pytest

from repro.algorithms import run_algorithm
from repro.algorithms.omega_consensus import (OmegaConsensus,
                                              OmegaXClusterConsensus)
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import ConsensusTask

from ..conftest import SEEDS


class TestOmegaConsensus:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_stable_oracle_fast_decision(self, seed):
        algo = OmegaConsensus(n=4, stabilize_after=0)
        res = run_algorithm(algo, [10, 20, 30, 40],
                            adversary=SeededRandomAdversary(seed))
        verdict = ConsensusTask().validate_run([10, 20, 30, 40], res)
        assert verdict.ok, verdict.explain()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unstable_prefix_keeps_safety_and_terminates(self, seed):
        # Oracle misbehaves for 120 steps: rounds may churn, but
        # agreement must never break and everyone still decides.
        algo = OmegaConsensus(n=4, stabilize_after=120)
        res = run_algorithm(algo, [1, 2, 3, 4],
                            adversary=SeededRandomAdversary(seed),
                            max_steps=2_000_000)
        verdict = ConsensusTask().validate_run([1, 2, 3, 4], res)
        assert verdict.ok, verdict.explain()

    @pytest.mark.parametrize("victims", [[0], [0, 1], [0, 1, 2]])
    def test_wait_free_with_crashes(self, victims):
        # n-1 crashes tolerated: consensus is wait-free with Omega.
        algo = OmegaConsensus(n=4, stabilize_after=0)
        plan = CrashPlan.at_own_step({v: 3 + 2 * v for v in victims})
        res = run_algorithm(algo, [5, 6, 7, 8], crash_plan=plan,
                            max_steps=2_000_000)
        verdict = ConsensusTask().validate_run([5, 6, 7, 8], res)
        assert verdict.ok, verdict.explain()

    def test_leader_crash_mid_round_recovers(self):
        # crash the initial stable leader (p0) after it wrote a proposal:
        # the oracle re-elects and the rest converge.
        algo = OmegaConsensus(n=3, stabilize_after=0)
        plan = CrashPlan.at_own_step({0: 4})
        res = run_algorithm(algo, [9, 8, 7], crash_plan=plan,
                            max_steps=2_000_000)
        verdict = ConsensusTask().validate_run([9, 8, 7], res)
        assert verdict.ok, verdict.explain()

    def test_model_is_read_write_plus_oracle(self):
        algo = OmegaConsensus(n=4)
        assert algo.consensus_power() == 1  # only registers + oracle
        assert algo.model().wait_free


class TestOmegaXClusterConsensus:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("x", [1, 2, 3])
    def test_stable_oracle(self, seed, x):
        algo = OmegaXClusterConsensus(n=4, x=x, stabilize_after=0)
        res = run_algorithm(algo, [10, 20, 30, 40],
                            adversary=SeededRandomAdversary(seed),
                            max_steps=2_000_000)
        verdict = ConsensusTask().validate_run([10, 20, 30, 40], res)
        assert verdict.ok, verdict.explain()

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_unstable_prefix(self, seed):
        algo = OmegaXClusterConsensus(n=4, x=2, stabilize_after=150)
        res = run_algorithm(algo, [1, 2, 3, 4],
                            adversary=SeededRandomAdversary(seed),
                            max_steps=4_000_000)
        verdict = ConsensusTask().validate_run([1, 2, 3, 4], res)
        assert verdict.ok, verdict.explain()

    def test_wait_free_with_crashes(self):
        algo = OmegaXClusterConsensus(n=5, x=2, stabilize_after=0)
        plan = CrashPlan.at_own_step({0: 3, 1: 6, 2: 9})
        res = run_algorithm(algo, [4, 3, 2, 1, 0], crash_plan=plan,
                            max_steps=4_000_000)
        verdict = ConsensusTask().validate_run([4, 3, 2, 1, 0], res)
        assert verdict.ok, verdict.explain()

    def test_uses_consensus_number_x_objects(self):
        algo = OmegaXClusterConsensus(n=5, x=3)
        assert algo.consensus_power() == 3
        with pytest.raises(ValueError):
            OmegaXClusterConsensus(n=3, x=4)
