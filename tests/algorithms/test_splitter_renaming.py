"""Splitter-grid renaming: splitter invariants and grid renaming."""

import pytest

from repro.algorithms import run_algorithm
from repro.algorithms.splitter_renaming import (DOWN, RIGHT, STOP,
                                                SplitterGridRenaming,
                                                grid_name, splitter)
from repro.memory import build_store, make_spec
from repro.runtime import (CrashPlan, ObjectProxy, SeededRandomAdversary,
                           run_processes)
from repro.tasks import RenamingTask

from ..conftest import SEEDS


def run_splitter(n, seed):
    store = build_store([make_spec("register_family", "sx"),
                         make_spec("register_family", "sy")])
    x, y = ObjectProxy("sx"), ObjectProxy("sy")

    def prog(pid):
        out = yield from splitter(x, y, (0, 0), pid)
        return out

    return run_processes({i: prog(i) for i in range(n)}, store,
                         adversary=SeededRandomAdversary(seed))


class TestSplitter:
    @pytest.mark.parametrize("seed", SEEDS + list(range(20, 35)))
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_invariants(self, seed, n):
        res = run_splitter(n, seed)
        outcomes = list(res.decisions.values())
        assert outcomes.count(STOP) <= 1
        if n >= 2:
            assert outcomes.count(RIGHT) <= n - 1
            assert outcomes.count(DOWN) <= n - 1

    def test_solo_stops(self):
        res = run_splitter(1, 0)
        assert res.decisions[0] == STOP


class TestGridName:
    def test_triangular_numbering_injective(self):
        n = 6
        names = {grid_name(r, d, n)
                 for r in range(n) for d in range(n - r)}
        assert len(names) == n * (n + 1) // 2
        assert min(names) == 0
        assert max(names) == n * (n + 1) // 2 - 1


class TestGridRenaming:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_distinct_names_in_namespace(self, seed, n):
        algo = SplitterGridRenaming(n)
        res = run_algorithm(algo, [None] * n,
                            adversary=SeededRandomAdversary(seed))
        task = RenamingTask(n, namespace=algo.namespace)
        verdict = task.validate_run([None] * n, res)
        assert verdict.ok, verdict.explain()

    def test_wait_free_under_crashes(self):
        algo = SplitterGridRenaming(5)
        res = run_algorithm(algo, [None] * 5,
                            crash_plan=CrashPlan.at_own_step(
                                {0: 2, 2: 3, 4: 1}))
        names = list(res.decisions.values())
        assert len(names) == len(set(names))
        assert res.decided_pids == res.correct_pids

    def test_solo_gets_name_zero(self):
        algo = SplitterGridRenaming(4)
        res = run_algorithm(algo, [None] * 4,
                            crash_plan=CrashPlan.initially_dead([1, 2, 3]))
        assert res.decisions[0] == 0

    def test_adaptive_names_stay_low_for_few_participants(self):
        # with p participants names live in the triangle of size p.
        algo = SplitterGridRenaming(6)
        res = run_algorithm(algo, [None] * 6,
                            crash_plan=CrashPlan.initially_dead(
                                [3, 4, 5]))
        bound = 3 * (3 + 1) // 2
        assert all(name < bound for name in res.decisions.values())

    def test_bg_simulable_as_colored_source(self):
        """The grid renaming translates through the colored simulation
        (registers only on the source side)."""
        from repro.core import simulate_colored
        algo = SplitterGridRenaming(6)
        algo.resilience = 3
        sim = simulate_colored(algo, n_prime=4, t_prime=1, x_prime=2)
        res = run_algorithm(sim, [None] * 4,
                            adversary=SeededRandomAdversary(5),
                            max_steps=5_000_000)
        names = list(res.decisions.values())
        assert len(names) == len(set(names)) == 4


class TestImmediateSnapshotRenaming:
    @pytest.mark.parametrize("seed", SEEDS + list(range(20, 35)))
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_distinct_names_in_namespace(self, seed, n):
        from repro.algorithms.splitter_renaming import \
            ImmediateSnapshotRenaming
        algo = ImmediateSnapshotRenaming(n)
        res = run_algorithm(algo, [None] * n,
                            adversary=SeededRandomAdversary(seed))
        task = RenamingTask(n, namespace=algo.namespace)
        verdict = task.validate_run([None] * n, res)
        assert verdict.ok, verdict.explain()

    def test_wait_free_under_crashes(self):
        from repro.algorithms.splitter_renaming import \
            ImmediateSnapshotRenaming
        algo = ImmediateSnapshotRenaming(5)
        res = run_algorithm(algo, [None] * 5,
                            crash_plan=CrashPlan.at_own_step(
                                {0: 2, 2: 4, 4: 1}))
        names = list(res.decisions.values())
        assert len(names) == len(set(names))
        assert res.decided_pids == res.correct_pids

    def test_solo_gets_name_zero(self):
        from repro.algorithms.splitter_renaming import \
            ImmediateSnapshotRenaming
        algo = ImmediateSnapshotRenaming(4)
        res = run_algorithm(algo, [None] * 4,
                            crash_plan=CrashPlan.initially_dead(
                                [1, 2, 3]))
        assert res.decisions[0] == 0

    def test_exhaustive_two_processes(self):
        from repro.algorithms.splitter_renaming import \
            ImmediateSnapshotRenaming
        from repro.runtime.explore import explore
        algo = ImmediateSnapshotRenaming(2)

        def build():
            fresh = ImmediateSnapshotRenaming(2)
            store = fresh.build_store()
            return {i: fresh.program(i, None) for i in range(2)}, store

        def check(result):
            names = list(result.decisions.values())
            assert len(names) == len(set(names))
            assert all(0 <= v < 3 for v in names)

        stats = explore(build, check, max_steps=16)
        assert stats.complete_runs > 3
