"""Adopt-commit objects: validity, convergence, coherence, wait-freedom."""

import pytest

from repro.agreement.adopt_commit import (ADOPT, COMMIT, AdoptCommit,
                                          adopt_commit_specs)
from repro.memory import build_store
from repro.runtime import (CrashPlan, RoundRobinAdversary,
                           SeededRandomAdversary, run_processes)

from ..conftest import SEEDS


def run_round(n, values, seed=0, crash_plan=None):
    store = build_store(adopt_commit_specs(n))

    def proposer(pid):
        outcome = yield from AdoptCommit("k", n).propose(pid, values[pid])
        return outcome

    adversary = (RoundRobinAdversary() if seed is None
                 else SeededRandomAdversary(seed))
    return run_processes({i: proposer(i) for i in range(n)}, store,
                         adversary=adversary, crash_plan=crash_plan)


class TestAdoptCommit:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_convergence_unanimous_commit(self, seed):
        res = run_round(4, ["v"] * 4, seed=seed)
        assert all(out == (COMMIT, "v")
                   for out in res.decisions.values())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_validity(self, seed):
        values = [f"v{i}" for i in range(4)]
        res = run_round(4, values, seed=seed)
        for outcome, value in res.decisions.values():
            assert outcome in (COMMIT, ADOPT)
            assert value in values

    @pytest.mark.parametrize("seed", SEEDS + list(range(20, 40)))
    def test_coherence(self, seed):
        """If anyone commits v, every output's value is v."""
        values = [1, 1, 2, 2]
        res = run_round(4, values, seed=seed)
        committed = {v for out, v in res.decisions.values()
                     if out == COMMIT}
        assert len(committed) <= 1
        if committed:
            v = committed.pop()
            assert all(value == v
                       for _, value in res.decisions.values())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wait_free_under_crashes(self, seed):
        res = run_round(5, list(range(5)), seed=seed,
                        crash_plan=CrashPlan.at_own_step(
                            {0: 2, 1: 3, 2: 1, 3: 4}))
        assert res.decided_pids == res.correct_pids
        assert not res.deadlocked

    def test_solo_commit(self):
        res = run_round(3, ["a", "b", "c"], seed=None,
                        crash_plan=CrashPlan.initially_dead([1, 2]))
        assert res.decisions[0] == (COMMIT, "a")

    def test_sequential_disagreement_adopts(self):
        # Round-robin with distinct inputs: the first phase-1 snapshot of
        # a later process sees several values -> no unanimous commit by
        # everyone; coherence still limits committed values to <= 1.
        res = run_round(3, ["a", "b", "c"], seed=None)
        outcomes = list(res.decisions.values())
        committed = [v for o, v in outcomes if o == COMMIT]
        assert len(set(committed)) <= 1
