"""x-safe-agreement (paper Figure 6, Theorem 2).

The decisive property: killing the object costs the adversary x owner
crashes mid-propose; any x-1 crashes leave it live.  This is what turns
"t crashes block t processes" (BG) into "t' crashes block ⌊t'/x⌋
processes" (the multiplicative power).
"""

import pytest

from repro.agreement import XSafeAgreementFactory, set_list
from repro.memory import ObjectStore
from repro.runtime import (CrashPlan, SeededRandomAdversary, run_processes)

from ..conftest import SEEDS


def participant(factory, key, i, value):
    inst = factory.instance(key)
    yield from inst.propose(i, value)
    decided = yield from inst.decide(i)
    return decided


def fresh(n, x):
    factory = XSafeAgreementFactory(n, x)
    store = ObjectStore()
    store.add_all(factory.shared_objects())
    return factory, store


class TestSetList:
    def test_all_subsets_in_deterministic_order(self):
        subsets = set_list(4, 2)
        assert subsets == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert len(set_list(6, 3)) == 20  # C(6,3)

    def test_bounds(self):
        with pytest.raises(ValueError):
            set_list(3, 0)
        with pytest.raises(ValueError):
            set_list(3, 4)


class TestSafety:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n,x", [(4, 2), (5, 3), (3, 1)])
    def test_agreement_and_validity(self, seed, n, x):
        factory, store = fresh(n, x)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, adversary=SeededRandomAdversary(seed))
        assert res.decided_pids == set(range(n))
        assert len(res.decided_values) == 1
        assert res.decided_values <= {f"v{i}" for i in range(n)}

    def test_decided_value_comes_from_an_owner(self):
        factory, store = fresh(5, 2)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(5)},
            store)
        tas = store[factory.tas_name]
        owners = {tas.op_peek(0, ("k", ell)) for ell in range(2)}
        decided = next(iter(res.decided_values))
        assert decided in {f"v{i}" for i in owners}


class TestTermination:
    def test_survives_x_minus_1_owner_crashes(self):
        # x = 3: two owners crash mid-propose; the object still decides.
        n, x = 6, 3
        factory, store = fresh(n, x)
        # p0 wins TS[( k,0)] at its step 1, crashes at step 2 (mid-scan).
        # p1 loses slot 0, wins slot 1 (step 2), crashes at step 3.
        plan = CrashPlan.at_own_step({0: 2, 1: 3})
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert res.decided_pids == set(range(2, n))
        assert len(res.decided_values) == 1

    def test_dies_only_after_x_owner_crashes(self):
        # x = 2: both dynamic owners crash mid-propose -> deciders block.
        n, x = 5, 2
        factory, store = fresh(n, x)
        plan = CrashPlan.at_own_step({0: 2, 1: 3})  # both win then die
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert res.deadlocked
        assert res.blocked_pids == {2, 3, 4}

    def test_crashed_non_owner_is_free(self):
        # A process that crashes before winning any slot does not count
        # against the object's x lives (dynamic ownership, Section 4.3).
        n, x = 5, 2
        factory, store = fresh(n, x)
        # p0 wins slot 0 and crashes; p1 crashes BEFORE winning (it lost
        # slot 0 to p0 and dies before trying slot 1); the object lives.
        plan = CrashPlan.at_own_step({0: 2, 1: 2})
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert not res.deadlocked
        assert res.decided_pids == {2, 3, 4}

    def test_non_owner_propose_returns_without_deciding_value(self):
        # With > x invokers, losers return from propose immediately and
        # wait in decide for the owners' published value.
        n, x = 4, 1
        factory, store = fresh(n, x)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store)
        assert len(res.decided_values) == 1

    def test_x_equals_1_degenerates_to_safe_agreement_liveness(self):
        # x = 1: a single owner; its crash mid-propose kills the object.
        n, x = 3, 1
        factory, store = fresh(n, x)
        plan = CrashPlan.at_own_step({0: 2})
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert res.deadlocked
        assert res.blocked_pids == {1, 2}


class TestScanDiscipline:
    def test_owners_funnel_through_common_subset(self):
        # After the run, all consensus instances containing both owners
        # must have decided the same value as the register.
        n, x = 4, 2
        factory, store = fresh(n, x)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store)
        reg = store[factory.reg_name]
        final = reg.op_read(0, "k")
        assert {final} == res.decided_values
