"""x_compete (paper Figure 5): at most x winners; <= x invokers all win."""

import pytest

from repro.agreement import x_compete
from repro.memory import ObjectStore, TASFamily
from repro.runtime import (CrashPlan, ObjectProxy, SeededRandomAdversary,
                           run_processes)

from ..conftest import SEEDS

TS = ObjectProxy("TS")


def competitor(key, x, i):
    won = yield from x_compete(TS, key, x, i)
    return won


def fresh():
    store = ObjectStore()
    store.add(TASFamily("TS"))
    return store


class TestXCompete:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n,x", [(5, 2), (6, 3), (4, 1), (4, 4)])
    def test_at_most_x_winners(self, seed, n, x):
        store = fresh()
        res = run_processes(
            {i: competitor("k", x, i) for i in range(n)},
            store, adversary=SeededRandomAdversary(seed))
        winners = [pid for pid, won in res.decisions.items() if won]
        assert len(winners) <= x
        # With n >= x competitors and no crashes, exactly x win.
        if n >= x:
            assert len(winners) == x

    @pytest.mark.parametrize("seed", SEEDS)
    def test_at_most_x_invokers_all_correct_win(self, seed):
        x = 3
        store = fresh()
        res = run_processes(
            {i: competitor("k", x, i) for i in range(3)},  # exactly x
            store, adversary=SeededRandomAdversary(seed))
        assert all(res.decisions.values())

    def test_crashed_winner_consumes_a_slot(self):
        # p0 wins TS[0] and crashes right after (before a tail step);
        # with x = 2 only one more slot remains: exactly one of the other
        # invokers wins.
        x = 2
        store = fresh()

        def competitor_with_tail(key, i):
            won = yield from x_compete(TS, key, x, i)
            yield TS.peek((key, 0))  # tail step so the winner can crash
            return won

        res = run_processes(
            {i: competitor_with_tail("k", i) for i in range(4)},
            store, crash_plan=CrashPlan.at_own_step({0: 2}))
        winners = [pid for pid, won in res.decisions.items() if won]
        assert len(winners) == 1
        assert 0 not in res.decisions
        assert store["TS"].op_peek(1, ("k", 0)) == 0  # p0 holds slot 0

    def test_fewer_invokers_than_x_with_crash_still_all_win(self):
        # Figure 5's guarantee: "if x or less processes invoke it, the
        # ones that do not crash all obtain true" -- ownership is dynamic.
        x = 3
        store = fresh()
        res = run_processes(
            {i: competitor("k", x, i) for i in range(3)},
            store, crash_plan=CrashPlan.at_own_step({1: 2}))
        assert res.decisions[0] is True
        assert res.decisions[2] is True

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            list(x_compete(TS, "k", 0, 0))

    def test_loser_scans_all_slots(self):
        # With x slots already taken, a late invoker returns False after
        # exactly x test&sets.
        x = 2
        store = fresh()
        res = run_processes({i: competitor("k", x, i) for i in range(2)},
                            store)
        assert all(res.decisions.values())
        res2 = run_processes({5: competitor("k", x, 5)}, store)
        assert res2.decisions[5] is False
        assert res2.steps == x
