"""Safe-agreement (paper Figure 1): agreement, validity, termination,
and the one-crash-kills-it behavior the BG simulation is built around."""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import (CrashPlan, ProcessStatus, RoundRobinAdversary,
                           SeededRandomAdversary, run_processes)

from ..conftest import SEEDS


def participant(factory, key, i, value):
    inst = factory.instance(key)
    yield from inst.propose(i, value)
    decided = yield from inst.decide(i)
    return decided


def fresh(n):
    factory = SafeAgreementFactory(n)
    store = ObjectStore()
    store.add_all(factory.shared_objects())
    return factory, store


class TestSafety:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_agreement_and_validity(self, seed):
        n = 4
        factory, store = fresh(n)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, adversary=SeededRandomAdversary(seed))
        assert res.decided_pids == set(range(n))
        assert len(res.decided_values) == 1            # agreement
        assert res.decided_values <= {f"v{i}" for i in range(n)}  # validity

    def test_solo_run_decides_own_value(self):
        factory, store = fresh(3)
        res = run_processes({1: participant(factory, "k", 1, "solo")},
                            store)
        assert res.decisions[1] == "solo"

    def test_smallest_stable_id_wins_under_round_robin(self):
        # Under round-robin all proposals stabilize; the value of the
        # smallest simulator id is decided (Figure 1, line 05).
        n = 3
        factory, store = fresh(n)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, adversary=RoundRobinAdversary())
        assert res.decided_values == {"v0"}

    def test_independent_keys_are_independent_objects(self):
        factory, store = fresh(2)
        res = run_processes(
            {0: participant(factory, "a", 0, "x"),
             1: participant(factory, "b", 1, "y")},
            store)
        assert res.decisions == {0: "x", 1: "y"}


class TestTermination:
    def test_crash_outside_propose_does_not_block(self):
        # p0 crashes after completing propose (before deciding).
        n = 3
        factory, store = fresh(n)
        plan = CrashPlan.at_own_step({0: 4})  # propose = 3 steps; crash next
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert res.decided_pids == {1, 2}
        assert len(res.decided_values) == 1

    def test_crash_mid_propose_blocks_deciders(self):
        # p0 crashes between its (v,1) write and its stabilizing write:
        # the unstable entry never resolves, deciders block forever --
        # exactly the scenario mutex1 confines in the BG simulation.
        n = 3
        factory, store = fresh(n)
        plan = CrashPlan.at_own_step({0: 2})
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=plan)
        assert res.deadlocked
        assert res.blocked_pids == {1, 2}
        assert res.statuses[0] is ProcessStatus.CRASHED

    def test_crash_before_any_step_is_harmless(self):
        n = 3
        factory, store = fresh(n)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, crash_plan=CrashPlan.initially_dead([2]))
        assert res.decided_pids == {0, 1}
        assert len(res.decided_values) == 1


class TestCancellation:
    def test_late_proposer_cancels_and_adopts_stable_value(self):
        # p1 runs alone to stability first; p0 then proposes, sees a
        # stable value, cancels its own, and decides p1's value even
        # though p0 has the smaller id.
        from repro.runtime import PriorityAdversary
        n = 2
        factory, store = fresh(n)
        res = run_processes(
            {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
            store, adversary=PriorityAdversary([1, 0]))
        assert res.decided_values == {"v1"}
