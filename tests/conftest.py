"""Shared test helpers."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence

import pytest

from repro.algorithms import Algorithm, run_algorithm
from repro.runtime import (CrashPlan, RoundRobinAdversary,
                           SeededRandomAdversary)
from repro.tasks import Task


#: Seeds used by schedule-randomized tests.  Kept small-ish so the suite
#: stays fast while still exercising many interleavings.
SEEDS = [0, 1, 2, 3, 7, 11, 42]


def adversaries(seeds: Iterable[int] = SEEDS):
    """Round-robin plus a battery of seeded random adversaries."""
    yield RoundRobinAdversary()
    for seed in seeds:
        yield SeededRandomAdversary(seed)


def run_and_validate(algorithm: Algorithm,
                     task: Task,
                     inputs: Sequence[Any],
                     adversary=None,
                     crash_plan: Optional[CrashPlan] = None,
                     max_steps: int = 2_000_000,
                     require_liveness: bool = True,
                     enforce_model: bool = True):
    """Run an algorithm and assert the task verdict; returns the result."""
    result = run_algorithm(algorithm, inputs, adversary=adversary,
                           crash_plan=crash_plan, max_steps=max_steps,
                           enforce_model=enforce_model)
    assert not result.out_of_steps, (
        f"{algorithm.name}: step budget exhausted ({result.summary()})")
    verdict = task.validate_run(inputs, result,
                                require_liveness=require_liveness)
    assert verdict.ok, (
        f"{algorithm.name}: {verdict.explain()} ({result.summary()})")
    return result


def crash_subsets(n: int, t: int, limit: int = 10) -> List[List[int]]:
    """A selection of crash victim sets of size <= t among n processes."""
    subsets: List[List[int]] = [[]]
    for size in range(1, t + 1):
        for combo in itertools.combinations(range(n), size):
            subsets.append(list(combo))
            if len(subsets) >= limit:
                return subsets
    return subsets
