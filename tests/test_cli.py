"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_classes(self, capsys):
        assert main(["classes", "12", "8"]) == 0
        out = capsys.readouterr().out
        assert "ASM(n, 4, 1)" in out
        assert "9 <= x <= 12" in out

    def test_band(self, capsys):
        assert main(["band", "2", "3"]) == 0
        assert "6 <= t' <= 8" in capsys.readouterr().out

    def test_solve_possible_runs_construction(self, capsys):
        assert main(["solve", "5", "3", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "SOLVABLE" in out
        assert "task verdict: ok" in out

    def test_solve_impossible_exits_nonzero(self, capsys):
        assert main(["solve", "6", "5", "2", "2"]) == 1
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_solve_read_write_case(self, capsys):
        assert main(["solve", "5", "1", "1", "2"]) == 0
        assert "SOLVABLE" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "preserved" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCheckCommand:
    """``python -m repro check``: exit codes 0 / 1 / 2."""

    def test_list_scenarios(self, capsys):
        assert main(["check", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("safe-agreement", "adopt-commit", "x-safe-agreement",
                     "queue-2cons", "broken-demo"):
            assert name in out

    def test_passing_scenario_exits_zero(self, capsys):
        assert main(["check", "queue-2cons"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "pruned" in out  # DPOR is the default engine

    def test_sized_scenario_exits_zero(self, capsys):
        assert main(["check", "adopt-commit", "--n", "2"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_violation_exits_one_with_shrunk_counterexample(self, capsys):
        assert main(["check", "broken-demo"]) == 1
        out = capsys.readouterr().out
        assert "PROPERTY VIOLATED" in out
        assert "shrunk from" in out
        assert "prefix" in out

    def test_budget_exceeded_exits_two(self, capsys):
        assert main(["check", "adopt-commit", "--max-runs", "2"]) == 2
        assert "BUDGET EXCEEDED" in capsys.readouterr().err

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["check", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_naive_violation_reports_cleanly(self, capsys):
        assert main(["check", "broken-demo", "--naive"]) == 1
        out = capsys.readouterr().out
        assert "PROPERTY VIOLATED" in out
        assert "rerun without --naive" in out

    def test_naive_flag_matches_dpor_verdict(self, capsys):
        assert main(["check", "queue-2cons", "--naive"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "pruned" not in out
