"""The ``python -m repro`` command-line interface."""

import os

import pytest

from repro.__main__ import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_FIXTURE = os.path.join(REPO_ROOT, "tests", "lint", "fixtures",
                            "broken_protocol.py")


class TestCLI:
    def test_classes(self, capsys):
        assert main(["classes", "12", "8"]) == 0
        out = capsys.readouterr().out
        assert "ASM(n, 4, 1)" in out
        assert "9 <= x <= 12" in out

    def test_band(self, capsys):
        assert main(["band", "2", "3"]) == 0
        assert "6 <= t' <= 8" in capsys.readouterr().out

    def test_solve_possible_runs_construction(self, capsys):
        assert main(["solve", "5", "3", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "SOLVABLE" in out
        assert "task verdict: ok" in out

    def test_solve_impossible_exits_nonzero(self, capsys):
        assert main(["solve", "6", "5", "2", "2"]) == 1
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_solve_read_write_case(self, capsys):
        assert main(["solve", "5", "1", "1", "2"]) == 0
        assert "SOLVABLE" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "preserved" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCheckCommand:
    """``python -m repro check``: exit codes 0 / 1 / 2."""

    def test_list_scenarios(self, capsys):
        assert main(["check", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("safe-agreement", "adopt-commit", "x-safe-agreement",
                     "queue-2cons", "broken-demo"):
            assert name in out

    def test_list_flag_enumerates_scenarios(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("safe-agreement", "adopt-commit", "x-safe-agreement",
                     "queue-2cons", "broken-demo"):
            assert name in out

    def test_missing_scenario_lists_but_exits_two(self, capsys):
        assert main(["check"]) == 2
        captured = capsys.readouterr()
        assert "no scenario given" in captured.err
        assert "safe-agreement" in captured.out

    def test_passing_scenario_exits_zero(self, capsys):
        assert main(["check", "queue-2cons"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "pruned" in out  # DPOR is the default engine

    def test_sized_scenario_exits_zero(self, capsys):
        assert main(["check", "adopt-commit", "--n", "2"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_violation_exits_one_with_shrunk_counterexample(self, capsys):
        assert main(["check", "broken-demo"]) == 1
        out = capsys.readouterr().out
        assert "PROPERTY VIOLATED" in out
        assert "shrunk from" in out
        assert "prefix" in out

    def test_max_runs_interrupt_exits_three(self, capsys):
        assert main(["check", "adopt-commit", "--max-runs", "2"]) == 3
        err = capsys.readouterr().err
        assert "INTERRUPTED" in err
        assert "max_runs" in err

    def test_timeout_interrupt_exits_three(self, capsys):
        # A zero-width wall-clock budget interrupts even the smallest
        # sweep on the first deadline check.
        assert main(["check", "adopt-commit",
                     "--timeout", "0.000001"]) == 3
        err = capsys.readouterr().err
        assert "INTERRUPTED" in err
        assert "timeout" in err

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["check", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_naive_violation_reports_cleanly(self, capsys):
        assert main(["check", "broken-demo", "--naive"]) == 1
        out = capsys.readouterr().out
        assert "PROPERTY VIOLATED" in out
        assert "rerun without --naive" in out

    def test_naive_flag_matches_dpor_verdict(self, capsys):
        assert main(["check", "queue-2cons", "--naive"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "pruned" not in out


@pytest.mark.parallel
class TestCheckJobsFlag:
    """``check --jobs``: sharded exploration end-to-end (exit 0/1/2)."""

    def test_jobs_passes_and_reports_job_count(self, capsys):
        assert main(["check", "queue-2cons", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "jobs=2" in out

    def test_jobs_auto_resolves_to_cpu_count(self, capsys):
        assert main(["check", "queue-2cons", "--jobs", "auto"]) == 0
        out = capsys.readouterr().out
        assert f"jobs={os.cpu_count() or 1}" in out

    @pytest.mark.parametrize("bad", ["0", "-3", "banana", "2.5"])
    def test_bad_jobs_value_exits_two(self, bad, capsys):
        assert main(["check", "queue-2cons", "--jobs", bad]) == 2
        assert "positive integer or 'auto'" in capsys.readouterr().err

    def test_violation_still_shrinks_under_jobs(self, capsys):
        assert main(["check", "broken-demo", "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "PROPERTY VIOLATED" in out
        assert "shrunk from" in out

    def test_naive_reduction_composes_with_jobs(self, capsys):
        assert main(["check", "queue-2cons", "--naive",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "naive" in out and "jobs=2" in out

    def test_max_runs_interrupt_exits_three_under_jobs(self, capsys):
        assert main(["check", "adopt-commit", "--max-runs", "2",
                     "--jobs", "2"]) == 3
        err = capsys.readouterr().err
        assert "INTERRUPTED" in err
        assert "max_runs" in err


@pytest.mark.parallel
class TestAuditJobsFlag:
    """``audit --jobs``: the adversary battery on a worker pool."""

    def test_jobs_audit_passes(self, capsys):
        assert main(["audit", "queue-2cons", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "AUDIT PASSED" in out
        assert "operations audited" in out

    def test_bad_jobs_value_exits_two(self, capsys):
        assert main(["audit", "queue-2cons", "--jobs", "nope"]) == 2
        assert "positive integer or 'auto'" in capsys.readouterr().err


@pytest.mark.metrics
class TestMetricsFlags:
    """``--metrics`` / ``--metrics-out``: machine-readable run records."""

    @staticmethod
    def _records(path):
        import json
        with open(path) as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def test_metrics_table_rides_along_with_check(self, capsys):
        assert main(["check", "safe-agreement", "--n", "2",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "runs/s" in out

    def test_metrics_out_writes_versioned_jsonl(self, tmp_path):
        from repro.analysis.metrics import METRICS_SCHEMA_VERSION
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["check", "safe-agreement", "--n", "2",
                     "--metrics-out", out_path]) == 0
        (record,) = self._records(out_path)
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["kind"] == "exploration"
        assert record["scenario"] == "safe-agreement"
        assert record["outcome"] == "passed"
        assert record["total_runs"] > 0

    def test_jobs_record_deterministically_matches_serial(self, tmp_path):
        """Acceptance bar: jobs=4 record == jobs=1 record byte-for-byte
        once the timing/worker fields are stripped."""
        import json

        from repro.analysis.metrics import deterministic_view
        views = {}
        for jobs in ("1", "4"):
            out_path = str(tmp_path / f"jobs{jobs}.jsonl")
            assert main(["check", "safe-agreement", "--n", "2",
                         "--jobs", jobs, "--metrics-out", out_path]) == 0
            (record,) = self._records(out_path)
            views[jobs] = json.dumps(deterministic_view(record),
                                     sort_keys=True)
        assert views["1"] == views["4"]

    def test_violation_record_carries_shrunk_counterexample(self,
                                                            tmp_path,
                                                            capsys):
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["check", "broken-demo",
                     "--metrics-out", out_path]) == 1
        (record,) = self._records(out_path)
        assert record["outcome"] == "violation"
        assert record["violation"]["error_type"] == "AssertionError"
        assert record["violation"]["schedule"]
        assert record["ddmin_replays"] > 0

    def test_interrupted_record_is_partial(self, tmp_path, capsys):
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["check", "adopt-commit", "--max-runs", "2",
                     "--metrics-out", out_path]) == 3
        (record,) = self._records(out_path)
        assert record["outcome"] == "interrupted"
        assert record["partial"] is True
        assert record["interrupt_reason"] == "max_runs"
        # The partial stats carried by the interruption land in the
        # record: coverage up to the budget, not zeros.
        assert record["total_runs"] == 2

    def test_timeout_record_is_partial_and_atomic(self, tmp_path,
                                                  capsys):
        """An interrupted sweep still writes one atomic record -- no
        temp droppings next to it (the mkstemp+replace contract)."""
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["check", "adopt-commit", "--timeout", "0.000001",
                     "--metrics-out", out_path]) == 3
        (record,) = self._records(out_path)
        assert record["outcome"] == "interrupted"
        assert record["partial"] is True
        assert record["interrupt_reason"] == "timeout"
        assert os.listdir(tmp_path) == ["metrics.jsonl"]

    def test_audit_emits_run_metrics(self, tmp_path):
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["audit", "queue-2cons",
                     "--metrics-out", out_path]) == 0
        (record,) = self._records(out_path)
        assert record["kind"] == "audit"
        assert record["name"] == "queue-2cons"
        assert record["data"]["outcome"] == "passed"
        assert record["data"]["audited_ops"] > 0

    def test_audit_record_reproduces_adversary_seeds(self, tmp_path):
        """The audit record names every adversary *with its seed*, so a
        failing randomized audit replays from the record alone."""
        from repro.lint.audit import DEFAULT_AUDIT_SEEDS
        out_path = str(tmp_path / "metrics.jsonl")
        assert main(["audit", "queue-2cons",
                     "--metrics-out", out_path]) == 0
        (record,) = self._records(out_path)
        adversaries = record["data"]["adversaries"]
        assert "RoundRobinAdversary()" in adversaries
        for seed in DEFAULT_AUDIT_SEEDS:
            assert f"SeededRandomAdversary(seed={seed})" in adversaries


class TestLintCommand:
    """``python -m repro lint``: exit codes 0 / 1 / 2."""

    def test_clean_repo_exits_zero(self, capsys):
        src = os.path.join(REPO_ROOT, "src", "repro")
        assert main(["lint", src]) == 0

    def test_planted_bugs_exit_one_with_findings(self, capsys):
        assert main(["lint", LINT_FIXTURE]) == 1
        out = capsys.readouterr().out
        for code in ("D101", "N201", "Y301", "X401"):
            assert code in out
        assert "violation(s)" in out

    def test_select_restricts_rules(self, capsys):
        assert main(["lint", LINT_FIXTURE, "--select", "Y301"]) == 1
        out = capsys.readouterr().out
        assert "Y301" in out
        assert "D101" not in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", LINT_FIXTURE, "--select", "Z999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/path.py"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("D101", "N201", "Y301", "X401"):
            assert code in out


class TestAuditCommand:
    """``python -m repro audit``: exit codes 0 / 1 / 2."""

    def test_clean_scenario_exits_zero(self, capsys):
        assert main(["audit", "queue-2cons"]) == 0
        out = capsys.readouterr().out
        assert "AUDIT PASSED" in out
        assert "operations audited" in out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["audit", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_budget_exceeded_exits_two(self, capsys):
        assert main(["audit", "queue-2cons", "--max-steps", "2"]) == 2
        assert "BUDGET EXCEEDED" in capsys.readouterr().err

    def test_violation_exits_one(self, capsys, monkeypatch):
        # Swap a scenario's store for one with a lying footprint.
        from repro import scenarios as scen
        from tests.lint.fixtures.broken_protocol import SpyingRegister

        real = scen.check_scenarios
        def sabotaged(n=3, x=2):
            registry = real(n=n, x=x)
            sc = registry["queue-2cons"]
            original_build = sc.build

            def build():
                programs, store = original_build()
                store.add(SpyingRegister("spy"))
                from repro.runtime import Invocation

                def spy_prog():
                    yield Invocation("spy", "write", ("a",))
                    yield Invocation("spy", "write", ("b",))

                programs[99] = spy_prog()
                return programs, store

            sc.build = build
            return registry

        monkeypatch.setattr(scen, "check_scenarios", sabotaged)
        assert main(["audit", "queue-2cons"]) == 1
        out = capsys.readouterr().out
        assert "FOOTPRINT VIOLATION" in out
        assert "read-soundness" in out
