"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_classes(self, capsys):
        assert main(["classes", "12", "8"]) == 0
        out = capsys.readouterr().out
        assert "ASM(n, 4, 1)" in out
        assert "9 <= x <= 12" in out

    def test_band(self, capsys):
        assert main(["band", "2", "3"]) == 0
        assert "6 <= t' <= 8" in capsys.readouterr().out

    def test_solve_possible_runs_construction(self, capsys):
        assert main(["solve", "5", "3", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "SOLVABLE" in out
        assert "task verdict: ok" in out

    def test_solve_impossible_exits_nonzero(self, capsys):
        assert main(["solve", "6", "5", "2", "2"]) == 1
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_solve_read_write_case(self, capsys):
        assert main(["solve", "5", "1", "1", "2"]) == 0
        assert "SOLVABLE" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "preserved" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
