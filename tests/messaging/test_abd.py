"""ABD register emulation: atomicity, liveness, quorum limits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import RegisterSpec, check_linearizable
from repro.messaging import MessageCrash, ReadOp, WriteOp, run_abd

from ..conftest import SEEDS


class TestABDBasics:
    def test_read_before_any_write(self):
        res, hist = run_abd(3, 1, writer=0, scripts=[[], [ReadOp()], []])
        assert hist[0].result is None

    def test_write_then_read(self):
        res, hist = run_abd(3, 1, writer=0,
                            scripts=[[WriteOp("v")], [ReadOp()], []],
                            seed=1)
        assert not res.stalled
        assert check_linearizable(hist, RegisterSpec())

    def test_writer_enforced(self):
        with pytest.raises(ValueError, match="owned"):
            run_abd(3, 1, writer=0, scripts=[[], [WriteOp("x")], []])

    def test_quorum_requirement_checked(self):
        with pytest.raises(ValueError, match="n/2"):
            run_abd(4, 2, writer=0, scripts=[[], [], [], []])


class TestABDAtomicity:
    @pytest.mark.parametrize("seed", SEEDS + list(range(20, 40)))
    def test_linearizable_under_adversarial_delivery(self, seed):
        res, hist = run_abd(
            4, 1, writer=0,
            scripts=[[WriteOp("a"), WriteOp("b"), WriteOp("c")],
                     [ReadOp(), ReadOp()],
                     [ReadOp(), ReadOp()],
                     [ReadOp()]],
            seed=seed)
        assert not res.stalled
        assert res.decided_pids == {0, 1, 2, 3}
        assert check_linearizable(hist, RegisterSpec()), \
            sorted(hist, key=lambda r: r.start)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_linearizable_with_t_crashes(self, seed):
        res, hist = run_abd(
            5, 2, writer=0,
            scripts=[[WriteOp("a"), WriteOp("b")],
                     [ReadOp(), ReadOp()],
                     [ReadOp()],
                     [], []],
            crashes=[MessageCrash(3, after_events=2),
                     MessageCrash(4, after_events=4)],
            seed=seed)
        assert not res.stalled
        # all clients finish: crashes hit pure replicas, quorum = 3 holds.
        assert {0, 1, 2} <= res.decided_pids
        assert check_linearizable(hist, RegisterSpec())

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_new_old_inversion_impossible(self, seed):
        """Two sequential reads by different processes cannot observe
        values in anti-timestamp order (the write-back at work)."""
        res, hist = run_abd(
            4, 1, writer=0,
            scripts=[[WriteOp(1), WriteOp(2)],
                     [ReadOp()],
                     [ReadOp()],
                     []],
            seed=seed)
        assert check_linearizable(hist, RegisterSpec())
        reads = sorted((r for r in hist if r.op == "read"),
                       key=lambda r: r.start)
        for a in reads:
            for b in reads:
                if a.end < b.start and a.result == 2:
                    assert b.result == 2


class TestABDLiveness:
    def test_stalls_when_quorum_lost(self):
        # n=4, t=1, quorum=3; two crashed replicas leave only 2 alive.
        res, hist = run_abd(
            4, 1, writer=0,
            scripts=[[WriteOp("a")], [ReadOp()], [], []],
            crashes=[MessageCrash(2, after_events=0),
                     MessageCrash(3, after_events=0)],
            max_events=5_000)
        assert res.stalled or res.delivered == 5_000
        assert not res.decisions

    def test_survives_exactly_t_initially_dead(self):
        res, hist = run_abd(
            5, 2, writer=0,
            scripts=[[WriteOp("a")], [ReadOp()], [], [], []],
            crashes=[MessageCrash(3, after_events=0),
                     MessageCrash(4, after_events=0)],
            seed=5)
        assert not res.stalled
        assert {0, 1} <= res.decided_pids


class TestABDProperty:
    @given(seed=st.integers(0, 50_000),
           n_writes=st.integers(1, 3),
           crash_replica=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_always_linearizable(self, seed, n_writes, crash_replica):
        crashes = [MessageCrash(3, after_events=3)] if crash_replica \
            else []
        res, hist = run_abd(
            4, 1, writer=0,
            scripts=[[WriteOp(i) for i in range(n_writes)],
                     [ReadOp(), ReadOp()],
                     [ReadOp()],
                     []],
            crashes=crashes, seed=seed)
        assert not res.stalled
        assert check_linearizable(hist, RegisterSpec())


class TestTimestampDerivationRegression:
    def test_writer_counter_not_replica_derived(self):
        """Regression for the timestamp-collision bug (EXPERIMENTS.md,
        finding F3): deriving the write timestamp from the replica state
        lets two writes share a timestamp when the writer's self-STORE
        is still in flight; n=7/seed=2 produced a stale read after a
        completed write.  The writer-local counter fixes it."""
        res, hist = run_abd(
            7, 3, writer=0,
            scripts=[[WriteOp("a"), WriteOp("b")],
                     [ReadOp(), ReadOp()],
                     [ReadOp()]] + [[] for _ in range(4)],
            seed=2)
        assert check_linearizable(hist, RegisterSpec())
        # timestamps of the two writes must differ:
        writes = [r for r in hist if r.op == "write"]
        assert len(writes) == 2

    def test_own_replica_reflects_own_writes_immediately(self):
        from repro.messaging.abd import ABDProcess
        clock = iter(range(1000)).__next__
        p = ABDProcess(0, 3, 1, writer=0, script=[WriteOp("x")],
                       clock=clock)
        p.start()
        assert p.ts == (1, 0)
        assert p.value == "x"
