"""Message-level fault plans: drop, duplicate, delay, reorder."""

import pytest

from repro.analysis import RegisterSpec, check_linearizable
from repro.messaging import (DelayFault, DropFault, DuplicateFault,
                             Envelope, MessageCrash, MessageFaultPlan,
                             ReadOp, ReorderFault, WriteOp, run_abd,
                             run_messaging)

from .test_engine import Echo


def _alloc():
    uids = iter(range(1000, 2000))
    return lambda: next(uids)


class TestRules:
    def test_occurrence_must_be_positive(self):
        with pytest.raises(ValueError):
            DropFault(occurrence=0)

    def test_drop_selects_kth_match(self):
        plan = MessageFaultPlan([DropFault(sender=0, occurrence=2)])
        alloc = _alloc()
        a, b, c = (Envelope(i, 0, 1, f"m{i}") for i in range(3))
        assert plan.on_send(a, alloc) == [a]
        assert plan.on_send(b, alloc) == []
        assert plan.on_send(c, alloc) == [c]
        assert plan.dropped == 1

    def test_duplicate_allocates_fresh_uid(self):
        plan = MessageFaultPlan([DuplicateFault(sender=0, dest=1)])
        env = Envelope(0, 0, 1, ("ping",))
        out = plan.on_send(env, _alloc())
        assert [e.payload for e in out] == [("ping",), ("ping",)]
        assert out[0].uid == 0
        assert out[1].uid == 1000      # a real uid, not a clone
        assert plan.duplicated == 1

    def test_delay_sets_delivery_horizon(self):
        plan = MessageFaultPlan([DelayFault(sender=0, not_before=7)])
        out = plan.on_send(Envelope(0, 0, 1, "x"), _alloc())
        assert out[0].not_before == 7
        assert plan.delayed == 1

    def test_reorder_swaps_one_adjacent_pair(self):
        plan = MessageFaultPlan([ReorderFault(sender=0, dest=1)])
        alloc = _alloc()
        a, b, c = (Envelope(i, 0, 1, f"m{i}") for i in range(3))
        assert plan.on_send(a, alloc) == []          # held back
        assert plan.on_send(b, alloc) == [b, a]      # swapped pair
        assert plan.on_send(c, alloc) == [c]         # budget spent
        assert plan.reordered == 1

    def test_drain_releases_held_messages(self):
        plan = MessageFaultPlan([ReorderFault(sender=0)])
        a = Envelope(0, 0, 1, "a")
        assert plan.on_send(a, _alloc()) == []
        assert plan.drain() == [a]
        assert plan.drain() == []

    def test_non_fault_subclasses_rejected(self):
        with pytest.raises(TypeError):
            MessageFaultPlan(["drop"])


class TestEngineIntegration:
    def test_dropped_ping_stalls_only_the_sender(self):
        # p0's ping to p1 is lost: p1 never pongs, p0 waits forever;
        # p1 still decides off p0's pong.  A drop is not a crash.
        plan = MessageFaultPlan([DropFault(sender=0, dest=1,
                                           occurrence=1)])
        machines = [Echo(i, 2) for i in range(2)]
        res = run_messaging(machines, faults=plan, seed=3)
        assert plan.dropped == 1
        assert res.stalled
        assert res.crashed == set()
        assert 0 not in res.decisions
        assert 1 in res.decisions

    def test_extreme_delay_is_force_released(self):
        # A delay horizon far past the run's total traffic must not
        # fake a crash: the starved network force-releases the message
        # and everyone still decides.
        plan = MessageFaultPlan([DelayFault(sender=0, dest=1,
                                            occurrence=1,
                                            not_before=10**6)])
        machines = [Echo(i, 2) for i in range(2)]
        res = run_messaging(machines, faults=plan, seed=3)
        assert plan.delayed == 1
        assert not res.stalled
        assert res.decided_pids == {0, 1}

    def test_unpartnered_reorder_holdback_is_force_released(self):
        # Only one message ever flows 1 -> 0 in Echo's ping phase at a
        # time; the held envelope must come back, not vanish.
        plan = MessageFaultPlan([ReorderFault(sender=1, dest=0,
                                              swaps=5)])
        machines = [Echo(i, 2) for i in range(2)]
        res = run_messaging(machines, faults=plan, seed=3)
        assert not res.stalled
        assert res.decided_pids == {0, 1}

    def test_plan_crashes_match_legacy_argument(self):
        crash = MessageCrash(0, after_events=0)
        legacy = run_messaging([Echo(i, 3) for i in range(3)],
                               crashes=[crash], seed=5)
        folded = run_messaging([Echo(i, 3) for i in range(3)], seed=5,
                               faults=MessageFaultPlan.from_crashes(
                                   [crash]))
        assert folded.crashed == legacy.crashed == {0}
        assert folded.decisions == legacy.decisions
        assert folded.delivered == legacy.delivered

    def test_duplicate_crash_across_plan_and_argument_rejected(self):
        plan = MessageFaultPlan.from_crashes([MessageCrash(0, 0)])
        with pytest.raises(ValueError, match="one crash per victim"):
            run_messaging([Echo(i, 2) for i in range(2)],
                          crashes=[MessageCrash(0, 1)], faults=plan)

    def test_empty_plan_is_bit_for_bit_no_plan(self):
        base = run_messaging([Echo(i, 3) for i in range(3)], seed=11)
        under = run_messaging([Echo(i, 3) for i in range(3)], seed=11,
                              faults=MessageFaultPlan())
        assert under.decisions == base.decisions
        assert under.delivered == base.delivered
        assert under.undelivered == base.undelivered

    def test_plan_is_reusable_across_runs(self):
        plan = MessageFaultPlan([DropFault(sender=0, dest=1,
                                           occurrence=1)])
        for _ in range(2):
            res = run_messaging([Echo(i, 2) for i in range(2)],
                                faults=plan, seed=3)
            assert plan.dropped == 1   # reset re-armed the rule
            assert res.stalled


class TestABDUnderFaults:
    SCRIPTS = [[WriteOp("a"), WriteOp("b")],
               [ReadOp(), ReadOp()],
               [ReadOp(), ReadOp()]]
    PLANS = [
        MessageFaultPlan([DropFault(sender=0, dest=1, occurrence=1)]),
        MessageFaultPlan([DuplicateFault(sender=0, occurrence=2)]),
        MessageFaultPlan([DelayFault(sender=0, dest=2, occurrence=1,
                                     not_before=30)]),
        MessageFaultPlan([ReorderFault(sender=0, dest=1, swaps=3)]),
    ]

    @pytest.mark.parametrize("plan_index", range(len(PLANS)))
    @pytest.mark.parametrize("seed", range(6))
    def test_abd_stays_linearizable(self, plan_index, seed):
        # ABD's quorum phases tolerate lossy/at-least-once/non-FIFO
        # links: with n=3, t=1 every fault plan above is within spec.
        res, hist = run_abd(3, 1, writer=0, scripts=self.SCRIPTS,
                            seed=seed, faults=self.PLANS[plan_index])
        assert not res.stalled
        assert check_linearizable(hist, RegisterSpec())
