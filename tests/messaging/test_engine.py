"""The asynchronous message-passing engine."""

import pytest

from repro.messaging import (MessageCrash, MessageMachine, run_messaging)


class Echo(MessageMachine):
    """Sends 'ping' to everyone, decides on the set of pongs received."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.pongs = set()

    def start(self):
        self.broadcast(("ping",), include_self=False)

    def on_message(self, sender, payload):
        if payload[0] == "ping":
            self.send(sender, ("pong",))
        else:
            self.pongs.add(sender)
            if len(self.pongs) == self.n - 1:
                self.decide(frozenset(self.pongs))


class TestEngine:
    def test_all_decide_without_crashes(self):
        machines = [Echo(i, 3) for i in range(3)]
        res = run_messaging(machines)
        assert res.decided_pids == {0, 1, 2}
        for pid, pongs in res.decisions.items():
            assert pongs == frozenset({0, 1, 2}) - {pid}

    def test_seeded_delivery_is_reproducible(self):
        runs = []
        for _ in range(2):
            machines = [Echo(i, 3) for i in range(3)]
            runs.append(run_messaging(machines, seed=9))
        assert runs[0].delivered == runs[1].delivered
        assert runs[0].decisions == runs[1].decisions

    def test_fifo_mode(self):
        machines = [Echo(i, 3) for i in range(3)]
        res = run_messaging(machines, fifo=True)
        assert res.decided_pids == {0, 1, 2}

    def test_initially_dead_machine_sends_nothing(self):
        machines = [Echo(i, 3) for i in range(3)]
        res = run_messaging(machines,
                            crashes=[MessageCrash(0, after_events=0)])
        assert res.crashed == {0}
        # the others wait for p0's pong forever: stalled.
        assert res.stalled
        assert not res.decisions

    def test_crash_mid_run_messages_may_survive(self):
        machines = [Echo(i, 2) for i in range(2)]
        # p0 crashes after its start event: its pings are in flight and
        # may still be delivered to p1, which then pongs into the void.
        res = run_messaging(machines,
                            crashes=[MessageCrash(0, after_events=1)])
        assert res.crashed == {0}
        assert 0 not in res.decisions

    def test_drop_in_flight(self):
        machines = [Echo(i, 2) for i in range(2)]
        res = run_messaging(machines,
                            crashes=[MessageCrash(
                                0, after_events=1, drop_in_flight=True)])
        # p1 never even receives the ping.
        assert res.stalled

    def test_duplicate_crash_rejected(self):
        machines = [Echo(i, 2) for i in range(2)]
        with pytest.raises(ValueError):
            run_messaging(machines, crashes=[MessageCrash(0, 0),
                                             MessageCrash(0, 1)])

    def test_event_cap(self):
        class Chatter(MessageMachine):
            def start(self):
                self.send(1 - self.pid, ("hi",))

            def on_message(self, sender, payload):
                self.send(sender, ("hi",))

        machines = [Chatter(i, 2) for i in range(2)]
        res = run_messaging(machines, max_events=40)
        assert res.delivered == 40

    def test_bad_destination(self):
        class Bad(MessageMachine):
            def start(self):
                self.send(99, ("oops",))

            def on_message(self, sender, payload):
                pass

        with pytest.raises(ValueError, match="destination"):
            run_messaging([Bad(0, 1)])


class Collector(MessageMachine):
    """Broadcasts one tag including itself; decides on all n senders."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.got = []

    def start(self):
        self.broadcast(("tag",), include_self=True)

    def on_message(self, sender, payload):
        self.got.append(sender)
        if len(self.got) == self.n:
            self.decide(tuple(sorted(self.got)))


class TestEngineEdges:
    def test_self_delivery_goes_through_the_network(self):
        # broadcast(include_self=True) enqueues the self-addressed
        # envelope like any other: it is delivered asynchronously by
        # the loop, not synchronously during start().
        machines = [Collector(i, 2) for i in range(2)]
        assert not machines[0].got         # nothing during __init__
        res = run_messaging(machines, fifo=True)
        assert res.decided_pids == {0, 1}
        for got in res.decisions.values():
            assert got == (0, 1)
        assert res.delivered == 4          # 2 machines x 2 envelopes

    def test_decision_before_crash_is_discarded(self):
        # p0 decides on its 3rd event and the crash plan kills it right
        # there: a crashed process's decision must not surface.
        machines = [Echo(i, 2) for i in range(2)]
        res = run_messaging(machines,
                            crashes=[MessageCrash(0, after_events=3)])
        assert res.crashed == {0}
        assert machines[0].decided          # it did decide internally
        assert 0 not in res.decisions       # ...but the crash wins
