"""The full stack: shared-memory algorithms over message passing.

messages --ABD--> registers --Afek--> snapshots --> k-set agreement.
"""

import pytest

from repro.memory import BOTTOM
from repro.memory.afek_snapshot import AfekSnapshot
from repro.messaging import MessageCrash
from repro.messaging.hosted import host_program_run
from repro.runtime import ObjectProxy
from repro.tasks import KSetAgreementTask

from ..conftest import SEEDS


def kset_over_registers(n, t, pid, value):
    """t-resilient k-set agreement (k = t+1) written against registers:
    Afek-snapshot over the hosted register array."""
    view = AfekSnapshot("R", n)
    yield from view.update(pid, value)
    while True:
        snap = yield from view.snapshot(pid)
        seen = [e for e in snap if e is not BOTTOM]
        if len(seen) >= n - t:
            return min(seen)


def plain_register_echo(n, pid, value):
    regs = ObjectProxy("R")
    yield regs.write(pid, value)
    mine = yield regs.read(pid)
    other = yield regs.read((pid + 1) % n)
    return (mine, other)


class TestHostedRegisters:
    def test_write_then_read_roundtrip(self):
        res = host_program_run(
            3, 1, {pid: plain_register_echo(3, pid, f"v{pid}")
                   for pid in range(3)}, seed=4)
        assert res.decided_pids == {0, 1, 2}
        for pid, (mine, other) in res.decisions.items():
            assert mine == f"v{pid}"
            assert other in (f"v{(pid + 1) % 3}", BOTTOM)

    def test_foreign_write_rejected(self):
        def bad(pid):
            regs = ObjectProxy("R")
            yield regs.write((pid + 1) % 3, "nope")

        with pytest.raises(ValueError, match="single-writer"):
            host_program_run(3, 1, {0: bad(0), 1: bad(1), 2: bad(2)})

    def test_non_register_op_rejected(self):
        def bad(pid):
            yield ObjectProxy("other").read(0)

        with pytest.raises(ValueError, match="register array"):
            host_program_run(3, 1, {0: bad(0), 1: bad(1), 2: bad(2)})


class TestFullStackKSet:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kset_over_the_network(self, seed):
        n, t = 4, 1
        inputs = [10, 20, 30, 40]
        res = host_program_run(
            n, t, {pid: kset_over_registers(n, t, pid, inputs[pid])
                   for pid in range(n)}, seed=seed)
        assert not res.stalled
        assert res.decided_pids == set(range(n))
        distinct = set(res.decisions.values())
        assert len(distinct) <= t + 1
        assert distinct <= set(inputs)

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_kset_with_a_machine_crash(self, seed):
        n, t = 4, 1
        inputs = [10, 20, 30, 40]
        res = host_program_run(
            n, t, {pid: kset_over_registers(n, t, pid, inputs[pid])
                   for pid in range(n)},
            crashes=[MessageCrash(2, after_events=5)], seed=seed)
        assert not res.stalled
        assert res.decided_pids == {0, 1, 3}
        task_inputs = inputs
        verdictish = set(res.decisions.values())
        assert len(verdictish) <= t + 1
        assert verdictish <= set(task_inputs)

    def test_quorum_loss_stalls_the_whole_stack(self):
        n, t = 4, 1
        inputs = [1, 2, 3, 4]
        res = host_program_run(
            n, t, {pid: kset_over_registers(n, t, pid, inputs[pid])
                   for pid in range(n)},
            crashes=[MessageCrash(2, after_events=0),
                     MessageCrash(3, after_events=0)],
            max_events=20_000)
        assert not res.decisions
