"""Task specifications and run validation."""

import pytest

from repro.algorithms import KSetReadWrite, run_algorithm
from repro.runtime import CrashPlan
from repro.tasks import (ConsensusTask, DistinctValuesTask,
                         KSetAgreementTask, RenamingTask)


class TestKSetAgreementTask:
    def test_valid_outputs_pass(self):
        task = KSetAgreementTask(2)
        assert not task.check_outputs([1, 2, 3], {0: 1, 1: 2, 2: 1})

    def test_too_many_values_fail(self):
        task = KSetAgreementTask(2)
        violations = task.check_outputs([1, 2, 3], {0: 1, 1: 2, 2: 3})
        assert any("agreement" in v for v in violations)

    def test_non_proposed_value_fails(self):
        task = KSetAgreementTask(2)
        violations = task.check_outputs([1, 2, 3], {0: 99})
        assert any("validity" in v for v in violations)

    def test_consensus_is_one_set(self):
        task = ConsensusTask()
        assert task.k == 1
        assert task.colorless
        assert task.set_consensus_number == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KSetAgreementTask(0)

    def test_validate_run_liveness(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_algorithm(algo, [5, 6, 7],
                            crash_plan=CrashPlan.initially_dead([1]))
        task = KSetAgreementTask(2)
        verdict = task.validate_run([5, 6, 7], res)
        assert verdict.ok
        assert bool(verdict)
        assert verdict.explain() == "ok"

    def test_validate_run_reports_undecided(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        # over-crash: 2 crashes against t=1 -> survivors block.
        res = run_algorithm(algo, [5, 6, 7],
                            crash_plan=CrashPlan.initially_dead([0, 1]),
                            enforce_model=False)
        task = KSetAgreementTask(2)
        verdict = task.validate_run([5, 6, 7], res)
        assert not verdict.ok
        assert verdict.undecided_correct == {2}
        # without the liveness requirement the (empty) outputs are safe.
        assert task.validate_run([5, 6, 7], res,
                                 require_liveness=False).ok


class TestColoredTasks:
    def test_renaming_distinctness(self):
        task = RenamingTask(3)
        assert not task.check_outputs([None] * 3, {0: 0, 1: 2, 2: 1})
        violations = task.check_outputs([None] * 3, {0: 0, 1: 0})
        assert any("distinctness" in v for v in violations)

    def test_renaming_namespace(self):
        task = RenamingTask(3, namespace=5)
        violations = task.check_outputs([None] * 3, {0: 5})
        assert violations
        assert not task.check_outputs([None] * 3, {0: 4})

    def test_renaming_validation(self):
        with pytest.raises(ValueError):
            RenamingTask(0)
        with pytest.raises(ValueError):
            RenamingTask(3, namespace=2)

    def test_renaming_is_colored(self):
        assert not RenamingTask(3).colorless

    def test_distinct_values(self):
        task = DistinctValuesTask()
        assert not task.check_outputs([], {0: "a", 1: "b"})
        assert task.check_outputs([], {0: "a", 1: "a"})
