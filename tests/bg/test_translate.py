"""Source-operation translation: every supported kind, and the guards."""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.bg import (MEM_NAME, SimulatorState, SourcePortViolation,
                      SourceTranslator, UnsimulableOperation)
from repro.memory import BOTTOM, ObjectStore, SnapshotObject, make_spec
from repro.runtime import Invocation, ObjectProxy, run_processes
from repro.runtime.ops import LocalOp, SpinOp


def make_sim(specs, n_sims=1, n_simulated=2):
    factory = SafeAgreementFactory(n_sims)
    store = ObjectStore()
    store.add(SnapshotObject(MEM_NAME, n_sims))
    store.add_all(factory.shared_objects())
    state = SimulatorState(0, n_simulated, factory, factory)
    translator = SourceTranslator(specs, state)
    return translator, store


def drive(translator, j, ops_and_results):
    """Run a sequence of (op, expect) through translate, as simulator 0."""
    outcomes = []

    def sim():
        for op in ops_and_results:
            result = None
            gen = translator.translate(j, op)
            started = False
            while True:
                try:
                    inner = gen.send(result) if started else next(gen)
                    started = True
                except StopIteration as stop:
                    outcomes.append(stop.value)
                    break
                if isinstance(inner, LocalOp):
                    result = None
                    continue
                result = yield inner
        return tuple(outcomes)

    return sim()


class TestSnapshotTranslation:
    def test_write_then_snapshot_roundtrip(self):
        specs = [make_spec("snapshot", "mem", size=2)]
        translator, store = make_sim(specs)
        mem = ObjectProxy("mem")
        gen = drive(translator, 0, [mem.write(0, "hello"), mem.snapshot()])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (None, ("hello", BOTTOM))

    def test_read_single_entry(self):
        specs = [make_spec("snapshot", "mem", size=2)]
        translator, store = make_sim(specs)
        mem = ObjectProxy("mem")
        gen = drive(translator, 1, [mem.write(1, "x"), mem.read(1)])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (None, "x")

    def test_foreign_entry_write_rejected(self):
        specs = [make_spec("snapshot", "mem", size=2)]
        translator, store = make_sim(specs)
        mem = ObjectProxy("mem")
        gen = drive(translator, 0, [mem.write(1, "not-mine")])
        with pytest.raises(SourcePortViolation):
            run_processes({0: gen}, store)

    def test_snapshot_family_translation(self):
        specs = [make_spec("snapshot_family", "fam", size=2)]
        translator, store = make_sim(specs)
        fam = ObjectProxy("fam")
        gen = drive(translator, 0, [fam.write("k", 0, 7),
                                    fam.snapshot("k"),
                                    fam.snapshot("other"),
                                    fam.read("k", 0)])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (None, (7, BOTTOM), (BOTTOM, BOTTOM), 7)


class TestRegisterTranslation:
    def test_single_writer_register(self):
        specs = [make_spec("register", "r", writer=0)]
        translator, store = make_sim(specs)
        r = ObjectProxy("r")
        gen = drive(translator, 0, [r.write("v"), r.read()])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (None, "v")

    def test_single_writer_enforced(self):
        specs = [make_spec("register", "r", writer=0)]
        translator, store = make_sim(specs)
        gen = drive(translator, 1, [ObjectProxy("r").write("v")])
        with pytest.raises(SourcePortViolation):
            run_processes({0: gen}, store)

    def test_multiwriter_register_last_tag_wins(self):
        specs = [make_spec("register", "r")]
        translator, store = make_sim(specs)
        r = ObjectProxy("r")
        # thread 0 writes, thread 1 writes, thread 0 reads: per-writer
        # seq = 1 each; the (seq, writer) tie-break picks writer 1.
        g0 = drive(translator, 0, [r.write("from0")])
        res = run_processes({0: g0}, store)
        g1 = drive(translator, 1, [r.write("from1"), r.read()])
        res = run_processes({0: g1}, store)
        assert res.decisions[0][-1] == "from1"

    def test_register_family(self):
        specs = [make_spec("register_family", "rf")]
        translator, store = make_sim(specs)
        rf = ObjectProxy("rf")
        gen = drive(translator, 0, [rf.read("k"), rf.write("k", 1),
                                    rf.read("k")])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (BOTTOM, None, 1)

    def test_register_array_single_writer(self):
        specs = [make_spec("register_array", "ra", size=2,
                           single_writer=True)]
        translator, store = make_sim(specs)
        ra = ObjectProxy("ra")
        gen = drive(translator, 1, [ra.write(1, "w"), ra.read(1),
                                    ra.read(0)])
        res = run_processes({0: gen}, store)
        assert res.decisions[0] == (None, "w", BOTTOM)


class TestDecisionObjectTranslation:
    def test_xcons_propose_goes_through_agreement(self):
        specs = [make_spec("xcons", "c", ports=[0, 1])]
        translator, store = make_sim(specs)
        c = ObjectProxy("c")
        g = drive(translator, 0, [c.propose("mine")])
        res = run_processes({0: g}, store)
        assert res.decisions[0] == ("mine",)

    def test_xcons_port_violation(self):
        specs = [make_spec("xcons", "c", ports=[0, 1])]
        translator, store = make_sim(specs, n_simulated=3)
        g = drive(translator, 2, [ObjectProxy("c").propose("v")])
        with pytest.raises(SourcePortViolation):
            run_processes({0: g}, store)

    def test_tas_winner_is_first_simulated_invoker(self):
        specs = [make_spec("tas", "t")]
        translator, store = make_sim(specs)
        t = ObjectProxy("t")
        # thread 0 invokes first -> wins; thread 1 loses.
        g = drive(translator, 0, [t.test_and_set()])
        res = run_processes({0: g}, store)
        assert res.decisions[0] == (True,)
        g = drive(translator, 1, [t.test_and_set()])
        res = run_processes({0: g}, store)
        assert res.decisions[0] == (False,)

    def test_tas_family(self):
        specs = [make_spec("tas_family", "tf")]
        translator, store = make_sim(specs)
        tf = ObjectProxy("tf")
        g = drive(translator, 1, [tf.test_and_set("a"),
                                  tf.test_and_set("b")])
        res = run_processes({0: g}, store)
        assert res.decisions[0] == (True, True)

    def test_kset_refines_to_single_value(self):
        specs = [make_spec("kset", "k", ports=[0, 1, 2], ell=2)]
        translator, store = make_sim(specs, n_simulated=3)
        k = ObjectProxy("k")
        g0 = drive(translator, 0, [k.propose("a")])
        res = run_processes({0: g0}, store)
        g1 = drive(translator, 1, [k.propose("b")])
        res2 = run_processes({0: g1}, store)
        assert res.decisions[0] == res2.decisions[0] == ("a",)

    def test_xcons_family_with_subsets(self):
        specs = [make_spec("xcons_family", "xf", subsets=((0, 1), (1, 2)))]
        translator, store = make_sim(specs, n_simulated=3)
        xf = ObjectProxy("xf")
        g = drive(translator, 1, [xf.propose("k", 0, "v")])
        res = run_processes({0: g}, store)
        assert res.decisions[0] == ("v",)
        # port violation for thread 0 on subset 1:
        g = drive(translator, 0, [xf.propose("k", 1, "v")])
        with pytest.raises(SourcePortViolation):
            run_processes({0: g}, store)


class TestSpinTranslation:
    def test_simulated_spin_reexecutes_until_true(self):
        specs = [make_spec("snapshot", "mem", size=2)]
        translator, store = make_sim(specs)
        mem = ObjectProxy("mem")
        seen = []
        op = SpinOp(mem.snapshot(),
                    lambda s: (seen.append(s) or s[0] is not BOTTOM))
        # thread 0 writes after one failed check; simulate sequentially:
        gen = drive(translator, 0, [mem.write(0, "go"), op])
        res = run_processes({0: gen}, store)
        assert res.decisions[0][-1] == ("go", BOTTOM)


class TestGuards:
    def test_unknown_object(self):
        translator, store = make_sim([])
        gen = drive(translator, 0, [Invocation("ghost", "read", ())])
        with pytest.raises(UnsimulableOperation):
            run_processes({0: gen}, store)

    def test_unsupported_method(self):
        specs = [make_spec("queue", "q")]
        translator, store = make_sim(specs)
        gen = drive(translator, 0, [Invocation("q", "dequeue", ())])
        with pytest.raises(UnsimulableOperation):
            run_processes({0: gen}, store)

    def test_weird_yield(self):
        translator, store = make_sim([])
        gen = drive(translator, 0, ["not an op"])
        with pytest.raises(UnsimulableOperation):
            run_processes({0: gen}, store)
