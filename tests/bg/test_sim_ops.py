"""Figures 2-4 simulation operations, exercised outside the trampoline.

A tiny single-thread driver strips local mutex ops (with one thread per
simulator they always succeed), letting us unit-test the shared-memory
logic of sim_write / sim_snapshot / sim_object_op in isolation.
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.bg import (MEM_NAME, SimulatorState, sim_input, sim_object_op,
                      sim_snapshot, sim_write)
from repro.memory import BOTTOM, ObjectStore, SnapshotObject
from repro.runtime import (RoundRobinAdversary, SeededRandomAdversary,
                           run_processes)
from repro.runtime.ops import LocalOp


def strip_local(gen):
    """Drive a sim-op generator, resolving local ops inline."""
    result = None
    started = False
    while True:
        try:
            op = gen.send(result) if started else next(gen)
            started = True
        except StopIteration as stop:
            return stop.value
        if isinstance(op, LocalOp):
            result = None
            continue
        result = yield op


def fresh(n_sims, n_simulated):
    factory = SafeAgreementFactory(n_sims)
    store = ObjectStore()
    store.add(SnapshotObject(MEM_NAME, n_sims))
    store.add_all(factory.shared_objects())

    def state(i):
        return SimulatorState(i, n_simulated, factory, factory)

    return state, store


class TestSimWrite:
    def test_publishes_local_copy_with_sequence_numbers(self):
        state_of, store = fresh(2, 3)

        def sim(i):
            st = state_of(i)
            yield from strip_local(sim_write(st, 1, "a"))
            yield from strip_local(sim_write(st, 1, "b"))
            yield from strip_local(sim_write(st, 2, "c"))
            return st.w_sn

        res = run_processes({0: sim(0)}, store)
        assert res.decisions[0] == [0, 2, 1]
        mem_row = store[MEM_NAME].entries[0]
        assert mem_row[0] == (BOTTOM, 0)
        assert mem_row[1] == ("b", 2)
        assert mem_row[2] == ("c", 1)


class TestSimSnapshot:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_all_simulators_agree_per_snapshot(self, seed):
        state_of, store = fresh(3, 2)

        def sim(i):
            st = state_of(i)
            # each simulator simulates p0 writing its (the simulator's)
            # value, then p0's first snapshot: results must agree anyway.
            yield from strip_local(sim_write(st, 0, f"from_q{i}"))
            snap = yield from strip_local(sim_snapshot(st, 0))
            return snap

        res = run_processes({i: sim(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(seed))
        assert len(set(res.decisions.values())) == 1

    def test_snapshot_picks_most_advanced_simulator(self):
        state_of, store = fresh(2, 2)

        def fast(i):
            st = state_of(i)
            yield from strip_local(sim_write(st, 0, "v1"))
            yield from strip_local(sim_write(st, 0, "v2"))
            snap = yield from strip_local(sim_snapshot(st, 1))
            return snap

        def slow(i):
            st = state_of(i)
            yield from strip_local(sim_write(st, 0, "v1"))
            snap = yield from strip_local(sim_snapshot(st, 1))
            return snap

        # q0 runs to completion first (round robin with q0 first ensures
        # its proposal lands first), q1 lags on p0's writes.
        res = run_processes({0: fast(0), 1: slow(1)}, store,
                            adversary=RoundRobinAdversary())
        # both agree, and the agreed vector contains p0's most advanced
        # write among the proposals.
        assert len(set(res.decisions.values())) == 1
        agreed = next(iter(res.decisions.values()))
        assert agreed[0] in ("v1", "v2")

    def test_sequence_numbers_advance_per_simulated_process(self):
        state_of, store = fresh(1, 2)

        def sim(i):
            st = state_of(i)
            yield from strip_local(sim_snapshot(st, 0))
            yield from strip_local(sim_snapshot(st, 0))
            yield from strip_local(sim_snapshot(st, 1))
            return (st.snap_sn, st.snapshots_simulated)

        res = run_processes({0: sim(0)}, store)
        assert res.decisions[0] == ([2, 1], 3)


class TestSimObjectOp:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_one_agreed_outcome_per_object(self, seed):
        state_of, store = fresh(3, 3)

        def sim(i):
            st = state_of(i)
            # simulate two different threads' ops on the same object:
            # the cached outcome must be identical, one propose total.
            r1 = yield from strip_local(sim_object_op(st, "obj", f"p{i}"))
            r2 = yield from strip_local(sim_object_op(st, "obj", "other"))
            return (r1, r2, st.object_ops_simulated)

        res = run_processes({i: sim(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(seed))
        outcomes = {v[0] for v in res.decisions.values()}
        assert len(outcomes) == 1                      # agreement
        assert all(v[0] == v[1] for v in res.decisions.values())  # cache
        assert all(v[2] == 1 for v in res.decisions.values())

    def test_distinct_objects_independent(self):
        state_of, store = fresh(1, 1)

        def sim(i):
            st = state_of(i)
            a = yield from strip_local(sim_object_op(st, "A", "va"))
            b = yield from strip_local(sim_object_op(st, "B", "vb"))
            return (a, b)

        res = run_processes({0: sim(0)}, store)
        assert res.decisions[0] == ("va", "vb")


class TestSimInput:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_input_agreed_across_simulators(self, seed):
        state_of, store = fresh(3, 2)

        def sim(i):
            st = state_of(i)
            v0 = yield from strip_local(sim_input(st, 0, f"input_q{i}"))
            v1 = yield from strip_local(sim_input(st, 1, f"input_q{i}"))
            return (v0, v1)

        res = run_processes({i: sim(i) for i in range(3)}, store,
                            adversary=SeededRandomAdversary(seed))
        assert len({v[0] for v in res.decisions.values()}) == 1
        assert len({v[1] for v in res.decisions.values()}) == 1
        # agreed inputs are someone's proposal
        agreed = next(iter(res.decisions.values()))
        assert agreed[0] in {f"input_q{i}" for i in range(3)}
