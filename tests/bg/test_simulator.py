"""The simulator trampoline: fairness, mutex draining, decision policies."""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import KSetReadWrite, WriteThenSnapshot
from repro.bg import (CollectAllPolicy, ColoredTASPolicy, FirstDecisionPolicy,
                      read_announcements)
from repro.core import SimulationAlgorithm
from repro.algorithms.protocol import run_algorithm
from repro.runtime import (CrashPlan, ProcessStatus, RoundRobinAdversary,
                           SeededRandomAdversary)

from ..conftest import SEEDS


def make_sim(source, n_sims=None, policy=FirstDecisionPolicy):
    n = source.n if n_sims is None else n_sims
    return SimulationAlgorithm(
        source, n_simulators=n, resilience=source.resilience if
        source.resilience < n else n - 1,
        snap_agreement=SafeAgreementFactory(n),
        policy_class=policy,
        label="test-sim")


class TestColorlessSimulation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_simulator_decides_a_simulated_decision(self, seed):
        source = WriteThenSnapshot(3)
        sim = make_sim(source)
        res = run_algorithm(sim, ["a", "b", "c"],
                            adversary=SeededRandomAdversary(seed))
        assert res.decided_pids == {0, 1, 2}
        # each decision is (value, seen) with a proposed value
        for value, seen in res.decisions.values():
            assert value in ("a", "b", "c")
            assert 1 <= seen <= 3

    def test_deterministic_under_round_robin(self):
        source = KSetReadWrite(n=3, t=1, k=2)
        results = [run_algorithm(make_sim(source), [1, 2, 3],
                                 adversary=RoundRobinAdversary())
                   for _ in range(2)]
        assert results[0].decisions == results[1].decisions
        assert results[0].steps == results[1].steps

    def test_simulator_count_can_differ_from_source(self):
        source = KSetReadWrite(n=5, t=1, k=2)
        sim = make_sim(source, n_sims=2)   # classic BG shape
        res = run_algorithm(sim, [10, 20])
        assert res.decided_pids == {0, 1}
        assert set(res.decisions.values()) <= {10, 20}


class TestCollectAllPolicy:
    def test_collects_every_thread_decision(self):
        source = WriteThenSnapshot(3)
        sim = make_sim(source, policy=CollectAllPolicy)
        res = run_algorithm(sim, ["x", "y", "z"])
        for final in res.decisions.values():
            assert set(final) == {0, 1, 2}

    def test_announcements_survive_simulator_crash(self):
        source = WriteThenSnapshot(3)
        sim = make_sim(source, policy=CollectAllPolicy)
        # crash q0 late: its announcements up to then are in the store.
        res = run_algorithm(sim, ["x", "y", "z"],
                            crash_plan=CrashPlan.at_own_step({0: 40}))
        announced = read_announcements(res.store, 3)
        assert announced[0]  # q0 announced at least one decision


class TestMutexDrainOnDecision:
    def test_no_simulated_process_blocked_by_a_deciding_simulator(self):
        # FirstDecision simulators stop as soon as one thread decides; if
        # they abandoned a mid-propose thread, other simulators would
        # block.  All simulators must decide.
        source = KSetReadWrite(n=4, t=1, k=2)
        sim = make_sim(source)
        for seed in SEEDS:
            res = run_algorithm(sim, [1, 2, 3, 4],
                                adversary=SeededRandomAdversary(seed))
            assert res.decided_pids == {0, 1, 2, 3}, res.summary()


class TestColoredPolicy:
    def test_distinct_adoption_via_tas(self):
        from repro.algorithms import RenamingFromTAS
        source = RenamingFromTAS(4, t=2)
        sim = SimulationAlgorithm(
            source, n_simulators=4, resilience=1,
            snap_agreement=__import__("repro.agreement", fromlist=["X"]
                                      ).XSafeAgreementFactory(4, 2),
            policy_class=ColoredTASPolicy,
            label="colored-test")
        res = run_algorithm(sim, [None] * 4)
        values = list(res.decisions.values())
        assert len(values) == len(set(values))  # distinct adoptions
