"""The translator's busy-wait protocol, in isolation.

The protocol (repro.bg.translate, module docstring): after a failed
predicate on the agreed snapshot, re-read only once the simulators' MEM
changed since a fresh baseline or the next agreement instance shows
activity -- unless the predicate already holds on the baseline's local
projection (then re-read immediately).
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import KSetReadWrite, run_algorithm
from repro.core import SimulationAlgorithm
from repro.runtime import CrashPlan, SeededRandomAdversary


def build(n, t, eager=False):
    return SimulationAlgorithm(
        KSetReadWrite(n=n, t=t, k=t + 1), n_simulators=n, resilience=t,
        snap_agreement=SafeAgreementFactory(n), eager_spin=eager,
        label="wait-proto")


class TestWaitVsEagerEquivalence:
    """Metamorphic: both spin disciplines solve the same task; the wait
    protocol must never change outcomes, only costs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_task_verdict_under_crashes(self, seed):
        from repro.tasks import KSetAgreementTask
        inputs = [4, 3, 2, 1]
        plan = lambda: CrashPlan.at_own_step({seed % 4: 5})  # noqa: E731
        outcomes = {}
        for eager in (False, True):
            res = run_algorithm(build(4, 1, eager), inputs,
                                adversary=SeededRandomAdversary(seed),
                                crash_plan=plan(), max_steps=3_000_000)
            verdict = KSetAgreementTask(2).validate_run(inputs, res)
            assert verdict.ok, f"eager={eager}: {verdict.explain()}"
            outcomes[eager] = res.decided_pids
        assert outcomes[False] == outcomes[True]

    @pytest.mark.parametrize("seed", range(4))
    def test_wait_protocol_never_costs_more_agreements(self, seed):
        results = {}
        for eager in (False, True):
            res = run_algorithm(
                build(4, 1, eager), [1, 2, 3, 4],
                adversary=SeededRandomAdversary(seed),
                crash_plan=CrashPlan.initially_dead([0]),
                max_steps=3_000_000)
            results[eager] = res.store["SAFE_AG"].instance_count
        assert results[False] <= results[True]


class TestBaselineShortCircuit:
    def test_no_parking_when_progress_is_already_visible(self):
        """If the baseline projection satisfies the predicate, the waiter
        re-reads immediately -- the run must terminate even though MEM
        never changes again after the final write."""
        # everyone writes before anyone waits: under round-robin the
        # last waiter's baseline already satisfies the threshold.
        res = run_algorithm(build(3, 0), ["a", "b", "c"],
                            max_steps=1_000_000)
        assert res.decided_pids == {0, 1, 2}

    def test_activity_probe_wakes_lagging_simulator(self):
        """A simulator lagging behind others (its MEM view frozen) must
        wake via the next-instance activity probe rather than stall."""
        # Priority adversary: q0 runs alone to completion (its decision
        # ends it), then the laggards catch up purely from agreement
        # state -- their own MEM rows never change again.
        from repro.runtime import PriorityAdversary
        res = run_algorithm(build(3, 1), [9, 8, 7],
                            adversary=PriorityAdversary([0]),
                            max_steps=1_000_000)
        assert res.decided_pids == {0, 1, 2}
        assert len(res.decided_values) <= 2
