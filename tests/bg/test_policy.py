"""Decision policies, unit level."""

import pytest

from repro.bg import (ANNOUNCE, CollectAllPolicy, ColoredTASPolicy,
                      DecisionPolicy, Final, FirstDecisionPolicy,
                      read_announcements)
from repro.memory import BOTTOM, build_store


def drive(gen, results=()):
    """Run a policy generator feeding scripted op results; returns
    (yielded_ops, return_value)."""
    ops, out = [], None
    it = iter(results)
    try:
        op = next(gen)
        while True:
            ops.append(op)
            op = gen.send(next(it, None))
    except StopIteration as stop:
        out = stop.value
    return ops, out


class TestFirstDecision:
    def test_immediate_final(self):
        policy = FirstDecisionPolicy()
        ops, out = drive(policy.on_decision(0, {2: "v"}, 2, "v"))
        assert ops == []
        assert out == Final("v")

    def test_no_extra_specs(self):
        assert FirstDecisionPolicy.extra_specs(4) == []

    def test_all_terminal_is_a_bug(self):
        with pytest.raises(AssertionError):
            FirstDecisionPolicy().on_all_terminal(0, {})


class TestColoredTAS:
    def test_win_adopts(self):
        policy = ColoredTASPolicy()
        ops, out = drive(policy.on_decision(1, {3: "name"}, 3, "name"),
                         results=[True])
        assert len(ops) == 1
        assert ops[0].method == "test_and_set"
        assert ops[0].args == (3,)
        assert out == Final("name")

    def test_loss_resumes(self):
        policy = ColoredTASPolicy()
        ops, out = drive(policy.on_decision(1, {3: "name"}, 3, "name"),
                         results=[False])
        assert out is None

    def test_declares_tas_family_spec(self):
        specs = ColoredTASPolicy.extra_specs(4)
        assert [s.kind for s in specs] == ["tas_family"]


class TestCollectAll:
    def test_announces_and_continues(self):
        policy = CollectAllPolicy()
        decisions = {0: "a", 2: "b"}
        ops, out = drive(policy.on_decision(1, decisions, 2, "b"),
                         results=[None])
        assert ops[0].obj == ANNOUNCE
        assert ops[0].args == (1, ((0, "a"), (2, "b")))
        assert out is None

    def test_all_terminal_returns_map(self):
        assert CollectAllPolicy().on_all_terminal(0, {1: "x"}) == {1: "x"}

    def test_read_announcements_handles_bottom(self):
        store = build_store(CollectAllPolicy.extra_specs(3))
        store[ANNOUNCE].entries[1] = ((0, "v"),)
        announced = read_announcements(store, 3)
        assert announced == {0: {}, 1: {0: "v"}, 2: {}}


class TestFinalWrapper:
    def test_equality_and_fields(self):
        assert Final("x") == Final("x")
        assert Final("x").value == "x"
        assert isinstance(FirstDecisionPolicy(), DecisionPolicy)
