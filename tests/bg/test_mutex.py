"""Simulator-local mutex bookkeeping."""

import pytest

from repro.bg import (MUTEX1, MUTEX2, AcquireLocal, LocalMutexTable,
                      MutexViolation, ReleaseLocal)
from repro.runtime.ops import LocalOp


class TestLocalOps:
    def test_local_op_subclasses(self):
        assert isinstance(AcquireLocal(MUTEX1), LocalOp)
        assert isinstance(ReleaseLocal(MUTEX2), LocalOp)

    def test_reprs(self):
        assert repr(AcquireLocal("mutex1")) == "acquire(mutex1)"
        assert repr(ReleaseLocal("mutex2")) == "release(mutex2)"


class TestLocalMutexTable:
    def test_acquire_free(self):
        table = LocalMutexTable()
        assert table.try_acquire(MUTEX1, 3)
        assert table.holder(MUTEX1) == 3

    def test_acquire_held_queues(self):
        table = LocalMutexTable()
        table.try_acquire(MUTEX1, 0)
        assert not table.try_acquire(MUTEX1, 1)
        assert not table.try_acquire(MUTEX1, 2)
        assert table.holder(MUTEX1) == 0

    def test_release_grants_fifo(self):
        table = LocalMutexTable()
        table.try_acquire(MUTEX1, 0)
        table.try_acquire(MUTEX1, 1)
        table.try_acquire(MUTEX1, 2)
        assert table.release(MUTEX1, 0) == 1
        assert table.holder(MUTEX1) == 1
        assert table.release(MUTEX1, 1) == 2
        assert table.release(MUTEX1, 2) is None
        assert table.holder(MUTEX1) is None

    def test_release_without_hold_raises(self):
        table = LocalMutexTable()
        with pytest.raises(MutexViolation):
            table.release(MUTEX1, 0)

    def test_reacquire_raises(self):
        table = LocalMutexTable()
        table.try_acquire(MUTEX1, 0)
        with pytest.raises(MutexViolation):
            table.try_acquire(MUTEX1, 0)

    def test_mutexes_independent(self):
        table = LocalMutexTable()
        table.try_acquire(MUTEX1, 0)
        assert table.try_acquire(MUTEX2, 1)
        assert table.held_by(0) == [MUTEX1]
        assert table.held_by(1) == [MUTEX2]

    def test_duplicate_queue_entries_ignored(self):
        table = LocalMutexTable()
        table.try_acquire(MUTEX1, 0)
        table.try_acquire(MUTEX1, 1)
        table.try_acquire(MUTEX1, 1)
        assert table.release(MUTEX1, 0) == 1
        assert table.release(MUTEX1, 1) is None
