"""White-box tests of the simulator trampoline and its config switches."""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import KSetReadWrite, WriteThenSnapshot, run_algorithm
from repro.bg import MUTEX2, SimulationConfig, ThreadStatus
from repro.bg.simulator import _Trampoline
from repro.core import SimulationAlgorithm
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.runtime.ops import SpinOp, Invocation


def make_trampoline(n_simulated=3, n_simulators=2):
    source = WriteThenSnapshot(n_simulated)
    factory = SafeAgreementFactory(n_simulators)
    cfg = SimulationConfig(
        source_specs=source.object_specs(),
        source_program=source.program,
        n_simulated=n_simulated,
        n_simulators=n_simulators,
        snap_agreement=factory,
        obj_agreement=factory,
        policy_factory=lambda i: __import__(
            "repro.bg.policy", fromlist=["FirstDecisionPolicy"]
        ).FirstDecisionPolicy(),
    )
    return _Trampoline(cfg, sim_id=0, own_input="inp")


class TestThreadPicking:
    def test_round_robin_over_live_threads(self):
        tr = make_trampoline(n_simulated=3)
        picks = [tr._pick_thread() for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_done_and_waiting(self):
        tr = make_trampoline(n_simulated=3)
        tr.threads[1].status = ThreadStatus.DONE
        tr.threads[2].status = ThreadStatus.WAIT_MUTEX
        assert tr._pick_thread() == 0
        assert tr._pick_thread() == 0

    def test_none_when_all_terminal(self):
        tr = make_trampoline(n_simulated=2)
        for th in tr.threads.values():
            th.status = ThreadStatus.DONE
        assert tr._pick_thread() is None

    def test_spinning_threads_still_picked(self):
        tr = make_trampoline(n_simulated=2)
        tr.threads[0].status = ThreadStatus.SPINNING
        assert tr._pick_thread() == 0


class TestSpinPeriod:
    def test_counts_live_threads_and_conditions(self):
        tr = make_trampoline(n_simulated=3)
        inv = Invocation("MEM", "snapshot", ())
        tr.threads[0].status = ThreadStatus.SPINNING
        tr.threads[0].pending = SpinOp(inv, lambda s: False, period=2)
        tr.threads[1].status = ThreadStatus.SPINNING
        tr.threads[1].pending = SpinOp(inv, lambda s: False, period=1)
        # 3 live threads x max condition count 2
        assert tr._spin_period() == 6

    def test_minimum_is_one(self):
        tr = make_trampoline(n_simulated=1)
        assert tr._spin_period() >= 1


class TestConfigSwitches:
    def build(self, **kwargs):
        source = KSetReadWrite(n=3, t=1, k=2)
        return SimulationAlgorithm(
            source, n_simulators=3, resilience=1,
            snap_agreement=SafeAgreementFactory(3),
            label="switches", **kwargs)

    def test_defaults(self):
        sim = self.build()
        assert sim._config.per_object_mutex2 is True
        assert sim._config.eager_spin is False

    def test_eager_spin_still_correct_when_progress_exists(self):
        sim = self.build(eager_spin=True)
        res = run_algorithm(sim, [1, 2, 3],
                            adversary=SeededRandomAdversary(4),
                            crash_plan=CrashPlan.initially_dead([1]))
        assert res.decided_pids == {0, 2}
        assert len(res.decided_values) <= 2

    def test_global_mutex2_still_correct_without_object_blocking(self):
        # with a read/write source there are no object agreements, so
        # the mutex2 scope is irrelevant: both variants must agree.
        a = run_algorithm(self.build(per_object_mutex2=False), [1, 2, 3])
        b = run_algorithm(self.build(per_object_mutex2=True), [1, 2, 3])
        assert a.decisions == b.decisions


class TestMutexNaming:
    def test_per_object_mutex_names_are_distinct(self):
        from repro.bg.sim_ops import SimulatorState, sim_object_op
        from repro.bg.mutex import AcquireLocal
        factory = SafeAgreementFactory(1)
        state = SimulatorState(0, 1, factory, factory)
        gen_a = sim_object_op(state, "objA", "v")
        gen_b = sim_object_op(state, "objB", "v")
        first_a = next(gen_a)
        first_b = next(gen_b)
        assert isinstance(first_a, AcquireLocal)
        assert first_a.mutex != first_b.mutex
        assert MUTEX2 in first_a.mutex

    def test_global_mode_shares_one_name(self):
        from repro.bg.sim_ops import SimulatorState, sim_object_op
        factory = SafeAgreementFactory(1)
        state = SimulatorState(0, 1, factory, factory,
                               per_object_mutex2=False)
        assert next(sim_object_op(state, "objA", "v")).mutex == \
            next(sim_object_op(state, "objB", "v")).mutex == MUTEX2
