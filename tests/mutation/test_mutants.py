"""Mutation-soundness tier: every planted mutant must be caught.

Each registry entry re-introduces one historically plausible protocol
bug; the verification stack (DPOR exploration, linearizability checking,
footprint auditing) must detect it at the *pinned* stage -- a detector
that silently moves stages has changed meaning.  Run just this tier
with ``pytest -m mutation``; the CLI twin is ``python -m repro
mutants``.
"""

import pytest

from repro.analysis import RegisterSpec, check_linearizable
from repro.messaging import ReadOp, WriteOp, run_abd
from repro.mutants import (MUTANTS, STAGES, _abd_fault_plans, get_mutant,
                           mutant_names)

pytestmark = pytest.mark.mutation


@pytest.mark.parametrize("mutant", MUTANTS, ids=mutant_names())
def test_mutant_detected_at_pinned_stage(mutant):
    assert mutant.detect() == mutant.expected_stage


def test_registry_names_unique_and_stages_valid():
    names = mutant_names()
    assert len(set(names)) == len(names)
    for mutant in MUTANTS:
        assert mutant.expected_stage in STAGES


def test_every_stage_is_exercised():
    # The tier is only evidence for the whole stack if each stage has
    # at least one mutant that *only* it catches.
    assert {m.expected_stage for m in MUTANTS} == set(STAGES)


def test_get_mutant_round_trips_and_rejects_unknown():
    for name in mutant_names():
        assert get_mutant(name).name == name
    with pytest.raises(KeyError, match="no-such"):
        get_mutant("no-such-mutant")


@pytest.mark.parametrize("plan_index", range(len(_abd_fault_plans())))
def test_healthy_abd_survives_the_mutant_fault_matrix(plan_index):
    # The ABD fault matrix isolates the no-write-back mutant only if
    # the *correct* protocol stays linearizable under every plan in
    # it: otherwise a detection could be a false positive of the
    # faults, not of the mutant.
    scripts = [[WriteOp("a"), WriteOp("b")],
               [ReadOp(), ReadOp()],
               [ReadOp(), ReadOp()]]
    plan = _abd_fault_plans()[plan_index]
    for seed in range(12):
        res, hist = run_abd(3, 1, writer=0, scripts=scripts,
                            seed=seed, faults=plan)
        assert check_linearizable(hist, RegisterSpec()), \
            f"healthy ABD rejected under plan {plan!r} seed {seed}"
