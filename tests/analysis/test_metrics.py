"""The observability layer: schema stability, determinism, atomicity.

Three guarantees, marked ``metrics`` (a tier parallel to ``exhaustive``
/ ``lint`` / ``parallel``):

* **Golden schema** -- the exact key set of every emitted record is
  pinned, so accidental field drift breaks a test, not a downstream
  diff consumer;
* **Statistics isolation** -- collecting metrics adds *zero* entries to
  ``ExplorationStats`` and leaves the explored statistics bit-for-bit
  identical to an uninstrumented run;
* **Atomic emission** -- an interrupted writer leaves the previous file
  intact and no temp droppings.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.metrics import (METRICS_SCHEMA_VERSION, PHASES,
                                    TIMING_KEYS, ExplorationMetrics,
                                    RunMetrics, atomic_write_text,
                                    deterministic_view,
                                    render_metrics_table, write_jsonl)
from repro.runtime import ExplorationStats, explore
from repro.scenarios import check_scenarios

#: The golden exploration-record schema, version 4 (v3 plus the ``net``
#: transport-tally block added for the socket shard service).  Adding,
#: removing, or renaming a key is a schema change: bump
#: METRICS_SCHEMA_VERSION and update this fixture (and
#: docs/observability.md) deliberately.
EXPLORATION_KEYS_V4 = [
    "schema_version", "kind", "scenario", "engine", "outcome",
    "partial", "interrupt_reason",
    "complete_runs", "truncated_runs", "total_runs", "pruned_runs",
    "prune_ratio", "max_depth_seen", "shard_count",
    "peak_frontier_size", "sleep_set_hits", "sleep_set_checks",
    "sleep_set_hit_rate", "cache_hits", "cache_skipped_runs",
    "ddmin_replays", "violation",
    "jobs", "phases", "wall_seconds", "runs_per_sec", "workers", "net",
]

#: Deterministic subset: everything minus the timing/worker/transport
#: keys (the cache counters count as topology-dependent: the cache is
#: per shard; the ``net`` tallies are pure transport observability).
DETERMINISTIC_KEYS_V4 = [key for key in EXPLORATION_KEYS_V4
                         if key not in TIMING_KEYS]


@pytest.mark.metrics
class TestGoldenSchema:
    def test_schema_version_is_four(self):
        assert METRICS_SCHEMA_VERSION == 4

    def test_exploration_record_key_set_is_pinned(self):
        record = ExplorationMetrics(scenario="s").finalize().to_dict()
        assert list(record) == EXPLORATION_KEYS_V4
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert record["kind"] == "exploration"

    def test_exploration_record_is_json_serializable(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        metrics = ExplorationMetrics(scenario=sc.name, jobs=2)
        explore(sc.build, sc.check,
                crash_plan_factory=sc.crash_plan_factory,
                max_steps=sc.max_steps, reduction="dpor", jobs=2,
                metrics=metrics)
        record = json.loads(json.dumps(metrics.finalize().to_dict()))
        assert list(record) == EXPLORATION_KEYS_V4
        assert record["total_runs"] == (record["complete_runs"]
                                        + record["truncated_runs"])
        assert record["phases"].keys() == set(PHASES)

    def test_record_interrupted_marks_partial(self):
        metrics = ExplorationMetrics(scenario="s")
        stats = ExplorationStats(complete_runs=7, truncated_runs=1,
                                 max_depth_seen=9)
        metrics.record_interrupted("timeout", stats)
        record = metrics.finalize().to_dict()
        assert record["outcome"] == "interrupted"
        assert record["partial"] is True
        assert record["interrupt_reason"] == "timeout"
        assert record["complete_runs"] == 7
        assert record["total_runs"] == 8

    def test_run_metrics_key_set_is_pinned(self):
        record = RunMetrics(kind="audit", name="x",
                            data={"runs": 8}).to_dict()
        assert list(record) == ["schema_version", "kind", "name", "data"]
        assert record["schema_version"] == METRICS_SCHEMA_VERSION

    def test_deterministic_view_strips_exactly_timing_and_workers(self):
        record = ExplorationMetrics(scenario="s").finalize().to_dict()
        view = deterministic_view(record)
        assert list(view) == DETERMINISTIC_KEYS_V4
        # Nested timing keys are stripped too (audit data records).
        nested = {"data": {"wall_seconds": 1.0, "runs": 8,
                           "inner": [{"busy_seconds": 2.0, "ok": 1}]}}
        assert deterministic_view(nested) == {
            "data": {"runs": 8, "inner": [{"ok": 1}]}}


@pytest.mark.metrics
class TestStatisticsIsolation:
    """Metrics collection must not perturb exploration statistics."""

    def test_exploration_stats_gained_no_fields(self):
        # The timing/observability fields live in ExplorationMetrics,
        # never here: this is the jobs=1 == jobs=N bit-for-bit contract.
        assert {f.name for f in dataclasses.fields(ExplorationStats)} \
            == {"complete_runs", "truncated_runs", "max_depth_seen",
                "pruned_runs", "violation"}

    @pytest.mark.parametrize("reduction", ["naive", "dpor"])
    @pytest.mark.parametrize("jobs", [None, 1, 2])
    def test_stats_identical_with_and_without_metrics(self, reduction,
                                                      jobs):
        sc = check_scenarios(n=2)["safe-agreement"]
        bare = explore(sc.build, sc.check, max_steps=sc.max_steps,
                       reduction=reduction, jobs=jobs)
        metrics = ExplorationMetrics(scenario=sc.name, engine=reduction,
                                     jobs=jobs or 1)
        observed = explore(sc.build, sc.check, max_steps=sc.max_steps,
                           reduction=reduction, jobs=jobs,
                           metrics=metrics)
        assert bare == observed
        assert metrics.complete_runs == observed.complete_runs
        assert metrics.total_runs == observed.total_runs

    def test_serial_dpor_metrics_capture_sleep_and_phases(self):
        sc = check_scenarios(n=2)["safe-agreement"]
        metrics = ExplorationMetrics(scenario=sc.name)
        explore(sc.build, sc.check, max_steps=sc.max_steps,
                reduction="dpor", metrics=metrics)
        assert metrics.sleep_set_checks > 0
        assert 0.0 <= metrics.sleep_set_hit_rate <= 1.0
        assert metrics.finalize().wall_seconds > 0
        assert metrics.phases["shard_execution"] > 0

    def test_violation_records_ddmin_replays(self):
        from repro.runtime import CounterexampleFound
        sc = check_scenarios()["broken-demo"]
        metrics = ExplorationMetrics(scenario=sc.name)
        with pytest.raises(CounterexampleFound) as excinfo:
            explore(sc.build, sc.check, max_steps=sc.max_steps,
                    reduction="dpor", metrics=metrics)
        assert metrics.ddmin_replays > 0
        assert metrics.ddmin_replays == \
            excinfo.value.counterexample.ddmin_attempts
        assert metrics.phases["shrink"] > 0


@pytest.mark.metrics
class TestAtomicEmission:
    def test_atomic_write_replaces_whole_file(self, tmp_path):
        target = tmp_path / "report.txt"
        atomic_write_text(str(target), "first\n")
        atomic_write_text(str(target), "second\n")
        assert target.read_text() == "second\n"
        assert os.listdir(tmp_path) == ["report.txt"]

    def test_interrupted_write_preserves_previous(self, tmp_path,
                                                  monkeypatch):
        import repro.analysis.metrics as metrics_mod
        target = tmp_path / "report.txt"
        atomic_write_text(str(target), "safe\n")

        def boom(src, dst):
            raise OSError("disk detached mid-replace")

        monkeypatch.setattr(metrics_mod.os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(str(target), "torn\n")
        monkeypatch.undo()
        assert target.read_text() == "safe\n"
        assert os.listdir(tmp_path) == ["report.txt"]

    def test_write_jsonl_round_trip(self, tmp_path):
        target = tmp_path / "runs.jsonl"
        records = [{"a": 1}, {"b": [2, 3]}]
        write_jsonl(str(target), records)
        lines = target.read_text().splitlines()
        assert [json.loads(line) for line in lines] == records


@pytest.mark.metrics
class TestDurability:
    """Crash-durability of atomic writes, pinned at the syscall level.

    Atomicity (temp file + rename) only protects against a crashed
    *writer*; durability against a host crash additionally needs the
    temp file fsynced before the rename and the directory fsynced after
    it.  These tests spy on ``os.fsync``/``os.replace`` inside the
    metrics module and pin the exact sequence, so the fix can never
    silently regress to rename-only.
    """

    @staticmethod
    def _spy_events(monkeypatch, tmp_path):
        import stat

        import repro.analysis.metrics as metrics_mod
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            is_dir = stat.S_ISDIR(os.fstat(fd).st_mode)
            events.append(("fsync", "dir" if is_dir else "file"))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace",))
            return real_replace(src, dst)

        monkeypatch.setattr(metrics_mod.os, "fsync", spy_fsync)
        monkeypatch.setattr(metrics_mod.os, "replace", spy_replace)
        return events

    def test_durable_write_fsyncs_file_then_renames_then_dir(
            self, tmp_path, monkeypatch):
        events = self._spy_events(monkeypatch, tmp_path)
        atomic_write_text(str(tmp_path / "ckpt.json"), "state\n")
        assert events == [("fsync", "file"), ("replace",),
                          ("fsync", "dir")]

    def test_durable_is_the_default(self, tmp_path, monkeypatch):
        events = self._spy_events(monkeypatch, tmp_path)
        write_jsonl(str(tmp_path / "runs.jsonl"), [{"a": 1}])
        assert ("fsync", "file") in events
        assert ("fsync", "dir") in events

    def test_opt_out_skips_every_fsync_but_stays_atomic(
            self, tmp_path, monkeypatch):
        events = self._spy_events(monkeypatch, tmp_path)
        target = tmp_path / "bench.txt"
        atomic_write_text(str(target), "fast\n", durable=False)
        assert events == [("replace",)]
        assert target.read_text() == "fast\n"
        assert os.listdir(tmp_path) == ["bench.txt"]


@pytest.mark.metrics
class TestRendering:
    def test_table_has_one_row_per_record_plus_header(self):
        exploration = ExplorationMetrics(scenario="sa").finalize()
        audit = RunMetrics(kind="audit", name="sa",
                           data={"wall_seconds": 0.5})
        lines = render_metrics_table([exploration.to_dict(),
                                      audit.to_dict()])
        assert len(lines) == 3
        assert "scenario" in lines[0]
        assert lines[1].startswith("sa")
