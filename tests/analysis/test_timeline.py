"""ASCII timeline rendering."""

from repro.analysis.timeline import lane_summary, render_timeline
from repro.algorithms import KSetReadWrite, run_algorithm
from repro.runtime import CrashPlan


def traced_run():
    algo = KSetReadWrite(n=3, t=1, k=2)
    return run_algorithm(algo, [3, 1, 2],
                         crash_plan=CrashPlan.at_own_step({0: 2}),
                         record_trace=True)


class TestTimeline:
    def test_lanes_cover_all_processes(self):
        res = traced_run()
        out = render_timeline(res.trace)
        for pid in range(3):
            assert f"p{pid}" in out

    def test_glyphs_present(self):
        res = traced_run()
        out = render_timeline(res.trace)
        assert "w" in out          # writes happened
        assert "X" in out          # the crash
        assert "D" in out          # decisions

    def test_column_count_matches_events(self):
        res = traced_run()
        out = render_timeline(res.trace, width=10_000)
        lane = next(line for line in out.splitlines()
                    if line.startswith("p0"))
        assert len(lane.split("|", 1)[1]) == len(res.trace.events)

    def test_wrapping(self):
        res = traced_run()
        out = render_timeline(res.trace, width=4)
        # several blocks separated by blank lines
        assert out.count("p0") >= 2

    def test_pid_filter(self):
        res = traced_run()
        out = render_timeline(res.trace, pids=[1])
        assert "p1" in out and "p0 " not in out

    def test_lane_summary_counts(self):
        res = traced_run()
        summary = lane_summary(res.trace)
        assert summary[0].get("X") == 1
        assert summary[1].get("w") == 1
        total = sum(sum(b.values()) for b in summary.values())
        assert total == len(res.trace.events)

    def test_empty_trace(self):
        from repro.runtime import Trace
        out = render_timeline(Trace(enabled=True))
        assert "steps" in out
