"""Blocking certificates and run statistics."""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import KSetReadWrite, WriteThenSnapshot, run_algorithm
from repro.analysis import blocking_certificate, collect_stats
from repro.bg import CollectAllPolicy
from repro.core import SimulationAlgorithm
from repro.runtime import CrashPlan


def collectall_sim(source, t):
    n = source.n
    return SimulationAlgorithm(
        source, n_simulators=n, resilience=t,
        snap_agreement=SafeAgreementFactory(n),
        policy_class=CollectAllPolicy, label="cert-test")


class TestBlockingCertificate:
    def test_clean_run_counts(self):
        src = WriteThenSnapshot(3)
        sim = collectall_sim(src, t=1)
        res = run_algorithm(sim, ["a", "b", "c"])
        cert = blocking_certificate(res, 3, 3)
        assert cert.max_blocked == 0
        assert cert.min_completed == 3
        assert not cert.divergent
        assert cert.lemma1_holds(x=1)
        assert set(cert.simulated_decisions) == {0, 1, 2}

    def test_lemma1_with_one_crash(self):
        # One simulator crash mid-(snapshot)-propose blocks <= 1 simulated
        # process in the x = 1 (BG) setting.
        from repro.runtime import op_on
        src = KSetReadWrite(n=4, t=1, k=2)
        sim = collectall_sim(src, t=1)
        plan = CrashPlan.before_operation(
            0, op_on("SAFE_AG", "write"), occurrence=2)
        res = run_algorithm(sim, [1, 2, 3, 4], crash_plan=plan,
                            max_steps=500_000)
        cert = blocking_certificate(res, 4, 4)
        assert cert.crashed_simulators == {0}
        assert cert.lemma1_holds(x=1), cert.summary()
        assert cert.max_blocked <= 1
        assert cert.min_completed >= 3
        assert "crashed=[0]" in cert.summary()

    def test_blocked_for_live_simulator(self):
        src = WriteThenSnapshot(2)
        sim = collectall_sim(src, t=1)
        res = run_algorithm(sim, ["x", "y"])
        cert = blocking_certificate(res, 2, 2)
        assert cert.blocked_for(0) == set()
        assert cert.live_simulators == {0, 1}


class TestStats:
    def test_collect_stats_fields(self):
        src = WriteThenSnapshot(2)
        sim = collectall_sim(src, t=1)
        res = run_algorithm(sim, ["x", "y"])
        stats = collect_stats(res)
        assert stats.steps == res.steps > 0
        assert stats.store_ops >= stats.steps
        assert stats.decided == 2
        assert stats.crashed == 0
        assert not stats.deadlocked
        # the safe-agreement family reports its instance count
        assert stats.objects.get("SAFE_AG", 0) > 0
        assert "steps=" in stats.row()

    def test_flags_in_row(self):
        algo = KSetReadWrite(n=3, t=1, k=2)
        res = run_algorithm(algo, [1, 2, 3],
                            crash_plan=CrashPlan.initially_dead([0, 1]),
                            enforce_model=False)
        stats = collect_stats(res)
        assert stats.deadlocked
        assert "deadlock" in stats.row()
