"""Linearizability checkers."""

import pytest

from repro.analysis import (OpRecord, RegisterSpec, SnapshotSpec,
                            check_linearizable, check_snapshot_history)


def rec(pid, start, end, op, args=(), result=None):
    return OpRecord(pid, start, end, op, args, result)


class TestGenericChecker:
    def test_sequential_history_ok(self):
        history = [
            rec(0, 0, 1, "write", (0, "a")),
            rec(1, 2, 3, "snapshot", (), ("a", None)),
        ]
        assert check_linearizable(history, SnapshotSpec(2))

    def test_stale_read_after_write_rejected(self):
        history = [
            rec(0, 0, 1, "write", (0, "a")),
            rec(1, 2, 3, "snapshot", (), (None, None)),  # missed the write
        ]
        assert not check_linearizable(history, SnapshotSpec(2))

    def test_concurrent_ops_may_order_either_way(self):
        history = [
            rec(0, 0, 5, "write", (0, "a")),
            rec(1, 1, 4, "snapshot", (), (None, None)),  # overlaps: ok
        ]
        assert check_linearizable(history, SnapshotSpec(2))

    def test_register_spec(self):
        ok = [
            rec(0, 0, 1, "write", ("x",)),
            rec(1, 2, 3, "read", (), "x"),
        ]
        assert check_linearizable(ok, RegisterSpec())
        bad = [
            rec(0, 0, 1, "write", ("x",)),
            rec(0, 2, 3, "write", ("y",)),
            rec(1, 4, 5, "read", (), "x"),
        ]
        assert not check_linearizable(bad, RegisterSpec())

    def test_new_old_inversion_rejected(self):
        # reads see y then x although writes were x then y and all
        # operations are sequential: no linearization exists.
        bad = [
            rec(0, 0, 1, "write", ("x",)),
            rec(0, 2, 3, "write", ("y",)),
            rec(1, 4, 5, "read", (), "y"),
            rec(1, 6, 7, "read", (), "x"),
        ]
        assert not check_linearizable(bad, RegisterSpec())

    def test_history_size_guard(self):
        history = [rec(0, i, i + 1, "read", (), None) for i in range(20)]
        with pytest.raises(ValueError):
            check_linearizable(history, RegisterSpec())


class TestSnapshotHistoryChecker:
    def test_consistent_history(self):
        writes = {0: ["a1", "a2"], 1: ["b1"]}
        snaps = [
            rec(2, 0, 1, "snapshot", (), ("a1", None)),
            rec(2, 2, 3, "snapshot", (), ("a2", "b1")),
        ]
        assert check_snapshot_history(writes, snaps) is None

    def test_incomparable_snapshots_rejected(self):
        writes = {0: ["a1"], 1: ["b1"]}
        snaps = [
            rec(2, 0, 10, "snapshot", (), ("a1", None)),
            rec(3, 0, 10, "snapshot", (), (None, "b1")),
        ]
        out = check_snapshot_history(writes, snaps)
        assert out is not None and "incomparable" in out

    def test_real_time_violation_rejected(self):
        writes = {0: ["a1"], 1: []}
        snaps = [
            rec(2, 0, 1, "snapshot", (), ("a1", None)),   # completed first
            rec(3, 5, 6, "snapshot", (), (None, None)),   # then regressed
        ]
        out = check_snapshot_history(writes, snaps)
        assert out is not None and "real-time" in out

    def test_unknown_value_rejected(self):
        writes = {0: ["a1"], 1: []}
        snaps = [rec(2, 0, 1, "snapshot", (), ("ghost", None))]
        assert check_snapshot_history(writes, snaps) is not None

    def test_duplicate_writes_rejected(self):
        writes = {0: ["same", "same"], 1: []}
        assert check_snapshot_history(writes, []) is not None
