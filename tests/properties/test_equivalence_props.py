"""Algebraic properties of the floor(t/x) calculus (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (canonical, equivalence_classes, equivalent, in_band,
                        kset_solvable, max_xcons_resilience,
                        min_x_for_resilience, multiplicative_band,
                        resilience_index, stronger, transfer_impossibility,
                        useless_boost, x_band_for_index)
from repro.model import ASM


def models(max_n=40):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(0, n - 1),
            st.integers(1, n),
        )).map(lambda t: ASM(*t))


class TestEquivalenceRelation:
    @given(models())
    def test_reflexive(self, m):
        assert equivalent(m, m)

    @given(models(), models())
    def test_symmetric(self, m1, m2):
        assert equivalent(m1, m2) == equivalent(m2, m1)

    @given(models(), models(), models())
    @settings(max_examples=200)
    def test_transitive(self, m1, m2, m3):
        if equivalent(m1, m2) and equivalent(m2, m3):
            assert equivalent(m1, m3)

    @given(models())
    def test_canonical_is_equivalent_fixed_point(self, m):
        c = canonical(m)
        assert equivalent(m, c)
        assert c.x == 1
        assert canonical(c) == c

    @given(models(), models())
    def test_trichotomy(self, m1, m2):
        assert (equivalent(m1, m2) + stronger(m1, m2) +
                stronger(m2, m1)) == 1


class TestBands:
    @given(st.integers(0, 30), st.integers(1, 12), st.integers(0, 400))
    def test_band_membership_is_index_equality(self, t, x, t_prime):
        assert in_band(t_prime, t, x) == (resilience_index(t_prime, x) == t)

    @given(st.integers(0, 30), st.integers(1, 12))
    def test_band_width_is_x(self, t, x):
        lo, hi = multiplicative_band(t, x)
        assert hi - lo + 1 == x
        assert lo == t * x

    @given(st.integers(0, 60), st.integers(1, 60))
    def test_x_band_covers_exactly_matching_x(self, t_prime, t):
        band = x_band_for_index(t_prime, t)
        for x in range(1, t_prime + 2):
            matches = t_prime // x == t
            if band is None:
                assert not matches
            else:
                lo, hi = band
                assert matches == (lo <= x <= hi)

    @given(st.integers(0, 40), st.integers(1, 10), st.integers(0, 10))
    def test_useless_boost_definition(self, t, x, dx):
        assert useless_boost(t, x, dx) == \
            (resilience_index(t, x) == resilience_index(t, x + dx))


class TestPartitions:
    @given(st.integers(2, 40).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, n - 1))))
    def test_partition_is_exact_cover(self, nt):
        n, t_prime = nt
        covered = []
        for cls in equivalence_classes(n, t_prime):
            lo, hi = cls.x_range
            assert lo <= hi
            assert cls.index == t_prime // lo == t_prime // hi
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1, n + 1))

    @given(st.integers(2, 40).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, n - 1))))
    def test_class_indices_strictly_decrease(self, nt):
        n, t_prime = nt
        indices = [c.index for c in equivalence_classes(n, t_prime)]
        assert indices == sorted(indices, reverse=True)
        assert len(set(indices)) == len(indices)


class TestSolvabilityFrontier:
    @given(models(), st.integers(1, 40))
    def test_solvability_monotone_in_k(self, m, k):
        if kset_solvable(m, k):
            assert kset_solvable(m, k + 1)

    @given(st.integers(1, 10), st.integers(1, 10))
    def test_max_resilience_is_tight(self, k, x):
        t_max = max_xcons_resilience(k, x)
        n = t_max + 2
        assert kset_solvable(ASM(n, t_max, x), k)
        assert not kset_solvable(ASM(n + 1, t_max + 1, x), k)

    @given(st.integers(1, 10), st.integers(0, 30))
    def test_min_x_is_tight(self, k, t_prime):
        x = min_x_for_resilience(k, t_prime)
        n = max(t_prime + 1, x) + 1
        assert kset_solvable(ASM(n, t_prime, x), k)
        if x > 1:
            assert not kset_solvable(ASM(n, t_prime, x - 1), k)

    @given(models(), models())
    def test_impossibility_transfer_is_contrapositive(self, m1, m2):
        # impossibility transfers m1 -> m2 iff solvable tasks transfer
        # m2 -> m1.
        assert transfer_impossibility(m1, m2) == \
            (m2.resilience_index >= m1.resilience_index)
