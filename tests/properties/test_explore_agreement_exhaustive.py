"""Exhaustive agreement checks that only finish under DPOR.

The 3-process/1-crash configurations here have schedule spaces too large
for naive enumeration under a modest run budget, but collapse to a few
dozen Mazurkiewicz traces under partial-order reduction.  Each test
first pins the hardness (naive exceeds the budget) and then proves the
property over ALL interleavings with ``reduction="dpor"``.
"""

import pytest

from repro.agreement.adopt_commit import COMMIT, AdoptCommit, adopt_commit_specs
from repro.memory import build_store
from repro.runtime import CrashPlan, explore
from repro.scenarios import check_scenarios

pytestmark = pytest.mark.exhaustive

NAIVE_BUDGET = 1500


def _adopt_commit_crashy_build():
    """3 proposers with divergent values; p0 crashes mid-propose."""
    values = ["a", "b", "b"]

    def build():
        store = build_store(adopt_commit_specs(3))

        def proposer(pid):
            out = yield from AdoptCommit("k", 3).propose(pid, values[pid])
            return out

        return {i: proposer(i) for i in range(3)}, store

    return build, (lambda: CrashPlan.at_own_step({0: 3})), values


def _check_adopt_commit_coherence(values):
    def check(result):
        outs = list(result.decisions.values())
        # p0 may crash before returning; the survivors must still finish.
        assert {1, 2} <= result.decided_pids, result.summary()
        committed = {v for tag, v in outs if tag == COMMIT}
        assert len(committed) <= 1, f"coherence violated: {outs}"
        if committed:
            winner = next(iter(committed))
            assert all(v == winner for _, v in outs), \
                f"coherence violated: {outs}"
        assert {v for _, v in outs} <= set(values), \
            f"validity violated: {outs}"

    return check


class TestAdoptCommitExhaustive:
    def test_naive_cannot_finish_under_budget(self):
        build, plan, values = _adopt_commit_crashy_build()
        with pytest.raises(RuntimeError, match="max_runs"):
            explore(build, _check_adopt_commit_coherence(values),
                    crash_plan_factory=plan, max_steps=16,
                    max_runs=NAIVE_BUDGET)

    def test_dpor_proves_coherence_exhaustively(self):
        build, plan, values = _adopt_commit_crashy_build()
        stats = explore(build, _check_adopt_commit_coherence(values),
                        crash_plan_factory=plan, max_steps=16,
                        max_runs=NAIVE_BUDGET, reduction="dpor")
        # Same budget that defeats naive enumeration; every complete run
        # satisfied coherence + validity and nothing was truncated.
        assert stats.truncated_runs == 0
        assert stats.complete_runs > 0
        assert stats.pruned_runs > 0
        assert stats.reduction_ratio < 1.0


class TestXSafeAgreementExhaustive:
    """Figure 6 x-safe-agreement: one crash (< x) cannot block it."""

    def _scenario(self):
        return check_scenarios(n=3, x=2)["x-safe-agreement"]

    def test_naive_cannot_finish_under_budget(self):
        sc = self._scenario()
        with pytest.raises(RuntimeError, match="max_runs"):
            explore(sc.build, sc.check,
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=sc.max_steps, max_runs=NAIVE_BUDGET)

    def test_dpor_proves_validity_exhaustively(self):
        sc = self._scenario()
        stats = explore(sc.build, sc.check,
                        crash_plan_factory=sc.crash_plan_factory,
                        max_steps=sc.max_steps, max_runs=NAIVE_BUDGET,
                        reduction="dpor")
        assert stats.truncated_runs == 0
        assert stats.complete_runs > 0
        assert stats.pruned_runs > 0
