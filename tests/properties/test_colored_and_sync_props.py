"""Hypothesis properties for the colored simulation, splitter renaming,
adopt-commit and the synchronous engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement.adopt_commit import COMMIT, AdoptCommit, \
    adopt_commit_specs
from repro.algorithms import SplitterGridRenaming, run_algorithm
from repro.memory import build_store
from repro.runtime import CrashPlan, SeededRandomAdversary, run_processes
from repro.sync import SyncCrash, SyncKSetMRT, SyncPhase, run_sync


class TestAdoptCommitProps:
    @given(seed=st.integers(0, 10_000),
           values=st.lists(st.integers(0, 3), min_size=3, max_size=5),
           crashes=st.dictionaries(st.integers(0, 4), st.integers(1, 8),
                                   max_size=2))
    @settings(max_examples=120, deadline=None)
    def test_coherence_and_validity_always(self, seed, values, crashes):
        n = len(values)
        store = build_store(adopt_commit_specs(n))

        def proposer(pid):
            out = yield from AdoptCommit("k", n).propose(pid, values[pid])
            return out

        res = run_processes(
            {i: proposer(i) for i in range(n)}, store,
            adversary=SeededRandomAdversary(seed),
            crash_plan=CrashPlan.at_own_step(
                {p: s for p, s in crashes.items() if p < n}))
        committed = {v for tag, v in res.decisions.values()
                     if tag == COMMIT}
        assert len(committed) <= 1
        for tag, v in res.decisions.values():
            assert v in values
            if committed:
                assert v == next(iter(committed)) or tag != COMMIT
        if committed:
            v = next(iter(committed))
            assert all(value == v for _, value in res.decisions.values())


class TestSplitterGridProps:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 6),
           crashes=st.dictionaries(st.integers(0, 5), st.integers(1, 6),
                                   max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_names_distinct_and_bounded(self, seed, n, crashes):
        algo = SplitterGridRenaming(n)
        res = run_algorithm(
            algo, [None] * n,
            adversary=SeededRandomAdversary(seed),
            crash_plan=CrashPlan.at_own_step(
                {p: s for p, s in crashes.items() if p < n}),
            enforce_model=False)
        names = list(res.decisions.values())
        assert len(names) == len(set(names))
        assert all(0 <= name < algo.namespace for name in names)
        assert res.decided_pids == res.correct_pids


class TestSyncMRTProps:
    @given(seed=st.integers(0, 10_000), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_k_bound_under_random_crashes(self, seed, data):
        n, t, k, m, ell = 10, 4, 2, 2, 1
        algo = SyncKSetMRT(n, t, k, m, ell)
        rng = random.Random(seed)
        n_crashes = data.draw(st.integers(0, t))
        victims = rng.sample(range(n), n_crashes)
        crashes = []
        for v in victims:
            r = data.draw(st.integers(0, algo.rounds - 1))
            phase = data.draw(st.sampled_from(list(SyncPhase)))
            subset = frozenset(data.draw(st.sets(st.integers(0, n - 1),
                                                 max_size=n)))
            crashes.append(SyncCrash(v, r, phase, delivered_to=subset))
        res = run_sync(algo, list(range(n)), crashes, seed=seed)
        assert len(res.decided_values) <= k
        assert res.decided_values <= set(range(n))
        assert set(res.decisions) == set(range(n)) - res.crashed
