"""Differential tier: serial vs parallel exploration must agree exactly.

The parallel backend's whole value rests on one claim: ``jobs`` controls
only how many OS processes execute the shards, never which shards exist
or what they report.  These tests pin that claim for every registry
scenario -- identical ``ExplorationStats`` (hence identical
``total_runs`` and ``reduction_ratio``) between ``jobs=1`` and
``jobs=4``, and for the deliberately-broken demo the same minimal shrunk
counterexample schedule.  Run just this tier with ``pytest -m parallel``.
"""

import pytest

from repro.runtime import CounterexampleFound, explore
from repro.scenarios import SOUND_SCENARIOS, check_scenarios

pytestmark = pytest.mark.parallel


def _explore_with(sc, jobs, reduction="dpor"):
    return explore(sc.build, sc.check,
                   crash_plan_factory=sc.crash_plan_factory,
                   max_steps=sc.max_steps, max_runs=sc.max_runs,
                   reduction=reduction, jobs=jobs)


@pytest.mark.parametrize("name", SOUND_SCENARIOS)
def test_dpor_jobs1_equals_jobs4(name):
    sc = check_scenarios(n=3)[name]
    serial = _explore_with(sc, jobs=1)
    parallel = _explore_with(sc, jobs=4)
    assert serial == parallel  # every field, not just totals
    assert serial.total_runs == parallel.total_runs
    assert serial.reduction_ratio == parallel.reduction_ratio
    assert serial.complete_runs > 0
    assert serial.truncated_runs == 0, \
        f"{name} verdict must not be depth-bounded: {serial}"


@pytest.mark.parametrize("name", ["adopt-commit", "queue-2cons"])
def test_dpor_jobs_and_state_cache_are_orthogonal(name):
    # The state cache (docs/performance.md) folds subtrees per shard,
    # so its counters are worker-topology-dependent -- but the merged
    # ExplorationStats must stay identical across every combination of
    # jobs and cache mode.  Registry scenarios are exact-match
    # workloads (the no-op-plant hit rule), so raw run counts agree,
    # not just the deterministic view.
    sc = check_scenarios(n=3)[name]
    baseline = explore(sc.build, sc.check,
                       crash_plan_factory=sc.crash_plan_factory,
                       max_steps=sc.max_steps, max_runs=sc.max_runs,
                       reduction="dpor", jobs=1, state_cache=False)
    for jobs in (1, 4):
        cached = explore(sc.build, sc.check,
                         crash_plan_factory=sc.crash_plan_factory,
                         max_steps=sc.max_steps, max_runs=sc.max_runs,
                         reduction="dpor", jobs=jobs, state_cache=True)
        assert cached == baseline, f"jobs={jobs}"


@pytest.mark.parametrize("name", ["queue-2cons", "adopt-commit"])
def test_naive_jobs1_equals_jobs4(name):
    # Naive sharding partitions the tree exactly; cross-check the naive
    # engine too on the scenarios where it is affordable (n=2 sizes).
    sc = check_scenarios(n=2)[name]
    serial = _explore_with(sc, jobs=1, reduction="naive")
    parallel = _explore_with(sc, jobs=4, reduction="naive")
    assert serial == parallel
    classic = explore(sc.build, sc.check,
                      crash_plan_factory=sc.crash_plan_factory,
                      max_steps=sc.max_steps, reduction="naive")
    assert classic.total_runs == serial.total_runs


def test_broken_demo_same_minimal_counterexample():
    sc = check_scenarios()["broken-demo"]
    outcomes = []
    for jobs in (1, 4):
        with pytest.raises(CounterexampleFound) as excinfo:
            _explore_with(sc, jobs=jobs)
        outcomes.append(excinfo.value)
    first, second = outcomes
    assert first.counterexample.prefix == second.counterexample.prefix
    assert first.counterexample.schedule == second.counterexample.schedule
    assert first.stats == second.stats
    # The shrunk artifact must still replay to a violation.
    assert first.counterexample.reproduces()


def test_broken_demo_matches_classic_serial_counterexample():
    # The sharded backend must find the same minimal prefix the classic
    # (jobs=None) DPOR engine reports, so --jobs never changes a repro.
    sc = check_scenarios()["broken-demo"]
    with pytest.raises(CounterexampleFound) as classic:
        explore(sc.build, sc.check, max_steps=sc.max_steps,
                reduction="dpor")
    with pytest.raises(CounterexampleFound) as sharded:
        _explore_with(sc, jobs=4)
    assert classic.value.counterexample.prefix == \
        sharded.value.counterexample.prefix
    assert classic.value.counterexample.schedule == \
        sharded.value.counterexample.schedule


def test_dpor_jobs_agree_with_byzantine_faults_active():
    # The sharding claim must survive the fault layer: with a Byzantine
    # behavior attached (and crashes lifted into the FaultPlan), shard
    # statistics still cannot depend on the worker count.  Adopt-commit
    # is the scenario whose proposals are opaque values, so corrupting
    # them is type-safe; the check is relaxed to liveness-only because
    # a corrupted proposal legitimately changes decided values.
    from repro.runtime import FaultPlan, byzantine_writer

    sc = check_scenarios(n=2)["adopt-commit"]

    def fault_factory():
        plan = byzantine_writer(0, "v1", obj="AC1", method="write")
        if sc.crash_plan_factory is not None:
            base = sc.crash_plan_factory()
            plan = FaultPlan(points=base.points,
                             behaviors=plan.behaviors)
        return plan

    def relaxed_check(result):
        assert not result.deadlocked, result.summary()

    serial = explore(sc.build, relaxed_check,
                     crash_plan_factory=fault_factory,
                     max_steps=sc.max_steps, max_runs=sc.max_runs,
                     reduction="dpor", jobs=1)
    parallel = explore(sc.build, relaxed_check,
                       crash_plan_factory=fault_factory,
                       max_steps=sc.max_steps, max_runs=sc.max_runs,
                       reduction="dpor", jobs=4)
    assert serial == parallel
    assert serial.complete_runs > 0
