"""Hypothesis properties of the message-passing engine and hosted stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import BOTTOM
from repro.memory.afek_snapshot import AfekSnapshot
from repro.messaging import (MessageCrash, MessageMachine, run_messaging)
from repro.messaging.hosted import host_program_run


class Counter(MessageMachine):
    """Broadcasts k tokens; decides on how many tokens it received."""

    def __init__(self, pid, n, k):
        super().__init__(pid, n)
        self.k = k
        self.received = 0
        self.expected = k * (n - 1)

    def start(self):
        for i in range(self.k):
            self.broadcast(("tok", i), include_self=False)
        if self.expected == 0:
            self.decide(0)

    def on_message(self, sender, payload):
        self.received += 1
        if self.received >= self.expected:
            self.decide(self.received)


class TestEngineProperties:
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 5),
           k=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_no_loss_no_duplication(self, seed, n, k):
        machines = [Counter(i, n, k) for i in range(n)]
        res = run_messaging(machines, seed=seed)
        # every machine eventually receives exactly k*(n-1) tokens.
        assert res.decisions == {i: k * (n - 1) for i in range(n)}
        assert res.undelivered == 0

    @given(seed=st.integers(0, 100_000), n=st.integers(3, 5),
           victim_events=st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_crash_only_silences_the_victim(self, seed, n, victim_events):
        machines = [Counter(i, n, 1) for i in range(n)]
        # the victim processes at most 1 start + (n-1) receive events;
        # cap the trigger so the crash actually fires.
        after = min(victim_events, n - 1)
        res = run_messaging(
            machines,
            crashes=[MessageCrash(0, after_events=after)],
            seed=seed, max_events=10_000)
        assert res.crashed == {0}
        assert 0 not in res.decisions
        # survivors receive at most n-1 tokens each, never more.
        for machine in machines[1:]:
            assert machine.received <= n - 1


class TestHostedStackProperty:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_full_stack_kset_safety(self, seed):
        n, t = 3, 1

        def program(pid, value):
            view = AfekSnapshot("R", n)
            yield from view.update(pid, value)
            while True:
                snap = yield from view.snapshot(pid)
                seen = [e for e in snap if e is not BOTTOM]
                if len(seen) >= n - t:
                    return min(seen)

        inputs = [seed % 7, (seed // 7) % 7, (seed // 49) % 7]
        res = host_program_run(
            n, t, {pid: program(pid, inputs[pid]) for pid in range(n)},
            seed=seed)
        assert not res.stalled
        decided = set(res.decisions.values())
        assert len(decided) <= t + 1
        assert decided <= set(inputs)
