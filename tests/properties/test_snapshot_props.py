"""Afek snapshot linearizability under hypothesis-generated workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OpRecord, check_snapshot_history
from repro.memory import BOTTOM, build_store
from repro.memory.afek_snapshot import AfekSnapshot
from repro.runtime import CrashPlan, SeededRandomAdversary, run_processes


@given(seed=st.integers(0, 100_000),
       n=st.integers(2, 4),
       rounds=st.integers(1, 3),
       crash=st.one_of(st.none(), st.tuples(st.integers(0, 3),
                                            st.integers(1, 30))))
@settings(max_examples=80, deadline=None)
def test_histories_always_linearizable(seed, n, rounds, crash):
    writes = {w: [] for w in range(n)}
    history = []
    store = build_store(AfekSnapshot("R", n).object_specs())

    def proc(pid):
        view = AfekSnapshot("R", n)
        for k in range(rounds):
            value = (pid, k)
            writes[pid].append(value)
            yield from view.update(pid, value)
            start = store.op_count
            snap = yield from view.snapshot(pid)
            history.append(
                OpRecord(pid, start, store.op_count, "snapshot", (), snap))
        return True

    plan = CrashPlan.none()
    if crash is not None and crash[0] < n:
        plan = CrashPlan.at_own_step({crash[0]: crash[1]})
    res = run_processes({i: proc(i) for i in range(n)}, store,
                        adversary=SeededRandomAdversary(seed),
                        crash_plan=plan, max_steps=200_000)
    assert not res.out_of_steps
    # wait-freedom: every non-crashed process finishes.
    assert res.decided_pids == set(range(n)) - res.crashed_pids
    # only fully written values enter the history check: a crashed
    # process may have registered an intent without completing the write.
    final_cells = res.store["R"].cells
    for w in range(n):
        written = [] if final_cells[w] is BOTTOM else None
    violation = check_snapshot_history(
        {w: writes[w] for w in writes}, history, initial=BOTTOM)
    # A crash between 'writes[pid].append' and the register write can
    # leave a recorded-but-unwritten value; that only *shrinks* snapshot
    # contents, which the checker tolerates (entry stays ⊥ / older).
    assert violation is None, violation
