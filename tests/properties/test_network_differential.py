"""The ``network`` tier: serial vs fork-pool vs socket must agree exactly.

The socket shard service's contract is the fork pool's, one layer out:
the *transport* controls only where shards execute, never which shards
exist or what they report.  These tests pin that claim bit-for-bit on
every registry scenario -- identical ``ExplorationStats`` and identical
:func:`deterministic_view` metrics records between ``jobs=1``,
``jobs=4`` and a live TCP :class:`ShardServer` with real
:class:`ShardWorker` sessions -- and then keep pinning it while a
:class:`ChaosProxy` mangles the frame stream, a worker process is
SIGKILLed mid-run, and the coordinator itself is killed -9 and resumed
via ``check --resume``.  Run just this tier with ``pytest -m network``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.__main__ import main
from repro.analysis.metrics import ExplorationMetrics, deterministic_view
from repro.runtime import CounterexampleFound, explore
from repro.runtime.frontier import KILL_AFTER_ENV
from repro.runtime.netshard import ChaosProxy, ShardServer, ShardWorker
from repro.runtime.parallel import explore_parallel
from repro.scenarios import SOUND_SCENARIOS, ScenarioRef, check_scenarios

pytestmark = pytest.mark.network

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _scenario(name, n=3):
    return check_scenarios(n=n)[name]


def _serial(sc, metrics=None):
    return explore(sc.build, sc.check,
                   crash_plan_factory=sc.crash_plan_factory,
                   max_steps=sc.max_steps, max_runs=sc.max_runs,
                   reduction="dpor", jobs=1, metrics=metrics)


class _SocketRun:
    """One exploration served over a real TCP socket, workers in-thread.

    The coordinator (``explore_parallel`` with the server as its pool)
    runs in a background thread; the caller gets the bound address to
    attach workers or a chaos proxy, then :meth:`finish` joins
    everything and returns (or raises) the exploration outcome.
    """

    def __init__(self, name, sc, n=3, lease_timeout=5.0,
                 metrics=None, **server_kwargs):
        self.sc = sc
        config = {"scenario": name, "n": n, "x": 2,
                  "max_steps": sc.max_steps, "max_runs": sc.max_runs,
                  "reduction": "dpor", "state_cache": True}
        self._ready = threading.Event()
        self._addr = {}

        def announce(host, port):
            self._addr["addr"] = (host, port)
            self._ready.set()

        self.server = ShardServer(config=config,
                                  lease_timeout=lease_timeout,
                                  solo_after=60.0, announce=announce,
                                  **server_kwargs)
        self._box = {}
        self._workers = []

        def coordinate():
            try:
                self._box["stats"] = explore_parallel(
                    sc.build, sc.check,
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=sc.max_steps, max_runs=sc.max_runs,
                    jobs=1, reduction="dpor",
                    scenario=ScenarioRef(name, n=n), metrics=metrics,
                    pool=self.server)
            except BaseException as exc:  # noqa: BLE001 - re-raised
                self._box["error"] = exc

        self._coord = threading.Thread(target=coordinate, daemon=True)
        self._coord.start()

    @property
    def address(self):
        assert self._ready.wait(10.0), "server never bound its socket"
        return self._addr["addr"]

    def wait_bound(self, timeout=10.0):
        """True once the socket is listening; False when the run ended
        without sharding (2-process scenarios finish during frontier
        expansion, so their pools -- and the listener -- never run)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._ready.is_set():
                return True
            if not self._coord.is_alive():
                return False
            time.sleep(0.01)
        raise AssertionError("server neither bound nor finished")

    def attach_worker(self, name, host=None, port=None, **kwargs):
        bound_host, bound_port = self.address
        worker = ShardWorker(host or bound_host, port or bound_port,
                             name=name, heartbeat_interval=0.2, **kwargs)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        self._workers.append((worker, thread))
        return worker

    def finish(self, timeout=180.0):
        self._coord.join(timeout=timeout)
        assert not self._coord.is_alive(), "coordinator wedged"
        for _worker, thread in self._workers:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "worker thread wedged"
        if "error" in self._box:
            raise self._box["error"]
        return self._box["stats"]


class TestSocketDifferential:
    @pytest.mark.parametrize("name", SOUND_SCENARIOS)
    def test_serial_fork_and_socket_agree_bit_for_bit(self, name):
        sc = _scenario(name)
        serial_metrics = ExplorationMetrics(scenario=name, jobs=1)
        serial = _serial(sc, metrics=serial_metrics)
        fork_metrics = ExplorationMetrics(scenario=name, jobs=4)
        fork = explore(sc.build, sc.check,
                       crash_plan_factory=sc.crash_plan_factory,
                       max_steps=sc.max_steps, max_runs=sc.max_runs,
                       reduction="dpor", jobs=4, metrics=fork_metrics)
        socket_metrics = ExplorationMetrics(scenario=name, jobs=1)
        run = _SocketRun(name, sc, metrics=socket_metrics)
        sharded = run.wait_bound()
        if sharded:
            run.attach_worker(f"{name}-w0")
            run.attach_worker(f"{name}-w1")
        stats = run.finish()

        assert serial == fork
        assert serial == stats  # every field, not just totals
        reference = deterministic_view(
            serial_metrics.finalize().to_dict())
        assert deterministic_view(
            fork_metrics.finalize().to_dict()) == reference
        assert deterministic_view(
            socket_metrics.finalize().to_dict()) == reference
        if sharded:
            # The comparison must not be vacuous: the workers really
            # served shards over the socket, and nothing fell through
            # the cracks.
            tallies = run.server.tallies
            assert tallies["remote_shards"] > 0, tallies
            assert tallies["remote_shards"] \
                + tallies["inprocess_shards"] \
                >= serial_metrics.shard_count

    def test_broken_demo_socket_finds_identical_counterexample(self):
        sc = check_scenarios()["broken-demo"]
        with pytest.raises(CounterexampleFound) as serial_exc:
            _serial(sc)
        run = _SocketRun("broken-demo", sc)
        if run.wait_bound():
            run.attach_worker("demo-w0")
        with pytest.raises(CounterexampleFound) as socket_exc:
            run.finish()
        assert socket_exc.value.counterexample.prefix == \
            serial_exc.value.counterexample.prefix
        assert socket_exc.value.counterexample.schedule == \
            serial_exc.value.counterexample.schedule
        assert socket_exc.value.stats == serial_exc.value.stats


class TestChaos:
    def test_chaotic_transport_changes_nothing(self):
        """Drop, duplicate, delay, truncate, reorder and disconnect
        faults on live connections cost retries, never results."""
        name = "adopt-commit"
        sc = _scenario(name)
        serial = _serial(sc)
        run = _SocketRun(name, sc, lease_timeout=2.0)
        host, port = run.address
        proxy = ChaosProxy(host, port, seed=7, drop=0.02, duplicate=0.03,
                           delay=0.03, delay_seconds=0.005, truncate=0.01,
                           reorder=0.02, disconnect=0.01)
        proxy_host, proxy_port = proxy.start()
        try:
            for i in range(2):
                run.attach_worker(f"chaos-w{i}", host=proxy_host,
                                  port=proxy_port, rpc_timeout=1.0,
                                  rpc_attempts=10)
            stats = run.finish()
        finally:
            proxy.stop()
        assert stats == serial
        assert sum(proxy.injected.values()) > 0, \
            "the chaos proxy injected no faults; the test is vacuous"

    def test_duplicated_completion_frames_are_deduplicated(self):
        """A duplicate-heavy proxy replays completion frames; the
        server must apply each shard exactly once."""
        name = "safe-agreement"
        sc = _scenario(name)
        serial = _serial(sc)
        run = _SocketRun(name, sc)
        host, port = run.address
        proxy = ChaosProxy(host, port, seed=3, duplicate=0.5)
        proxy_host, proxy_port = proxy.start()
        try:
            run.attach_worker("dup-w0", host=proxy_host, port=proxy_port,
                              rpc_timeout=1.0, rpc_attempts=10)
            stats = run.finish()
        finally:
            proxy.stop()
        assert stats == serial
        assert proxy.injected["duplicate"] > 0


class TestProcessDeath:
    def test_worker_sigkill_mid_run_changes_nothing(self, tmp_path):
        """SIGKILL a live remote worker process: its leases lapse, the
        shards re-grant, and the merged statistics are untouched."""
        name = "adopt-commit"
        sc = _scenario(name)
        serial = _serial(sc)
        run = _SocketRun(name, sc, lease_timeout=1.0)
        host, port = run.address
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{host}:{port}", "--name", "doomed"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            # Let it take (at least) one grant, then kill it cold.
            deadline = time.monotonic() + 30.0
            while (run.server.tallies["remote_shards"] == 0
                   and proc.poll() is None
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            proc.kill()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - belt and braces
                proc.kill()
        # All remotes are now gone: the coordinator's degradation
        # ladder (re-grant, then in-process) finishes the run alone.
        stats = run.finish()
        assert stats == serial
        tallies = run.server.tallies
        assert tallies["remote_shards"] > 0, "worker never served"
        assert tallies["inprocess_shards"] > 0, \
            "the coordinator never had to fall back"

    def test_coordinator_kill9_then_check_resume(self, tmp_path, capsys):
        """kill -9 the serve coordinator mid-journal; plain ``check
        --resume`` finishes the run bit-for-bit (the store is
        transport-agnostic)."""
        name = "adopt-commit"
        out = str(tmp_path / "reference.jsonl")
        expected = main(["check", name, "--jobs", "1",
                         "--metrics-out", out])
        assert expected == 0
        with open(out) as handle:
            (reference,) = [json.loads(line) for line in handle]
        capsys.readouterr()

        store = str(tmp_path / "frontier.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env[KILL_AFTER_ENV] = "2"  # SIGKILL after two journal entries
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", name,
             "--checkpoint", store, "--solo-after", "0.1"],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL, \
            (proc.returncode, proc.stdout, proc.stderr)
        assert os.path.exists(store)

        resumed_out = str(tmp_path / "resumed.jsonl")
        code = main(["check", name, "--resume", store, "--jobs", "1",
                     "--metrics-out", resumed_out])
        assert f"resuming from {store}" in capsys.readouterr().out
        assert code == expected
        with open(resumed_out) as handle:
            (record,) = [json.loads(line) for line in handle]
        assert deterministic_view(record) == deterministic_view(reference)

    def test_serve_and_worker_cli_end_to_end(self, tmp_path):
        """The documented two-command flow: ``serve`` in one process,
        ``worker`` in another, metrics v4 net tallies on the record."""
        name = "adopt-commit"
        out = str(tmp_path / "serve.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", name,
             "--bind", "127.0.0.1:0", "--solo-after", "120",
             "--metrics-out", out],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            addr = None
            for _ in range(10):  # banner lines precede the address
                line = serve.stdout.readline()
                if "[serve] listening on " in line:
                    addr = line.strip().rsplit(" ", 1)[-1]
                    break
            assert addr is not None, "serve never announced its address"
            worker = subprocess.run(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", addr],
                env=env, capture_output=True, text=True, timeout=300)
            assert worker.returncode == 0, \
                (worker.stdout, worker.stderr)
            assert "shard(s) completed" in worker.stdout
            serve_out, _ = serve.communicate(timeout=300)
            assert serve.returncode == 0, serve_out
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.wait()
        with open(out) as handle:
            (record,) = [json.loads(line) for line in handle]
        assert record["schema_version"] == 4
        assert record["net"]["remote_shards"] > 0
        assert record["net"]["inprocess_shards"] == 0
        # And the socket record's deterministic view equals serial's.
        ref_out = str(tmp_path / "reference.jsonl")
        assert main(["check", name, "--jobs", "1",
                     "--metrics-out", ref_out]) == 0
        with open(ref_out) as handle:
            (reference,) = [json.loads(line) for line in handle]
        assert deterministic_view(record) == deterministic_view(reference)
