"""The blocking lemma (paper Section 3), checked over ALL schedules.

Safe-agreement's termination caveat is exactly the paper's doorway
argument: ``sa_decide`` terminates provided no simulator crashes
*between* its level-1 write and its level-0/2 overwrite (the doorway of
``sa_propose``).  A crash inside that window leaves an UNSTABLE entry
forever, blocking every decider on that one instance -- and, crucially,
*only* on that instance: a crash inside instance ``a``'s doorway says
nothing about instance ``b``.  That "blocks at most one simulated
process per crash" containment is what lets the BG simulation trade one
simulator crash for one blocked simulated process.

These tests explore every interleaving (DPOR) of a 3-process system
using two safe-agreement instances from one factory, under one injected
crash (`runtime/crash.py`), and pin both directions:

* crash INSIDE the doorway of ``a`` + deciders on ``a``  -> some runs
  deadlock with the late survivors proven BLOCKED (a decider whose
  snapshot beats p0's level-1 write still legitimately decides), and
  every decision that does happen satisfies agreement + validity;
* crash INSIDE the doorway of ``a`` + deciders on ``b``  -> every run
  terminates with agreement + validity (containment);
* crash OUTSIDE the doorway (before the level-1 write, or after the
  overwrite) -> deciding on ``a`` always terminates.

Exact deadlock detection (period-1 spin stutter pruning) is what makes
the blocking direction checkable: a run whose survivors spin on a
provably-false snapshot predicate is a *complete*, deadlocked run, not a
truncated one.  The parallel variants re-prove the blocking direction
through the sharded backend, pinning serial/parallel agreement under
crash plans too.
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import CrashPlan, ProcessStatus, explore

pytestmark = pytest.mark.exhaustive

N = 3
#: p0's own-step index of each phase of ``propose(a)`` (1-based; the
#: crash plan fires *before* the given own step).  Steps 1-3 are the
#: level-1 write, the snapshot, and the level-0/2 overwrite; the doorway
#: is after step 1 has executed and before step 3 has -- i.e. crashing
#: before own step 2 or 3 lands inside it.
BEFORE_WRITE, IN_DOORWAY_EARLY, IN_DOORWAY_LATE, AFTER_PROPOSE = 1, 2, 3, 4


def _build_two_instances(decide_on):
    """3 processes: propose on ``a``, then on ``b``, then decide on one."""

    def build():
        factory = SafeAgreementFactory(N)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            a, b = factory.instance("a"), factory.instance("b")
            yield from a.propose(i, f"a{i}")
            yield from b.propose(i, f"b{i}")
            inst = a if decide_on == "a" else b
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(N)}, store

    return build


def _crash_plan_factory(own_step):
    return lambda: CrashPlan.at_own_step({0: own_step})


def _explore(build, check, own_step, jobs=None):
    return explore(build, check,
                   crash_plan_factory=_crash_plan_factory(own_step),
                   max_steps=30, max_runs=200_000, reduction="dpor",
                   jobs=jobs)


def _make_blocking_check(counts=None):
    """Per-run safety for doorway-crash runs with deciders on ``a``.

    A survivor whose decide-snapshot lands *before* p0's level-1 write
    legitimately decides (the doorway is empty at that point), so the
    lemma is containment, not universal blocking: every survivor either
    decides (with agreement + validity) or is proven BLOCKED on p0's
    forever-UNSTABLE entry -- never FAILED, never a missed decision in a
    terminated run.  ``counts`` (serial mode only: closures do not
    mutate back across worker forks) tallies run shapes so the caller
    can assert blocking actually bites in some schedule and not in all.
    """
    proposals = {f"a{i}" for i in range(N)}

    def check(result):
        assert result.statuses[0] is ProcessStatus.CRASHED
        if result.decided_values:
            assert len(result.decided_values) == 1, \
                f"agreement violated: {sorted(result.decided_values)}"
            assert result.decided_values <= proposals, \
                f"validity violated: {sorted(result.decided_values)}"
        if result.deadlocked:
            blocked = {pid for pid in (1, 2)
                       if result.statuses[pid] is ProcessStatus.BLOCKED}
            assert blocked, f"deadlock without spinners: {result.summary()}"
            assert result.decided_pids | blocked == {1, 2}, \
                f"survivor neither decided nor blocked: {result.summary()}"
            if counts is not None:
                counts["blocked"] = counts.get("blocked", 0) + 1
        else:
            assert result.decided_pids == {1, 2}, \
                (f"terminated run with undecided survivor: "
                 f"{result.summary()}")
            if counts is not None:
                counts["all_decided"] = counts.get("all_decided", 0) + 1

    return check


def _make_check_decided(instance_tag, deciders):
    proposals = {f"{instance_tag}{i}" for i in range(N)}

    def check(result):
        assert not result.deadlocked, \
            (f"crash outside {instance_tag}'s doorway must not block: "
             f"{result.summary()}")
        assert result.decided_pids == deciders, \
            f"survivors did not all decide: {result.summary()}"
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= proposals, \
            f"validity violated: {sorted(result.decided_values)}"

    return check


class TestDoorwayCrashBlocks:
    @pytest.mark.parametrize("own_step",
                             [IN_DOORWAY_EARLY, IN_DOORWAY_LATE])
    def test_doorway_crash_blocks_some_schedules_and_only_blocks(
            self, own_step):
        build = _build_two_instances(decide_on="a")
        counts = {}
        stats = _explore(build, _make_blocking_check(counts), own_step)
        assert stats.complete_runs > 0
        assert stats.truncated_runs == 0, \
            f"verdict must not be depth-bounded: {stats}"
        # Blocking is real: some schedule leaves a survivor spinning on
        # p0's unstable entry forever ...
        assert counts.get("blocked", 0) > 0, \
            f"no schedule exhibited doorway blocking: {counts}"
        # ... but not inevitable: a survivor whose decide beats p0's
        # level-1 write terminates, so blocking stays per-schedule.
        assert counts.get("all_decided", 0) > 0, \
            f"every schedule blocked -- doorway model too strong: {counts}"

    @pytest.mark.parametrize("own_step",
                             [IN_DOORWAY_EARLY, IN_DOORWAY_LATE])
    def test_other_instance_is_unaffected(self, own_step):
        # Containment: the same doorway crash in ``a`` blocks at most
        # that one instance -- deciding on ``b`` always terminates with
        # agreement + validity among the survivors.
        build = _build_two_instances(decide_on="b")
        check = _make_check_decided("b", deciders={1, 2})
        stats = _explore(build, check, own_step)
        assert stats.complete_runs > 0
        assert stats.truncated_runs == 0


class TestNonDoorwayCrashDoesNotBlock:
    @pytest.mark.parametrize("own_step", [BEFORE_WRITE, AFTER_PROPOSE])
    def test_deciding_on_a_terminates(self, own_step):
        # Before the level-1 write p0 never enters a's doorway; after
        # the overwrite it has already left it.  Either way a stays
        # decidable.
        build = _build_two_instances(decide_on="a")
        check = _make_check_decided("a", deciders={1, 2})
        stats = _explore(build, check, own_step)
        assert stats.complete_runs > 0
        assert stats.truncated_runs == 0


@pytest.mark.parallel
class TestBlockingLemmaParallelMode:
    """The same lemma through the sharded backend (serial vs parallel)."""

    def test_blocking_direction_jobs1_equals_jobs2(self):
        build = _build_two_instances(decide_on="a")
        check = _make_blocking_check()  # pure: counters don't cross forks
        serial = _explore(build, check, IN_DOORWAY_EARLY, jobs=1)
        parallel = _explore(build, check, IN_DOORWAY_EARLY, jobs=2)
        assert serial == parallel
        assert serial.complete_runs > 0 and serial.truncated_runs == 0

    def test_containment_direction_jobs1_equals_jobs2(self):
        build = _build_two_instances(decide_on="b")
        check = _make_check_decided("b", deciders={1, 2})
        serial = _explore(build, check, IN_DOORWAY_LATE, jobs=1)
        parallel = _explore(build, check, IN_DOORWAY_LATE, jobs=2)
        assert serial == parallel
        assert serial.complete_runs > 0 and serial.truncated_runs == 0
