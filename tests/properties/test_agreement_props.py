"""Safe-agreement and x-safe-agreement invariants under random schedules
and random crash injection (hypothesis).

The three type properties (paper Sections 3.1 and 4.2):

* Agreement: at most one value decided -- under EVERY schedule and crash
  pattern.
* Validity: the decided value was proposed.
* Termination: conditional on the crash pattern; we check both directions
  of the conditional where the pattern makes it decidable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import CrashPlan, SeededRandomAdversary, run_processes


def participant(factory, key, i, value):
    inst = factory.instance(key)
    yield from inst.propose(i, value)
    decided = yield from inst.decide(i)
    return decided


def run_agreement(factory_cls, n, x, seed, crash_steps):
    """crash_steps: dict pid -> own-step (1-based) to crash before."""
    if factory_cls is SafeAgreementFactory:
        factory = SafeAgreementFactory(n)
    else:
        factory = XSafeAgreementFactory(n, x)
    store = ObjectStore()
    store.add_all(factory.shared_objects())
    plan = CrashPlan.at_own_step(crash_steps) if crash_steps else \
        CrashPlan.none()
    return run_processes(
        {i: participant(factory, "k", i, f"v{i}") for i in range(n)},
        store, adversary=SeededRandomAdversary(seed), crash_plan=plan,
        max_steps=100_000)


crash_maps = st.dictionaries(st.integers(0, 4), st.integers(1, 12),
                             max_size=3)


class TestSafeAgreementProperties:
    @given(seed=st.integers(0, 10_000), crashes=crash_maps)
    @settings(max_examples=150, deadline=None)
    def test_agreement_and_validity_always(self, seed, crashes):
        n = 5
        res = run_agreement(SafeAgreementFactory, n, 1, seed, crashes)
        assert not res.out_of_steps
        assert len(res.decided_values) <= 1
        assert res.decided_values <= {f"v{i}" for i in range(n)}

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_termination_without_crashes(self, seed):
        n = 5
        res = run_agreement(SafeAgreementFactory, n, 1, seed, {})
        assert res.decided_pids == set(range(n))


class TestXSafeAgreementProperties:
    @given(seed=st.integers(0, 10_000), crashes=crash_maps,
           x=st.integers(1, 3))
    @settings(max_examples=150, deadline=None)
    def test_agreement_and_validity_always(self, seed, crashes, x):
        n = 5
        res = run_agreement(XSafeAgreementFactory, n, x, seed, crashes)
        assert not res.out_of_steps
        assert len(res.decided_values) <= 1
        assert res.decided_values <= {f"v{i}" for i in range(n)}

    @given(seed=st.integers(0, 10_000), x=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_termination_without_crashes(self, seed, x):
        n = 5
        res = run_agreement(XSafeAgreementFactory, n, x, seed, {})
        assert res.decided_pids == set(range(n))

    @given(seed=st.integers(0, 10_000),
           victim=st.integers(0, 4), step=st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_single_crash_never_kills_x2_object(self, seed, victim, step):
        """With x = 2, ONE crash (wherever it lands) leaves the object
        live: every other participant decides."""
        n = 5
        res = run_agreement(XSafeAgreementFactory, n, 2, seed,
                            {victim: step})
        expected = set(range(n)) - res.crashed_pids
        assert res.decided_pids == expected
