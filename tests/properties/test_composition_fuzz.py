"""Composition fuzzing: random pipelines of the paper's constructions.

Hypothesis draws a random small source algorithm, a random legal chain
of simulations (Section 3 / Section 4 / classic BG, possibly nested),
a random crash plan within the final model's budget and a random
schedule -- then asserts the source task's verdict on the composite.
This exercises the machinery's composition surface far beyond the
hand-written chains.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.core import (bg_reduce, simulate_in_read_write,
                        simulate_with_xcons)
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask


@st.composite
def pipelines(draw):
    """(algorithm, task_k, description) with a legal random structure."""
    kind = draw(st.sampled_from(["rw", "xcons"]))
    if kind == "rw":
        n = draw(st.integers(3, 5))
        t = draw(st.integers(1, min(2, n - 2)))
        k = t + 1
        algo = KSetReadWrite(n=n, t=t, k=k)
    else:
        n = draw(st.integers(3, 5))
        x = draw(st.integers(2, min(3, n)))
        algo = GroupedKSetFromXCons(n=n, x=x)
        k = algo.k
    steps = draw(st.integers(0, 2))
    desc = [algo.name]
    for _ in range(steps):
        model = algo.model()
        choices = []
        if model.x > 1:
            choices.append("down")
        if model.x == 1 and model.resilience_index >= 1 and model.n >= 3:
            choices.append("bg")
        # lifting: pick x2 and t2 with floor(t2/x2) <= current index
        if model.n >= 3:
            choices.append("up")
        if not choices:       # e.g. after BG down to ASM(2, 1, 1)
            break
        move = draw(st.sampled_from(choices))
        if move == "down":
            algo = simulate_in_read_write(
                algo, t=model.resilience_index)
            desc.append(f"sec3->{algo.model()}")
        elif move == "bg":
            algo = bg_reduce(algo)
            desc.append(f"bg->{algo.model()}")
        else:
            x2 = draw(st.integers(1, min(3, model.n)))
            idx = model.resilience_index
            t2_max = min(model.n - 1, idx * x2 + x2 - 1)
            t2_min = 0
            t2 = draw(st.integers(t2_min, t2_max))
            if x2 == 1 and t2 > idx:
                t2 = idx
            if algo.resilience < t2 // x2:
                continue
            algo = simulate_with_xcons(algo, t_prime=t2, x=x2)
            desc.append(f"sec4->{algo.model()}")
    return algo, k, " | ".join(desc)


@given(pipeline=pipelines(),
       seed=st.integers(0, 10_000),
       crash_fraction=st.floats(0, 1))
@settings(max_examples=25, deadline=None)
def test_random_pipeline_preserves_task(pipeline, seed, crash_fraction):
    algo, k, desc = pipeline
    model = algo.model()
    budget = int(model.t * crash_fraction)
    victims = {v: 3 + 4 * v for v in range(budget)}
    res = run_algorithm(algo, list(range(algo.n)),
                        adversary=SeededRandomAdversary(seed),
                        crash_plan=CrashPlan.at_own_step(victims),
                        max_steps=40_000_000)
    assert not res.out_of_steps, desc
    verdict = KSetAgreementTask(k).validate_run(list(range(algo.n)), res)
    assert verdict.ok, f"{desc}: {verdict.explain()} | {res.summary()}"
