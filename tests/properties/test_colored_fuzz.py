"""Colored-simulation fuzzing (Section 5.5).

Random legal (source, target) shapes for the colored simulation with
random crash plans and schedules; distinctness of adopted decisions must
hold in every run, and every correct simulator must claim a value.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import (RenamingFromTAS, SplitterGridRenaming,
                              run_algorithm)
from repro.core import colored_simulation_possible, simulate_colored
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import DistinctValuesTask


@st.composite
def colored_shapes(draw):
    n_prime = draw(st.integers(3, 4))
    t_prime = draw(st.integers(0, 1))
    x_prime = draw(st.integers(2, 3))
    t = draw(st.integers(1, 4))
    # choose n to satisfy the Section 5.5 head-room condition.
    n = max(n_prime, (n_prime - t_prime) + t) + draw(st.integers(0, 1))
    source_kind = draw(st.sampled_from(["tas", "splitter"]))
    source_model = ASM(n, t, 2 if source_kind == "tas" else 1)
    assume(colored_simulation_possible(source_model,
                                       ASM(n_prime, t_prime, x_prime)))
    return source_kind, n, t, n_prime, t_prime, x_prime


@given(shape=colored_shapes(),
       seed=st.integers(0, 10_000),
       crash_seed=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_colored_simulation_distinctness(shape, seed, crash_seed):
    source_kind, n, t, n_prime, t_prime, x_prime = shape
    if source_kind == "tas":
        source = RenamingFromTAS(n, t=t)
    else:
        source = SplitterGridRenaming(n)
        source.resilience = t
    sim = simulate_colored(source, n_prime=n_prime, t_prime=t_prime,
                           x_prime=x_prime)
    victims = list(range(min(t_prime, crash_seed)))
    plan = CrashPlan.at_own_step({v: 4 + 5 * v for v in victims})
    res = run_algorithm(sim, [None] * n_prime,
                        adversary=SeededRandomAdversary(seed),
                        crash_plan=plan, max_steps=30_000_000)
    assert not res.out_of_steps
    verdict = DistinctValuesTask().validate_run(
        [None] * n_prime, res, require_liveness=False)
    assert verdict.ok, verdict.explain()
    # every correct simulator adopted a (distinct) simulated decision.
    assert res.decided_pids == res.correct_pids, res.summary()
