"""The ``resume`` tier: kill -9 mid-exploration, resume, compare.

The frontier store's whole contract is one sentence: *an exploration
interrupted at any point and resumed finishes bit-for-bit identical to
an uninterrupted run*.  These tests enforce it literally -- a subprocess
coordinator SIGKILLs itself at a chosen journal point (the
``REPRO_FRONTIER_KILL_AFTER`` hook in
:mod:`repro.runtime.frontier`; no cooperation from the code under
test), then ``check --resume`` continues in-process and the resulting
metrics record's :func:`deterministic_view` must equal the reference
run's, for every registry scenario, including the deliberately broken
one (same counterexample, same exit code).

Run just this tier with ``pytest -m resume``; the CLI pair under test
is ``python -m repro check NAME --checkpoint PATH`` / ``--resume PATH``.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

import repro
from repro.__main__ import main
from repro.analysis.metrics import deterministic_view
from repro.runtime.frontier import KILL_AFTER_ENV
from repro.scenarios import check_scenarios

pytestmark = pytest.mark.resume

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SCENARIOS = list(check_scenarios())

#: Scenarios whose schedule tree outlives frontier expansion (the
#: 2-process ones finish during expansion, so their pools run zero
#: shards and only the kill-after-header point exists).
SHARDED = [name for name in SCENARIOS
           if name in ("safe-agreement", "adopt-commit",
                       "x-safe-agreement")]

#: Expected uninterrupted exit code per scenario (broken-demo exists to
#: exercise the violation path).
EXPECTED_EXIT = {name: (1 if name == "broken-demo" else 0)
                 for name in SCENARIOS}


def _records(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _run_killed(name, store_path, kill_after, jobs=1):
    """``check NAME --checkpoint`` in a subprocess that SIGKILLs itself."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env[KILL_AFTER_ENV] = str(kill_after)
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", name,
         "--checkpoint", store_path, "--jobs", str(jobs)],
        env=env, capture_output=True, text=True, timeout=300)


def _reference(name, tmp_path):
    """Uninterrupted in-process run: (exit code, deterministic view)."""
    out = str(tmp_path / "reference.jsonl")
    code = main(["check", name, "--jobs", "1", "--metrics-out", out])
    (record,) = _records(out)
    return code, deterministic_view(record)


class TestKillResumeDifferential:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_scenario_resumes_bit_for_bit(self, name, tmp_path,
                                                capsys):
        expected, reference = _reference(name, tmp_path)
        assert expected == EXPECTED_EXIT[name]
        kill_points = [0, 2] if name in SHARDED else [0]
        for kill_after in kill_points:
            store = str(tmp_path / f"frontier-{kill_after}.jsonl")
            proc = _run_killed(name, store, kill_after)
            assert proc.returncode == -signal.SIGKILL, \
                (proc.returncode, proc.stdout, proc.stderr)
            assert os.path.exists(store)

            out = str(tmp_path / f"resumed-{kill_after}.jsonl")
            capsys.readouterr()
            code = main(["check", name, "--resume", store,
                         "--jobs", "1", "--metrics-out", out])
            assert f"resuming from {store}" in capsys.readouterr().out
            assert code == expected
            (record,) = _records(out)
            assert deterministic_view(record) == reference

    def test_broken_demo_resume_reproduces_the_counterexample(
            self, tmp_path, capsys):
        # Exit code equality alone could hide a *different* (still
        # failing) schedule; the violation recorded in the metrics is
        # part of the reference view compared above, so here we only
        # pin that the resumed run actually shrinks and reports one.
        _, reference = _reference("broken-demo", tmp_path)
        assert reference["violation"] is not None
        store = str(tmp_path / "frontier.jsonl")
        proc = _run_killed("broken-demo", store, 0)
        assert proc.returncode == -signal.SIGKILL
        capsys.readouterr()
        out = str(tmp_path / "resumed.jsonl")
        assert main(["check", "broken-demo", "--resume", store,
                     "--jobs", "1", "--metrics-out", out]) == 1
        assert "agreement violated" in capsys.readouterr().out
        (record,) = _records(out)
        assert deterministic_view(record)["violation"] \
            == reference["violation"]

    def test_jobs4_kill_before_pool_resumes_identically(self, tmp_path,
                                                        capsys):
        # Kill-after-header under jobs=4 dies before the pool forks
        # (later kill points would orphan live workers); the resume
        # also runs jobs=4 and must still match the jobs=1 reference --
        # the store's shard partition, not the worker count, fixes the
        # statistics.
        _, reference = _reference("adopt-commit", tmp_path)
        store = str(tmp_path / "frontier.jsonl")
        proc = _run_killed("adopt-commit", store, 0, jobs=4)
        assert proc.returncode == -signal.SIGKILL
        capsys.readouterr()
        out = str(tmp_path / "resumed.jsonl")
        assert main(["check", "adopt-commit", "--resume", store,
                     "--jobs", "4", "--metrics-out", out]) == 0
        (record,) = _records(out)
        assert deterministic_view(record) == reference

    def test_resuming_a_finished_store_is_idempotent(self, tmp_path,
                                                     capsys):
        reference_code, reference = _reference("adopt-commit", tmp_path)
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "adopt-commit", "--checkpoint", store,
                     "--jobs", "1"]) == reference_code
        for _ in range(2):
            out = str(tmp_path / "resumed.jsonl")
            capsys.readouterr()
            assert main(["check", "adopt-commit", "--resume", store,
                         "--jobs", "1", "--metrics-out", out]) \
                == reference_code
            (record,) = _records(out)
            assert deterministic_view(record) == reference


class TestResumeCLIContract:
    def test_resume_missing_store_is_rejected(self, tmp_path, capsys):
        # ISSUE 10 satellite: --resume names a checkpoint the operator
        # expects to exist.  Silently starting fresh would discard the
        # progress they thought they were continuing; reject loudly.
        store = str(tmp_path / "never-written.jsonl")
        assert main(["check", "queue-2cons", "--resume", store,
                     "--jobs", "1"]) == 2
        err = capsys.readouterr().err
        assert "RESUME REJECTED" in err
        assert "no frontier store" in err
        assert not os.path.exists(store)  # rejected, not recreated

    def test_resume_unreadable_store_is_rejected(self, tmp_path, capsys):
        # A corrupt or torn store must produce the same loud rejection,
        # never a traceback.
        store = tmp_path / "garbage.jsonl"
        store.write_text("not a frontier header\n")
        assert main(["check", "queue-2cons", "--resume", str(store),
                     "--jobs", "1"]) == 2
        err = capsys.readouterr().err
        assert "RESUME REJECTED" in err
        assert "unreadable frontier store" in err

    def test_mismatched_fingerprint_is_rejected(self, tmp_path, capsys):
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "adopt-commit", "--checkpoint", store,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["check", "adopt-commit", "--resume", store,
                     "--jobs", "1", "--max-steps", "9"]) == 2
        err = capsys.readouterr().err
        assert "RESUME REJECTED" in err
        assert "max_steps" in err

    def test_resume_under_a_different_scenario_is_rejected(
            self, tmp_path, capsys):
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "adopt-commit", "--checkpoint", store,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["check", "safe-agreement", "--resume", store,
                     "--jobs", "1"]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_checkpoint_overwrites_a_stale_store(self, tmp_path, capsys):
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "adopt-commit", "--checkpoint", store,
                     "--jobs", "1"]) == 0
        # --checkpoint means "fresh run": a second one must not try to
        # resume (or trip over) the finished store from the first.
        assert main(["check", "adopt-commit", "--checkpoint", store,
                     "--jobs", "1"]) == 0

    def test_checkpoint_and_resume_together_exit_two(self, capsys):
        assert main(["check", "adopt-commit", "--checkpoint", "a",
                     "--resume", "b"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_checkpoint_requires_a_single_scenario(self, tmp_path,
                                                   capsys):
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "all", "--checkpoint", store]) == 2
        assert "exactly one scenario" in capsys.readouterr().err

    def test_checkpoint_defaults_to_jobs_one(self, tmp_path, capsys):
        # --checkpoint without --jobs must route through the sharded
        # engine (the serial engine has no frontier to persist).
        store = str(tmp_path / "frontier.jsonl")
        assert main(["check", "adopt-commit", "--checkpoint",
                     store]) == 0
        assert os.path.exists(store)
