"""End-to-end simulation properties under random schedules and crashes.

For random small instances of both theorems, the simulated task's safety
must hold under EVERY schedule, and liveness whenever the crash count
respects the target resilience.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.core import simulate_in_read_write, simulate_with_xcons
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask


class TestTheorem1Properties:
    @given(seed=st.integers(0, 100_000),
           victims=st.sets(st.integers(0, 3), max_size=1),
           steps=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_section3_simulation(self, seed, victims, steps):
        src = GroupedKSetFromXCons(n=4, x=2)      # 2-set, t' = 3
        sim = simulate_in_read_write(src, t=1)     # ASM(4, 1, 1)
        plan = CrashPlan.at_own_step({v: steps for v in victims})
        res = run_algorithm(sim, [10, 20, 30, 40],
                            adversary=SeededRandomAdversary(seed),
                            crash_plan=plan, max_steps=500_000)
        assert not res.out_of_steps
        verdict = KSetAgreementTask(2).validate_run([10, 20, 30, 40], res)
        assert verdict.ok, f"{verdict.explain()} | {res.summary()}"


class TestTheorem3Properties:
    @given(seed=st.integers(0, 100_000),
           victims=st.sets(st.integers(0, 4), max_size=3),
           steps=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_section4_simulation(self, seed, victims, steps):
        src = KSetReadWrite(n=5, t=1, k=2)         # ASM(5, 1, 1)
        sim = simulate_with_xcons(src, t_prime=3, x=2)  # ASM(5, 3, 2)
        plan = CrashPlan.at_own_step(
            {v: steps + 3 * i for i, v in enumerate(sorted(victims))})
        res = run_algorithm(sim, [5, 4, 3, 2, 1],
                            adversary=SeededRandomAdversary(seed),
                            crash_plan=plan, max_steps=800_000)
        assert not res.out_of_steps
        verdict = KSetAgreementTask(2).validate_run([5, 4, 3, 2, 1], res)
        assert verdict.ok, f"{verdict.explain()} | {res.summary()}"
