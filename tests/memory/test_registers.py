"""Atomic registers and register arrays."""

import pytest

from repro.memory import (BOTTOM, AtomicRegister, PortViolation,
                          RegisterArray)


class TestAtomicRegister:
    def test_initial_bottom(self):
        reg = AtomicRegister("r")
        assert reg.apply(0, "read", ()) is BOTTOM

    def test_write_read(self):
        reg = AtomicRegister("r")
        reg.apply(0, "write", ("v",))
        assert reg.apply(1, "read", ()) == "v"
        assert reg.write_count == 1

    def test_single_writer_enforced(self):
        reg = AtomicRegister("r", writer=2)
        reg.apply(2, "write", ("ok",))
        with pytest.raises(PortViolation):
            reg.apply(0, "write", ("nope",))

    def test_ports_enforced(self):
        reg = AtomicRegister("r", ports=frozenset({0, 1}))
        reg.apply(0, "read", ())
        with pytest.raises(PortViolation):
            reg.apply(5, "read", ())

    def test_consensus_number_is_one(self):
        assert AtomicRegister("r").consensus_number == 1

    def test_read_is_readonly(self):
        reg = AtomicRegister("r")
        assert reg.is_readonly("read")
        assert not reg.is_readonly("write")


class TestRegisterArray:
    def test_cells_independent(self):
        arr = RegisterArray("a", 3)
        arr.apply(0, "write", (1, "x"))
        assert arr.apply(0, "read", (0,)) is BOTTOM
        assert arr.apply(0, "read", (1,)) == "x"

    def test_bounds_checked(self):
        arr = RegisterArray("a", 2)
        with pytest.raises(IndexError):
            arr.apply(0, "read", (2,))
        with pytest.raises(IndexError):
            arr.apply(0, "write", (-1, "v"))

    def test_single_writer_cells(self):
        arr = RegisterArray("a", 3, single_writer=True)
        arr.apply(1, "write", (1, "mine"))
        with pytest.raises(PortViolation):
            arr.apply(1, "write", (0, "not-mine"))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RegisterArray("a", 0)
