"""The derived wait-free snapshot (Afek et al.) is linearizable.

This witnesses the paper's premise (Section 2.3) that snapshot objects can
be wait-free implemented from atomic registers: we run concurrent updaters
and scanners against the derived construction under many adversarial
schedules and check every resulting history with the snapshot
linearizability checker.
"""

import pytest

from repro.analysis import OpRecord, check_snapshot_history
from repro.memory import BOTTOM, build_store
from repro.memory.afek_snapshot import AfekSnapshot
from repro.runtime import SeededRandomAdversary, run_processes

from ..conftest import SEEDS


def run_workload(n, updates_per_proc, seed):
    """Each process alternates updates and snapshots; returns the history."""
    history = []
    writes = {w: [] for w in range(n)}
    store = build_store(AfekSnapshot("R", n).object_specs())

    def proc(pid):
        view = AfekSnapshot("R", n)
        step = 0

        def clock():
            return store.op_count

        for k in range(updates_per_proc):
            value = (pid, k)
            writes[pid].append(value)
            start = clock()
            yield from view.update(pid, value)
            start2 = clock()
            snap = yield from view.snapshot(pid)
            history.append(OpRecord(pid, start2, clock(), "snapshot", (),
                                    snap))
        return True

    result = run_processes({i: proc(i) for i in range(n)}, store,
                           adversary=SeededRandomAdversary(seed))
    assert result.decided_pids == set(range(n))
    return writes, history


class TestAfekSnapshot:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_linearizable_histories(self, seed):
        writes, history = run_workload(n=3, updates_per_proc=3, seed=seed)
        violation = check_snapshot_history(writes, history, initial=BOTTOM)
        assert violation is None, violation

    def test_solo_snapshot_sees_own_update(self):
        store = build_store(AfekSnapshot("R", 2).object_specs())

        def solo(pid):
            view = AfekSnapshot("R", 2)
            yield from view.update(pid, "mine")
            snap = yield from view.snapshot(pid)
            return snap

        res = run_processes({0: solo(0)}, store)
        assert res.decisions[0] == ("mine", BOTTOM)

    def test_empty_snapshot_all_bottom(self):
        store = build_store(AfekSnapshot("R", 3).object_specs())

        def scanner(pid):
            view = AfekSnapshot("R", 3)
            snap = yield from view.snapshot(pid)
            return snap

        res = run_processes({0: scanner(0)}, store)
        assert res.decisions[0] == (BOTTOM, BOTTOM, BOTTOM)

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_wait_free_under_contention(self, seed):
        """Every process finishes even with all processes hammering."""
        writes, history = run_workload(n=4, updates_per_proc=2, seed=seed)
        assert all(len(v) == 2 for v in writes.values())


class TestBorrowedView:
    def test_scanner_borrows_after_double_move(self):
        """Force the helping path: a scanner that observes the same
        writer move twice returns that writer's embedded view instead of
        its own double collect."""
        from repro.runtime import ScriptedAdversary

        store = build_store(AfekSnapshot("R", 2).object_specs())
        outcome = {}

        def scanner(pid):
            view = AfekSnapshot("R", 2)
            snap = yield from view.snapshot(pid)
            outcome["snap"] = snap
            return snap

        def writer(pid):
            view = AfekSnapshot("R", 2)
            yield from view.update(pid, "w1")
            yield from view.update(pid, "w2")
            return True

        # interleave: scanner collects (2 reads), writer completes a full
        # update, scanner collects again (sees move #1), writer completes
        # another update, scanner collects (move #2 -> borrow).
        script = ([0, 0] +          # scanner's first collect
                  [1] * 5 +         # writer: snapshot(2 reads+2) + write
                  [0, 0] +          # scanner collect: move #1 seen
                  [1] * 9 +         # writer: second full update
                  [0, 0])           # scanner collect: move #2 -> borrow
        res = run_processes({0: scanner(0), 1: writer(1)}, store,
                            adversary=ScriptedAdversary(script))
        assert res.decisions[1] is True
        snap = res.decisions[0]
        # the borrowed view is a valid snapshot: entry 1 is one of the
        # writer's values or BOTTOM (if borrowed from the first update).
        assert snap[1] in (BOTTOM, "w1", "w2")
        assert snap[0] is BOTTOM
