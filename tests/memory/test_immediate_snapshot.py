"""Immediate snapshot: the three properties, sampled and exhausted."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import build_store
from repro.memory.immediate_snapshot import (
    ImmediateSnapshot, check_immediate_snapshot_views)
from repro.runtime import (CrashPlan, SeededRandomAdversary,
                           run_processes)
from repro.runtime.explore import explore

from ..conftest import SEEDS


def run_is(n, seed=0, crash_plan=None):
    obj = ImmediateSnapshot("IS", n)
    store = build_store(obj.object_specs())
    inputs = {i: f"v{i}" for i in range(n)}

    def prog(pid):
        view = yield from obj.write_snapshot(pid, inputs[pid])
        return view

    res = run_processes({i: prog(i) for i in range(n)}, store,
                        adversary=SeededRandomAdversary(seed),
                        crash_plan=crash_plan)
    return res, inputs


class TestProperties:
    @pytest.mark.parametrize("seed", SEEDS + list(range(20, 40)))
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_sampled_schedules(self, seed, n):
        res, inputs = run_is(n, seed=seed)
        assert res.decided_pids == set(range(n))
        violations = check_immediate_snapshot_views(res.decisions, inputs)
        assert not violations, violations

    def test_solo_sees_itself_only(self):
        res, inputs = run_is(3, crash_plan=CrashPlan.initially_dead(
            [1, 2]))
        assert res.decisions[0] == {0: "v0"}

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_wait_free_under_crashes(self, seed):
        res, inputs = run_is(4, seed=seed,
                             crash_plan=CrashPlan.at_own_step(
                                 {1: 2, 3: 4}))
        assert res.decided_pids == res.correct_pids
        views = res.decisions
        violations = check_immediate_snapshot_views(views, inputs)
        assert not violations, violations

    @given(seed=st.integers(0, 50_000), n=st.integers(2, 5),
           crash=st.one_of(st.none(),
                           st.tuples(st.integers(0, 4),
                                     st.integers(1, 8))))
    @settings(max_examples=80, deadline=None)
    def test_property_fuzz(self, seed, n, crash):
        plan = CrashPlan.none()
        if crash is not None and crash[0] < n:
            plan = CrashPlan.at_own_step({crash[0]: crash[1]})
        res, inputs = run_is(n, seed=seed, crash_plan=plan)
        assert res.decided_pids == res.correct_pids
        violations = check_immediate_snapshot_views(res.decisions, inputs)
        assert not violations, violations


class TestExhaustive:
    def test_all_schedules_n2(self):
        n = 2
        inputs = {i: f"v{i}" for i in range(n)}

        def build():
            obj = ImmediateSnapshot("IS", n)
            store = build_store(obj.object_specs())

            def prog(pid):
                view = yield from obj.write_snapshot(pid, inputs[pid])
                return view

            return {i: prog(i) for i in range(n)}, store

        def check(result):
            assert result.decided_pids == {0, 1}
            violations = check_immediate_snapshot_views(
                result.decisions, inputs)
            assert not violations, violations

        stats = explore(build, check, max_steps=16)
        assert stats.complete_runs > 3
        assert stats.truncated_runs == 0


class TestChecker:
    def test_checker_flags_containment_violation(self):
        views = {0: {0: "a"}, 1: {1: "b"}}
        out = check_immediate_snapshot_views(views, {0: "a", 1: "b"})
        assert any("containment" in v for v in out)

    def test_checker_flags_immediacy_violation(self):
        views = {0: {0: "a", 1: "b"}, 1: {0: "a", 1: "b", 2: "c"}}
        out = check_immediate_snapshot_views(
            views, {0: "a", 1: "b", 2: "c"})
        assert any("immediacy" in v for v in out)

    def test_checker_flags_self_inclusion(self):
        views = {0: {1: "b"}}
        out = check_immediate_snapshot_views(views, {0: "a", 1: "b"})
        assert any("self-inclusion" in v for v in out)
