"""Base-atomic snapshot objects."""

import pytest

from repro.memory import BOTTOM, PortViolation, SnapshotObject


class TestSnapshotObject:
    def test_initially_all_bottom(self):
        snap = SnapshotObject("mem", 3)
        assert snap.apply(0, "snapshot", ()) == (BOTTOM, BOTTOM, BOTTOM)

    def test_write_own_entry(self):
        snap = SnapshotObject("mem", 3)
        snap.apply(1, "write", (1, "v"))
        assert snap.apply(0, "snapshot", ()) == (BOTTOM, "v", BOTTOM)
        assert snap.apply(2, "read", (1,)) == "v"

    def test_owner_enforced(self):
        snap = SnapshotObject("mem", 3)
        with pytest.raises(PortViolation):
            snap.apply(0, "write", (1, "v"))

    def test_owner_not_enforced_when_disabled(self):
        snap = SnapshotObject("mem", 3, enforce_owner=False)
        snap.apply(0, "write", (2, "v"))
        assert snap.apply(0, "read", (2,)) == "v"

    def test_owner_map(self):
        # entry 0 owned by process 7 (e.g. simulator ids remapped).
        snap = SnapshotObject("mem", 2, owner_map={0: 7, 1: 8})
        snap.apply(7, "write", (0, "a"))
        with pytest.raises(PortViolation):
            snap.apply(8, "write", (0, "b"))

    def test_update_writes_own_entry(self):
        snap = SnapshotObject("mem", 3)
        snap.apply(2, "update", ("mine",))
        assert snap.apply(0, "read", (2,)) == "mine"

    def test_counters(self):
        snap = SnapshotObject("mem", 2)
        snap.apply(0, "write", (0, 1))
        snap.apply(0, "write", (0, 2))
        snap.apply(1, "snapshot", ())
        assert snap.write_counts == [2, 0]
        assert snap.snapshot_count == 1

    def test_snapshot_is_immutable_copy(self):
        snap = SnapshotObject("mem", 2)
        first = snap.apply(0, "snapshot", ())
        snap.apply(0, "write", (0, "later"))
        assert first == (BOTTOM, BOTTOM)

    def test_bounds(self):
        snap = SnapshotObject("mem", 2)
        with pytest.raises(IndexError):
            snap.apply(0, "read", (5,))

    def test_bottom_repr_and_falsiness(self):
        assert repr(BOTTOM) == "⊥"
        assert not BOTTOM
