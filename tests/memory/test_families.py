"""Lazily-instantiated object families."""

import pytest

from repro.memory import (BOTTOM, PortViolation, ProtocolViolation,
                          RegisterFamily, SnapshotFamily, TASFamily,
                          XConsFamily)


class TestSnapshotFamily:
    def test_instances_independent(self):
        fam = SnapshotFamily("SA", 2)
        fam.apply(0, "write", ("a", 0, "x"))
        assert fam.apply(1, "snapshot", ("a",)) == ("x", BOTTOM)
        assert fam.apply(1, "snapshot", ("b",)) == (BOTTOM, BOTTOM)
        assert fam.instance_count == 2

    def test_single_writer_entries(self):
        fam = SnapshotFamily("SA", 2)
        with pytest.raises(PortViolation):
            fam.apply(1, "write", ("a", 0, "x"))

    def test_read_entry(self):
        fam = SnapshotFamily("SA", 2)
        fam.apply(1, "write", (("k", 3), 1, 9))
        assert fam.apply(0, "read", (("k", 3), 1)) == 9

    def test_index_bounds(self):
        fam = SnapshotFamily("SA", 2)
        with pytest.raises(IndexError):
            fam.apply(0, "write", ("a", 5, "x"))

    def test_hashable_keys(self):
        fam = SnapshotFamily("SA", 1)
        fam.apply(0, "write", ((("snap", 3, 1),), 0, "v"))
        assert fam.apply(0, "read", ((("snap", 3, 1),), 0)) == "v"


class TestRegisterFamily:
    def test_default_bottom(self):
        fam = RegisterFamily("R")
        assert fam.apply(0, "read", ("missing",)) is BOTTOM

    def test_write_read_multiwriter(self):
        fam = RegisterFamily("R")
        fam.apply(0, "write", ("k", 1))
        fam.apply(5, "write", ("k", 2))
        assert fam.apply(9, "read", ("k",)) == 2
        assert fam.instance_count == 1


class TestTASFamily:
    def test_first_wins(self):
        fam = TASFamily("TS")
        assert fam.apply(3, "test_and_set", ("k",)) is True
        assert fam.apply(1, "test_and_set", ("k",)) is False
        assert fam.apply(3, "peek", ("k",)) == 3

    def test_instances_independent(self):
        fam = TASFamily("TS")
        assert fam.apply(0, "test_and_set", ("a",))
        assert fam.apply(1, "test_and_set", ("b",))

    def test_one_shot_per_process(self):
        fam = TASFamily("TS")
        fam.apply(0, "test_and_set", ("k",))
        with pytest.raises(ProtocolViolation):
            fam.apply(0, "test_and_set", ("k",))

    def test_consensus_number_two(self):
        assert TASFamily("TS").consensus_number == 2


class TestXConsFamily:
    def subsets(self):
        return [(0, 1), (0, 2), (1, 2)]

    def test_first_proposal_wins(self):
        fam = XConsFamily("XC", self.subsets())
        assert fam.apply(0, "propose", ("k", 0, "a")) == "a"
        assert fam.apply(1, "propose", ("k", 0, "b")) == "a"

    def test_ports_per_subset(self):
        fam = XConsFamily("XC", self.subsets())
        with pytest.raises(PortViolation):
            fam.apply(2, "propose", ("k", 0, "v"))  # subset 0 = {0,1}

    def test_one_shot_per_instance(self):
        fam = XConsFamily("XC", self.subsets())
        fam.apply(0, "propose", ("k", 0, "v"))
        with pytest.raises(ProtocolViolation):
            fam.apply(0, "propose", ("k", 0, "w"))
        # but a different instance is fine:
        fam.apply(0, "propose", ("k", 1, "w"))
        fam.apply(0, "propose", ("k2", 0, "w"))

    def test_subset_index_bounds(self):
        fam = XConsFamily("XC", self.subsets())
        with pytest.raises(IndexError):
            fam.apply(0, "propose", ("k", 9, "v"))

    def test_consensus_number_is_max_subset_size(self):
        fam = XConsFamily("XC", [(0, 1, 2), (3, 4)])
        assert fam.consensus_number == 3
        assert fam.m == 2

    def test_peek(self):
        fam = XConsFamily("XC", self.subsets())
        assert fam.apply(0, "peek", ("k", 0)) is BOTTOM
        fam.apply(0, "propose", ("k", 0, "v"))
        assert fam.apply(2, "peek", ("k", 0)) == "v"

    def test_empty_subsets_rejected(self):
        with pytest.raises(ValueError):
            XConsFamily("XC", [])
