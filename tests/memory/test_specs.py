"""Declarative object specs and store building."""

import math

import pytest

from repro.memory import (ObjectStore, SnapshotObject, build_object,
                          build_store, make_spec)
from repro.memory.families import TASFamily, XConsFamily
from repro.memory.registers import AtomicRegister
from repro.model import ASM
from repro.objects import (CompareAndSwapObject, KSetObject, SharedQueue,
                           TestAndSetObject, XConsensusObject)


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_spec("flux-capacitor", "x")

    def test_params_are_frozen_and_sorted(self):
        spec = make_spec("snapshot", "m", size=3, enforce_owner=False)
        assert spec.params == (("enforce_owner", False), ("size", 3))
        assert spec.param("size") == 3
        assert spec.param("missing", "d") == "d"

    def test_build_every_kind(self):
        built = {
            "snapshot": build_object(make_spec("snapshot", "a", size=2)),
            "snapshot_family": build_object(
                make_spec("snapshot_family", "b", size=2)),
            "register": build_object(make_spec("register", "c")),
            "register_array": build_object(
                make_spec("register_array", "d", size=2)),
            "register_family": build_object(
                make_spec("register_family", "e")),
            "xcons": build_object(
                make_spec("xcons", "f", ports=[0, 1])),
            "tas": build_object(make_spec("tas", "g")),
            "tas_family": build_object(make_spec("tas_family", "h")),
            "xcons_family": build_object(
                make_spec("xcons_family", "i", subsets=((0, 1),))),
            "kset": build_object(
                make_spec("kset", "j", ports=[0, 1, 2], ell=2)),
            "cas": build_object(make_spec("cas", "k")),
            "queue": build_object(make_spec("queue", "l", initial=(1,))),
            "stack": build_object(make_spec("stack", "m")),
        }
        assert isinstance(built["snapshot"], SnapshotObject)
        assert isinstance(built["register"], AtomicRegister)
        assert isinstance(built["xcons"], XConsensusObject)
        assert isinstance(built["tas"], TestAndSetObject)
        assert isinstance(built["tas_family"], TASFamily)
        assert isinstance(built["xcons_family"], XConsFamily)
        assert isinstance(built["kset"], KSetObject)
        assert isinstance(built["cas"], CompareAndSwapObject)
        assert isinstance(built["queue"], SharedQueue)

    def test_xcons_requires_ports(self):
        with pytest.raises(ValueError):
            build_object(make_spec("xcons", "f"))

    def test_spec_consensus_numbers(self):
        assert make_spec("snapshot", "a", size=2).consensus_number == 1
        assert make_spec("xcons", "f", ports=[0, 1, 2]).consensus_number == 3
        assert make_spec("tas", "g").consensus_number == 2
        assert make_spec("cas", "k").consensus_number == math.inf
        # (m, l)-set agreement "is worth" consensus number ceil(m/l).
        assert make_spec("kset", "j", ports=range(6),
                         ell=2).consensus_number == 3

    def test_build_store(self):
        store = build_store([make_spec("snapshot", "mem", size=2),
                             make_spec("register", "r")])
        assert "mem" in store and "r" in store
        assert len(store) == 2


class TestModelConformance:
    def test_registers_allowed_everywhere(self):
        store = build_store([make_spec("snapshot", "mem", size=4)])
        ASM(4, 1, 1).validate_store(store)

    def test_xcons_needs_big_enough_x(self):
        store = build_store([make_spec("xcons", "c", ports=[0, 1, 2])])
        ASM(4, 3, 3).validate_store(store)
        with pytest.raises(Exception):
            ASM(4, 3, 2).validate_store(store)

    def test_tas_needs_x_at_least_2(self):
        store = build_store([make_spec("tas", "t")])
        ASM(4, 3, 2).validate_store(store)
        with pytest.raises(Exception):
            ASM(4, 3, 1).validate_store(store)

    def test_cas_needs_infinite_x(self):
        store = build_store([make_spec("cas", "c")])
        ASM(4, 3, math.inf).validate_store(store)
        with pytest.raises(Exception):
            ASM(4, 3, 4).validate_store(store)
