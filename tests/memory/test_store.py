"""Object store dispatch."""

import pytest

from repro.memory import (AtomicRegister, ObjectStore, SnapshotObject,
                          UnknownObject)
from repro.runtime import Invocation


class TestObjectStore:
    def test_add_and_lookup(self):
        store = ObjectStore()
        reg = store.add(AtomicRegister("r"))
        assert store["r"] is reg
        assert "r" in store
        assert store.get("missing") is None

    def test_duplicate_name_rejected(self):
        store = ObjectStore()
        store.add(AtomicRegister("r"))
        with pytest.raises(ValueError):
            store.add(AtomicRegister("r"))

    def test_unknown_object(self):
        store = ObjectStore()
        with pytest.raises(UnknownObject):
            store.apply(0, Invocation("ghost", "read", ()))

    def test_apply_dispatch_and_count(self):
        store = ObjectStore()
        store.add(AtomicRegister("r"))
        store.apply(0, Invocation("r", "write", ("v",)))
        assert store.apply(1, Invocation("r", "read", ())) == "v"
        assert store.op_count == 2

    def test_is_readonly(self):
        store = ObjectStore()
        store.add(SnapshotObject("mem", 2))
        assert store.is_readonly(Invocation("mem", "snapshot", ()))
        assert not store.is_readonly(Invocation("mem", "write", (0, 1)))

    def test_iteration_and_len(self):
        store = ObjectStore()
        store.add_all([AtomicRegister("a"), AtomicRegister("b")])
        assert len(store) == 2
        assert {obj.name for obj in store} == {"a", "b"}
