"""Section 5.5: colored-task simulation."""

import pytest

from repro.algorithms import RenamingFromTAS, run_algorithm
from repro.core import (ModelViolation, colored_simulation_possible,
                        simulate_colored)
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import DistinctValuesTask, RenamingTask

from ..conftest import SEEDS


class TestConditions:
    def test_needs_x_prime_above_1(self):
        assert not colored_simulation_possible(ASM(6, 3, 2), ASM(4, 1, 1))
        assert colored_simulation_possible(ASM(6, 3, 2), ASM(4, 1, 2))

    def test_needs_index_dominance(self):
        # floor(t/x) >= floor(t'/x')
        assert not colored_simulation_possible(ASM(8, 1, 2),  # index 0
                                               ASM(6, 4, 2))  # index 2
        assert colored_simulation_possible(ASM(9, 4, 2),      # index 2
                                           ASM(8, 4, 2))      # index 2

    def test_needs_enough_simulated_processes(self):
        # n >= max(n', (n'-t') + t)
        assert not colored_simulation_possible(ASM(4, 3, 2), ASM(4, 1, 2))
        # (4-1)+3 = 6 > 4
        assert colored_simulation_possible(ASM(6, 3, 2), ASM(4, 1, 2))

    def test_constructor_enforces(self):
        src = RenamingFromTAS(4, t=3)
        with pytest.raises(ModelViolation, match="Section 5.5"):
            simulate_colored(src, n_prime=4, t_prime=1, x_prime=2)

    def test_check_false_builds(self):
        src = RenamingFromTAS(4, t=3)
        sim = simulate_colored(src, n_prime=4, t_prime=1, x_prime=2,
                               check=False)
        assert sim.n == 4


class TestEndToEnd:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_distinct_decisions_no_crash(self, seed):
        src = RenamingFromTAS(6, t=3)           # ASM(6, 3, 2)
        sim = simulate_colored(src, n_prime=4, t_prime=1, x_prime=2)
        res = run_algorithm(sim, [None] * 4,
                            adversary=SeededRandomAdversary(seed))
        verdict = DistinctValuesTask().validate_run([None] * 4, res)
        assert verdict.ok, verdict.explain()
        # names come from the simulated renaming's namespace {0..5}
        assert all(isinstance(v, int) and 0 <= v < 6
                   for v in res.decisions.values())

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_distinct_decisions_with_crash(self, seed):
        src = RenamingFromTAS(6, t=3)
        sim = simulate_colored(src, n_prime=4, t_prime=1, x_prime=2)
        res = run_algorithm(sim, [None] * 4,
                            adversary=SeededRandomAdversary(seed),
                            crash_plan=CrashPlan.at_own_step({2: 8}))
        verdict = DistinctValuesTask().validate_run(
            [None] * 4, res, require_liveness=False)
        assert verdict.ok, verdict.explain()
        # every live simulator decided
        assert res.decided_pids == {0, 1, 3}

    def test_larger_instance(self):
        # ASM(8, 4, 2) -> ASM(5, 2, 3): floor(4/2)=2 >= floor(2/3)=0,
        # n=8 >= max(5, 3+4)=7.
        src = RenamingFromTAS(8, t=4)
        sim = simulate_colored(src, n_prime=5, t_prime=2, x_prime=3)
        res = run_algorithm(sim, [None] * 5,
                            adversary=SeededRandomAdversary(1),
                            crash_plan=CrashPlan.at_own_step({1: 5, 3: 9}))
        verdict = DistinctValuesTask().validate_run(
            [None] * 5, res, require_liveness=False)
        assert verdict.ok, verdict.explain()
        assert res.decided_pids >= {0, 2, 4}
