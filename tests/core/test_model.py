"""ASM(n, t, x) model descriptor and conformance rules."""

import math

import pytest

from repro.memory import build_store, make_spec
from repro.model import ASM, ModelViolation


class TestConstruction:
    def test_valid(self):
        m = ASM(5, 2, 3)
        assert (m.n, m.t, m.x) == (5, 2, 3)

    def test_t_bounds(self):
        with pytest.raises(ModelViolation):
            ASM(3, 3, 1)   # t must be < n
        with pytest.raises(ModelViolation):
            ASM(3, -1, 1)
        ASM(3, 0, 1)       # failure-free allowed (Section 5.4 examples)

    def test_x_bounds(self):
        with pytest.raises(ModelViolation):
            ASM(3, 1, 0)
        with pytest.raises(ModelViolation):
            ASM(3, 1, 4)   # x cannot exceed n
        ASM(3, 1, math.inf)

    def test_x_must_be_int_or_inf(self):
        with pytest.raises(ModelViolation):
            ASM(3, 1, 1.5)

    def test_str(self):
        assert str(ASM(5, 2, 3)) == "ASM(5, 2, 3)"
        assert "∞" in str(ASM(5, 2, math.inf))


class TestDerivedProperties:
    def test_wait_free(self):
        assert ASM(4, 3, 1).wait_free
        assert not ASM(4, 2, 1).wait_free

    def test_resilience_index(self):
        assert ASM(10, 8, 3).resilience_index == 2
        assert ASM(10, 8, 1).resilience_index == 8
        assert ASM(10, 8, math.inf).resilience_index == 0

    def test_canonical(self):
        assert ASM(10, 8, 3).canonical() == ASM(10, 2, 1)
        assert ASM(10, 2, 1).canonical() == ASM(10, 2, 1)

    def test_bg_reduced(self):
        assert ASM(10, 3, 2).bg_reduced() == ASM(4, 3, 2)
        # x capped at the reduced process count
        assert ASM(10, 2, 5).bg_reduced() == ASM(3, 2, 3)
        with pytest.raises(ModelViolation):
            ASM(10, 0, 1).bg_reduced()


class TestConformance:
    def test_permits_by_consensus_number(self):
        m = ASM(5, 3, 2)
        store = build_store([
            make_spec("snapshot", "mem", size=5),
            make_spec("tas", "t"),
            make_spec("xcons", "c", ports=[0, 1]),
        ])
        m.validate_store(store)

    def test_rejects_overpowered_objects(self):
        m = ASM(5, 3, 2)
        store = build_store([make_spec("xcons", "c", ports=[0, 1, 2])])
        with pytest.raises(ModelViolation, match="does not permit"):
            m.validate_store(store)

    def test_crash_budget(self):
        ASM(5, 2, 1).validate_crashes(2)
        with pytest.raises(ModelViolation):
            ASM(5, 2, 1).validate_crashes(3)
