"""The classic BG simulation and the generalized (contribution #2) form."""

import pytest

from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.core import (ModelViolation, bg_reduce, generalized_bg_reduce)
from repro.core.classic_bg import target_model
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import SEEDS, run_and_validate


class TestClassicBG:
    def test_target_shape(self):
        src = KSetReadWrite(n=7, t=2, k=3)
        bg = bg_reduce(src)
        model = bg.model()
        assert (model.n, model.t, model.x) == (3, 2, 1)
        assert target_model(src) == model

    def test_requires_positive_t(self):
        src = KSetReadWrite(n=3, t=0, k=1)
        with pytest.raises(ModelViolation):
            bg_reduce(src)

    def test_simulator_count_floor(self):
        src = KSetReadWrite(n=5, t=2, k=3)
        with pytest.raises(ModelViolation):
            bg_reduce(src, n_simulators=2)
        assert bg_reduce(src, n_simulators=4).n == 4

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wait_free_simulation_solves_task(self, seed):
        # 2-resilient 3-set agreement among 5 -> wait-free among 3.
        src = KSetReadWrite(n=5, t=2, k=3)
        bg = bg_reduce(src)
        run_and_validate(bg, KSetAgreementTask(3), [1, 2, 3],
                         adversary=SeededRandomAdversary(seed))

    @pytest.mark.parametrize("victims", [[0], [1], [0, 2], [1, 2]])
    def test_tolerates_t_of_t_plus_1_crashes(self, victims):
        src = KSetReadWrite(n=5, t=2, k=3)
        bg = bg_reduce(src)
        run_and_validate(bg, KSetAgreementTask(3), [7, 8, 9],
                         crash_plan=CrashPlan.initially_dead(victims))

    def test_mid_run_crashes(self):
        src = KSetReadWrite(n=5, t=2, k=3)
        bg = bg_reduce(src)
        for seed in (0, 4, 9):
            run_and_validate(bg, KSetAgreementTask(3), [7, 8, 9],
                             adversary=SeededRandomAdversary(seed),
                             crash_plan=CrashPlan.at_own_step({0: 6, 2: 17}))


class TestGeneralizedBG:
    def test_target_is_t_plus_1_with_x(self):
        src = GroupedKSetFromXCons(n=6, x=2)
        src.resilience = 4                      # ASM(6, 4, 2)
        g = generalized_bg_reduce(src)
        model = g.model()
        assert (model.n, model.t, model.x) == (5, 4, 2)

    def test_x_equals_1_is_classic_bg(self):
        src = KSetReadWrite(n=5, t=2, k=3)
        g = generalized_bg_reduce(src, x=1)
        model = g.model()
        assert (model.n, model.t, model.x) == (3, 2, 1)

    def test_requires_positive_t(self):
        src = KSetReadWrite(n=3, t=0, k=1)
        with pytest.raises(ModelViolation):
            generalized_bg_reduce(src)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_end_to_end(self, seed):
        # ASM(6, 4, 2) source (2-set agreement via groups, weakened to
        # t = 4) -> ASM(5, 4, 2): wait-free among 5 with 2-cons objects.
        src = GroupedKSetFromXCons(n=6, x=2)
        src.resilience = 4
        g = generalized_bg_reduce(src)
        run_and_validate(g, KSetAgreementTask(3), [1, 2, 3, 4, 5],
                         adversary=SeededRandomAdversary(seed),
                         max_steps=5_000_000)

    def test_end_to_end_with_crashes(self):
        src = GroupedKSetFromXCons(n=6, x=2)
        src.resilience = 4
        g = generalized_bg_reduce(src)
        # 3 crashes among 5 wait-free simulators (<= t = 4).
        run_and_validate(g, KSetAgreementTask(3), [1, 2, 3, 4, 5],
                         crash_plan=CrashPlan.at_own_step(
                             {0: 5, 2: 11, 4: 2}),
                         max_steps=5_000_000)
