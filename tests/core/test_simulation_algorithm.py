"""SimulationAlgorithm composition mechanics."""

import pytest

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.algorithms import (GroupedKSetFromXCons, IdentityAlgorithm,
                              KSetReadWrite, WriteThenSnapshot,
                              run_algorithm)
from repro.bg import MEM_NAME
from repro.core import (SimulationAlgorithm, simulate_in_read_write,
                        simulate_with_xcons)
from repro.model import ASM


class TestObjectSpecComposition:
    def test_shared_factory_not_duplicated(self):
        factory = XSafeAgreementFactory(4, 2)
        sim = SimulationAlgorithm(
            KSetReadWrite(n=4, t=1, k=2), n_simulators=4, resilience=3,
            snap_agreement=factory, obj_agreement=factory)
        names = [spec.name for spec in sim.object_specs()]
        assert names.count("XSA_TS") == 1
        assert MEM_NAME in names

    def test_distinct_factories_both_present(self):
        sim = simulate_in_read_write(GroupedKSetFromXCons(4, 2), t=1)
        names = {spec.name for spec in sim.object_specs()}
        assert {"MEM", "SAFE_AG", "XSAFE_AG"} <= names

    def test_policy_specs_included(self):
        from repro.bg import CollectAllPolicy, ANNOUNCE
        sim = SimulationAlgorithm(
            WriteThenSnapshot(3), n_simulators=3, resilience=1,
            snap_agreement=SafeAgreementFactory(3),
            policy_class=CollectAllPolicy)
        assert ANNOUNCE in {spec.name for spec in sim.object_specs()}

    def test_target_store_is_model_conformant(self):
        sim = simulate_with_xcons(KSetReadWrite(6, 2, 3), t_prime=5, x=2)
        sim.model().validate_store(sim.build_store())

    def test_name_mentions_source_and_target(self):
        sim = simulate_in_read_write(GroupedKSetFromXCons(4, 2), t=1)
        assert "grouped_kset" in sim.name
        assert "sec3" in sim.name


class TestDegenerateSources:
    def test_identity_source_simulates_trivially(self):
        # no shared ops at all: only the input agreements run.
        sim = SimulationAlgorithm(
            IdentityAlgorithm(3), n_simulators=3, resilience=1,
            snap_agreement=SafeAgreementFactory(3))
        res = run_algorithm(sim, ["a", "b", "c"])
        assert res.decided_pids == {0, 1, 2}
        # colorless adoption: every simulator decides SOME agreed input.
        assert res.decided_values <= {"a", "b", "c"}

    def test_single_simulator(self):
        sim = SimulationAlgorithm(
            WriteThenSnapshot(2), n_simulators=1, resilience=0,
            snap_agreement=SafeAgreementFactory(1))
        res = run_algorithm(sim, ["only"])
        assert res.decided_pids == {0}

    def test_more_simulators_than_simulated(self):
        sim = SimulationAlgorithm(
            WriteThenSnapshot(2), n_simulators=4, resilience=1,
            snap_agreement=SafeAgreementFactory(4))
        res = run_algorithm(sim, list("wxyz"))
        assert res.decided_pids == {0, 1, 2, 3}


class TestModelArithmetic:
    def test_section3_model(self):
        sim = simulate_in_read_write(GroupedKSetFromXCons(6, 3), t=1)
        assert sim.model() == ASM(6, 1, 1)

    def test_section4_model(self):
        sim = simulate_with_xcons(KSetReadWrite(6, 1, 2), t_prime=3, x=2)
        assert sim.model() == ASM(6, 3, 2)

    def test_nested_model(self):
        inner = simulate_in_read_write(GroupedKSetFromXCons(4, 2), t=1)
        outer = simulate_with_xcons(inner, t_prime=3, x=2)
        assert outer.model() == ASM(4, 3, 2)
        assert outer.source is inner
        assert inner.source.n == 4
