"""Theorem 1 (Section 3): ASM(n, t', x) simulated in ASM(n, t, 1)."""

import pytest

from repro.core import ModelViolation, simulate_in_read_write
from repro.core.extended_bg import max_target_resilience
from repro.algorithms import (ConsensusFromXCons, GroupedKSetFromXCons,
                              run_algorithm)
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import ConsensusTask, KSetAgreementTask

from ..conftest import SEEDS, run_and_validate


class TestPrecondition:
    def test_bound_is_floor_t_prime_over_x(self):
        src = GroupedKSetFromXCons(n=6, x=2)        # t' = 5, x = 2
        assert max_target_resilience(src) == 2

    def test_exceeding_bound_rejected(self):
        src = GroupedKSetFromXCons(n=6, x=2)
        with pytest.raises(ModelViolation, match="Theorem 1"):
            simulate_in_read_write(src, t=3)
        simulate_in_read_write(src, t=2)            # boundary ok

    def test_check_false_builds_anyway(self):
        src = GroupedKSetFromXCons(n=6, x=2)
        sim = simulate_in_read_write(src, t=3, check=False)
        assert sim.model().t == 3


class TestTargetModel:
    def test_target_is_read_write(self):
        src = GroupedKSetFromXCons(n=4, x=2)
        sim = simulate_in_read_write(src, t=1)
        model = sim.model()
        assert (model.n, model.t, model.x) == (4, 1, 1)
        # every target object has consensus number 1:
        assert sim.consensus_power() == 1


class TestEndToEnd:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kset_preserved_no_crash(self, seed):
        src = GroupedKSetFromXCons(n=4, x=2)        # 2-set agreement
        sim = simulate_in_read_write(src, t=1)
        run_and_validate(sim, KSetAgreementTask(2), [10, 20, 30, 40],
                         adversary=SeededRandomAdversary(seed))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("victim", [0, 1, 3])
    def test_kset_preserved_with_one_crash(self, seed, victim):
        src = GroupedKSetFromXCons(n=4, x=2)
        sim = simulate_in_read_write(src, t=1)
        run_and_validate(sim, KSetAgreementTask(2), [10, 20, 30, 40],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.initially_dead([victim]))

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_mid_run_crash(self, seed):
        src = GroupedKSetFromXCons(n=4, x=2)
        sim = simulate_in_read_write(src, t=1)
        run_and_validate(sim, KSetAgreementTask(2), [10, 20, 30, 40],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.at_own_step({2: 9}))

    def test_consensus_from_big_object_at_t0(self):
        # Consensus from an n-ported object (t' = n-1, x = n): target
        # resilience floor((n-1)/n) = 0 -- the failure-free read/write
        # model CAN simulate consensus, matching Section 5.4's top class.
        src = ConsensusFromXCons(n=4, x=4)
        assert max_target_resilience(src) == 0
        sim = simulate_in_read_write(src, t=0)
        run_and_validate(sim, ConsensusTask(), [5, 6, 7, 8])

    @pytest.mark.parametrize("seed", [1, 4])
    def test_deeper_source_resilience(self, seed):
        # t' = 5, x = 3 -> t = 1; 2-set agreement via per-group consensus.
        src = GroupedKSetFromXCons(n=6, x=3)
        sim = simulate_in_read_write(src, t=1)
        run_and_validate(sim, KSetAgreementTask(2),
                         [1, 2, 3, 4, 5, 6],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.initially_dead([5]))


class TestBoundNecessity:
    def test_too_many_crashes_can_block_liveness(self):
        """With t > floor(t'/x) crashes, crashed simulators can kill more
        consensus objects than the source resilience absorbs: liveness is
        lost (the run deadlocks or stalls), demonstrating why Theorem 1
        needs t <= floor(t'/x).

        We manufacture the worst case: x = n, one shared consensus object;
        a single simulator crash while proposing to XSAFE_AG blocks every
        simulated process."""
        src = ConsensusFromXCons(n=3, x=3)           # one 3-ported object
        sim = simulate_in_read_write(src, t=1, check=False)
        # run with one crash targeted mid-XSAFE_AG-propose: q0's second
        # write to the XSAFE_AG family is its stabilizing write; crash
        # right before it (the level-1 entry stays unstable forever).
        from repro.runtime import op_on
        plan = CrashPlan.before_operation(
            0, op_on("XSAFE_AG", "write"), occurrence=2)
        res = run_algorithm(sim, [1, 2, 3], crash_plan=plan,
                            max_steps=200_000)
        assert res.deadlocked, res.summary()
        assert not res.decisions, "no simulator should decide"
