"""Transfer chains (Figure 7): planning and executable certificates."""

import math

import pytest

from repro.algorithms import GroupedKSetFromXCons, KSetReadWrite
from repro.core import (ModelViolation, equivalence_certificate,
                        plan_transfer, transfer_algorithm,
                        transfer_impossibility)
from repro.model import ASM
from repro.runtime import SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import run_and_validate


class TestPlanning:
    def test_identity_transfer_is_empty(self):
        assert plan_transfer(ASM(5, 2, 1), ASM(5, 2, 1)) == []

    def test_full_chain_kinds(self):
        steps = plan_transfer(ASM(9, 8, 4), ASM(7, 5, 2))
        assert [s.kind for s in steps] == ["section3", "bg", "section4"]
        assert steps[0].target == ASM(9, 2, 1)
        assert steps[-1].target == ASM(7, 5, 2)

    def test_weaken_step_for_stronger_target(self):
        steps = plan_transfer(ASM(5, 3, 1), ASM(5, 1, 1))
        assert [s.kind for s in steps] == ["weaken"]

    def test_transfer_to_weaker_model_rejected(self):
        with pytest.raises(ModelViolation, match="weaker"):
            plan_transfer(ASM(5, 1, 1), ASM(5, 2, 1))

    def test_inf_target_rejected(self):
        with pytest.raises(ModelViolation):
            plan_transfer(ASM(5, 2, 1), ASM(5, 2, math.inf))

    def test_chain_endpoints_connect(self):
        steps = plan_transfer(ASM(12, 8, 3), ASM(6, 5, 3))
        for a, b in zip(steps, steps[1:]):
            assert a.target == b.source
        assert str(steps[0])  # rendering works


class TestExecutableTransfer:
    def test_readwrite_to_xcons(self):
        src = KSetReadWrite(n=5, t=1, k=2)
        alg = transfer_algorithm(src, ASM(5, 3, 2))
        assert alg.model() == ASM(5, 3, 2)
        run_and_validate(alg, KSetAgreementTask(2), [1, 2, 3, 4, 5],
                         adversary=SeededRandomAdversary(0))

    def test_xcons_to_readwrite(self):
        src = GroupedKSetFromXCons(n=4, x=2)     # ASM(4, 3, 2), k = 2
        alg = transfer_algorithm(src, ASM(4, 1, 1))
        assert alg.model() == ASM(4, 1, 1)
        run_and_validate(alg, KSetAgreementTask(2), [1, 2, 3, 4],
                         adversary=SeededRandomAdversary(2))

    def test_three_stage_chain_runs(self):
        # ASM(5, 2, 1) --weaken/bg/section4--> ASM(4, 3, 2)
        src = KSetReadWrite(n=5, t=2, k=3)
        alg = transfer_algorithm(src, ASM(4, 3, 2))
        assert alg.model() == ASM(4, 3, 2)
        run_and_validate(alg, KSetAgreementTask(3), [9, 8, 7, 6],
                         adversary=SeededRandomAdversary(1),
                         max_steps=5_000_000)


class TestImpossibilityTransfer:
    def test_propagates_to_weaker_or_equal(self):
        # consensus impossible 1-resiliently in read/write: ASM(n, 1, 1).
        base = ASM(10, 1, 1)
        assert transfer_impossibility(base, ASM(10, 1, 1))
        assert transfer_impossibility(base, ASM(10, 5, 2))   # index 2 >= 1
        assert transfer_impossibility(base, ASM(7, 9 // 9, 1))

    def test_does_not_reach_stronger(self):
        base = ASM(10, 1, 1)
        assert not transfer_impossibility(base, ASM(10, 1, 2))  # index 0

    def test_paper_contribution_example(self):
        # "consensus cannot be solved in ASM(n, n-1, n-1) => it cannot be
        # solved in ASM(n, 1, 1)" -- both have index 1, mutual transfer.
        for n in (4, 7, 10):
            wait_free = ASM(n, n - 1, n - 1)
            assert transfer_impossibility(wait_free, ASM(n, 1, 1))
            assert transfer_impossibility(ASM(n, 1, 1), wait_free)


class TestCertificates:
    def test_none_for_inequivalent(self):
        assert equivalence_certificate(ASM(5, 2, 1), ASM(5, 1, 1)) is None

    def test_chain_passes_through_canonical_waitfree(self):
        steps = equivalence_certificate(ASM(9, 8, 4), ASM(7, 5, 2))
        models = [steps[0].source] + [s.target for s in steps]
        assert ASM(3, 2, 1) in models      # the canonical ASM(t+1, t, 1)
        assert models[0] == ASM(9, 8, 4)
        assert models[-1] == ASM(7, 5, 2)
