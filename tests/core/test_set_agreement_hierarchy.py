"""The (m, ℓ)-set-agreement landscape (paper Section 1.3)."""

import pytest

from repro.algorithms import run_algorithm
from repro.core.set_agreement_hierarchy import (
    GroupedKSetFromSetObjects, bg_set_hierarchy_implementable,
    gafni_simulatable_rounds, grouping_outputs, herlihy_rajsbaum_min_k,
    herlihy_rajsbaum_solvable, mrt_sync_rounds)
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import SEEDS


class TestBGHierarchy:
    def test_ratio_criterion(self):
        # (6,2) from (3,1): 6/2 = 3/1 -> implementable.
        assert bg_set_hierarchy_implementable(6, 2, 3, 1)
        # (6,2) from (4,1): 6/2 = 3 > 4/1 is false... 3 < 4 -> ok.
        assert bg_set_hierarchy_implementable(6, 2, 4, 1)
        # (4,1) from (8,2): 4/1 = 4 = 8/2 -> boundary, implementable.
        assert bg_set_hierarchy_implementable(4, 1, 8, 2)
        # (6,1) from (3,1): 6 > 3 -> impossible.
        assert not bg_set_hierarchy_implementable(6, 1, 3, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bg_set_hierarchy_implementable(0, 1, 1, 1)

    def test_grouping_outputs(self):
        assert grouping_outputs(6, 3, 1) == 2
        assert grouping_outputs(7, 3, 1) == 3
        assert grouping_outputs(7, 3, 2) == 5   # 2+2 full, min(2,1) ragged
        assert grouping_outputs(6, 6, 2) == 2


class TestHerlihyRajsbaum:
    def test_degenerate_read_write(self):
        # (m, l) = (1, 1) objects are trivial: k_min = t + 1, the classic
        # read/write frontier.
        for t in range(5):
            assert herlihy_rajsbaum_min_k(t, 1, 1) == t + 1

    def test_consensus_objects(self):
        # (m, 1)-objects: k_min = floor((t+1)/m) + min(1, (t+1) mod m),
        # consistent with the paper's floor(t/m) + 1:
        for t in range(0, 12):
            for m in range(1, 5):
                assert herlihy_rajsbaum_min_k(t, m, 1) == t // m + 1

    def test_matches_paper_frontier_for_consensus_objects(self):
        # The paper: k-set solvable in ASM(n, t, x) iff k > floor(t/x).
        # With (x, 1)-objects H-R gives the same frontier.
        from repro.core import kset_solvable
        from repro.model import ASM
        for t in range(0, 8):
            for x in range(1, 4):
                k_min = herlihy_rajsbaum_min_k(t, x, 1)
                assert kset_solvable(ASM(10, t, x), k_min)
                if k_min > 1:
                    assert not kset_solvable(ASM(10, t, x), k_min - 1)

    def test_general_case(self):
        assert herlihy_rajsbaum_min_k(t=5, m=3, ell=2) == 2 * 2 + 2 * 0
        assert herlihy_rajsbaum_min_k(t=4, m=3, ell=2) == 2 * 1 + min(2, 2)
        assert herlihy_rajsbaum_solvable(5, t=5, m=3, ell=2)
        assert not herlihy_rajsbaum_solvable(3, t=5, m=3, ell=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            herlihy_rajsbaum_min_k(-1, 1, 1)


class TestMRTRounds:
    def test_known_shapes(self):
        # consensus with consensus objects of size m: floor(t/m) + 1.
        for t in range(0, 10):
            for m in range(1, 4):
                assert mrt_sync_rounds(t, k=1, m=m, ell=1) == t // m + 1
        # plain synchronous k-set agreement ((1,1) objects):
        # floor(t/k) + 1 rounds, the Chaudhuri bound.
        for t in range(0, 10):
            for k in range(1, 4):
                assert mrt_sync_rounds(t, k=k, m=1, ell=1) == t // k + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            mrt_sync_rounds(-1, 1, 1, 1)


class TestGafniDividing:
    def test_floor_ratio(self):
        assert gafni_simulatable_rounds(10, 3) == 3
        assert gafni_simulatable_rounds(3, 10) == 0
        with pytest.raises(ValueError):
            gafni_simulatable_rounds(3, 0)


class TestGroupedConstruction:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n,m,ell", [(6, 3, 1), (7, 3, 2), (8, 4, 2)])
    def test_output_bound(self, seed, n, m, ell):
        algo = GroupedKSetFromSetObjects(n, m, ell)
        res = run_algorithm(algo, list(range(n)),
                            adversary=SeededRandomAdversary(seed))
        verdict = KSetAgreementTask(algo.k).validate_run(
            list(range(n)), res)
        assert verdict.ok, verdict.explain()

    def test_wait_free_under_crashes(self):
        algo = GroupedKSetFromSetObjects(6, 3, 1)
        res = run_algorithm(algo, list(range(6)),
                            crash_plan=CrashPlan.initially_dead(
                                [0, 3, 4]))
        verdict = KSetAgreementTask(algo.k).validate_run(
            list(range(6)), res)
        assert verdict.ok

    def test_object_count(self):
        algo = GroupedKSetFromSetObjects(7, 3, 2)
        assert len(algo.object_specs()) == 3
        assert algo.k == 5

    def test_is_bg_simulable(self):
        """(m, ℓ)-objects translate through the Section 3 simulation (a
        single agreed value refines any ℓ-set object)."""
        from repro.core import simulate_in_read_write
        algo = GroupedKSetFromSetObjects(6, 3, 1)
        sim = simulate_in_read_write(algo, t=1)  # floor(5/3) = 1
        res = run_algorithm(sim, list(range(6)),
                            crash_plan=CrashPlan.initially_dead([2]))
        verdict = KSetAgreementTask(algo.k).validate_run(
            list(range(6)), res)
        assert verdict.ok, verdict.explain()
