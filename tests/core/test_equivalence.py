"""The floor(t/x) calculus: the paper's main theorem and Section 5.4.

Includes the paper's worked examples verbatim: the t' = 8 partition, the
multiplicative band, the boosting observations, and the set-consensus
solvability frontier.
"""

import math

import pytest

from repro.core import (class_of, consensus_solvable, equivalence_classes,
                        equivalent, in_band, kset_solvable,
                        max_xcons_resilience, min_x_for_resilience,
                        multiplicative_band, partition_table,
                        resilience_index, stronger, task_solvable,
                        useless_boost, useless_extra_failures,
                        x_band_for_index)
from repro.model import ASM


class TestResilienceIndex:
    def test_floor_division(self):
        assert resilience_index(8, 3) == 2
        assert resilience_index(8, 1) == 8
        assert resilience_index(0, 5) == 0
        assert resilience_index(8, math.inf) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            resilience_index(-1, 1)
        with pytest.raises(ValueError):
            resilience_index(1, 0)


class TestMainTheorem:
    def test_equivalent_iff_same_index(self):
        # floor(8/4) = floor(5/2) = 2
        assert equivalent(ASM(10, 8, 4), ASM(7, 5, 2))
        # floor(8/2) = 4 != floor(8/3) = 2
        assert not equivalent(ASM(10, 8, 2), ASM(10, 8, 3))

    def test_n_is_irrelevant(self):
        assert equivalent(ASM(100, 6, 3), ASM(3, 2, 1))

    def test_hierarchy_strictness(self):
        # ASM(n,3,1) > ASM(n,4,1): 4-set agreement solvable in the former
        # but not the latter (the paper's example).
        assert stronger(ASM(10, 3, 1), ASM(10, 4, 1))
        assert not stronger(ASM(10, 4, 1), ASM(10, 3, 1))
        assert not stronger(ASM(10, 4, 1), ASM(10, 4, 2 * 2))


class TestMultiplicativeBand:
    def test_band_formula(self):
        # ASM(n, t', x) ~ ASM(n, t, 1) iff t*x <= t' <= t*x + x - 1
        assert multiplicative_band(2, 3) == (6, 8)
        assert in_band(6, 2, 3) and in_band(8, 2, 3)
        assert not in_band(5, 2, 3) and not in_band(9, 2, 3)

    def test_band_matches_index(self):
        for t in range(4):
            for x in range(1, 5):
                lo, hi = multiplicative_band(t, x)
                for tp in range(0, 20):
                    assert in_band(tp, t, x) == (tp // x == t)

    def test_x_band_for_index(self):
        # paper: "if t'/t >= x > t'/(t+1) then ASM(n,t',x) ~ ASM(n,t,1)"
        assert x_band_for_index(8, 1) == (5, 8)
        assert x_band_for_index(8, 2) == (3, 4)
        assert x_band_for_index(8, 4) == (2, 2)
        assert x_band_for_index(8, 3) is None  # no x with floor(8/x) = 3
        lo, hi = x_band_for_index(8, 0)
        assert lo == 9


class TestSection54Example:
    """The paper's worked example for t' = 8, verbatim."""

    def test_partition_classes(self):
        classes = {c.x_range: c.canonical_t
                   for c in equivalence_classes(12, 8)}
        assert classes == {
            (1, 1): 8,
            (2, 2): 4,
            (3, 4): 2,
            (5, 8): 1,
            (9, 12): 0,
        }

    def test_partition_covers_all_x(self):
        for n in (9, 12, 20):
            for t_prime in range(0, n):
                classes = equivalence_classes(n, t_prime)
                covered = []
                for c in classes:
                    covered.extend(range(c.x_range[0], c.x_range[1] + 1))
                assert covered == list(range(1, n + 1))

    def test_class_of(self):
        cls = class_of(ASM(12, 8, 6))
        assert cls.canonical_t == 1
        assert cls.x_range == (5, 8)
        assert class_of(ASM(12, 8, math.inf)).canonical_t == 0

    def test_partition_table_renders(self):
        table = partition_table(12, 8)
        assert "x = 1" in table and "ASM(n, 8, 1)" in table
        assert "9 <= x <= 12" in table


class TestBoosting:
    def test_useless_consensus_boost(self):
        # floor(8/5) = floor(8/8) = 1: raising x from 5 to 8 buys nothing.
        assert useless_boost(t=8, x=5, delta_x=3)
        # floor(8/4) = 2 != floor(8/5) = 1: this boost DOES matter.
        assert not useless_boost(t=8, x=4, delta_x=1)

    def test_useless_extra_failures(self):
        # floor(6/3) = floor(8/3) = 2: two more crashes change nothing.
        assert useless_extra_failures(t=6, delta_t=2, x=3)
        assert not useless_extra_failures(t=6, delta_t=3, x=3)

    def test_asm_ntt_equals_asm_n11_family(self):
        # Paper contribution #1 bullet: ASM(n, t, t) ~ ASM(n, 1, 1) for all
        # t >= 1, and consensus is unsolvable in all of them.
        for n, t in [(5, 2), (9, 4), (12, 8)]:
            assert equivalent(ASM(n, t, t), ASM(n, 1, 1))
            assert not consensus_solvable(ASM(n, t, t))

    def test_sub_t_failures_with_cn_t_objects_are_free(self):
        # Paper: for t' < t, ASM(n, t', t) ~ ASM(n, 0, 1).
        for t in (3, 5):
            for t_prime in range(t):
                assert equivalent(ASM(10, t_prime, t), ASM(10, 0, 1))


class TestSolvability:
    def test_kset_frontier(self):
        # k-set agreement solvable iff k > floor(t/x).
        m = ASM(10, 8, 3)  # index 2
        assert not kset_solvable(m, 1)
        assert not kset_solvable(m, 2)
        assert kset_solvable(m, 3)

    def test_consensus_solvable_iff_t_less_than_x(self):
        assert consensus_solvable(ASM(10, 2, 3))
        assert not consensus_solvable(ASM(10, 3, 3))
        assert consensus_solvable(ASM(10, 9, math.inf))

    def test_task_solvability_by_set_consensus_number(self):
        # Tk solvable in ASM(n, t', x) iff t' <= k*x - 1.
        k, x = 3, 2
        assert max_xcons_resilience(k, x) == 5
        assert task_solvable(k, ASM(10, 5, 2))
        assert not task_solvable(k, ASM(10, 6, 2))

    def test_min_x_for_resilience(self):
        # x >= (t'+1)/k
        assert min_x_for_resilience(k=3, t_prime=8) == 3
        assert task_solvable(3, ASM(10, 8, 3))
        assert not task_solvable(3, ASM(10, 8, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            kset_solvable(ASM(5, 2, 1), 0)
        with pytest.raises(ValueError):
            max_xcons_resilience(0, 1)
        with pytest.raises(ValueError):
            min_x_for_resilience(1, -1)
