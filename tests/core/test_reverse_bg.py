"""Theorem 3 (Section 4): ASM(n, t, 1) simulated in ASM(n, t', x).

The multiplicative power itself: a t-resilient read/write algorithm
survives up to t' = t*x + (x-1) crashes once the simulators wield
consensus-number-x objects.
"""

import pytest

from repro.agreement import XSafeAgreementFactory
from repro.algorithms import KSetReadWrite, run_algorithm
from repro.analysis import blocking_certificate
from repro.bg import CollectAllPolicy
from repro.core import (ModelViolation, SimulationAlgorithm,
                        simulate_with_xcons)
from repro.core.reverse_bg import max_target_resilience
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from ..conftest import SEEDS, run_and_validate


class TestPrecondition:
    def test_band_top(self):
        src = KSetReadWrite(n=6, t=2, k=3)
        assert max_target_resilience(src, x=2) == 5  # 2*2 + 1

    def test_exceeding_bound_rejected(self):
        src = KSetReadWrite(n=8, t=2, k=3)
        simulate_with_xcons(src, t_prime=5, x=2)     # floor(5/2)=2 ok
        with pytest.raises(ModelViolation, match="Theorem 3"):
            simulate_with_xcons(src, t_prime=6, x=2)  # floor(6/2)=3 > 2

    def test_t_prime_below_n(self):
        src = KSetReadWrite(n=4, t=2, k=3)
        with pytest.raises(ModelViolation):
            simulate_with_xcons(src, t_prime=4, x=2)

    def test_invalid_x(self):
        src = KSetReadWrite(n=4, t=2, k=3)
        with pytest.raises(ModelViolation):
            simulate_with_xcons(src, t_prime=3, x=0)


class TestTargetModel:
    def test_target_uses_cn_x_objects(self):
        src = KSetReadWrite(n=6, t=2, k=3)
        sim = simulate_with_xcons(src, t_prime=5, x=2)
        model = sim.model()
        assert (model.n, model.t, model.x) == (6, 5, 2)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_band_no_crash(self, seed):
        src = KSetReadWrite(n=6, t=2, k=3)
        sim = simulate_with_xcons(src, t_prime=5, x=2)
        run_and_validate(sim, KSetAgreementTask(3),
                         [10, 20, 30, 40, 50, 60],
                         adversary=SeededRandomAdversary(seed))

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_t_prime_crashes_tolerated(self, seed):
        # 5 of 6 simulators crash -- far beyond the source's t = 2 -- and
        # the surviving simulator still solves 3-set agreement.
        src = KSetReadWrite(n=6, t=2, k=3)
        sim = simulate_with_xcons(src, t_prime=5, x=2)
        run_and_validate(sim, KSetAgreementTask(3),
                         [10, 20, 30, 40, 50, 60],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.at_own_step(
                             {0: 4, 1: 9, 2: 14, 3: 6, 4: 25}))

    @pytest.mark.parametrize("x", [1, 2, 3])
    def test_varying_x(self, x):
        t = 1
        t_prime = t * x + (x - 1)
        n = t_prime + 2
        src = KSetReadWrite(n=n, t=t, k=2)
        sim = simulate_with_xcons(src, t_prime=t_prime, x=x)
        victims = list(range(t_prime))
        run_and_validate(sim, KSetAgreementTask(2), list(range(n)),
                         crash_plan=CrashPlan.initially_dead(victims))


class TestLemma7:
    def make_collectall(self, src, t_prime, x):
        factory = XSafeAgreementFactory(src.n, x)
        return SimulationAlgorithm(
            src, n_simulators=src.n, resilience=t_prime,
            snap_agreement=factory, obj_agreement=factory,
            policy_class=CollectAllPolicy, label="lemma7")

    def test_blocked_simulated_processes_bounded(self):
        """Crash x simulators mid-propose: exactly the owners of one
        x-safe-agreement die, blocking at most floor(t'/x) = 1 simulated
        process at every live simulator (Lemma 7)."""
        n, t, x = 5, 1, 2
        src = KSetReadWrite(n=n, t=t, k=2)
        sim = self.make_collectall(src, t_prime=3, x=x)
        from repro.runtime import op_on
        # Both victims crash while inside an XSA propose: after winning a
        # TS slot, before publishing (the consensus-scan window).
        plan = CrashPlan(
            {0: __import__("repro.runtime", fromlist=["CrashPoint"]
                           ).CrashPoint(
                before_matching=op_on("XSA_XCONS", "propose"),
                occurrence=1),
             1: __import__("repro.runtime", fromlist=["CrashPoint"]
                           ).CrashPoint(
                before_matching=op_on("XSA_XCONS", "propose"),
                occurrence=1)})
        res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                            max_steps=500_000)
        cert = blocking_certificate(res, n_simulators=n, n_simulated=n)
        assert cert.lemma7_holds(x), cert.summary()
        assert cert.max_blocked <= 1
        assert not cert.divergent

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_lemma8_completion_floor(self, seed):
        """Each live simulator completes >= n - t simulated processes."""
        n, t, x, t_prime = 5, 1, 2, 3
        src = KSetReadWrite(n=n, t=t, k=2)
        sim = self.make_collectall(src, t_prime=t_prime, x=x)
        victims = [seed % n, (seed + 2) % n][: t_prime]
        plan = CrashPlan.at_own_step(
            {v: 3 + 4 * i for i, v in enumerate(dict.fromkeys(victims))})
        res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                            max_steps=500_000)
        cert = blocking_certificate(res, n_simulators=n, n_simulated=n)
        assert cert.min_completed >= n - t, cert.summary()
        assert not cert.divergent
