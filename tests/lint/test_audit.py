"""Dynamic footprint auditor: violation reporting and clean passes."""

import pytest

from repro.lint import AuditingStore, FootprintViolation
from repro.memory import (BOTTOM, AtomicRegister, ObjectStore,
                          RegisterArray, SnapshotFamily, SnapshotObject)
from repro.runtime import Invocation, RoundRobinAdversary, run_processes

from .fixtures.broken_protocol import (LeakyRegisterArray, SpyingRegister,
                                       UnderdeclaredSnapshotArray)


def store_with(*objects):
    store = ObjectStore()
    store.add_all(objects)
    return AuditingStore(store)


class TestWriteSoundness:
    def test_leaky_write_caught_by_state_diff(self):
        audited = store_with(LeakyRegisterArray("arr", 3))
        with pytest.raises(FootprintViolation) as exc:
            audited.apply(0, Invocation("arr", "write", (2, "v")))
        message = str(exc.value)
        assert "write-soundness" in message
        assert "'arr'" in message          # the object
        assert "arr.write(2, 'v')" in message  # the operation
        assert "declared" in message and "observed" in message
        assert exc.value.kind == "write"

    def test_honest_write_passes(self):
        audited = store_with(RegisterArray("arr", 3))
        audited.apply(0, Invocation("arr", "write", (2, "v")))
        assert audited.audited_ops == 1

    def test_cross_object_mutation_caught(self):
        class Corruptor(AtomicRegister):
            def __init__(self, name, victim):
                super().__init__(name)
                self._victim = victim

            def op_write(self, pid, value):
                super().op_write(pid, value)
                self._victim.value = "corrupted"

        victim = AtomicRegister("victim")
        audited = store_with(Corruptor("evil", victim), victim)
        with pytest.raises(FootprintViolation) as exc:
            audited.apply(0, Invocation("evil", "write", ("v",)))
        assert "victim" in str(exc.value)


class TestReadSoundness:
    def test_spying_write_caught_by_perturbation(self):
        audited = store_with(SpyingRegister("r"))
        with pytest.raises(FootprintViolation) as exc:
            audited.apply(0, Invocation("r", "write", ("a",)))
        assert exc.value.kind == "read"
        assert "declared" in str(exc.value)

    def test_underdeclared_collect_caught(self):
        audited = store_with(UnderdeclaredSnapshotArray("arr", 3))
        audited.apply(0, Invocation("arr", "write", (1, "x")))
        with pytest.raises(FootprintViolation) as exc:
            audited.apply(0, Invocation("arr", "collect", ()))
        assert exc.value.kind == "read"
        assert "result changed" in str(exc.value)

    def test_honest_blind_write_passes(self):
        audited = store_with(AtomicRegister("r"))
        audited.apply(0, Invocation("r", "write", ("a",)))
        audited.apply(1, Invocation("r", "write", ("b",)))
        assert audited.audited_ops == 2

    def test_perturbation_can_be_disabled(self):
        store = ObjectStore()
        store.add(SpyingRegister("r"))
        audited = AuditingStore(store, perturb=False)
        audited.apply(0, Invocation("r", "write", ("a",)))  # not caught
        assert audited.audited_ops == 1


class TestMemoryFamilyDeclarations:
    """The shipped per-location footprints are audit-clean."""

    def test_snapshot_family_lazy_instantiation_is_not_a_write(self):
        audited = store_with(SnapshotFamily("SA", 3))
        # Snapshot of a never-touched instance materializes it lazily;
        # the ⊥-default must not read as an undeclared write.
        snap = audited.apply(0, Invocation("SA", "snapshot", ("k",)))
        assert snap == (BOTTOM, BOTTOM, BOTTOM)
        audited.apply(1, Invocation("SA", "write", ("k", 1, "v")))
        assert audited.apply(2, Invocation("SA", "snapshot", ("k",))) == \
            (BOTTOM, "v", BOTTOM)
        assert audited.audited_ops == 3

    def test_snapshot_object_per_entry_footprints(self):
        audited = store_with(SnapshotObject("mem", 3))
        audited.apply(1, Invocation("mem", "write", (1, "v1")))
        audited.apply(2, Invocation("mem", "update", ("v2",)))
        assert audited.apply(0, Invocation("mem", "snapshot", ())) == \
            (BOTTOM, "v1", "v2")

    def test_audited_store_is_a_drop_in_for_runs(self):
        store = ObjectStore()
        store.add(RegisterArray("reg", 2))
        audited = AuditingStore(store)

        def prog(pid):
            yield Invocation("reg", "write", (pid, f"v{pid}"))
            mine = yield Invocation("reg", "read", (pid,))
            return mine

        result = run_processes({i: prog(i) for i in range(2)}, audited,
                               adversary=RoundRobinAdversary())
        assert result.decisions == {0: "v0", 1: "v1"}
        assert audited.audited_ops == 4
        assert audited.op_count == 4
