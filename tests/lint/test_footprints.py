"""Static footprint inference: the F501/F502/F503 rules.

Three fixture groups (positive, suppressed, clean) per rule, the
registry-wide static-vs-dynamic agreement pin, and the ``--format
json`` / ``--baseline`` CLI surface.  The agreement test is the
soundness contract of the whole analyzer: on every registry scenario
the static pass says the shipped declarations are sound *and* the
dynamic auditor confirms it on executed schedules -- the two oracles
must never disagree on code the repo actually runs.
"""

import inspect
import json
import os
import textwrap

import pytest

from repro.__main__ import main
from repro.lint import (audit_scenario, lint_paths, lint_source,
                        load_baseline, select_rules)
from repro.runtime import RoundRobinAdversary
from repro.scenarios import check_scenarios

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BROKEN = os.path.join(FIXTURES, "broken_protocol.py")


def lint(source, codes=None, **kwargs):
    rules = select_rules(codes) if codes is not None else None
    return lint_source(textwrap.dedent(source), rules=rules, **kwargs)


def found_codes(violations):
    return [v.code for v in violations]


# --------------------------------------------------------------------------
# F501: footprint under-approximation
# --------------------------------------------------------------------------

class TestUnderApproximation:
    def test_dropped_write_flagged(self):
        found = lint("""
            from repro.memory.registers import RegisterArray
            from repro.runtime.ops import Footprint

            class StatusArray(RegisterArray):
                def op_swap(self, pid, index, value):
                    old = self.cells[index]
                    self.cells[index] = value
                    self.cells[0] = pid
                    return old

                def footprint(self, pid, method, args):
                    if method == "swap" and args:
                        return Footprint.readwrite(self.name, args[0])
                    return super().footprint(pid, method, args)
        """, codes=["F501"])
        assert found_codes(found) == ["F501"]
        assert "op_swap" in found[0].message
        assert "write" in found[0].message
        assert "cells[0]" in found[0].message

    def test_undeclared_read_flagged(self):
        # A "blind" write that observes the prior value: the exact
        # lie the dynamic auditor's poison-and-replay catches, proven
        # here without executing anything.
        found = lint("""
            from repro.memory.registers import AtomicRegister

            class PeekingRegister(AtomicRegister):
                def op_write(self, pid, value):
                    if self.value is None:
                        self.value = value
                    else:
                        self.value = (self.value, value)
        """, codes=["F501"])
        assert found_codes(found) == ["F501"]
        assert "read" in found[0].message

    def test_whole_key_declaration_covers_everything(self):
        # The default SharedObject footprint is whole-object
        # read/write: no handler can escape it.
        assert lint("""
            from repro.memory.base import SharedObject

            class Blob(SharedObject):
                def __init__(self, name):
                    super().__init__(name, None)
                    self.data = {}

                def op_put(self, pid, key, value):
                    self.data[key] = value

                def op_sum(self, pid):
                    return sum(self.data.values())
        """, codes=["F501"]) == []

    def test_honest_per_cell_declaration_clean(self):
        assert lint("""
            from repro.memory.registers import RegisterArray
            from repro.runtime.ops import Footprint

            class TaggedArray(RegisterArray):
                def op_tag(self, pid, index, tag):
                    self._check_index(index)
                    self.cells[index] = (tag, self.cells[index])

                def footprint(self, pid, method, args):
                    if method == "tag" and args:
                        return Footprint.readwrite(self.name, args[0])
                    return super().footprint(pid, method, args)
        """, codes=["F501"]) == []

    def test_super_delegation_is_not_recursion(self):
        # An override that post-processes via super() must not widen
        # to whole-instance access (delegation, not recursion).
        assert lint("""
            from repro.memory.registers import RegisterArray

            class CountingArray(RegisterArray):
                def op_write(self, pid, index, value):
                    super().op_write(pid, index, value)
        """, codes=["F501"]) == []

    def test_suppression_comment_respected(self):
        assert lint("""
            from repro.memory.registers import AtomicRegister

            class PeekingRegister(AtomicRegister):
                def op_write(self, pid, value):  # lint: ignore[F501]
                    prior = self.value
                    self.value = (prior, value)
        """, codes=["F501"]) == []

    def test_inherited_op_reported_at_subclass(self):
        # The lie lives in the subclass's footprint override; the
        # handler it under-declares is inherited.
        found = lint("""
            from repro.memory.registers import RegisterArray
            from repro.runtime.ops import Footprint

            class NarrowedArray(RegisterArray):
                def footprint(self, pid, method, args):
                    if method == "write" and args:
                        return Footprint.read(self.name, args[0])
                    return super().footprint(pid, method, args)
        """, codes=["F501"])
        assert found
        assert all(v.code == "F501" for v in found)
        assert any("inherited" in v.message for v in found)

    def test_fixture_lying_classes_all_flagged(self):
        violations, errors = lint_paths([BROKEN],
                                        rules=select_rules(["F501"]))
        assert errors == []
        flagged = {v.message.split(".")[0] for v in violations}
        assert flagged == {"LeakyRegisterArray", "SpyingRegister",
                          "UnderdeclaredSnapshotArray"}


# --------------------------------------------------------------------------
# F502: unreachable yield
# --------------------------------------------------------------------------

class TestUnreachableYield:
    def test_yield_after_return_flagged(self):
        found = lint("""
            def prog(reg):
                yield reg.read(0)
                return
                yield reg.read(1)
        """, codes=["F502"])
        assert found_codes(found) == ["F502"]
        assert found[0].line == 5

    def test_yield_after_infinite_loop_flagged(self):
        found = lint("""
            def prog(reg):
                while True:
                    yield reg.read(0)
                yield reg.write(0, 1)
        """, codes=["F502"])
        assert found_codes(found) == ["F502"]

    def test_generator_marker_idiom_exempt(self):
        # ``return`` followed by a bare ``yield`` is the standard way
        # to make an empty protocol body a generator -- same exemption
        # Y301 grants it.
        assert lint("""
            def no_op(reg):
                return
                yield
        """, codes=["F502"]) == []

    def test_break_keeps_tail_reachable(self):
        assert lint("""
            def prog(reg):
                while True:
                    value = yield reg.read(0)
                    if value is not None:
                        break
                yield reg.write(0, 1)
        """, codes=["F502"]) == []

    def test_branchy_control_flow_clean(self):
        assert lint("""
            def prog(reg, pid):
                if pid == 0:
                    yield reg.write(0, pid)
                else:
                    for peer in range(3):
                        yield reg.read(peer)
                yield reg.write(1, pid)
        """, codes=["F502"]) == []

    def test_suppression_comment_respected(self):
        assert lint("""
            def prog(reg):
                yield reg.read(0)
                return
                yield reg.read(1)  # lint: ignore[F502]
        """, codes=["F502"]) == []


# --------------------------------------------------------------------------
# F503: conflicting ops without a yield boundary
# --------------------------------------------------------------------------

class TestConflictingOpsOneStep:
    def test_nested_same_object_call_flagged(self):
        found = lint("""
            def prog(arr):
                yield arr.write(0, arr.read(1))
        """, codes=["F503"])
        assert found_codes(found) == ["F503"]
        assert "arr" in found[0].message

    def test_distinct_objects_clean(self):
        assert lint("""
            def prog(arr, other):
                yield arr.write(0, other.read(1))
        """, codes=["F503"]) == []

    def test_lambda_defers_execution(self):
        assert lint("""
            def prog(sched, arr):
                yield sched.spin(lambda: arr.read(0))
        """, codes=["F503"]) == []

    def test_sequential_yields_clean(self):
        assert lint("""
            def prog(arr):
                value = yield arr.read(1)
                yield arr.write(0, value)
        """, codes=["F503"]) == []

    def test_suppression_comment_respected(self):
        assert lint("""
            def prog(arr):
                yield arr.write(0, arr.read(1))  # lint: ignore[F503]
        """, codes=["F503"]) == []


# --------------------------------------------------------------------------
# Static-vs-dynamic agreement: the analyzer's soundness contract
# --------------------------------------------------------------------------

@pytest.mark.lint
class TestStaticDynamicAgreement:
    """Static says sound ==> the dynamic auditor finds no violation.

    For every registry scenario: F501-lint the defining module of each
    shared object the scenario's store actually contains (static pass,
    no schedule executed), then replay the scenario under the auditing
    store.  Both oracles must report the declarations sound.
    """

    @pytest.mark.parametrize("name", sorted(check_scenarios()))
    def test_registry_scenario_statically_and_dynamically_sound(
            self, name):
        scenario = check_scenarios(n=3, x=2)[name]
        _, store = scenario.build()
        files = sorted({inspect.getfile(type(obj)) for obj in store})
        assert files, f"scenario {name} has an empty store"
        violations, errors = lint_paths(files,
                                        rules=select_rules(["F501"]))
        assert errors == []
        assert violations == [], "\n".join(
            v.render() for v in violations)
        report = audit_scenario(scenario,
                                adversaries=[RoundRobinAdversary()])
        assert report.audited_ops > 0


# --------------------------------------------------------------------------
# CLI: --format json and --baseline
# --------------------------------------------------------------------------

ONE_BUG = """\
def prog(reg):
    yield reg.read(0)
    return
    yield reg.read(1)
"""

TWO_BUGS = ONE_BUG + """\

def prog2(arr):
    yield arr.write(0, arr.read(1))
"""


class TestLintJsonFormat:
    def test_json_report_shape(self, capsys):
        assert main(["lint", BROKEN, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "lint_report"
        assert doc["schema_version"] == 1
        assert doc["summary"]["violations"] == len(doc["violations"])
        assert doc["summary"]["by_code"]["F501"] == 3
        first = doc["violations"][0]
        assert set(first) == {"code", "rule", "path", "line", "col",
                              "message"}

    def test_json_clean_run(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def prog(reg):\n    yield reg.read(0)\n")
        assert main(["lint", str(clean), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"] == []
        assert doc["summary"]["violations"] == 0


class TestLintBaseline:
    def test_update_then_rerun_is_clean(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", BROKEN, "--baseline", baseline,
                     "--update-baseline"]) == 0
        capsys.readouterr()
        doc = json.loads(open(baseline).read())
        assert doc["kind"] == "lint_baseline"
        assert doc["findings"]
        # Every current finding is absorbed by the snapshot.
        assert main(["lint", BROKEN, "--baseline", baseline]) == 0
        assert "baselined finding(s) suppressed" in \
            capsys.readouterr().out

    def test_new_violation_escapes_baseline(self, tmp_path, capsys):
        proto = tmp_path / "proto.py"
        proto.write_text(ONE_BUG)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(proto), "--baseline", baseline,
                     "--update-baseline"]) == 0
        assert main(["lint", str(proto), "--baseline", baseline]) == 0
        proto.write_text(TWO_BUGS)
        capsys.readouterr()
        assert main(["lint", str(proto), "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        # Only the *new* finding is reported; the baselined one stays
        # suppressed.
        assert "F503" in out
        assert "F502" not in out

    def test_load_baseline_roundtrip(self, tmp_path):
        proto = tmp_path / "proto.py"
        proto.write_text(ONE_BUG)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(proto), "--baseline", baseline,
                     "--update-baseline"]) == 0
        counts = load_baseline(baseline)
        assert sum(counts.values()) == 1
        ((path, code, _message),) = counts
        assert code == "F502"
        assert "\\" not in path  # baseline keys are os-independent

    def test_update_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", BROKEN, "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else"}')
        assert main(["lint", BROKEN, "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err
