"""The repo's own lint job, run as part of tier-1.

Two guarantees, marked ``lint`` (parallel to the ``exhaustive`` marker):

* the repo's protocol code is clean under every registered rule
  (``python -m repro lint src/repro`` exits 0), and
* every footprint declaration shipped in ``src/repro/memory`` is sound:
  the dynamic auditor replays every registered scenario under a battery
  of adversaries without a single operation escaping its declared
  read/write sets.  This is the regression pin for the DPOR
  independence relation -- an under-declared footprint would silently
  prune real interleavings from the exhaustive proofs.
"""

import os

import pytest

from repro.__main__ import main
from repro.lint import audit_scenario, lint_paths
from repro.scenarios import check_scenarios

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BENCHMARKS = os.path.join(REPO_ROOT, "benchmarks")


@pytest.mark.lint
class TestSelfLint:
    def test_repo_is_lint_clean(self):
        # benchmarks/ is pinned alongside src/: the harness and bench
        # drivers exercise the same protocol APIs the rules police.
        violations, errors = lint_paths([SRC, BENCHMARKS])
        assert errors == []
        assert violations == [], "\n".join(
            v.render() for v in violations)

    def test_lint_cli_exits_zero_on_repo(self, capsys):
        assert main(["lint", SRC, BENCHMARKS]) == 0


@pytest.mark.lint
class TestFootprintAuditRegression:
    """All shipped footprint declarations pass the dynamic audit."""

    @pytest.mark.parametrize("name", sorted(check_scenarios()))
    def test_scenario_audit_clean(self, name):
        scenario = check_scenarios(n=3, x=2)[name]
        report = audit_scenario(scenario)
        assert report.runs == 8
        assert report.audited_ops > 0

    def test_two_process_sizing_also_clean(self):
        for scenario in check_scenarios(n=2, x=2).values():
            assert audit_scenario(scenario).audited_ops > 0

    def test_audit_cli_all_scenarios(self, capsys):
        assert main(["audit", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("AUDIT PASSED") == 5
