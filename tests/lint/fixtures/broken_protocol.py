"""Deliberately-broken protocol code and objects for the lint tests.

Every planted bug here must be caught: the *static* bugs (discipline
bypass, nondeterminism, literal yields, oversized port sets) by the
linter's rules, and the lying-footprint objects at the bottom both
*statically* (the F501 footprint-inference pass proves each declaration
under-approximates its handler) and *dynamically* (the footprint
auditor's state diff / perturbation replay catches them at runtime).
This module is parsed by the linter and imported by the audit tests; it
is never linted as part of the repo self-lint.
"""

import random

from repro.memory.base import BOTTOM
from repro.memory.registers import AtomicRegister, RegisterArray
from repro.memory.specs import make_spec
from repro.objects.test_and_set import TestAndSetObject
from repro.runtime.ops import ObjectProxy

reg = ObjectProxy("reg")


# --------------------------------------------------------------------------
# Static violations (one function per rule; line comments name the rule)
# --------------------------------------------------------------------------

def bypasses_scheduler(store):
    """D101: touches shared objects without yielding Invocations."""
    arr = store["reg"]
    arr.op_write(0, 1, "sneaky")          # D101 direct op_* call
    result = store.apply(0, reg.read(1))  # D101 direct store dispatch
    yield reg.read(0)
    return result


def nondeterministic_process(pid):
    """N201: schedule replay would diverge between runs."""
    victim = random.choice([0, 1])        # N201 shared-RNG call
    marker = id(object())                 # N201 memory-layout id()
    for peer in {0, 1, 2}:                # N201 unordered set iteration
        yield reg.read(peer)
    yield reg.write(pid, (victim, marker))


def yields_garbage(pid):
    """Y301: yields that cannot be operation descriptors."""
    yield 42                              # Y301 literal yield
    yield                                 # Y301 bare yield mid-protocol
    yield reg.read(pid)


def oversubscribed_ports():
    """X401: consensus-number-2 objects wired to 3+ processes."""
    tas = TestAndSetObject("t", ports=[0, 1, 2])          # X401
    spec = make_spec("tas", "t2", ports=(0, 1, 2, 3))     # X401
    yield reg.read(0)
    return tas, spec


# --------------------------------------------------------------------------
# Dynamic violations: objects whose declared footprints lie
# --------------------------------------------------------------------------

class LeakyRegisterArray(RegisterArray):
    """Declares a per-cell write footprint but also corrupts cell 0.

    The auditor's state diff sees cell 0 change under an operation whose
    declared write set is only the addressed cell.
    """

    def op_write(self, pid, index, value):
        super().op_write(pid, index, value)
        if index != 0:
            self.cells[0] = ("leak", value)


class SpyingRegister(AtomicRegister):
    """Declares a blind (write-only) write but observes the prior value.

    The auditor's perturbation replay poisons the undeclared read and
    watches the written value change.
    """

    def op_write(self, pid, value):
        prior = self.value
        self.value = value if prior is BOTTOM else (prior, value)


class UnderdeclaredSnapshotArray(RegisterArray):
    """A whole-array 'collect' operation declared as a one-cell read."""

    READONLY = frozenset({"read", "collect"})

    def op_collect(self, pid):
        return tuple(self.cells)

    def footprint(self, pid, method, args):
        from repro.runtime.ops import Footprint
        if method == "collect":
            return Footprint.read(self.name, 0)  # lies: reads every cell
        return super().footprint(pid, method, args)
