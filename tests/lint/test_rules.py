"""Positive and negative fixtures for every registered lint rule."""

import os
import textwrap

import pytest

from repro.lint import all_rules, lint_paths, lint_source, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def lint(source, **kwargs):
    return lint_source(textwrap.dedent(source), **kwargs)


def codes(violations):
    return [v.code for v in violations]


class TestRegistry:
    def test_every_rule_has_identity(self):
        rules = all_rules()
        assert len(rules) >= 4
        for rule in rules:
            assert rule.code and rule.name and rule.description

    def test_select_by_code_and_name(self):
        assert [r.code for r in select_rules(["D101"])] == ["D101"]
        assert [r.code for r in select_rules(["nondeterminism"])] == \
            ["N201"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(["Z999"])


class TestDirectStateAccess:
    def test_op_call_in_generator_flagged(self):
        found = lint("""
            def prog(store, reg):
                store["r"].op_write(0, "v")
                yield reg.read(0)
        """)
        assert codes(found) == ["D101"]
        assert "op_write" in found[0].message

    def test_store_apply_in_generator_flagged(self):
        found = lint("""
            def prog(store, inv):
                result = store.apply(0, inv)
                yield inv
        """)
        assert codes(found) == ["D101"]

    def test_yielded_invocations_clean(self):
        assert lint("""
            def prog(reg):
                yield reg.write(0, "v")
                value = yield reg.read(0)
                return value
        """) == []

    def test_op_methods_outside_generators_allowed(self):
        # Object implementations may call their own handlers (e.g.
        # SnapshotObject.op_update delegates to op_write).
        assert lint("""
            class Obj:
                def op_update(self, pid, value):
                    return self.op_write(pid, pid, value)
        """) == []


class TestNondeterminism:
    def test_random_call_flagged(self):
        found = lint("""
            def prog(reg):
                yield reg.write(0, random.choice([1, 2]))
        """)
        assert codes(found) == ["N201"]

    def test_wall_clock_flagged(self):
        found = lint("""
            def prog(reg):
                yield reg.write(0, time.time())
        """)
        assert codes(found) == ["N201"]

    def test_id_flagged(self):
        found = lint("""
            def prog(reg):
                yield reg.write(0, id(reg))
        """)
        assert codes(found) == ["N201"]

    def test_set_iteration_flagged(self):
        found = lint("""
            def prog(reg):
                for peer in {1, 2, 3}:
                    yield reg.read(peer)
        """)
        assert codes(found) == ["N201"]

    def test_seeded_rng_and_sorted_iteration_clean(self):
        assert lint("""
            def prog(reg, seed):
                rng = random.Random(seed)
                for peer in sorted({1, 2, 3}):
                    yield reg.read(peer)
        """) == []

    def test_nondeterminism_outside_process_code_allowed(self):
        # Harness/adversary code is not schedule-replayed.
        assert lint("""
            def pick_seed():
                return random.choice([1, 2, 3])
        """) == []


class TestYieldDescriptor:
    def test_literal_yield_flagged(self):
        found = lint("""
            def prog(reg):
                yield 42
                yield reg.read(0)
        """)
        assert codes(found) == ["Y301"]

    def test_bare_yield_flagged(self):
        found = lint("""
            def prog(reg):
                yield
                yield reg.read(0)
        """)
        assert codes(found) == ["Y301"]

    def test_generator_marker_after_return_allowed(self):
        # The 'decide immediately' idiom: dead yield after return.
        assert lint("""
            def prog(pid, value):
                return value
                yield
        """) == []

    def test_descriptor_yields_clean(self):
        assert lint("""
            def prog(reg, pred):
                yield reg.write(0, "v")
                snap = yield SpinOp(reg.read(0), pred)
                result = yield from helper(reg)
                return (snap, result)
        """) == []


class TestXPortArity:
    def test_constructor_with_oversized_ports_flagged(self):
        found = lint("""
            t = TestAndSetObject("t", ports=[0, 1, 2])
        """)
        assert codes(found) == ["X401"]
        assert "consensus number 2" in found[0].message

    def test_make_spec_with_oversized_ports_flagged(self):
        found = lint("""
            spec = make_spec("queue", "q", ports=(0, 1, 2))
        """)
        assert codes(found) == ["X401"]

    def test_within_arity_clean(self):
        assert lint("""
            t = TestAndSetObject("t", ports=[0, 1])
            spec = make_spec("tas", "t2", ports=(3, 4))
        """) == []

    def test_non_literal_ports_not_flagged(self):
        # Dynamic port sets are the auditor's (runtime's) job.
        assert lint("""
            t = TestAndSetObject("t", ports=compute_ports())
        """) == []


class TestSuppression:
    def test_line_suppression_by_code_and_name(self):
        assert lint("""
            def prog(reg):
                yield 42  # lint: ignore[Y301]
                yield reg.read(0)
        """) == []
        assert lint("""
            def prog(reg):
                yield 42  # lint: ignore[yield-descriptor]
                yield reg.read(0)
        """) == []

    def test_suppression_is_rule_specific(self):
        found = lint("""
            def prog(reg):
                yield 42  # lint: ignore[D101]
                yield reg.read(0)
        """)
        assert codes(found) == ["Y301"]

    def test_skip_file(self):
        assert lint("""
            # lint: skip-file
            def prog(reg):
                yield 42
        """) == []


class TestFixtureFile:
    """The planted-bug fixture is caught by the static rules."""

    def test_every_planted_static_bug_is_caught(self):
        violations, errors = lint_paths(
            [os.path.join(FIXTURES, "broken_protocol.py")])
        assert errors == []
        found = set(codes(violations))
        assert found == {"D101", "N201", "Y301", "X401", "F501"}
        # Two discipline bypasses, three nondeterminism sources, two bad
        # yields, two oversized port sets -- plus one F501 per
        # lying-footprint class: the "dynamic" bugs at the bottom of the
        # fixture are in fact provable from source alone.
        assert len(codes(violations)) == 12
        assert codes(violations).count("F501") == 3

    def test_repo_protocol_dirs_are_clean(self):
        violations, errors = lint_paths([
            os.path.join(REPO_ROOT, "src", "repro", d)
            for d in ("agreement", "bg", "core", "objects", "tasks")])
        assert errors == []
        assert violations == []
