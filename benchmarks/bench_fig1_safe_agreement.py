"""FIG1 -- Figure 1: the safe-agreement object type.

Reproduced claims:
* termination + agreement + validity when no simulator crashes while
  executing sa_propose();
* one crash inside sa_propose() permanently blocks all deciders (the
  property the whole BG construction must confine with mutex1).

The benchmark times a full propose+decide round among n simulators; the
report tabulates outcome and step cost as n grows, plus the crash matrix.
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import (CrashPlan, SeededRandomAdversary, run_processes)

from .harness import header, write_report


def participant(factory, i, value):
    inst = factory.instance("bench")
    yield from inst.propose(i, value)
    decided = yield from inst.decide(i)
    return decided


def round_of(n, seed=0, crash_plan=None):
    factory = SafeAgreementFactory(n)
    store = ObjectStore()
    store.add_all(factory.shared_objects())
    return run_processes(
        {i: participant(factory, i, f"v{i}") for i in range(n)},
        store, adversary=SeededRandomAdversary(seed),
        crash_plan=crash_plan, max_steps=200_000)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_fig1_round_cost(benchmark, n):
    result = benchmark(lambda: round_of(n))
    assert len(result.decided_values) == 1


def test_fig1_report():
    lines = header(
        "FIG1: safe-agreement (paper Figure 1)",
        "termination/agreement/validity per n; crash-in-propose matrix")
    lines.append(f"{'n':>4} {'steps':>7} {'decided':>8} {'values':>7}")
    rounds = []
    for n in (2, 4, 8, 16, 32):
        res = round_of(n)
        assert len(res.decided_values) == 1
        rounds.append({"n": n, "steps": res.steps,
                       "decided": len(res.decisions)})
        lines.append(f"{n:>4} {res.steps:>7} {len(res.decisions):>8} "
                     f"{len(res.decided_values):>7}")
    lines.append("")
    lines.append("crash scenarios (n = 4, p0 is the victim):")
    scenarios = [
        ("no crash", None, "all decide"),
        ("before any step", CrashPlan.initially_dead([0]), "others decide"),
        ("mid-propose (after (v,1) write)", CrashPlan.at_own_step({0: 2}),
         "others BLOCK forever"),
        ("after propose completes", CrashPlan.at_own_step({0: 4}),
         "others decide"),
    ]
    crash_matrix = []
    for label, plan, expect in scenarios:
        res = round_of(4, crash_plan=plan)
        outcome = ("all decide" if len(res.decisions) == 4 else
                   "others BLOCK forever" if res.deadlocked else
                   "others decide")
        assert outcome == expect, (label, res.summary())
        crash_matrix.append({"scenario": label, "outcome": outcome})
        lines.append(f"  {label:<34} -> {outcome}   [{res.summary()}]")
    write_report("fig1_safe_agreement", lines,
                 data={"rounds": rounds, "crash_matrix": crash_matrix})
