"""SYNC -- Section 1.3: MRT round-optimal synchronous k-set agreement,
executed on the synchronous engine.

Reproduced series: the round count ⌊t/d⌋+1 (d = m·⌊k/ℓ⌋ + (k mod ℓ))
is *sufficient* -- the committee algorithm meets the k bound against the
committee-silencing adversary that realizes the lower bound -- and not
slack: with one round removed, the same adversary forces more than k
distinct decisions.
"""

import pytest

from repro.sync import (SyncCrash, SyncKSetMRT, SyncPhase, mrt_rounds,
                        run_sync)

from .harness import header, write_report


def silence_rounds(algo, budget):
    crashes = []
    r = 0
    while budget >= algo.d and r < algo.rounds:
        crashes.extend(SyncCrash(v, r, SyncPhase.BEFORE_OBJECTS)
                       for v in algo.committee(r))
        budget -= algo.d
        r += 1
    return crashes


@pytest.mark.parametrize("t", [2, 4, 6])
def test_sync_mrt_cost(benchmark, t):
    algo = SyncKSetMRT(n=t + 6, t=t, k=2, m=2, ell=1)
    result = benchmark(
        lambda: run_sync(algo, list(range(algo.n)),
                         silence_rounds(algo, t)))
    assert len(result.decided_values) <= 2


def test_sync_mrt_report():
    lines = header(
        "SYNC: MRT-optimal synchronous k-set agreement "
        "(paper Section 1.3)",
        "rounds = floor(t/d)+1 with d = m*floor(k/l) + (k mod l);",
        "adversary = silence whole committees (the lower-bound strategy)")
    lines.append(f"{'t':>3} {'k':>3} {'(m,l)':>7} {'d':>3} "
                 f"{'rounds':>7} {'distinct':>9} {'<= k?':>6}")
    for t, k, m, ell in ((2, 2, 1, 1), (4, 2, 1, 1), (4, 1, 2, 1),
                         (4, 2, 2, 1), (5, 3, 2, 2), (6, 2, 3, 1)):
        algo = SyncKSetMRT(n=t + 2 * algo_d(k, m, ell) + 2, t=t, k=k,
                           m=m, ell=ell)
        res = run_sync(algo, list(range(algo.n)),
                       silence_rounds(algo, t))
        ok = len(res.decided_values) <= k
        assert ok
        lines.append(f"{t:>3} {k:>3} {f'({m},{ell})':>7} {algo.d:>3} "
                     f"{algo.rounds:>7} {len(res.decided_values):>9} "
                     f"{'yes':>6}")
    lines.append("")
    lines.append("tightness: same instance with rounds-1 and the same "
                 "adversary:")
    algo = SyncKSetMRT(n=10, t=4, k=2, m=2, ell=1)
    assert algo.rounds == 2
    algo.rounds = 1
    res = run_sync(algo, list(range(10)),
                   [SyncCrash(v, 0, SyncPhase.BEFORE_OBJECTS)
                    for v in algo.committee(0)])
    lines.append(f"  1 round instead of 2 -> "
                 f"{len(res.decided_values)} distinct decisions "
                 f"(> k = 2): the formula's round is necessary")
    assert len(res.decided_values) > 2
    lines.append("")
    lines.append("rounds grow as floor(t/d)+1: doubling the object width "
                 "m halves (floor-wise) the committee budget the "
                 "adversary must spend -- the synchronous face of "
                 "'consensus power buys failure tolerance'.")
    write_report("sync_mrt_rounds", lines)


def algo_d(k, m, ell):
    return m * (k // ell) + (k % ell)
