"""Socket-transport overhead: what the multi-machine shard service costs.

``python -m repro serve`` / ``worker`` carry the lease protocol over
TCP (:mod:`repro.runtime.netshard`), trading frame encode/decode,
checksums, and round-trips for the ability to put workers on other
machines.  On a single host that trade is pure overhead -- this bench
measures exactly how much, on jobs-sharded DPOR exploration of
4-process x-safe-agreement (x=2, p0 crashing mid-propose):

* **fork**   -- the baseline ``explore_parallel`` fork pool (jobs=2);
* **socket** -- the same exploration served by a :class:`ShardServer`
  to two in-process :class:`ShardWorker` threads over real sockets
  on loopback (every grant, heartbeat, and completion is a framed
  round-trip).

Both must return bit-for-bit identical statistics -- the transport may
cost time, never coverage (the ``network`` differential tier enforces
this on every scenario; the bench just prices it).
"""

import threading
import time

from repro.runtime.netshard import ShardServer, ShardWorker
from repro.runtime.parallel import explore_parallel
from repro.scenarios import ScenarioRef, check_scenarios

from .harness import header, write_report

N = 4
WORKERS = 2
REPEATS = 2


def _scenario():
    return check_scenarios(n=N)["x-safe-agreement"]


def _fork_explore(jobs=WORKERS):
    sc = _scenario()
    return explore_parallel(sc.build, sc.check,
                            crash_plan_factory=sc.crash_plan_factory,
                            max_steps=sc.max_steps, max_runs=sc.max_runs,
                            jobs=jobs)


def _socket_explore():
    """One exploration through the TCP shard service on loopback."""
    sc = _scenario()
    config = {"scenario": "x-safe-agreement", "n": N, "x": 2,
              "max_steps": sc.max_steps, "max_runs": sc.max_runs,
              "reduction": "dpor", "state_cache": True}
    ready = threading.Event()
    addr = {}

    def announce(host, port):
        addr["bound"] = (host, port)
        ready.set()

    server = ShardServer(config=config, solo_after=60.0,
                         announce=announce)
    box = {}

    def coordinate():
        try:
            box["stats"] = explore_parallel(
                sc.build, sc.check,
                crash_plan_factory=sc.crash_plan_factory,
                max_steps=sc.max_steps, max_runs=sc.max_runs, jobs=1,
                scenario=ScenarioRef("x-safe-agreement", n=N),
                pool=server)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    coord = threading.Thread(target=coordinate, daemon=True)
    coord.start()
    assert ready.wait(10.0), "shard server never bound"
    host, port = addr["bound"]
    threads = []
    for i in range(WORKERS):
        worker = ShardWorker(host, port, name=f"bench-w{i}")
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        threads.append(thread)
    coord.join(timeout=600)
    for thread in threads:
        thread.join(timeout=30)
    if "error" in box:
        raise box["error"]
    return box["stats"], server.tallies


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_network_overhead_report():
    t_fork, fork_stats = _best_of(_fork_explore)
    t_socket, (socket_stats, tallies) = _best_of(_socket_explore)
    assert socket_stats == fork_stats, \
        "the socket transport changed what was explored"
    assert tallies["remote_shards"] > 0, \
        "no shard actually travelled over the socket"

    lines = header(
        f"Socket-transport overhead ({N}-process x-safe-agreement, "
        f"x=2, {WORKERS} workers)",
        "fork = explore_parallel fork pool; socket = ShardServer + "
        "in-process ShardWorkers over loopback TCP")
    lines.append(f"{'variant':<8} {'runs':>6} "
                 f"{'best-of-%d (s)' % REPEATS:>14} {'vs fork':>9}")
    for label, stats, seconds in (("fork", fork_stats, t_fork),
                                  ("socket", socket_stats, t_socket)):
        lines.append(f"{label:<8} {stats.total_runs:>6} "
                     f"{seconds:>14.4f} {seconds / t_fork:>8.2f}x")
    lines.append("")
    lines.append(f"frames: {tallies['frames_in']} in / "
                 f"{tallies['frames_out']} out across "
                 f"{tallies['connections']} connection(s); "
                 f"{tallies['remote_shards']} shard(s) remote, "
                 f"{tallies['inprocess_shards']} in-process")
    lines.append("fork == socket stats: the transport costs frames, "
                 "never coverage.")
    write_report("network_overhead", lines, data={
        "scenario": "x-safe-agreement", "n": N, "workers": WORKERS,
        "total_runs": fork_stats.total_runs,
        "fork_seconds": t_fork,
        "socket_seconds": t_socket,
        "socket_overhead_ratio": t_socket / t_fork,
        "frames_in": tallies["frames_in"],
        "frames_out": tallies["frames_out"],
        "remote_shards": tallies["remote_shards"],
        "inprocess_shards": tallies["inprocess_shards"],
    })
