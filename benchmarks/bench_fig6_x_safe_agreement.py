"""FIG6 -- Figure 6: the x-safe-agreement object type.

Reproduced claims (Theorem 2):
* agreement + validity under any schedule;
* termination despite up to x-1 owner crashes mid-propose; death only at
  x owner crashes;
* the cost structure: the owner scan visits the m = C(n, x) subsets, so
  the propose cost grows with C(n, x) -- the price of dynamic ownership.
"""

import math

import pytest

from repro.agreement import XSafeAgreementFactory
from repro.memory import ObjectStore
from repro.runtime import (CrashPlan, RoundRobinAdversary,
                           SeededRandomAdversary, run_processes)

from .harness import header, write_report


def round_of(n, x, seed=0, crash_plan=None):
    factory = XSafeAgreementFactory(n, x)
    store = ObjectStore()
    store.add_all(factory.shared_objects())

    def participant(i):
        inst = factory.instance("bench")
        yield from inst.propose(i, f"v{i}")
        decided = yield from inst.decide(i)
        return decided

    adversary = (RoundRobinAdversary() if seed is None
                 else SeededRandomAdversary(seed))
    return run_processes(
        {i: participant(i) for i in range(n)}, store,
        adversary=adversary, crash_plan=crash_plan, max_steps=500_000)


@pytest.mark.parametrize("n,x", [(4, 2), (6, 2), (6, 3), (8, 4)])
def test_fig6_round_cost(benchmark, n, x):
    result = benchmark(lambda: round_of(n, x))
    assert len(result.decided_values) == 1


def test_fig6_report():
    lines = header(
        "FIG6: x-safe-agreement (paper Figure 6)",
        "cost grows with the SET_LIST scan (m = C(n, x)); crash",
        "tolerance: survives x-1 owner crashes, dies at x")
    lines.append(f"{'n':>3} {'x':>3} {'m=C(n,x)':>9} {'steps':>7} "
                 f"{'values':>7}")
    for n, x in ((4, 2), (6, 2), (6, 3), (8, 2), (8, 4), (10, 5)):
        res = round_of(n, x)
        m = math.comb(n, x)
        assert len(res.decided_values) == 1
        lines.append(f"{n:>3} {x:>3} {m:>9} {res.steps:>7} "
                     f"{len(res.decided_values):>7}")
    lines.append("")
    lines.append("owner-crash tolerance (n = 6; victims crash mid-scan):")
    lines.append(f"  {'x':>3} {'owner crashes':>14} {'outcome':<22}")
    for x, crashes, expect in [
        (2, 1, "survives"),
        (2, 2, "object dies"),
        (3, 2, "survives"),
        (3, 3, "object dies"),
    ]:
        # victims win slots one after another under round-robin, then die
        # inside the consensus scan.
        plan = CrashPlan.at_own_step(
            {v: v + 2 for v in range(crashes)})
        # round-robin pins who wins which slot, making the victims the
        # first `crashes` owners deterministically.
        res = round_of(6, x, seed=None, crash_plan=plan)
        outcome = "object dies" if res.deadlocked else "survives"
        assert outcome == expect, (x, crashes, res.summary())
        lines.append(f"  {x:>3} {crashes:>14} {outcome:<22}")
    write_report("fig6_x_safe_agreement", lines)
