"""Parallel exploration speedup on the largest tractable scenario.

The sharded multiprocess backend promises two things, in this order:

* determinism -- ``jobs`` controls only how many OS processes execute
  the shards, never which shards exist or what they report, so
  ``total_runs`` (and every other ``ExplorationStats`` field) must be
  identical across all job counts; asserted unconditionally;
* speedup -- on a multi-core box, jobs=4 completes the sweep at least
  2x faster than jobs=1.  The speedup assertion is gated on
  ``os.cpu_count() >= 4``: on fewer cores the extra processes just
  time-slice one CPU and the honest measurement is recorded without a
  bar.

The workload is x-safe-agreement at n=4, x=2 under one injected crash
-- the largest registry scenario a serial DPOR sweep finishes in well
under five minutes (plain safe-agreement at n=4 does not).
"""

import os
import time

import pytest

from repro.runtime import explore
from repro.scenarios import check_scenarios

from .harness import header, write_report

JOB_COUNTS = sorted({1, 2, 4, os.cpu_count() or 1})


def _scenario():
    return check_scenarios(n=4, x=2)["x-safe-agreement"]


def _timed_sweep(sc, jobs):
    start = time.perf_counter()
    stats = explore(sc.build, sc.check,
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=sc.max_steps, max_runs=sc.max_runs,
                    reduction="dpor", jobs=jobs)
    return stats, time.perf_counter() - start


def test_parallel_speedup_fast():
    """Cheap half of the acceptance bar: determinism at n=3."""
    sc = check_scenarios(n=3, x=2)["x-safe-agreement"]
    s1, _ = _timed_sweep(sc, jobs=1)
    s4, _ = _timed_sweep(sc, jobs=4)
    assert s1 == s4
    assert s1.complete_runs > 0


@pytest.mark.slow
def test_parallel_speedup_report():
    """Full n=4 sweep at every job count; regenerates the results table."""
    sc = _scenario()
    rows = []
    for jobs in JOB_COUNTS:
        stats, elapsed = _timed_sweep(sc, jobs)
        rows.append((jobs, stats, elapsed))

    totals = {stats.total_runs for _, stats, _ in rows}
    assert len(totals) == 1, f"total_runs varies with jobs: {totals}"
    first = rows[0][1]
    assert all(stats == first for _, stats, _ in rows), \
        "ExplorationStats varies with jobs"

    base_time = rows[0][2]
    cores = os.cpu_count() or 1
    lines = header(
        "Parallel DPOR exploration: x-safe-agreement (n=4, x=2, 1 crash)",
        "Sharded multiprocess backend vs the same shards on one process.",
        "total_runs must be identical at every job count (determinism);",
        "the >=2x speedup bar at jobs=4 applies only when >=4 CPU cores",
        f"are available (this machine: {cores}).")
    lines.append(f"{'jobs':>5} {'total_runs':>11} {'elapsed_s':>10} "
                 f"{'runs/sec':>9} {'speedup':>8}")
    series = []
    for jobs, stats, elapsed in rows:
        speedup = base_time / elapsed if elapsed > 0 else float("inf")
        rate = stats.total_runs / elapsed if elapsed > 0 else float("inf")
        series.append({"jobs": jobs, "total_runs": stats.total_runs,
                       "elapsed_seconds": elapsed, "speedup": speedup})
        lines.append(f"{jobs:>5} {stats.total_runs:>11} {elapsed:>10.2f} "
                     f"{rate:>9.0f} {speedup:>8.2f}")
        if jobs == 4 and cores >= 4:
            assert speedup >= 2.0, \
                f"jobs=4 speedup bar missed on {cores} cores: {speedup:.2f}"
    if cores < 4:
        lines.append("")
        lines.append(f"note: measured on a {cores}-core machine -- extra "
                     "worker processes time-slice the same CPU, so no "
                     "speedup is expected or asserted here; the "
                     "determinism assertion (identical total_runs and "
                     "full ExplorationStats at every job count) ran "
                     "unconditionally and passed.")
    path = write_report("parallel_speedup", lines,
                        data={"cores": cores, "series": series})
    assert path.endswith("parallel_speedup.txt")
