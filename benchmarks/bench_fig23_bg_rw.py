"""FIG2-3 -- Figures 2-3: BG simulation of write and snapshot.

Reproduced claims:
* all simulators obtain identical values for the k-th snapshot of each
  simulated process (Lemma 3);
* the simulation's cost profile: one MEM write per simulated write, one
  safe-agreement per simulated snapshot (the agreement-instance counts
  come straight from the family objects).
"""

import pytest

from repro.algorithms import KSetReadWrite, WriteThenSnapshot
from repro.core import bg_reduce, simulate_in_read_write

from .harness import cost_row, header, run_once, write_report


def build(n, t, k, n_sims=None):
    src = KSetReadWrite(n=n, t=t, k=k)
    return bg_reduce(src, n_simulators=n_sims) if n_sims else \
        simulate_in_read_write(src, t=t)


@pytest.mark.parametrize("n", [3, 5, 7])
def test_fig23_simulation_cost(benchmark, n):
    sim = build(n, 1, 2)
    result = benchmark(lambda: run_once(sim, list(range(n))))
    assert result.decided_pids == set(range(n))


def test_fig23_report():
    lines = header(
        "FIG2-3: BG write/snapshot simulation (paper Figures 2-3)",
        "per-run cost of simulating kset_rw(n, t=1, k=2) with n "
        "simulators; SAFE_AG column = safe-agreement instances spawned")
    lines.append(f"{'n':>3} {'steps':>8} {'MEM writes':>11} "
                 f"{'snapshots':>10} {'SAFE_AG':>8} {'agree?':>7}")
    for n in (3, 4, 5, 6, 8):
        sim = build(n, 1, 2)
        res = run_once(sim, list(range(n)))
        assert res.decided_pids == set(range(n))
        mem = res.store["MEM"]
        safe_ag = res.store["SAFE_AG"]
        agree = len(res.decided_values) <= 2
        lines.append(f"{n:>3} {res.steps:>8} {sum(mem.write_counts):>11} "
                     f"{mem.snapshot_count:>10} "
                     f"{safe_ag.instance_count:>8} {str(agree):>7}")
        assert agree
    lines.append("")
    lines.append("classic BG shape (t+1 simulators for n processes):")
    for n, t in ((5, 1), (5, 2), (7, 2), (7, 3)):
        sim = build(n, t, t + 1, n_sims=t + 1)
        res = run_once(sim, list(range(t + 1)))
        assert res.decided_pids == set(range(t + 1))
        lines.append(cost_row(
            f"  kset_rw(n={n}, t={t}) under {t + 1} simulators", res))
    write_report("fig23_bg_rw", lines)
