"""FIG7 -- Figure 7: the model-equivalence chain, executed.

Reproduced claim: for floor(t1/x1) = floor(t2/x2), an algorithm hops
ASM(n1,t1,x1) -> ASM(n1,t,1) -> ASM(n2,t,1) -> ASM(n2,t2,x2) with the
task preserved at every hop.  The report traces one full chain and runs
the composite at each stage; the benchmark times the end-to-end
composite.
"""

import pytest

from repro.algorithms import GroupedKSetFromXCons, KSetReadWrite
from repro.core import plan_transfer, transfer_algorithm
from repro.model import ASM
from repro.tasks import KSetAgreementTask

from .harness import cost_row, header, run_once, write_report


def composite():
    # ASM(4, 3, 2) (wait-free 2-set via 2-consensus) -> ASM(5, 2, 2).
    src = GroupedKSetFromXCons(n=4, x=2)
    return transfer_algorithm(src, ASM(5, 2, 2))


def test_fig7_chain_cost(benchmark):
    alg = composite()
    result = benchmark.pedantic(
        lambda: run_once(alg, [1, 2, 3, 4, 5], max_steps=20_000_000),
        rounds=3, iterations=1)
    assert result.decided_pids == set(range(5))


def test_fig7_report():
    lines = header(
        "FIG7: the equivalence chain (paper Figure 7)",
        "each hop is a runnable algorithm; the task (2-set agreement)",
        "is validated at every stage")
    src = GroupedKSetFromXCons(n=4, x=2)
    target = ASM(5, 2, 2)
    lines.append(f"chain {src.model()} -> {target}:")
    for step in plan_transfer(src.model(), target):
        lines.append(f"  {step}")
    lines.append("")
    task = KSetAgreementTask(2)

    stages = [("source in ASM(4,3,2)", src, [1, 2, 3, 4])]
    from repro.core import simulate_in_read_write, bg_reduce, \
        simulate_with_xcons
    down = simulate_in_read_write(src, t=1)
    stages.append(("Section 3 -> ASM(4,1,1)", down, [1, 2, 3, 4]))
    hosted = bg_reduce(down, n_simulators=5)
    from repro.core.transfer import _with_resilience
    hosted = _with_resilience(hosted, 1)
    stages.append(("BG -> ASM(5,1,1)", hosted, [1, 2, 3, 4, 5]))
    up = simulate_with_xcons(hosted, t_prime=2, x=2)
    stages.append(("Section 4 -> ASM(5,2,2)", up, [1, 2, 3, 4, 5]))

    for label, alg, inputs in stages:
        res = run_once(alg, inputs, max_steps=20_000_000)
        verdict = task.validate_run(inputs, res)
        assert verdict.ok, f"{label}: {verdict.explain()}"
        lines.append(cost_row(f"  {label}", res))
    lines.append("")
    lines.append("note the cost amplification per nesting level: each "
                 "hop simulates the previous hop's simulators.")
    write_report("fig7_equivalence_chain", lines)
