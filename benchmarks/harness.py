"""Shared benchmark harness.

Every benchmark in this directory reproduces one artifact of the paper
(an algorithm figure, a worked table, or a lemma bound) -- see the
experiment index in DESIGN.md Section 4.  Each bench

* times a representative workload with pytest-benchmark, and
* regenerates the paper's table/series and writes it (plus the measured
  cost profile) to ``benchmarks/results/<experiment>.txt``, which
  EXPERIMENTS.md embeds.

Absolute timings are not comparable to the paper (it reports none -- it
is a theory paper); the reproduced content is the *shape*: who
terminates, what agreement holds, where the solvability frontier and the
blocking bounds fall.

Every report is written atomically (temp file + ``os.replace``) -- an
interrupted bench leaves the previous table intact, never a truncated
one for EXPERIMENTS.md to embed -- and every ``.txt`` table gets a
machine-readable ``.json`` twin (same name, versioned record schema;
see docs/observability.md).  ``benchmarks/bench_index.py`` folds the
JSON twins into ``results/BENCH_summary.json``, the seed of the
cross-PR perf trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.algorithms import Algorithm, run_algorithm
from repro.analysis import collect_stats
from repro.analysis.metrics import (METRICS_SCHEMA_VERSION, RunMetrics,
                                    atomic_write_text)
from repro.runtime import (CrashPlan, RoundRobinAdversary, RunResult,
                           SeededRandomAdversary)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(algorithm: Algorithm,
             inputs: Sequence[Any],
             seed: Optional[int] = 0,
             crash_plan: Optional[CrashPlan] = None,
             max_steps: int = 5_000_000,
             enforce_model: bool = True) -> RunResult:
    """One run with a seeded adversary (None = round robin)."""
    adversary = (RoundRobinAdversary() if seed is None
                 else SeededRandomAdversary(seed))
    return run_algorithm(algorithm, inputs, adversary=adversary,
                         crash_plan=crash_plan, max_steps=max_steps,
                         enforce_model=enforce_model)


def write_report(name: str, lines: Iterable[str],
                 data: Optional[Dict[str, Any]] = None) -> str:
    """Persist a reproduced table under benchmarks/results/.

    Writes ``<name>.txt`` atomically and a ``<name>.json`` twin
    carrying the same lines as a versioned record, plus any structured
    ``data`` the bench wants machines to read (series, ratios,
    measured counts) without parsing the prose table.
    """
    lines = list(lines)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    # Reports are regenerated on every bench run and nothing resumes
    # from them, so they opt out of the fsync pair durable writes pay
    # (atomicity -- old table or new, never torn -- is kept).
    atomic_write_text(path, "\n".join(lines) + "\n", durable=False)
    write_json(name, lines=lines, data=data)
    return path


def write_json(name: str, lines: Sequence[str],
               data: Optional[Dict[str, Any]] = None) -> str:
    """Write the machine-readable ``results/<name>.json`` record."""
    record = RunMetrics(
        kind="bench_report", name=name,
        schema_version=METRICS_SCHEMA_VERSION,
        data={
            "title": lines[0] if lines else "",
            "lines": list(lines),
            **(data or {}),
        })
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    return atomic_write_text(
        path, json.dumps(record.to_dict(), indent=2) + "\n",
        durable=False)


def cost_row(label: str, result: RunResult) -> str:
    """One formatted cost line for a run."""
    return f"{label:<44} {collect_stats(result).row()}"


def header(title: str, *subtitle: str) -> List[str]:
    lines = [title, "=" * len(title)]
    lines.extend(subtitle)
    lines.append("")
    return lines
