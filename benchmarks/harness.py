"""Shared benchmark harness.

Every benchmark in this directory reproduces one artifact of the paper
(an algorithm figure, a worked table, or a lemma bound) -- see the
experiment index in DESIGN.md Section 4.  Each bench

* times a representative workload with pytest-benchmark, and
* regenerates the paper's table/series and writes it (plus the measured
  cost profile) to ``benchmarks/results/<experiment>.txt``, which
  EXPERIMENTS.md embeds.

Absolute timings are not comparable to the paper (it reports none -- it
is a theory paper); the reproduced content is the *shape*: who
terminates, what agreement holds, where the solvability frontier and the
blocking bounds fall.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, List, Optional, Sequence

from repro.algorithms import Algorithm, run_algorithm
from repro.analysis import collect_stats
from repro.runtime import (CrashPlan, RoundRobinAdversary, RunResult,
                           SeededRandomAdversary)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(algorithm: Algorithm,
             inputs: Sequence[Any],
             seed: Optional[int] = 0,
             crash_plan: Optional[CrashPlan] = None,
             max_steps: int = 5_000_000,
             enforce_model: bool = True) -> RunResult:
    """One run with a seeded adversary (None = round robin)."""
    adversary = (RoundRobinAdversary() if seed is None
                 else SeededRandomAdversary(seed))
    return run_algorithm(algorithm, inputs, adversary=adversary,
                         crash_plan=crash_plan, max_steps=max_steps,
                         enforce_model=enforce_model)


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist a reproduced table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    return path


def cost_row(label: str, result: RunResult) -> str:
    """One formatted cost line for a run."""
    return f"{label:<44} {collect_stats(result).row()}"


def header(title: str, *subtitle: str) -> List[str]:
    lines = [title, "=" * len(title)]
    lines.extend(subtitle)
    lines.append("")
    return lines
