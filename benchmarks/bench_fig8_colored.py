"""FIG8 -- Figure 8 + Section 5.5: colored-task simulation.

Reproduced claims: under the side conditions (x' > 1,
floor(t/x) >= floor(t'/x'), n >= max(n', (n'-t')+t)), the execution of a
colored-task algorithm (strong renaming from test&set) is simulated with
*distinct* decisions allocated to the simulators via T&S[j], and every
correct simulator eventually claims one.
"""

import pytest

from repro.algorithms import RenamingFromTAS, run_algorithm
from repro.core import colored_simulation_possible, simulate_colored
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import DistinctValuesTask

from .harness import header, run_once, write_report


def build(n, t, n_prime, t_prime, x_prime):
    return simulate_colored(RenamingFromTAS(n, t=t), n_prime=n_prime,
                            t_prime=t_prime, x_prime=x_prime)


@pytest.mark.parametrize("shape", [(6, 3, 4, 1, 2), (8, 4, 5, 2, 3)])
def test_fig8_colored_cost(benchmark, shape):
    n, t, n_p, t_p, x_p = shape
    sim = build(n, t, n_p, t_p, x_p)
    result = benchmark(lambda: run_once(sim, [None] * n_p))
    values = list(result.decisions.values())
    assert len(values) == len(set(values)) == n_p


def test_fig8_report():
    lines = header(
        "FIG8: colored-task simulation (paper Section 5.5, Figure 8)",
        "renaming in ASM(n,t,2) simulated in ASM(n',t',x'); decisions",
        "must be pairwise distinct (the colored requirement)")
    lines.append(f"{'source':>14} {'target':>14} {'crashes':>8} "
                 f"{'decided':>8} {'distinct?':>9}")
    task = DistinctValuesTask()
    cases = [
        (6, 3, 4, 1, 2, {}),
        (6, 3, 4, 1, 2, {2: 8}),
        (8, 4, 5, 2, 3, {}),
        (8, 4, 5, 2, 3, {1: 5, 3: 9}),
    ]
    for n, t, n_p, t_p, x_p, crashes in cases:
        sim = build(n, t, n_p, t_p, x_p)
        res = run_algorithm(
            sim, [None] * n_p,
            adversary=SeededRandomAdversary(1),
            crash_plan=CrashPlan.at_own_step(dict(crashes)),
            max_steps=5_000_000)
        verdict = task.validate_run([None] * n_p, res,
                                    require_liveness=False)
        assert verdict.ok, verdict.explain()
        assert res.decided_pids == res.correct_pids
        lines.append(
            f"  ASM({n},{t},2) -> ASM({n_p},{t_p},{x_p}) "
            f"{len(crashes):>8} {len(res.decisions):>8} "
            f"{'yes':>9}")
    lines.append("")
    lines.append("side-condition frontier (paper's three conditions):")
    probes = [
        (ASM(6, 3, 2), ASM(4, 1, 1), "x' = 1"),
        (ASM(8, 1, 2), ASM(6, 4, 2), "floor(t/x) < floor(t'/x')"),
        (ASM(4, 3, 2), ASM(4, 1, 2), "n < (n'-t') + t"),
        (ASM(6, 3, 2), ASM(4, 1, 2), "all satisfied"),
    ]
    for src_m, dst_m, why in probes:
        ok = colored_simulation_possible(src_m, dst_m)
        lines.append(f"  {str(src_m):>14} -> {str(dst_m):<14} "
                     f"{'POSSIBLE' if ok else 'refused':<9} ({why})")
        assert ok == (why == "all satisfied")
    write_report("fig8_colored", lines)
