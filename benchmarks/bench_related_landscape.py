"""REL -- Section 1.3: the related-results landscape, regenerated.

The paper positions its theorem among four closed-form neighbors; all
are reproduced here (formulas checked over grids + the grouping
construction executed):

* Borowsky-Gafni: (n,k) from (m,l) iff n/k <= m/l;
* Herlihy-Rajsbaum: k_min = l*floor((t+1)/m) + min(l, (t+1) mod m);
* Mostefaoui-Raynal-Travers: sync rounds = floor(t/(m*floor(k/l)+(k%l)))+1;
* Gafni: floor(t/t') synchronous rounds simulatable asynchronously.
"""

import pytest

from repro.algorithms import run_algorithm
from repro.core import (GroupedKSetFromSetObjects,
                        bg_set_hierarchy_implementable,
                        gafni_simulatable_rounds, grouping_outputs,
                        herlihy_rajsbaum_min_k, mrt_sync_rounds)
from repro.runtime import SeededRandomAdversary
from repro.tasks import KSetAgreementTask

from .harness import header, run_once, write_report


@pytest.mark.parametrize("n,m,ell", [(8, 4, 2), (9, 3, 1)])
def test_rel_grouping_cost(benchmark, n, m, ell):
    algo = GroupedKSetFromSetObjects(n, m, ell)
    result = benchmark(lambda: run_once(algo, list(range(n))))
    verdict = KSetAgreementTask(algo.k).validate_run(
        list(range(n)), result)
    assert verdict.ok


def test_rel_report():
    lines = header(
        "REL: the Section 1.3 related-results landscape")

    lines.append("Borowsky-Gafni hierarchy -- (n,k) implementable from "
                 "(m,l) iff n/k <= m/l:")
    lines.append("  (n,k) \\ (m,l)   (3,1)  (4,2)  (6,2)")
    for n, k in ((6, 2), (6, 3), (8, 2)):
        row = [f"  ({n},{k})        "]
        for m, ell in ((3, 1), (4, 2), (6, 2)):
            ok = bg_set_hierarchy_implementable(n, k, m, ell)
            row.append(f"{'yes' if ok else ' - ':>7}")
        lines.append("".join(row))
    lines.append("")

    lines.append("grouping construction, executed (outputs <= "
                 "floor(n/m)*l + min(l, n mod m)):")
    for n, m, ell in ((6, 3, 1), (7, 3, 2), (8, 4, 2), (9, 3, 1)):
        algo = GroupedKSetFromSetObjects(n, m, ell)
        res = run_once(algo, list(range(n)), seed=2)
        k = grouping_outputs(n, m, ell)
        distinct = len(res.decided_values)
        assert distinct <= k
        lines.append(f"  n={n} (m,l)=({m},{ell}): bound k={k}, "
                     f"measured distinct={distinct}")
    lines.append("")

    lines.append("Herlihy-Rajsbaum k_min(t, m, l) "
                 "(rows t, cols (m,l)):")
    shapes = [(1, 1), (2, 1), (3, 1), (3, 2)]
    lines.append("   t  " + "".join(f"{f'({m},{l})':>7}"
                                    for m, l in shapes))
    for t in range(0, 7):
        cells = [f"{herlihy_rajsbaum_min_k(t, m, l):>7}"
                 for m, l in shapes]
        lines.append(f"  {t:>2}  " + "".join(cells))
    lines.append("  ((m,1) columns reproduce the paper's floor(t/m)+1 "
                 "frontier)")
    lines.append("")

    lines.append("Mostefaoui-Raynal-Travers synchronous rounds "
                 "(t = 6):")
    for k, m, ell in ((1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 3, 2)):
        lines.append(f"  k={k}, (m,l)=({m},{ell}): "
                     f"{mrt_sync_rounds(6, k, m, ell)} rounds")
    lines.append("")

    lines.append("Gafni's dividing power (rounds of a t-resilient "
                 "synchronous algorithm simulatable with t' crashes):")
    lines.append("   t\\t'   1    2    3")
    for t in (3, 6, 9):
        lines.append("  " + f"{t:>3}  " + "".join(
            f"{gafni_simulatable_rounds(t, tp):>5}" for tp in (1, 2, 3)))
    lines.append("")
    lines.append("asynchrony DIVIDES rounds by t'; consensus number x "
                 "MULTIPLIES tolerable crashes by x -- the two faces the "
                 "paper's title alludes to.")
    write_report("related_landscape", lines)
