"""ABD -- the message-passing foundation of the ASM model.

The paper's ASM(n, t, x) presumes atomic registers.  ABD (Attiya-Bar-
Noy-Dolev) grounds them: atomic registers exist in asynchronous message
passing iff a majority of processes is correct.  Reproduced claims:

* every generated history is linearizable, under adversarial delivery
  and up to t < n/2 crashes (validated by the exhaustive small-history
  checker);
* the cost profile: ~2n messages per write, ~4n per read (two quorum
  round trips: query + write-back);
* liveness dies exactly when the quorum does.
"""

import pytest

from repro.analysis import RegisterSpec, check_linearizable
from repro.messaging import MessageCrash, ReadOp, WriteOp, run_abd

from .harness import header, write_report

SCRIPTS = {
    "1w2r": lambda n: [[WriteOp("a"), WriteOp("b")],
                       [ReadOp(), ReadOp()],
                       [ReadOp()]] + [[] for _ in range(n - 3)],
}


@pytest.mark.parametrize("n", [3, 5, 7])
def test_abd_cost(benchmark, n):
    t = (n - 1) // 2

    def once():
        return run_abd(n, t, writer=0, scripts=SCRIPTS["1w2r"](n),
                       seed=3)

    result, history = benchmark(once)
    assert not result.stalled
    assert check_linearizable(history, RegisterSpec())


def test_abd_report():
    lines = header(
        "ABD: atomic registers from asynchronous messages "
        "(the substrate under ASM's registers)",
        "2 writes + 3 reads; deliveries counted per run; histories",
        "checked linearizable under 10 adversarial delivery orders")
    lines.append(f"{'n':>3} {'t':>3} {'deliveries':>11} "
                 f"{'per op':>7} {'linearizable':>13}")
    for n in (3, 4, 5, 7, 9):
        t = (n - 1) // 2
        total = 0
        for seed in range(10):
            res, hist = run_abd(n, t, writer=0,
                                scripts=SCRIPTS["1w2r"](n), seed=seed)
            assert not res.stalled
            assert check_linearizable(hist, RegisterSpec())
            total += res.delivered
        lines.append(f"{n:>3} {t:>3} {total // 10:>11} "
                     f"{total // 10 // 5:>7} {'yes':>13}")
    lines.append("")
    lines.append("quorum-loss frontier (n = 4, t = 1, quorum = 3):")
    res, _ = run_abd(4, 1, writer=0,
                     scripts=[[WriteOp("a")], [ReadOp()], [], []],
                     crashes=[MessageCrash(3, after_events=0)], seed=1)
    lines.append(f"  1 replica down  -> completes "
                 f"({len(res.decisions)} clients decided)")
    assert not res.stalled
    res, _ = run_abd(4, 1, writer=0,
                     scripts=[[WriteOp("a")], [ReadOp()], [], []],
                     crashes=[MessageCrash(2, after_events=0),
                              MessageCrash(3, after_events=0)],
                     max_events=5_000)
    lines.append("  2 replicas down -> stalls forever (no quorum): "
                 "registers exist exactly while majorities survive")
    assert not res.decisions
    write_report("abd_bridge", lines)
