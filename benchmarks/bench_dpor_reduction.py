"""DPOR schedule-space reduction on the paper's agreement objects.

Naive exhaustive exploration enumerates every interleaving --
O(branching^depth) prefix replays.  Dynamic partial-order reduction
explores one representative per Mazurkiewicz trace (schedules equivalent
up to commuting independent steps).  Reproduced claims:

* soundness: naive and DPOR observe exactly the same set of terminal
  states (statuses + decisions) on every configuration both can finish;
* the reduction: on 3-process safe-agreement DPOR explores well under
  25% of naive's schedules (measured: ~1.4%).

The headline naive measurement (3-process safe-agreement, ~219k runs)
takes a couple of minutes, so the full report regeneration is marked
``slow``; the committed ``results/dpor_reduction.txt`` embeds the
numbers.
"""

import pytest

from repro.runtime import explore
from repro.scenarios import check_scenarios

from .harness import header, write_report


def _terminal_states(sc, reduction, max_runs=500_000):
    seen = set()

    def record(result):
        sc.check(result)
        seen.add((frozenset(result.statuses.items()),
                  frozenset(result.decisions.items()),
                  result.deadlocked))

    stats = explore(sc.build, record,
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=sc.max_steps, max_runs=max_runs,
                    reduction=reduction)
    return seen, stats


def _compare(sc):
    """(naive_states, naive_stats, dpor_states, dpor_stats) for one
    scenario; asserts the terminal-state sets agree."""
    naive_states, naive_stats = _terminal_states(sc, "naive")
    dpor_states, dpor_stats = _terminal_states(sc, "dpor")
    assert dpor_states == naive_states, sc.name
    return naive_states, naive_stats, dpor_states, dpor_stats


def test_dpor_bench(benchmark):
    """Time one full DPOR sweep of 3-process adopt-commit."""
    sc = check_scenarios(n=3)["adopt-commit"]
    stats = benchmark(lambda: _terminal_states(sc, "dpor")[1])
    assert stats.complete_runs > 0
    assert stats.pruned_runs > 0


def test_dpor_acceptance_fast():
    """The cheap half of the acceptance bar, suitable for every run.

    Terminal-state equality is checked against naive ground truth on
    2-process safe-agreement; the n=3 reduction bound uses DPOR's own
    pruning counter (a lower bound on the saving, no naive run needed).
    """
    sc2 = check_scenarios(n=2)["safe-agreement"]
    _, naive_stats, _, dpor_stats = _compare(sc2)
    assert dpor_stats.complete_runs < naive_stats.complete_runs

    sc3 = check_scenarios(n=3)["safe-agreement"]
    _, stats3 = _terminal_states(sc3, "dpor")
    assert stats3.reduction_ratio <= 0.25


@pytest.mark.slow
def test_dpor_reduction_report():
    """Full naive-vs-DPOR comparison; regenerates the results table.

    The 3-process safe-agreement naive sweep alone replays ~219k
    schedules (about two minutes).
    """
    scenarios = {
        "safe-agreement (n=2)": check_scenarios(n=2)["safe-agreement"],
        "safe-agreement (n=3)": check_scenarios(n=3)["safe-agreement"],
        "adopt-commit (n=3)": check_scenarios(n=3)["adopt-commit"],
        "x-safe-agreement (n=3, x=2, 1 crash)":
            check_scenarios(n=3, x=2)["x-safe-agreement"],
        "queue-2cons (n=2)": check_scenarios()["queue-2cons"],
    }
    lines = header(
        "Dynamic partial-order reduction: schedules explored, "
        "naive vs DPOR",
        "Both engines check the same safety property on every complete",
        "run and must observe identical terminal-state sets ('states').",
        "ratio = dpor / naive runs; the acceptance bar for 3-process",
        "safe-agreement is <= 0.25.")
    lines.append(f"{'scenario':<38} {'naive':>8} {'dpor':>7} "
                 f"{'ratio':>7} {'states':>7}")
    table = []
    for label, sc in scenarios.items():
        states, naive_stats, _, dpor_stats = _compare(sc)
        ratio = dpor_stats.total_runs / naive_stats.total_runs
        table.append({"scenario": label,
                      "naive_runs": naive_stats.total_runs,
                      "dpor_runs": dpor_stats.total_runs,
                      "ratio": ratio, "states": len(states)})
        lines.append(f"{label:<38} {naive_stats.total_runs:>8} "
                     f"{dpor_stats.total_runs:>7} {ratio:>7.4f} "
                     f"{len(states):>7}")
        if "safe-agreement (n=3)" == label:
            assert ratio <= 0.25, f"reduction bar missed: {ratio}"
    lines.append("")
    lines.append("DPOR's own pruned-branch counters (lower bounds on "
                 "the saving):")
    for label, sc in scenarios.items():
        _, stats = _terminal_states(sc, "dpor")
        lines.append(f"  {label:<36} {stats}")
    path = write_report("dpor_reduction", lines, data={"table": table})
    assert path.endswith("dpor_reduction.txt")
