"""Hot-path acceleration: the DPOR state cache on x-safe-agreement.

The prefix-equivalence state cache (``docs/performance.md``) lets DPOR
recognise already-expanded states by canonical fingerprint and fold the
redundant subtree instead of re-executing it.  This bench measures what
that buys on the paper's own object -- Figure 6 x-safe-agreement under
one mid-propose crash -- at n=3 and n=4:

* *executed runs*: schedules actually replayed (``total_runs`` minus
  ``cache_skipped_runs``).  This is the quantity the cache exists to
  shrink, and the acceptance bar: >= 10x fewer executed runs at n=4.
* *wall clock and runs/sec*: reported honestly.  At these sizes a
  replayed run costs microseconds while fingerprinting a state costs
  canonicalisation work, so the cache can LOSE wall-clock time here;
  the executed-run ratio is the machine-independent signal, and the
  wall-clock payoff arrives when a run is expensive (deeper scenarios,
  costly checks), not on microbenchmarks.

Both modes must agree on ``ExplorationStats`` bit-for-bit -- the same
guarantee the ``cache`` test tier (``pytest -m cache``) locks down on
every registry scenario.
"""

from time import perf_counter

from repro.analysis.metrics import ExplorationMetrics
from repro.runtime import explore
from repro.scenarios import build_scenario

from .harness import header, write_report

#: Acceptance bar: executed-run reduction at the n=4 size.
MIN_EXECUTED_RUN_REDUCTION = 10.0


def _sweep(n, state_cache):
    """One full DPOR sweep; returns (stats, executed_runs, seconds)."""
    sc = build_scenario("x-safe-agreement", n=n, x=2)
    metrics = ExplorationMetrics(scenario=sc.name, engine="dpor")
    start = perf_counter()
    stats = explore(sc.build, sc.check,
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=sc.max_steps, max_runs=sc.max_runs,
                    reduction="dpor", state_cache=state_cache,
                    metrics=metrics)
    elapsed = perf_counter() - start
    executed = stats.total_runs - metrics.cache_skipped_runs
    return stats, executed, elapsed


def test_hot_path_bench(benchmark):
    """Time the cached n=3 sweep (the CLI's default configuration)."""
    stats = benchmark(lambda: _sweep(3, state_cache=True)[0])
    assert stats.complete_runs > 0


def test_hot_path_report():
    """Cache-on vs cache-off at n=3 and n=4; regenerates the table."""
    rows = []
    for n in (3, 4):
        off_stats, off_executed, off_secs = _sweep(n, state_cache=False)
        on_stats, on_executed, on_secs = _sweep(n, state_cache=True)
        assert on_stats == off_stats, \
            f"n={n}: cache changed the merged statistics"
        assert off_executed == off_stats.total_runs
        rows.append((n, off_stats, off_executed, off_secs,
                     on_executed, on_secs))

    lines = header(
        "DPOR state-cache hot path: x-safe-agreement (x=2, 1 crash)",
        "Executed runs = schedules actually replayed (cache-on folds",
        "the rest as proven-equivalent subtrees).  ExplorationStats are",
        "asserted identical between modes; wall clock is reported",
        "as measured and may favor cache-off at these tiny run costs.")
    lines.append(f"{'n':>3} {'total_runs':>11} {'exec_off':>9} "
                 f"{'exec_on':>8} {'exec_ratio':>10} {'t_off_s':>8} "
                 f"{'t_on_s':>7} {'runs/s_off':>10} {'runs/s_on':>10}")
    series = []
    for n, stats, off_exec, off_secs, on_exec, on_secs in rows:
        ratio = off_exec / on_exec if on_exec else float("inf")
        rate_off = stats.total_runs / off_secs if off_secs > 0 else 0.0
        rate_on = stats.total_runs / on_secs if on_secs > 0 else 0.0
        series.append({
            "n": n, "total_runs": stats.total_runs,
            "executed_runs_off": off_exec, "executed_runs_on": on_exec,
            "executed_run_reduction": ratio,
            "seconds_off": off_secs, "seconds_on": on_secs,
        })
        lines.append(f"{n:>3} {stats.total_runs:>11} {off_exec:>9} "
                     f"{on_exec:>8} {ratio:>9.1f}x {off_secs:>8.2f} "
                     f"{on_secs:>7.2f} {rate_off:>10.0f} "
                     f"{rate_on:>10.0f}")
        if n == 4:
            assert ratio >= MIN_EXECUTED_RUN_REDUCTION, \
                (f"n=4 executed-run reduction "
                 f"{ratio:.1f}x < {MIN_EXECUTED_RUN_REDUCTION}x")
    path = write_report("hot_path", lines,
                        data={"min_executed_run_reduction":
                              MIN_EXECUTED_RUN_REDUCTION,
                              "series": series})
    assert path.endswith("hot_path.txt")
