"""ABL2 -- ablation: the busy-wait protocol of the translator.

A simulated busy-wait re-executes its snapshot, and each re-execution is
a fresh safe-agreement among the simulators.  The translator's wait
protocol (repro.bg.translate) parks a waiting thread on read-only spins
until the simulators' memory changes, instead of re-agreeing eagerly.

Measured effects:
* agreement-instance count and step count on a contended waiting
  workload (kset_rw processes waiting for n-t inputs);
* observability: with a *permanently* blocked simulated process, the
  eager variant burns the whole step budget while the wait protocol ends
  in a clean detected deadlock.
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import KSetReadWrite, run_algorithm
from repro.core import SimulationAlgorithm
from repro.runtime import (CrashPlan, CrashPoint, SeededRandomAdversary,
                           op_on)

from .harness import header, write_report


def build(n, t, eager):
    src = KSetReadWrite(n=n, t=t, k=t + 1)
    return SimulationAlgorithm(
        src, n_simulators=n, resilience=t,
        snap_agreement=SafeAgreementFactory(n),
        eager_spin=eager, label="abl-spin")


def waiting_workload(eager, seed=3):
    """One simulator crashes before writing: others wait for n-t inputs."""
    sim = build(4, 1, eager)
    return run_algorithm(sim, [1, 2, 3, 4],
                         adversary=SeededRandomAdversary(seed),
                         crash_plan=CrashPlan.initially_dead([0]),
                         max_steps=2_000_000)


def blocked_workload(eager):
    """Consensus source (t=0 needs ALL inputs) + one input agreement
    killed: the simulated processes can never proceed."""
    sim = build(4, 0, eager)
    plan = CrashPlan({0: CrashPoint(
        before_matching=op_on("SAFE_AG", "write"), occurrence=2)})
    return run_algorithm(sim, [1, 2, 3, 4], crash_plan=plan,
                         max_steps=60_000, enforce_model=False)


@pytest.mark.parametrize("eager", [False, True])
def test_ablation_spin_cost(benchmark, eager):
    result = benchmark.pedantic(lambda: waiting_workload(eager),
                                rounds=3, iterations=1)
    assert result.decided_pids == {1, 2, 3}


def test_ablation_spin_report():
    lines = header(
        "ABL2: busy-wait protocol ablation",
        "wait = park on read-only spins until MEM changes (default);",
        "eager = re-run the snapshot agreement on every failed check")
    lines.append("contended-wait workload (kset_rw t=1, one initially "
                 "dead simulator):")
    lines.append(f"  {'variant':<8} {'steps':>8} {'SAFE_AG instances':>18}")
    counts = {}
    for eager, label in ((False, "wait"), (True, "eager")):
        res = waiting_workload(eager)
        assert res.decided_pids == {1, 2, 3}
        instances = res.store["SAFE_AG"].instance_count
        counts[label] = (res.steps, instances)
        lines.append(f"  {label:<8} {res.steps:>8} {instances:>18}")
    lines.append("")
    lines.append("permanently blocked workload (consensus source, one "
                 "dead input agreement):")
    for eager, label in ((False, "wait"), (True, "eager")):
        res = blocked_workload(eager)
        outcome = ("clean deadlock detected" if res.deadlocked else
                   "step budget exhausted" if res.out_of_steps else
                   "completed?!")
        if eager:
            assert res.out_of_steps
        else:
            assert res.deadlocked
        lines.append(f"  {label:<8} -> {outcome} "
                     f"(steps={res.steps}, agreements="
                     f"{res.store['SAFE_AG'].instance_count})")
    lines.append("")
    lines.append("the wait protocol turns an undetectable livelock into "
                 "a detected deadlock and keeps the agreement-instance "
                 "count bounded by actual progress.")
    write_report("ablation_spin_wait", lines)
