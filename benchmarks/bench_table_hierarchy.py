"""TAB2 -- Section 5.4: the model hierarchy / solvability frontier.

Reproduced claims:
* a task with set consensus number k is solvable in ASM(n, t', x) iff
  k > floor(t'/x) -- swept over a (t', x) grid, with the possibility side
  executed via the Section 4 construction;
* the frontier's closed forms: t'_max = k*x - 1 for fixed x, and
  x_min = ceil((t'+1)/k) for fixed t'.
"""

import pytest

from repro.algorithms import KSetReadWrite
from repro.core import (kset_solvable, max_xcons_resilience,
                        min_x_for_resilience, simulate_with_xcons)
from repro.model import ASM
from repro.runtime import CrashPlan
from repro.tasks import KSetAgreementTask

from .harness import header, run_once, write_report

N = 9


def solver(t_prime, x, k):
    src = KSetReadWrite(n=N, t=t_prime // x, k=k)
    return src if x == 1 else simulate_with_xcons(src, t_prime=t_prime,
                                                  x=x)


@pytest.mark.parametrize("t_prime,x", [(4, 2), (6, 3)])
def test_tab2_frontier_point_cost(benchmark, t_prime, x):
    k = t_prime // x + 1
    alg = solver(t_prime, x, k)
    result = benchmark.pedantic(
        lambda: run_once(alg, list(range(N)), max_steps=20_000_000),
        rounds=2, iterations=1)
    verdict = KSetAgreementTask(k).validate_run(list(range(N)), result)
    assert verdict.ok


def test_tab2_report():
    lines = header(
        "TAB2: solvability frontier -- k-set agreement in ASM(n, t', x)",
        f"n = {N}.  Cell = smallest solvable k (the set-consensus class",
        "boundary); paper: k > floor(t'/x).  Starred cells were executed",
        "via the Section 4 construction under t' crashes.")
    xs = list(range(1, 5))
    lines.append("  t'\\x " + "".join(f"{x:>6}" for x in xs))
    executed = set()
    for t_prime in range(0, 8):
        row = [f"{t_prime:>5} "]
        for x in xs:
            k_min = t_prime // x + 1
            # analytic check both sides of the frontier:
            assert kset_solvable(ASM(N, t_prime, x), k_min)
            if k_min > 1:
                assert not kset_solvable(ASM(N, t_prime, x), k_min - 1)
            star = ""
            if (t_prime, x) in ((2, 1), (3, 2), (5, 2), (6, 3), (7, 4)):
                alg = solver(t_prime, x, k_min)
                victims = {v: 3 + 2 * v for v in range(t_prime)}
                res = run_once(alg, list(range(N)),
                               crash_plan=CrashPlan.at_own_step(victims),
                               max_steps=20_000_000)
                verdict = KSetAgreementTask(k_min).validate_run(
                    list(range(N)), res)
                assert verdict.ok, f"(t'={t_prime}, x={x})"
                star = "*"
                executed.add((t_prime, x))
            row.append(f"{f'{k_min}{star}':>6}")
        lines.append("".join(row))
    lines.append("")
    lines.append(f"executed cells: {sorted(executed)}")
    lines.append("")
    lines.append("closed forms (spot checks):")
    for k, x in ((2, 3), (3, 2), (1, 4)):
        t_max = max_xcons_resilience(k, x)
        assert kset_solvable(ASM(t_max + 2, t_max, x), k)
        assert not kset_solvable(ASM(t_max + 3, t_max + 1, x), k)
        lines.append(f"  k={k}, x={x}: max t' = k*x - 1 = {t_max}")
    for k, t_prime in ((3, 8), (2, 5)):
        x_min = min_x_for_resilience(k, t_prime)
        lines.append(f"  k={k}, t'={t_prime}: min x = ceil((t'+1)/k) = "
                     f"{x_min}")
    write_report("table_hierarchy", lines)
