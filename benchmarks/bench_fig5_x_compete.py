"""FIG5 -- Figure 5: the x_compete() owner election.

Reproduced claims: at most x winners; with <= x invokers every correct
invoker wins; a loser costs exactly x test&set steps.
"""

import pytest

from repro.agreement import x_compete
from repro.memory import ObjectStore, TASFamily
from repro.runtime import (CrashPlan, ObjectProxy, SeededRandomAdversary,
                           run_processes)

from .harness import header, write_report

TS = ObjectProxy("TS")


def competition(n, x, seed=0, crash_plan=None):
    store = ObjectStore()
    store.add(TASFamily("TS"))

    def competitor(i):
        won = yield from x_compete(TS, "k", x, i)
        return won

    res = run_processes({i: competitor(i) for i in range(n)}, store,
                        adversary=SeededRandomAdversary(seed),
                        crash_plan=crash_plan)
    return res


@pytest.mark.parametrize("n,x", [(8, 2), (8, 4), (16, 4)])
def test_fig5_competition_cost(benchmark, n, x):
    result = benchmark(lambda: competition(n, x))
    winners = sum(1 for won in result.decisions.values() if won)
    assert winners == x


def test_fig5_report():
    lines = header(
        "FIG5: x_compete (paper Figure 5)",
        "winners per (n invokers, x slots), across 10 random schedules")
    lines.append(f"{'n':>3} {'x':>3} {'winners (min..max)':>19} "
                 f"{'claim':>22}")
    for n, x in ((2, 2), (4, 2), (8, 2), (8, 4), (8, 8), (16, 4)):
        winners = []
        for seed in range(10):
            res = competition(n, x, seed=seed)
            winners.append(sum(1 for w in res.decisions.values() if w))
        claim = f"= min(n, x) = {min(n, x)}"
        assert all(w == min(n, x) for w in winners)
        lines.append(f"{n:>3} {x:>3} {min(winners):>9}..{max(winners):<8} "
                     f"{claim:>22}")
    lines.append("")
    lines.append("with <= x invokers, correct invokers all win even if "
                 "one crashes holding a slot:")
    res = competition(3, 3, crash_plan=CrashPlan.at_own_step({1: 2}))
    survivors = {pid: won for pid, won in res.decisions.items()}
    assert all(survivors.values())
    lines.append(f"  n=3 x=3, p1 crashes after winning: "
                 f"survivors {sorted(survivors)} all won")
    write_report("fig5_x_compete", lines)
