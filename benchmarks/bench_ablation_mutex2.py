"""ABL1 -- ablation: per-object mutex2 vs the paper's literal Figure 4.

Finding F1 (EXPERIMENTS.md): Figure 4 as written holds ONE global mutex2
across sa_decide(); when an XSAFE_AG object dies (its proposer crashed
mid-propose), the thread stuck deciding it holds mutex2 forever and every
other simulated object operation of that simulator stalls behind it --
the blocking exceeds Lemma 1's tau*x bound.  The per-object mutex2
refinement restores the bound.  This bench reproduces the failing
execution under both variants.
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import GroupedKSetFromXCons, run_algorithm
from repro.analysis import blocking_certificate
from repro.bg import CollectAllPolicy, FirstDecisionPolicy
from repro.core import SimulationAlgorithm
from repro.runtime import (CrashPlan, CrashPoint, SeededRandomAdversary,
                           op_on)

from .harness import header, write_report


def build(n, x, per_object, policy=FirstDecisionPolicy):
    src = GroupedKSetFromXCons(n=n, x=x)
    return SimulationAlgorithm(
        src, n_simulators=n, resilience=(n - 1) // x,
        snap_agreement=SafeAgreementFactory(n),
        obj_agreement=SafeAgreementFactory(n, family_name="XSAFE_AG"),
        policy_class=policy,
        per_object_mutex2=per_object,
        label="abl-mutex2")


def scenario(per_object, policy=FirstDecisionPolicy):
    """The F1 execution: q0 crashes mid-propose on group 0's XSAFE_AG."""
    sim = build(4, 2, per_object, policy)
    plan = CrashPlan({0: CrashPoint(
        before_matching=op_on("XSAFE_AG", "write"), occurrence=2)})
    return run_algorithm(sim, [10, 20, 30, 40],
                         adversary=SeededRandomAdversary(99),
                         crash_plan=plan, max_steps=2_000_000)


@pytest.mark.parametrize("per_object", [True, False])
def test_ablation_mutex2_cost(benchmark, per_object):
    result = benchmark.pedantic(lambda: scenario(per_object),
                                rounds=3, iterations=1)
    if per_object:
        assert result.decided_pids == {1, 2, 3}


def test_ablation_mutex2_report():
    lines = header(
        "ABL1: mutex2 scope ablation (finding F1)",
        "scenario: n=4, x=2, q0 crashes inside group 0's XSAFE_AG",
        "propose; group 1 is untouched and should still decide")
    for per_object, label in ((False, "global mutex2 (paper Figure 4, "
                                      "literal)"),
                              (True, "per-object mutex2 (refined)")):
        res = scenario(per_object)
        lines.append(f"  {label}:")
        lines.append(f"      {res.summary()}")
        cert_res = scenario(per_object, policy=CollectAllPolicy)
        cert = blocking_certificate(cert_res, 4, 4)
        holds = cert.lemma1_holds(2)
        lines.append(f"      Lemma 1 (blocked <= tau*x = 2): "
                     f"max_blocked={cert.max_blocked} -> "
                     f"{'HOLDS' if holds else 'VIOLATED'}")
        if per_object:
            assert res.decided_pids == {1, 2, 3}
            assert holds
        else:
            assert res.deadlocked and not res.decisions
            assert not holds
    lines.append("")
    lines.append("with the global mutex2, the thread stuck deciding the "
                 "dead object holds the simulator's only mutex2, so "
                 "group 1's consensus is never simulated: every live "
                 "simulator blocks and Lemma 1's accounting fails.  "
                 "The per-object refinement confines the damage to the "
                 "<= x processes of the dead object, as the lemma "
                 "requires.")
    write_report("ablation_mutex2", lines)
