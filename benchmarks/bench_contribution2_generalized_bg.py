"""C2 -- Contribution #2: the generalized BG reduction
ASM(n, t, x) -> ASM(t+1, t, x).

Reproduced claim (paper Section 5.2): any colorless task solvable in
ASM(n, t, x) is solvable in ASM(t+1, t, x) -- "the case x = 1 does
correspond to the BG simulation".  The bench runs the composed reduction
(Section 3 inside Section 4 with t+1 simulators) and checks the x = 1
degenerate case is the classic BG shape.
"""

import pytest

from repro.algorithms import GroupedKSetFromXCons, KSetReadWrite
from repro.core import generalized_bg_reduce
from repro.model import ASM
from repro.runtime import CrashPlan
from repro.tasks import KSetAgreementTask

from .harness import cost_row, header, run_once, write_report


def build(n, x, t):
    src = GroupedKSetFromXCons(n=n, x=x)
    src.resilience = t
    return generalized_bg_reduce(src), src.k


def test_c2_cost(benchmark):
    g, k = build(6, 2, 4)
    result = benchmark.pedantic(
        lambda: run_once(g, list(range(g.n)), max_steps=40_000_000),
        rounds=2, iterations=1)
    verdict = KSetAgreementTask(k).validate_run(list(range(g.n)), result)
    assert verdict.ok


def test_c2_report():
    lines = header(
        "C2: generalized BG reduction ASM(n,t,x) -> ASM(t+1,t,x) "
        "(paper contribution #2 / Section 5.2)")
    lines.append("x = 1 degenerates to the classic BG simulation:")
    classic = generalized_bg_reduce(KSetReadWrite(n=6, t=2, k=3), x=1)
    assert classic.model() == ASM(3, 2, 1)
    res = run_once(classic, [1, 2, 3])
    verdict = KSetAgreementTask(3).validate_run([1, 2, 3], res)
    assert verdict.ok
    lines.append(cost_row("  ASM(6,2,1) -> ASM(3,2,1)", res))
    lines.append("")
    lines.append("x > 1 reductions (run wait-free, with t crashes):")
    for n, x, t in ((6, 2, 4), (6, 3, 4)):
        g, k = build(n, x, t)
        assert g.model() == ASM(t + 1, t, x)
        res = run_once(g, list(range(t + 1)), max_steps=40_000_000)
        verdict = KSetAgreementTask(k).validate_run(
            list(range(t + 1)), res)
        assert verdict.ok, verdict.explain()
        lines.append(cost_row(
            f"  ASM({n},{t},{x}) -> ASM({t + 1},{t},{x}), k={k}", res))
        victims = {v: 5 + 3 * v for v in range(t)}
        res = run_once(g, list(range(t + 1)),
                       crash_plan=CrashPlan.at_own_step(victims),
                       max_steps=40_000_000)
        verdict = KSetAgreementTask(k).validate_run(
            list(range(t + 1)), res)
        assert verdict.ok, verdict.explain()
        lines.append(cost_row(
            f"  ... same, with {t} simulator crashes", res))
    write_report("contribution2_generalized_bg", lines)
