"""TAB1 -- Section 5.4: the equivalence-class partition (t' = 8 example).

Reproduced claims, analytically AND empirically:
* the paper's verbatim partition for t' = 8:
  x=1 ~ ASM(n,8,1); x=2 ~ ASM(n,4,1); x in 3..4 ~ ASM(n,2,1);
  x in 5..8 ~ ASM(n,1,1); x in 9..n ~ ASM(n,0,1);
* each class's canonical resilience is *achieved*: k-set agreement with
  k = index+1 runs to completion in a representative model of the class
  under t' crashes, while k = index is refused by the construction.
"""

import pytest

from repro.algorithms import KSetReadWrite
from repro.core import (equivalence_classes, kset_solvable, partition_table,
                        simulate_with_xcons)
from repro.model import ASM
from repro.runtime import CrashPlan
from repro.tasks import KSetAgreementTask

from .harness import header, run_once, write_report

N, T_PRIME = 12, 8

#: The paper's worked partition for t' = 8 (Section 5.4), verbatim.
PAPER_CLASSES = {
    (1, 1): 8,
    (2, 2): 4,
    (3, 4): 2,
    (5, 8): 1,
    (9, 12): 0,
}


def representative_run(x, index):
    """Solve (index+1)-set agreement in ASM(n, 8, x) via the paper's
    construction, under 8 crashes, and return the run result."""
    k = index + 1
    src = KSetReadWrite(n=N, t=index, k=k)
    alg = src if x == 1 else simulate_with_xcons(src, t_prime=T_PRIME, x=x)
    victims = {v: 3 + 2 * v for v in range(T_PRIME)}
    return run_once(alg, list(range(N)),
                    crash_plan=CrashPlan.at_own_step(victims),
                    max_steps=20_000_000), k


@pytest.mark.parametrize("x,index", [(2, 4), (4, 2), (8, 1)])
def test_tab1_class_representative_cost(benchmark, x, index):
    result, k = benchmark.pedantic(
        lambda: representative_run(x, index), rounds=2, iterations=1)
    verdict = KSetAgreementTask(k).validate_run(list(range(N)), result)
    assert verdict.ok, verdict.explain()


def test_tab1_report():
    lines = header(
        "TAB1: equivalence classes of ASM(n, t'=8, x) "
        "(paper Section 5.4 worked example)",
        f"n = {N}; empirical column: (index+1)-set agreement solved in a",
        "class representative under 8 crashes via the Section 4 "
        "construction")
    # analytic partition must equal the paper's verbatim table.
    computed = {c.x_range: c.canonical_t
                for c in equivalence_classes(N, T_PRIME)}
    assert computed == PAPER_CLASSES
    lines.append(partition_table(N, T_PRIME))
    lines.append("")
    lines.append(f"{'class (x range)':>16} {'canonical':>12} "
                 f"{'k solved':>9} {'steps':>9} {'k refused':>10}")
    for cls in equivalence_classes(N, T_PRIME):
        x = cls.x_range[0]
        index = cls.index
        res, k = representative_run(x, index)
        verdict = KSetAgreementTask(k).validate_run(list(range(N)), res)
        assert verdict.ok, f"x={x}: {verdict.explain()}"
        refused = "-"
        if index >= 1:
            # the construction cannot be instantiated at k = index
            assert not kset_solvable(ASM(N, T_PRIME, x), index)
            refused = f"k={index}"
        lo, hi = cls.x_range
        lines.append(f"{f'{lo}..{hi}':>16} {f'ASM(n,{index},1)':>12} "
                     f"{f'k={k}':>9} {res.steps:>9} {refused:>10}")
    write_report("table_equivalence_classes", lines)
