"""FIG4 -- Figure 4: simulating x_cons_propose() through safe-agreement.

Reproduced claims:
* every simulator obtains the same decided value per simulated consensus
  object (Lemma 4), with exactly one XSAFE_AG agreement per object;
* Lemma 1's accounting: a simulator crash inside an XSAFE_AG propose
  blocks the <= x simulated processes of that object and nothing else
  (requires the per-object mutex2 refinement -- finding F1).
"""

import pytest

from repro.agreement import SafeAgreementFactory
from repro.algorithms import GroupedKSetFromXCons, run_algorithm
from repro.analysis import blocking_certificate
from repro.bg import CollectAllPolicy
from repro.core import SimulationAlgorithm, simulate_in_read_write
from repro.runtime import CrashPlan, CrashPoint, op_on

from .harness import header, run_once, write_report


def build(n, x, t):
    return simulate_in_read_write(GroupedKSetFromXCons(n=n, x=x), t=t)


@pytest.mark.parametrize("n,x", [(4, 2), (6, 2), (6, 3)])
def test_fig4_simulation_cost(benchmark, n, x):
    sim = build(n, x, (n - 1) // x)
    result = benchmark(lambda: run_once(sim, list(range(n))))
    assert result.decided_pids == set(range(n))


def collectall(n, x):
    src = GroupedKSetFromXCons(n=n, x=x)
    factory = SafeAgreementFactory(n)
    return SimulationAlgorithm(
        src, n_simulators=n, resilience=(n - 1) // x,
        snap_agreement=factory,
        obj_agreement=SafeAgreementFactory(n, family_name="XSAFE_AG"),
        policy_class=CollectAllPolicy, label="fig4")


def test_fig4_report():
    lines = header(
        "FIG4: x_cons_propose simulation (paper Figure 4)",
        "one XSAFE_AG agreement per simulated consensus object; a crash",
        "inside it blocks exactly that object's <= x processes (Lemma 1)")
    lines.append(f"{'n':>3} {'x':>3} {'objects':>8} {'XSAFE_AG':>9} "
                 f"{'agree?':>7}")
    for n, x in ((4, 2), (6, 2), (6, 3), (8, 4)):
        sim = build(n, x, (n - 1) // x)
        res = run_once(sim, list(range(n)))
        xs = res.store["XSAFE_AG"]
        objects = -(-n // x)
        lines.append(f"{n:>3} {x:>3} {objects:>8} "
                     f"{xs.instance_count:>9} "
                     f"{str(len(res.decided_values) <= objects):>7}")
        assert xs.instance_count == objects
    lines.append("")
    lines.append("Lemma 1 blocking (crash one simulator inside the "
                 "XSAFE_AG propose of group 0):")
    for n, x in ((4, 2), (6, 2), (6, 3)):
        sim = collectall(n, x)
        plan = CrashPlan({0: CrashPoint(
            before_matching=op_on("XSAFE_AG", "write"), occurrence=2)})
        res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                            max_steps=2_000_000)
        cert = blocking_certificate(res, n, n)
        assert cert.lemma1_holds(x), cert.summary()
        lines.append(f"  n={n} x={x}: tau=1 crash -> max_blocked="
                     f"{cert.max_blocked} (bound tau*x = {x}); "
                     f"min_completed={cert.min_completed} "
                     f"(bound n - t'*1 >= {n - (n - 1)})")
    write_report("fig4_xcons_sim", lines)
