"""Static footprint analysis: whole-tree inference cost and coverage.

The F501 pass abstractly interprets every ``op_*`` handler of every
shared-object class in the tree and checks the inferred read/write
footprints against the declared ones (docs/static_analysis.md) -- the
static half of the DPOR soundness pin, complementing the dynamic
auditor.  Reproduced claims:

* **coverage** -- the pass analyzes every shared-object class under
  ``src/repro`` and ``benchmarks``, evaluates the declared footprint of
  nearly every operation, and widens (whole-instance fallback) only
  where inference genuinely cannot pin a key;
* **cleanliness** -- the shipped tree has zero unsuppressed findings
  (the same pin as ``tests/lint/test_self_lint.py``, measured here);
* **cost** -- whole-tree inference runs in seconds, cheap enough to be
  a default lint stage rather than an opt-in audit.
"""

import os
import time

from repro.lint import discover_files, lint_paths, select_rules
from repro.lint.footprints import FootprintUnderApproximation
from repro.lint.infer import clear_caches

from .harness import header, write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGETS = [os.path.join(REPO_ROOT, "src", "repro"),
           os.path.join(REPO_ROOT, "benchmarks")]


def test_footprint_rule_bench(benchmark):
    """Time the F501 pass alone over the memory subsystem (the densest
    shared-object population in the tree)."""
    memory = [os.path.join(REPO_ROOT, "src", "repro", "memory")]

    def run():
        clear_caches()
        return lint_paths(memory, rules=select_rules(["F501"]))

    violations, errors = benchmark(run)
    assert errors == []
    assert violations == []


def test_lint_analysis_report():
    """Whole-tree static analysis; regenerates the results table."""
    rule = FootprintUnderApproximation()
    files = discover_files(TARGETS)

    clear_caches()
    start = time.perf_counter()
    violations, errors = lint_paths(TARGETS, rules=[rule])
    elapsed = time.perf_counter() - start

    assert errors == []
    assert violations == [], "\n".join(v.render() for v in violations)
    stats = rule.stats
    assert stats["classes"] > 0
    assert stats["ops_checked"] > 0
    evaluated = stats["ops_checked"] - stats["ops_unevaluable"]
    rate = len(files) / elapsed if elapsed else float("inf")

    lines = header(
        "Static footprint inference: whole-tree cost and coverage",
        "Abstract interpretation of every op_* handler under",
        "src/repro + benchmarks, checked against the declared",
        "footprints (inferred ⊇ actual and declared ⊇ inferred",
        "=> the DPOR independence relation is sound).")
    lines.append(f"files analyzed        : {len(files)}")
    lines.append(f"shared-object classes : {stats['classes']}")
    lines.append(f"operations checked    : {stats['ops_checked']}")
    lines.append(f"  declared evaluable  : {evaluated}")
    lines.append(f"  widened to whole    : {stats['ops_widened']}")
    lines.append(f"raw findings          : {stats['findings']}"
                 f" (all explicitly suppressed)")
    lines.append(f"unsuppressed findings : {len(violations)}")
    lines.append(f"inference wall time   : {elapsed:.3f} s")
    lines.append(f"throughput            : {rate:.0f} files/s")
    path = write_report(
        "lint_analysis", lines,
        data={"files": len(files),
              "classes": stats["classes"],
              "ops_checked": stats["ops_checked"],
              "ops_unevaluable": stats["ops_unevaluable"],
              "ops_widened": stats["ops_widened"],
              "raw_findings": stats["findings"],
              "unsuppressed_findings": len(violations),
              "inference_seconds": elapsed,
              "files_per_sec": rate})
    assert path.endswith("lint_analysis.txt")
