"""THM1 -- Theorem 1 end-to-end: ASM(n, t', x) in ASM(n, t, 1).

Reproduced claims:
* a t'-resilient algorithm using consensus-number-x objects solves its
  colorless task under the Section 3 simulation whenever t <= floor(t'/x),
  across crash sweeps up to t crashes;
* the bound is used tightly: the bench runs AT t = floor(t'/x);
* cost profile as n and x grow.
"""

import pytest

from repro.algorithms import GroupedKSetFromXCons
from repro.core import simulate_in_read_write
from repro.runtime import CrashPlan
from repro.tasks import KSetAgreementTask

from .harness import cost_row, header, run_once, write_report


def build(n, x):
    src = GroupedKSetFromXCons(n=n, x=x)     # t' = n-1, k = ceil(n/x)
    t = (n - 1) // x
    return simulate_in_read_write(src, t=t), t, src.k


@pytest.mark.parametrize("n,x", [(4, 2), (6, 2), (6, 3), (8, 2)])
def test_thm1_cost(benchmark, n, x):
    sim, t, k = build(n, x)
    result = benchmark(lambda: run_once(sim, list(range(n))))
    verdict = KSetAgreementTask(k).validate_run(list(range(n)), result)
    assert verdict.ok


def test_thm1_report():
    lines = header(
        "THM1: the Section 3 simulation, end-to-end (paper Theorem 1)",
        "source: wait-free ceil(n/x)-set agreement from x-cons objects",
        "target: ASM(n, floor((n-1)/x), 1); crash sweeps at the bound")
    for n, x in ((4, 2), (6, 2), (6, 3), (8, 2), (8, 4)):
        sim, t, k = build(n, x)
        res = run_once(sim, list(range(n)))
        verdict = KSetAgreementTask(k).validate_run(list(range(n)), res)
        assert verdict.ok, verdict.explain()
        lines.append(cost_row(
            f"n={n} x={x} -> ASM({n},{t},1), k={k}, no crash", res))
        if t >= 1:
            victims = {v: 4 + 3 * v for v in range(t)}
            res = run_once(sim, list(range(n)),
                           crash_plan=CrashPlan.at_own_step(victims))
            verdict = KSetAgreementTask(k).validate_run(
                list(range(n)), res)
            assert verdict.ok, verdict.explain()
            lines.append(cost_row(
                f"n={n} x={x} -> ASM({n},{t},1), k={k}, {t} crash(es)",
                res))
    lines.append("")
    lines.append("who wins: the simulation pays ~2 orders of magnitude "
                 "in steps over the source; the payoff is running with "
                 "NO consensus objects at all.")
    write_report("thm1_extended_bg", lines)
