"""BOOST -- Section 1.3: failure detectors as computability boosters.

Reproduced claims:
* consensus is unsolvable in ASM(n, t >= 1, 1) (the paper's running
  impossibility; index >= 1) but becomes wait-free solvable in
  ASM(n, n-1, 1) + Ω -- the x = 1 instance of Guerraoui-Kuznetsov
  boosting;
* the Ωx variant funnels through consensus-number-x objects
  (ASM(n, n-1, x) + Ωx);
* safety is *indulgent*: agreement survives arbitrarily long oracle
  misbehavior, only termination time grows with the stabilization point.
"""

import pytest

from repro.algorithms import (OmegaConsensus, OmegaXClusterConsensus,
                              run_algorithm)
from repro.core import consensus_solvable
from repro.model import ASM
from repro.runtime import CrashPlan, SeededRandomAdversary
from repro.tasks import ConsensusTask

from .harness import header, run_once, write_report


@pytest.mark.parametrize("stab", [0, 200])
def test_boost_omega_cost(benchmark, stab):
    algo = OmegaConsensus(n=4, stabilize_after=stab)
    result = benchmark(lambda: run_once(algo, [1, 2, 3, 4], seed=3))
    verdict = ConsensusTask().validate_run([1, 2, 3, 4], result)
    assert verdict.ok


def test_boost_report():
    lines = header(
        "BOOST: Omega/Omega_x boosting (paper Section 1.3)",
        "consensus: impossible in bare ASM(n, n-1, x<=t), wait-free",
        "solvable once the model is enriched with the oracle")
    n = 4
    base = ASM(n, n - 1, 1)
    assert not consensus_solvable(base)
    lines.append(f"bare {base}: consensus unsolvable "
                 f"(index {base.resilience_index} >= 1)  [calculus]")
    lines.append("")
    lines.append("enriched runs (3 crashes = wait-free environment):")
    task = ConsensusTask()
    for label, algo in [
        ("ASM(4,3,1) + Omega     ", OmegaConsensus(4, stabilize_after=0)),
        ("ASM(4,3,2) + Omega_2   ",
         OmegaXClusterConsensus(4, x=2, stabilize_after=0)),
        ("ASM(4,3,3) + Omega_3   ",
         OmegaXClusterConsensus(4, x=3, stabilize_after=0)),
    ]:
        plan = CrashPlan.at_own_step({0: 4, 1: 7, 2: 10})
        res = run_algorithm(algo, [10, 20, 30, 40], crash_plan=plan,
                            max_steps=4_000_000)
        verdict = task.validate_run([10, 20, 30, 40], res)
        assert verdict.ok, verdict.explain()
        lines.append(f"  {label} -> decided "
                     f"{sorted(res.decided_values)} in {res.steps} steps "
                     f"({len(res.crashed_pids)} crashes)")
    lines.append("")
    lines.append("indulgence: termination cost vs oracle stabilization "
                 "time (n = 4, seed 3):")
    lines.append(f"  {'stabilize_after':>16} {'steps to decide':>16}")
    for stab in (0, 50, 150, 300):
        algo = OmegaConsensus(4, stabilize_after=stab)
        res = run_once(algo, [1, 2, 3, 4], seed=3, max_steps=4_000_000)
        verdict = task.validate_run([1, 2, 3, 4], res)
        assert verdict.ok
        lines.append(f"  {stab:>16} {res.steps:>16}")
    lines.append("")
    lines.append("agreement held in every run regardless of how long the "
                 "oracle misbehaved: the algorithm is indulgent; only "
                 "latency pays for instability.")
    write_report("boosting_omega", lines)
