"""Frontier-store overhead: what durable checkpointing costs.

``check --checkpoint`` journals every shard grant and completion to an
fsynced JSON-lines store (:mod:`repro.runtime.frontier`), so a killed
exploration can resume instead of restarting.  The durability is pure
overhead when nothing crashes -- this bench measures exactly how much,
on jobs=1 sharded DPOR exploration of 3-process adopt-commit:

* **bare**     -- ``explore_parallel`` with no frontier store;
* **journaled**-- the same run checkpointing to a fresh store
  (one durable header + one fsynced line per grant/completion);
* **resumed**  -- re-running against the finished store (pure replay:
  load the journal, re-merge, execute zero shards).

All three must return bit-for-bit identical statistics -- the store
may cost time, never coverage.
"""

import os
import tempfile
import time

from repro.runtime import FrontierStore
from repro.runtime.parallel import explore_parallel
from repro.scenarios import check_scenarios

from .harness import header, write_report


def _explore(frontier=None):
    sc = check_scenarios(n=3)["adopt-commit"]
    return explore_parallel(sc.build, sc.check, max_steps=sc.max_steps,
                            jobs=1, frontier=frontier)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_resume_overhead_bench(benchmark):
    """Time one checkpointed sweep (store in a throwaway directory)."""
    with tempfile.TemporaryDirectory() as tmp:
        counter = [0]

        def run():
            counter[0] += 1
            path = os.path.join(tmp, f"frontier-{counter[0]}.jsonl")
            return _explore(FrontierStore(path))

        stats = benchmark(run)
    assert stats.complete_runs > 0


def test_resume_overhead_report():
    with tempfile.TemporaryDirectory() as tmp:
        bare_stats = _explore()
        store_path = os.path.join(tmp, "frontier.jsonl")
        journaled_stats = _explore(FrontierStore(store_path))
        resumed_stats = _explore(FrontierStore(store_path))
        assert journaled_stats == bare_stats, \
            "checkpointing changed what was explored"
        assert resumed_stats == bare_stats, \
            "resume replay changed the merged statistics"
        store_bytes = os.path.getsize(store_path)

        t_bare = _best_of(_explore)
        fresh = [0]

        def journaled():
            fresh[0] += 1
            return _explore(FrontierStore(
                os.path.join(tmp, f"fresh-{fresh[0]}.jsonl")))

        t_journaled = _best_of(journaled)
        t_resumed = _best_of(
            lambda: _explore(FrontierStore(store_path)))

    lines = header(
        "Frontier-store overhead (jobs=1 DPOR, 3-process adopt-commit)",
        "bare = no store; journaled = fresh durable store; "
        "resumed = replay of the finished store (zero shards executed)")
    lines.append(f"{'variant':<10} {'runs':>6} {'best-of-3 (s)':>14} "
                 f"{'vs bare':>9}")
    for label, stats, seconds in (("bare", bare_stats, t_bare),
                                  ("journaled", journaled_stats,
                                   t_journaled),
                                  ("resumed", resumed_stats, t_resumed)):
        lines.append(f"{label:<10} {stats.total_runs:>6} "
                     f"{seconds:>14.4f} {seconds / t_bare:>8.2f}x")
    lines.append("")
    lines.append(f"store size after a full run: {store_bytes} bytes "
                 f"(compaction folds the journal at 64 lines)")
    lines.append("journaled == bare == resumed stats: durability costs "
                 "fsyncs, never coverage.")
    write_report("resume_overhead", lines, data={
        "bare_runs": bare_stats.total_runs,
        "bare_seconds": t_bare,
        "journaled_seconds": t_journaled,
        "resumed_seconds": t_resumed,
        "journaled_overhead_ratio": t_journaled / t_bare,
        "resumed_ratio": t_resumed / t_bare,
        "store_bytes": store_bytes,
    })
