"""THM3 -- Theorem 3 end-to-end: ASM(n, t, 1) in ASM(n, t', x).

The headline result: the multiplicative band.  A t-resilient read/write
algorithm, run under the Section 4 simulation, survives every
t' <= t*x + (x-1) -- crashes multiply by the consensus number.

Reproduced series: for t = 1 and x = 1..4, the largest tolerated t'
(with actual t'-crash runs) is exactly t*x + x - 1, i.e. 1, 3, 5, 7 --
the factor-x staircase.
"""

import pytest

from repro.algorithms import KSetReadWrite
from repro.core import ModelViolation, simulate_with_xcons
from repro.runtime import CrashPlan
from repro.tasks import KSetAgreementTask

from .harness import cost_row, header, run_once, write_report


def build(n, t, x, t_prime):
    src = KSetReadWrite(n=n, t=t, k=t + 1)
    return src if x == 1 and t_prime == t else \
        simulate_with_xcons(src, t_prime=t_prime, x=x)


@pytest.mark.parametrize("x", [1, 2, 3])
def test_thm3_band_top_cost(benchmark, x):
    t = 1
    t_prime = t * x + x - 1
    n = t_prime + 2
    alg = build(n, t, x, t_prime) if x > 1 else KSetReadWrite(n, t, 2)
    result = benchmark.pedantic(
        lambda: run_once(alg, list(range(n)), max_steps=20_000_000),
        rounds=2, iterations=1)
    verdict = KSetAgreementTask(t + 1).validate_run(list(range(n)),
                                                    result)
    assert verdict.ok


def test_thm3_report():
    lines = header(
        "THM3: the multiplicative band (paper Theorem 3 / Section 5.4)",
        "source: kset_rw(t=1, k=2); for each x the simulation tolerates",
        "exactly t' = t*x + x - 1 crashes (runs executed AT the top of",
        "the band, with all t' simulators crashed mid-run)")
    t = 1
    band_label = "band (t' range)"
    lines.append(f"{'x':>3} {band_label:>16} {'run at top':>11} "
                 f"{'outcome':<30}")
    staircase = []
    for x in (1, 2, 3, 4):
        t_prime = t * x + x - 1
        n = t_prime + 2
        alg = build(n, t, x, t_prime)
        victims = {v: 2 + 2 * v for v in range(t_prime)}
        res = run_once(alg, list(range(n)),
                       crash_plan=CrashPlan.at_own_step(victims),
                       max_steps=20_000_000)
        verdict = KSetAgreementTask(t + 1).validate_run(
            list(range(n)), res)
        assert verdict.ok, verdict.explain()
        staircase.append(t_prime)
        lines.append(f"{x:>3} {f'[{t * x}..{t_prime}]':>16} "
                     f"{t_prime:>11} "
                     f"decided={len(res.decisions)} "
                     f"crashed={len(res.crashed_pids)} "
                     f"steps={res.steps}")
        # one past the band: the construction itself refuses.
        try:
            simulate_with_xcons(KSetReadWrite(n=n + 1, t=t, k=t + 1),
                                t_prime=t_prime + 1, x=x)
            refused = False
        except ModelViolation:
            refused = True
        assert refused
    assert staircase == [1, 3, 5, 7]
    lines.append("")
    lines.append(f"measured staircase of max tolerated t': {staircase} "
                 f"= t*x + x - 1 for x = 1..4  (factor-x crossovers at "
                 f"every x)")
    lines.append("t'+1 is refused by the construction in every case "
                 "(Theorem 3 precondition).")
    lines.append("")
    lines.append("cost at the band top:")
    for x in (2, 3):
        t_prime = t * x + x - 1
        n = t_prime + 2
        alg = build(n, t, x, t_prime)
        res = run_once(alg, list(range(n)), max_steps=20_000_000)
        lines.append(cost_row(f"  x={x}, ASM({n},{t_prime},{x})", res))
    write_report("thm3_reverse_bg", lines)
