"""LEM -- the blocking lemmas, measured.

* Lemma 1 (Section 3): tau simulator crashes block <= tau * x simulated
  processes per live simulator.
* Lemma 2: every correct simulator completes >= n - t' simulated
  processes (t' >= t*x).
* Lemma 7 (Section 4): t' simulator crashes block <= floor(t'/x)
  simulated processes.
* Lemma 8: every correct simulator completes >= n - t.

Measured with CollectAllPolicy (simulators never stop early; decisions
are announced in a snapshot the harness reads back).
"""

import pytest

from repro.agreement import SafeAgreementFactory, XSafeAgreementFactory
from repro.algorithms import (GroupedKSetFromXCons, KSetReadWrite,
                              run_algorithm)
from repro.analysis import blocking_certificate
from repro.bg import CollectAllPolicy
from repro.core import SimulationAlgorithm
from repro.runtime import CrashPlan, CrashPoint, op_on

from .harness import header, write_report


def section3_collectall(n, x, t):
    src = GroupedKSetFromXCons(n=n, x=x)
    return SimulationAlgorithm(
        src, n_simulators=n, resilience=t,
        snap_agreement=SafeAgreementFactory(n),
        obj_agreement=SafeAgreementFactory(n, family_name="XSAFE_AG"),
        policy_class=CollectAllPolicy, label="lem1")


def section4_collectall(n, x, t, t_prime):
    src = KSetReadWrite(n=n, t=t, k=t + 1)
    factory = XSafeAgreementFactory(n, x)
    return SimulationAlgorithm(
        src, n_simulators=n, resilience=t_prime,
        snap_agreement=factory, obj_agreement=factory,
        policy_class=CollectAllPolicy, label="lem7")


def crash_inside(obj, victims, occurrence=1):
    return CrashPlan({v: CrashPoint(
        before_matching=op_on(obj, "write")
        if obj != "XSA_XCONS" else op_on(obj, "propose"),
        occurrence=occurrence) for v in victims})


def test_lemma1_cost(benchmark):
    sim = section3_collectall(6, 2, 1)
    plan = crash_inside("XSAFE_AG", [0], occurrence=2)
    result = benchmark.pedantic(
        lambda: run_algorithm(sim, list(range(6)), crash_plan=plan,
                              max_steps=5_000_000),
        rounds=2, iterations=1)
    cert = blocking_certificate(result, 6, 6)
    assert cert.lemma1_holds(2)


def test_lemma_report():
    lines = header(
        "LEM: blocking lemmas, measured "
        "(paper Lemmas 1, 2, 7, 8)",
        "max_blocked = worst over live simulators of uncompleted",
        "simulated processes; bound columns are the lemma claims")

    lines.append("Section 3 machinery (Lemma 1: blocked <= tau*x; "
                 "Lemma 2: completed >= n - t'):")
    lines.append(f"  {'n':>3} {'x':>3} {'tau':>4} {'blocked':>8} "
                 f"{'<= tau*x':>9} {'completed':>10} {'>= n-t*x':>9}")
    for n, x, tau in ((4, 2, 1), (6, 2, 1), (6, 3, 1), (6, 2, 2)):
        t = tau
        sim = section3_collectall(n, x, t)
        victims = list(range(tau))
        plan = crash_inside("XSAFE_AG", victims, occurrence=2)
        res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                            max_steps=5_000_000)
        cert = blocking_certificate(res, n, n)
        assert cert.lemma1_holds(x), cert.summary()
        assert cert.min_completed >= n - t * x, cert.summary()
        lines.append(f"  {n:>3} {x:>3} {tau:>4} {cert.max_blocked:>8} "
                     f"{tau * x:>9} {cert.min_completed:>10} "
                     f"{n - t * x:>9}")

    lines.append("")
    lines.append("Section 4 machinery (Lemma 7: blocked <= floor(t'/x); "
                 "Lemma 8: completed >= n - t):")
    tp_label = "t'"
    bound_label = "<= t'//x"
    lines.append(f"  {'n':>3} {'x':>3} {tp_label:>4} {'blocked':>8} "
                 f"{bound_label:>9} {'completed':>10} {'>= n-t':>7}")
    for n, x, t, t_prime, tau in ((5, 2, 1, 3, 2), (6, 2, 1, 3, 2),
                                  (6, 3, 1, 5, 3)):
        sim = section4_collectall(n, x, t, t_prime)
        plan = crash_inside("XSA_XCONS", list(range(tau)))
        res = run_algorithm(sim, list(range(n)), crash_plan=plan,
                            max_steps=5_000_000)
        cert = blocking_certificate(res, n, n)
        assert cert.max_blocked <= t_prime // x, cert.summary()
        assert cert.min_completed >= n - t, cert.summary()
        assert not cert.divergent
        lines.append(f"  {n:>3} {x:>3} {t_prime:>4} "
                     f"{cert.max_blocked:>8} {t_prime // x:>9} "
                     f"{cert.min_completed:>10} {n - t:>7}")

    lines.append("")
    lines.append("the multiplicative contrast: the same tau = x crashes "
                 "that kill ONE x-safe-agreement object (blocking 1")
    lines.append("simulated process) would kill x independent "
                 "safe-agreement objects in the BG setting (blocking "
                 "up to x processes).")
    write_report("lemma_blocking", lines)
