"""INDEX -- collect all benchmark reports into one index + summary.

Run last (pytest collects alphabetically, but the file regenerates the
index from whatever reports exist), producing

* ``benchmarks/results/INDEX.md`` -- the first line of every ``.txt``
  report, human-facing;
* ``benchmarks/results/BENCH_summary.json`` -- every machine-readable
  ``.json`` twin folded into one versioned record, the checked-in seed
  of the cross-PR perf trajectory (diff it between PRs to see run
  counts, ratios, and measured series move).

Both files are written atomically, like every other report.
"""

import json
import os

from repro.analysis.metrics import METRICS_SCHEMA_VERSION, atomic_write_text

from .harness import RESULTS_DIR, write_json

SUMMARY_NAME = "BENCH_summary.json"


def test_build_results_index():
    """Aggregate benchmarks/results/*.txt into INDEX.md."""
    if not os.path.isdir(RESULTS_DIR):
        return
    entries = []
    for name in sorted(os.listdir(RESULTS_DIR)):
        if not name.endswith(".txt"):
            continue
        with open(os.path.join(RESULTS_DIR, name)) as handle:
            title = handle.readline().strip()
        entries.append(f"* `{name}` — {title}")
    lines = ["# Benchmark results index", ""]
    lines += entries or ["(no reports yet — run `pytest benchmarks/ -q`)"]
    path = os.path.join(RESULTS_DIR, "INDEX.md")
    atomic_write_text(path, "\n".join(lines) + "\n")
    assert os.path.exists(path)


def build_bench_summary(results_dir: str = RESULTS_DIR) -> dict:
    """Fold every ``results/*.json`` bench record into one summary.

    Per-bench entries keep the structured ``data`` minus the raw table
    lines (the ``.txt`` embeds those already); the summary is keyed by
    bench name so cross-PR diffs are stable.
    """
    benches = {}
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json") or name == SUMMARY_NAME:
            continue
        with open(os.path.join(results_dir, name)) as handle:
            record = json.load(handle)
        if record.get("kind") != "bench_report":
            continue
        data = {key: value for key, value in record.get("data", {}).items()
                if key != "lines"}
        benches[record["name"]] = {
            "schema_version": record.get("schema_version"),
            **data,
        }
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "kind": "bench_summary",
        "bench_count": len(benches),
        "benches": benches,
    }


def test_every_report_has_a_json_twin():
    """Repair harness drift: reconstruct missing ``.json`` twins.

    Reports regenerated before the twin scheme existed (the ``slow``
    benches keep their committed tables between reruns) have a ``.txt``
    but no ``.json``, so they silently vanish from BENCH_summary.json.
    Rebuild the twin from the committed table -- same lines, flagged
    ``reconstructed_from_txt`` so readers know no structured ``data``
    series is available until the bench is rerun -- then assert full
    coverage, which keeps any future drift from landing.
    """
    if not os.path.isdir(RESULTS_DIR):
        return
    for name in sorted(os.listdir(RESULTS_DIR)):
        if not name.endswith(".txt"):
            continue
        stem = name[:-len(".txt")]
        if os.path.exists(os.path.join(RESULTS_DIR, f"{stem}.json")):
            continue
        with open(os.path.join(RESULTS_DIR, name)) as handle:
            lines = handle.read().splitlines()
        write_json(stem, lines=lines,
                   data={"reconstructed_from_txt": True})
    missing = [name for name in os.listdir(RESULTS_DIR)
               if name.endswith(".txt") and not os.path.exists(
                   os.path.join(RESULTS_DIR,
                                f"{name[:-len('.txt')]}.json"))]
    assert not missing, f"reports without a JSON twin: {missing}"


def test_build_bench_summary():
    """Aggregate the JSON twins into BENCH_summary.json (atomic)."""
    if not os.path.isdir(RESULTS_DIR):
        return
    summary = build_bench_summary()
    path = os.path.join(RESULTS_DIR, SUMMARY_NAME)
    atomic_write_text(path, json.dumps(summary, indent=2,
                                       sort_keys=True) + "\n")
    with open(path) as handle:
        reread = json.load(handle)
    assert reread["kind"] == "bench_summary"
    assert reread["bench_count"] == len(reread["benches"])
