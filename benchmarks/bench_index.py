"""INDEX -- collect all benchmark reports into one index file.

Run last (pytest collects alphabetically, but the file regenerates the
index from whatever reports exist), producing
``benchmarks/results/INDEX.md`` with the first line of every report.
"""

import os

from .harness import RESULTS_DIR, write_report


def test_build_results_index():
    """Aggregate benchmarks/results/*.txt into INDEX.md."""
    if not os.path.isdir(RESULTS_DIR):
        return
    entries = []
    for name in sorted(os.listdir(RESULTS_DIR)):
        if not name.endswith(".txt"):
            continue
        with open(os.path.join(RESULTS_DIR, name)) as handle:
            title = handle.readline().strip()
        entries.append(f"* `{name}` — {title}")
    lines = ["# Benchmark results index", ""]
    lines += entries or ["(no reports yet — run `pytest benchmarks/ -q`)"]
    path = os.path.join(RESULTS_DIR, "INDEX.md")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    assert os.path.exists(path)
