"""Generative corollary sweep: throughput and oracle agreement.

The sweep synthesizes (n, t, x) configurations from a seeded grammar
and cross-checks each against the solvability oracle's ``⌊t/x⌋``
prediction (docs/generative_sweep.md).  Reproduced claims:

* **agreement** -- on the pinned 200-config batch every observed
  verdict matches the oracle (the acceptance bar: rate 1.0);
* **coverage** -- all eight scenario families appear in that batch;
* **throughput** -- synthesized configurations are cheap enough to
  soak (hundreds of configs per second end-to-end, dominated by the
  DPOR-explored families).
"""

import time

from repro.generative import FAMILIES, generate_batch, run_sweep

from .harness import header, write_report

BENCH_SEED = 7
BENCH_COUNT = 200


def test_generation_bench(benchmark):
    """Time pure synthesis (no execution) of the pinned batch."""
    batch = benchmark(lambda: generate_batch(BENCH_SEED, BENCH_COUNT))
    assert len(batch) == BENCH_COUNT


def test_sweep_bench(benchmark):
    """Time one 40-config cross-checked sweep."""
    result = benchmark(lambda: run_sweep(BENCH_SEED, 40))
    assert result.disagreements == []


def test_generative_sweep_report():
    """Full 200-config sweep; regenerates the results table."""
    start = time.perf_counter()
    result = run_sweep(BENCH_SEED, BENCH_COUNT)
    elapsed = time.perf_counter() - start
    assert not result.interrupted
    assert result.agreement_rate == 1.0, result.summary()
    assert set(result.family_counts) == set(FAMILIES)

    rate = BENCH_COUNT / elapsed if elapsed else float("inf")
    lines = header(
        "Generative corollary sweep: oracle agreement and throughput",
        f"Pinned batch --seed {BENCH_SEED} --count {BENCH_COUNT}: every",
        "synthesized configuration's observed verdict (DPOR",
        "exploration, lifted runs, ABD histories, audits) must match",
        "the paper's floor(t/x) prediction.")
    lines.append(f"{'family':<14} {'configs':>8}")
    for family in FAMILIES:
        lines.append(f"{family:<14} {result.family_counts.get(family, 0):>8}")
    lines.append("")
    lines.append(f"configs checked      : {len(result.outcomes)}")
    lines.append(f"oracle agreement rate: {result.agreement_rate:.3f}")
    lines.append(f"wall time            : {elapsed:.2f} s")
    lines.append(f"throughput           : {rate:.0f} configs/s")
    path = write_report(
        "generative_sweep", lines,
        data={"seed": BENCH_SEED, "count": BENCH_COUNT,
              "agreement_rate": result.agreement_rate,
              "families": result.family_counts,
              "configs_per_sec": rate})
    assert path.endswith("generative_sweep.txt")
