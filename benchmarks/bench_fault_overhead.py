"""Fault-layer overhead: the no-fault path must stay near-free.

The Byzantine layer threads through the scheduler as two value-rewrite
hooks that are consulted only when the installed plan defines them; a
plain :class:`CrashPlan` (or no plan) skips them entirely, and a
behavior-free :class:`FaultPlan` must explore bit-for-bit the same
schedule tree.  This bench pins both claims and measures what attaching
the layer actually costs on DPOR exploration of 2-process adopt-commit:

* **baseline** -- no crash plan at all;
* **lifted** -- a behavior-free ``FaultPlan`` (hooks present, inert);
* **byzantine** -- a ``CorruptWrite`` behavior firing on every write
  (the check relaxes to liveness-only: corrupted proposals
  legitimately change decided values).
"""

import time

from repro.runtime import FaultPlan, byzantine_writer, explore
from repro.scenarios import check_scenarios

from .harness import header, write_report


def _explore(crash_plan_factory, check=None):
    sc = check_scenarios(n=2)["adopt-commit"]
    return explore(sc.build, check or sc.check,
                   crash_plan_factory=crash_plan_factory,
                   max_steps=sc.max_steps, reduction="dpor")


def _liveness_only(result):
    assert not result.deadlocked, result.summary()


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fault_overhead_bench(benchmark):
    """Time one DPOR sweep with the inert fault layer attached."""
    stats = benchmark(lambda: _explore(lambda: FaultPlan()))
    assert stats.complete_runs > 0


def test_fault_overhead_report():
    baseline_stats = _explore(None)
    lifted_stats = _explore(lambda: FaultPlan())
    assert baseline_stats == lifted_stats, \
        "behavior-free FaultPlan changed what DPOR explored"
    def byz_plan():
        return byzantine_writer(0, "corrupted", obj="AC1",
                                method="write")

    byz_stats = _explore(byz_plan, check=_liveness_only)

    t_base = _best_of(lambda: _explore(None))
    t_lift = _best_of(lambda: _explore(lambda: FaultPlan()))
    t_byz = _best_of(lambda: _explore(byz_plan, check=_liveness_only))

    lines = header(
        "Fault-layer overhead (DPOR, 2-process adopt-commit)",
        "baseline = no plan; lifted = behavior-free FaultPlan; "
        "byzantine = CorruptWrite on every write of p0")
    lines.append(f"{'variant':<12} {'runs':>6} {'pruned':>7} "
                 f"{'best-of-5 (s)':>14} {'vs baseline':>12}")
    for label, stats, seconds in (
            ("baseline", baseline_stats, t_base),
            ("lifted", lifted_stats, t_lift),
            ("byzantine", byz_stats, t_byz)):
        lines.append(f"{label:<12} {stats.total_runs:>6} "
                     f"{stats.pruned_runs:>7} {seconds:>14.4f} "
                     f"{seconds / t_base:>11.2f}x")
    lines.append("")
    lines.append("lifted == baseline stats: the inert layer is "
                 "bit-for-bit free in coverage; its wall-clock cost "
                 "is the hook dispatch alone.")
    write_report("fault_overhead", lines, data={
        "baseline_runs": baseline_stats.total_runs,
        "lifted_runs": lifted_stats.total_runs,
        "byzantine_runs": byz_stats.total_runs,
        "baseline_seconds": t_base,
        "lifted_seconds": t_lift,
        "byzantine_seconds": t_byz,
        "lifted_overhead_ratio": t_lift / t_base,
        "byzantine_overhead_ratio": t_byz / t_base,
    })
