"""The simulator process: n fairly-interleaved simulation threads.

"Each simulator qi is given the code of every simulated process p1..pn.
It manages n threads, each one associated with a simulated process, and
locally executes these threads in a fair way" (paper, Section 2.4).

A simulator is itself one process of the target model, so this module
turns the whole construction into a single generator: the trampoline
advances one thread per *quantum* (one shared-memory step of the target
model), resolves local mutex operations without consuming steps, forwards
the threads' spin conditions upward with an adjusted period so the
top-level deadlock detector stays sound, and applies a
:class:`~repro.bg.policy.DecisionPolicy` when threads decide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..agreement.base import AgreementFactory
from ..memory.specs import ObjectSpec
from ..runtime.ops import SPIN_FAILED, Invocation, LocalOp, SpinOp
from ..runtime.process import NO_DECISION
from .mutex import (MUTEX1, AcquireLocal, LocalMutexTable, MutexViolation,
                    ReleaseLocal)
from .policy import DecisionPolicy, Final
from .sim_ops import MEM_NAME, SimulatorState, sim_input
from .translate import SourceTranslator


class ThreadStatus(enum.Enum):
    """Lifecycle of one simulation thread inside a simulator."""

    READY = "ready"
    SPINNING = "spinning"       # pending SpinOp last failed
    WAIT_MUTEX = "wait-mutex"   # pending AcquireLocal, queued
    DONE = "done"


@dataclass
class _Thread:
    j: int
    gen: Generator
    status: ThreadStatus = ThreadStatus.READY
    started: bool = False
    pending: Any = None     # op awaiting execution / spin re-check
    inbox: Any = None       # result to send on next advance
    decision: Any = NO_DECISION


@dataclass
class SimulationConfig:
    """Everything a simulator needs to know about the simulated system."""

    source_specs: List[ObjectSpec]
    source_program: Callable[[int, Any], Generator]
    n_simulated: int
    n_simulators: int
    snap_agreement: AgreementFactory
    obj_agreement: AgreementFactory
    policy_factory: Callable[[int], DecisionPolicy]
    mem_name: str = MEM_NAME
    #: Finding F1 ablation switch -- see repro.bg.sim_ops.SimulatorState.
    per_object_mutex2: bool = True
    #: Busy-wait protocol ablation switch -- see repro.bg.translate.
    eager_spin: bool = False


class SimulatorCrashed(RuntimeError):
    """Internal invariant of the trampoline broken (a library bug)."""


def simulator_process(cfg: SimulationConfig, sim_id: int,
                      own_input: Any) -> Generator:
    """The generator run by simulator ``sim_id`` in the target model."""
    trampoline = _Trampoline(cfg, sim_id, own_input)
    result = yield from trampoline.run()
    return result


class _Trampoline:
    """Drives the simulation threads of one simulator."""

    def __init__(self, cfg: SimulationConfig, sim_id: int,
                 own_input: Any) -> None:
        self.cfg = cfg
        self.sim_id = sim_id
        self.state = SimulatorState(
            sim_id, cfg.n_simulated,
            snap_agreement=cfg.snap_agreement,
            obj_agreement=cfg.obj_agreement,
            mem_name=cfg.mem_name,
            per_object_mutex2=cfg.per_object_mutex2,
            eager_spin=cfg.eager_spin)
        self.translator = SourceTranslator(cfg.source_specs, self.state)
        self.mutexes = LocalMutexTable()
        self.policy = cfg.policy_factory(sim_id)
        self.decisions: Dict[int, Any] = {}
        self.threads: Dict[int, _Thread] = {
            j: _Thread(j, self._thread_body(j, own_input))
            for j in range(cfg.n_simulated)
        }
        self._rr_last = -1

    # ------------------------------------------------------------------
    def _thread_body(self, j: int, own_input: Any) -> Generator:
        """Simulate pj: agree on its input, then drive its program."""
        input_j = yield from sim_input(self.state, j, own_input)
        program = self.cfg.source_program(j, input_j)
        result: Any = None
        started = False
        while True:
            try:
                op = program.send(result) if started else next(program)
                started = True
            except StopIteration as stop:
                return stop.value
            result = yield from self.translator.translate(j, op)

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        while True:
            j = self._pick_thread()
            if j is None:
                return self.policy.on_all_terminal(self.sim_id,
                                                   self.decisions)
            outcome = yield from self._quantum(self.threads[j])
            if isinstance(outcome, Final):
                return outcome.value

    def _live(self) -> List[_Thread]:
        return [t for t in self.threads.values()
                if t.status in (ThreadStatus.READY, ThreadStatus.SPINNING)]

    def _pick_thread(self) -> Optional[int]:
        live = sorted(t.j for t in self._live())
        if not live:
            return None
        choice = next((j for j in live if j > self._rr_last), live[0])
        self._rr_last = choice
        return choice

    def _spin_period(self) -> int:
        """Upper bound on consecutive failed spins needed to prove this
        simulator stuck: every live thread re-checked each of its
        (alternating) conditions."""
        live = self._live()
        max_cond = max((t.pending.period
                        for t in live if isinstance(t.pending, SpinOp)),
                       default=1)
        return max(1, len(live)) * max(1, max_cond)

    # ------------------------------------------------------------------
    def _advance(self, thread: _Thread, send_value: Any) -> Optional[Any]:
        """Resume the thread generator; returns its next op or None when
        it finished (decision recorded)."""
        try:
            if thread.started:
                op = thread.gen.send(send_value)
            else:
                thread.started = True
                op = next(thread.gen)
        except StopIteration as stop:
            thread.status = ThreadStatus.DONE
            thread.decision = stop.value
            thread.pending = None
            return None
        thread.pending = op
        return op

    def _quantum(self, thread: _Thread) -> Generator:
        """Run one thread up to (and through) one shared-memory step.

        Local mutex operations are resolved inline without consuming the
        quantum.  Returns a :class:`Final` when the decision policy stops
        the simulator, else None.
        """
        while True:
            if thread.pending is None:
                op = self._advance(thread, thread.inbox)
                thread.inbox = None
                if op is None:
                    outcome = yield from self._handle_decision(thread)
                    return outcome
            op = thread.pending

            if isinstance(op, AcquireLocal):
                if self.mutexes.try_acquire(op.mutex, thread.j):
                    thread.pending = None
                    thread.inbox = None
                    continue
                thread.status = ThreadStatus.WAIT_MUTEX
                return None  # granted later by the holder's release

            if isinstance(op, ReleaseLocal):
                granted = self.mutexes.release(op.mutex, thread.j)
                if granted is not None:
                    waiter = self.threads[granted]
                    waiter.status = ThreadStatus.READY
                    waiter.pending = None
                    waiter.inbox = None
                thread.pending = None
                thread.inbox = None
                continue

            if isinstance(op, LocalOp):
                raise SimulatorCrashed(f"unknown local op {op!r}")

            if isinstance(op, SpinOp):
                result = yield SpinOp(op.invocation, op.predicate,
                                      self._spin_period())
                if result is SPIN_FAILED:
                    thread.status = ThreadStatus.SPINNING
                    # Let the thread present its next (possibly different)
                    # wait condition; no shared step is consumed by this.
                    nxt = self._advance(thread, SPIN_FAILED)
                    if nxt is None:
                        outcome = yield from self._handle_decision(thread)
                        return outcome
                    if not isinstance(nxt, SpinOp):
                        thread.status = ThreadStatus.READY
                else:
                    thread.status = ThreadStatus.READY
                    thread.pending = None
                    thread.inbox = result
                return None

            if isinstance(op, Invocation):
                result = yield op
                thread.pending = None
                thread.inbox = result
                thread.status = ThreadStatus.READY
                return None

            raise SimulatorCrashed(
                f"thread {thread.j} yielded unexpected {op!r}")

    # ------------------------------------------------------------------
    def _handle_decision(self, thread: _Thread) -> Generator:
        """Thread finished: drain mutex1, then apply the decision policy."""
        value = thread.decision
        self.decisions[thread.j] = value
        yield from self._drain_mutex1()
        verdict = yield from self._run_policy(thread.j, value)
        return verdict

    def _drain_mutex1(self) -> Generator:
        """Complete the pending propose of the mutex1 holder (if any), so
        stopping the simulator afterwards abandons no shared agreement
        mid-propose (paper, Section 5.5)."""
        holder = self.mutexes.holder(MUTEX1)
        while holder is not None:
            thread = self.threads[holder]
            if thread.status is not ThreadStatus.READY:
                raise SimulatorCrashed(
                    f"mutex1 holder thread {holder} is {thread.status}; "
                    f"propose sections must be bounded and spin-free")
            outcome = yield from self._quantum(thread)
            if outcome is not None:
                raise SimulatorCrashed(
                    "a decision fired while draining mutex1")
            holder = self.mutexes.holder(MUTEX1)

    def _run_policy(self, j: int, value: Any) -> Generator:
        gen = self.policy.on_decision(self.sim_id, self.decisions, j, value)
        result: Any = None
        started = False
        while True:
            try:
                op = gen.send(result) if started else next(gen)
                started = True
            except StopIteration as stop:
                return stop.value
            result = yield op
