"""Decision policies: what a simulator does with a simulated decision.

The BG machinery is agnostic about how a simulator turns the decisions of
its simulated processes into its *own* decision:

* :class:`FirstDecisionPolicy` -- colorless tasks (paper Sections 3-4): the
  simulator adopts the first simulated decision it obtains and stops.
* :class:`ColoredTASPolicy` -- colored tasks (paper Section 5.5): the
  simulator competes on a test&set object T&S[j] for the right to adopt
  pj's decision; on a loss it resumes simulating until another decision
  arrives.
* :class:`CollectAllPolicy` -- measurement mode for the blocking lemmas:
  the simulator never stops early; it announces every simulated decision in
  a shared snapshot object and finally returns the full map, so the harness
  can count how many simulated processes each simulator completed
  (Lemma 2 / Lemma 8) and how many were blocked (Lemma 1 / Lemma 7).

Whatever the policy, the trampoline first *drains* any thread holding
mutex1 (completes its pending propose) before the simulator may stop --
the discipline Section 5.5 spells out ("it completes the invocations of
x'_sa_propose() in which it is involved (if any) and stops").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy

#: Store name of the decision-allocation test&set family (colored tasks).
DECIDE_TS = "DECIDE_TS"
#: Store name of the decision-announcement snapshot (measurement mode).
ANNOUNCE = "SIMDEC"


@dataclass(frozen=True)
class Final:
    """Wrapper signalling 'the simulator decides this value and stops'."""

    value: Any


class DecisionPolicy(ABC):
    """Per-simulator strategy for turning thread decisions into one."""

    @staticmethod
    def extra_specs(n_simulators: int) -> List[ObjectSpec]:
        """Shared objects the policy needs in the target store."""
        return []

    @abstractmethod
    def on_decision(self, sim_id: int, decisions: Dict[int, Any],
                    j: int, value: Any) -> Generator:
        """Generator run (after the mutex1 drain) when thread j decides.

        May yield target-model operations.  Returns :class:`Final` to stop
        the simulator with that decision, or None to resume simulating.
        """

    def on_all_terminal(self, sim_id: int,
                        decisions: Dict[int, Any]) -> Any:
        """Simulator return value when every thread is done and no Final
        was produced."""
        return dict(decisions)


class FirstDecisionPolicy(DecisionPolicy):
    """Colorless: adopt the first simulated decision."""

    def on_decision(self, sim_id, decisions, j, value):
        return Final(value)
        yield  # pragma: no cover - generator marker

    def on_all_terminal(self, sim_id, decisions):
        raise AssertionError(
            "FirstDecisionPolicy: all threads terminated without any "
            "decision -- the simulated algorithm never decides?")


class ColoredTASPolicy(DecisionPolicy):
    """Colored: win T&S[j] to adopt pj's decision; on loss, resume."""

    @staticmethod
    def extra_specs(n_simulators: int) -> List[ObjectSpec]:
        return [make_spec("tas_family", DECIDE_TS)]

    def on_decision(self, sim_id, decisions, j, value):
        tas = ObjectProxy(DECIDE_TS)
        won = yield tas.test_and_set(j)
        if won:
            return Final(value)
        return None


class CollectAllPolicy(DecisionPolicy):
    """Measurement: simulate everything, announce each decision."""

    @staticmethod
    def extra_specs(n_simulators: int) -> List[ObjectSpec]:
        return [make_spec("snapshot", ANNOUNCE, size=n_simulators)]

    def on_decision(self, sim_id, decisions, j, value):
        announce = ObjectProxy(ANNOUNCE)
        yield announce.write(sim_id, tuple(sorted(decisions.items())))
        return None

    def on_all_terminal(self, sim_id, decisions):
        return dict(decisions)


def read_announcements(store, n_simulators: int) -> Dict[int, Dict[int, Any]]:
    """Harness helper: per-simulator decision maps from the announcement
    snapshot left in the target store by :class:`CollectAllPolicy`."""
    from ..memory.base import BOTTOM
    obj = store[ANNOUNCE]
    result: Dict[int, Dict[int, Any]] = {}
    for i in range(n_simulators):
        entry = obj.entries[i]
        result[i] = {} if entry is BOTTOM else dict(entry)
    return result
