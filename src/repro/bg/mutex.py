"""Simulator-local mutual exclusion.

The BG simulation constrains each simulator to at most one pending
``sa_propose()`` at a time (mutex1) and serializes access to the per-object
result cache ``xres`` (mutex2).  The paper stresses that these mutexes are
"purely local to each simulator: [they solve] conflicts among the
simulating threads inside each simulator, and [have] nothing to do with the
memory shared by the simulators" (Section 3.2.3).

Accordingly they are *local control operations*: a thread yields
:class:`AcquireLocal` / :class:`ReleaseLocal`, which the simulator's
trampoline resolves without consuming a shared-memory step.  The top-level
scheduler rejects them (see ``Scheduler._step``), which guards against a
simulation layer leaking local ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..runtime.ops import LocalOp

#: Names of the two mutexes of the paper's Figures 3-4.
MUTEX1 = "mutex1"
MUTEX2 = "mutex2"


@dataclass(frozen=True)
class AcquireLocal(LocalOp):
    """Acquire a simulator-local mutex (blocks the thread if held)."""

    mutex: str

    def __repr__(self) -> str:
        return f"acquire({self.mutex})"


@dataclass(frozen=True)
class ReleaseLocal(LocalOp):
    """Release a simulator-local mutex (must be held by the thread)."""

    mutex: str

    def __repr__(self) -> str:
        return f"release({self.mutex})"


class MutexViolation(RuntimeError):
    """Release without hold, or double acquire by the same thread."""


class LocalMutexTable:
    """Holder bookkeeping for one simulator's local mutexes."""

    def __init__(self) -> None:
        self._holder: Dict[str, Optional[int]] = {}
        self._queue: Dict[str, List[int]] = {}

    def holder(self, mutex: str) -> Optional[int]:
        return self._holder.get(mutex)

    def held_by(self, thread: int) -> List[str]:
        return [m for m, h in self._holder.items() if h == thread]

    def try_acquire(self, mutex: str, thread: int) -> bool:
        """True if acquired; False if the thread must wait (enqueued)."""
        current = self._holder.get(mutex)
        if current is None:
            self._holder[mutex] = thread
            return True
        if current == thread:
            raise MutexViolation(
                f"thread {thread} re-acquired {mutex} (not reentrant)")
        queue = self._queue.setdefault(mutex, [])
        if thread not in queue:
            queue.append(thread)
        return False

    def release(self, mutex: str, thread: int) -> Optional[int]:
        """Release; returns the thread granted the mutex next, if any."""
        if self._holder.get(mutex) != thread:
            raise MutexViolation(
                f"thread {thread} released {mutex} held by "
                f"{self._holder.get(mutex)}")
        queue = self._queue.get(mutex, [])
        if queue:
            nxt = queue.pop(0)
            self._holder[mutex] = nxt
            return nxt
        self._holder[mutex] = None
        return None
