"""BG-simulation machinery: local mutexes, Figures 2-4 operations, source
operation translation, decision policies, and the simulator trampoline."""

from .mutex import (MUTEX1, MUTEX2, AcquireLocal, LocalMutexTable,
                    MutexViolation, ReleaseLocal)
from .policy import (ANNOUNCE, DECIDE_TS, CollectAllPolicy, ColoredTASPolicy,
                     DecisionPolicy, Final, FirstDecisionPolicy,
                     read_announcements)
from .sim_ops import (MEM_NAME, SimulatorState, sim_input, sim_object_op,
                      sim_snapshot, sim_write)
from .simulator import (SimulationConfig, SimulatorCrashed, ThreadStatus,
                        simulator_process)
from .translate import (SourcePortViolation, SourceTranslator,
                        UnsimulableOperation)

__all__ = [
    "MUTEX1", "MUTEX2", "AcquireLocal", "LocalMutexTable",
    "MutexViolation", "ReleaseLocal",
    "ANNOUNCE", "DECIDE_TS", "CollectAllPolicy", "ColoredTASPolicy",
    "DecisionPolicy", "Final", "FirstDecisionPolicy", "read_announcements",
    "MEM_NAME", "SimulatorState", "sim_input", "sim_object_op",
    "sim_snapshot", "sim_write",
    "SimulationConfig", "SimulatorCrashed", "ThreadStatus",
    "simulator_process",
    "SourcePortViolation", "SourceTranslator", "UnsimulableOperation",
]
