"""Translation of source-model operations into simulation operations.

A simulated process's program yields operations on the *source* model's
objects (its snapshot memory, registers, consensus-number-x objects, ...).
Those objects never exist in the target model: a :class:`SourceTranslator`
maps every source operation onto the BG simulation operations of
`repro.bg.sim_ops`:

* all *write-like* operations land in the simulated process's single cell
  of the virtual snapshot memory.  The cell holds a dict from slot keys
  (one per source object/entry) to values, so any number of source
  read/write objects merge into the one snapshot object the BG machinery
  simulates;
* all *read-like* operations (register read, snapshot) become a
  ``sim_snapshot`` -- i.e. go through a safe-agreement so every simulator
  obtains the same result -- followed by a pure projection;
* all *one-shot decision* operations (x_cons propose, one-shot test&set,
  one-shot set agreement) become a ``sim_object_op`` -- one agreement per
  source object (the paper's Figure 4; test&set agrees on the winner id,
  set agreement degenerates to its 1-refinement, which any ℓ-set object
  specification permits).

Busy-waiting simulated processes
--------------------------------

A simulated ``SpinOp`` re-executes its read until the predicate holds, and
each re-execution is a fresh simulated snapshot -- a fresh agreement.  To
keep a *permanently* blocked simulated process observable (and cheap), the
translator inserts a sound wait between failed iterations: it re-reads
only once

* the simulators' MEM object changed since a post-failure baseline, or
* the next snapshot-agreement instance for this thread shows activity
  (some simulator started or finished it),

and it skips the wait entirely whenever the predicate already holds on
the baseline's local projection.  This is sound for predicates that are
*monotone* in the memory's progress (once true on a vector, true on every
componentwise-more-advanced vector) -- the standard shape of shared-memory
waiting loops, and a documented requirement for simulated algorithms.
With it, a thread whose condition can never be satisfied ends up in a
read-only spin that the top-level deadlock detector retires, instead of
spawning agreement instances forever.

Restrictions (checked, with explicit errors):

* multi-writer registers are simulated with (seq, writer) tags, which is
  linearizable when concurrent writers write *equal* values -- exactly the
  discipline of the x-safe-agreement's X_SAFE_AG register.  Arbitrary
  multi-writer races are outside the BG simulation's scope;
* multi-shot non-deterministic objects (queues, stacks, CAS) cannot be
  BG-simulated and are rejected.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Hashable, List, Tuple

from ..memory.base import BOTTOM
from ..memory.specs import ObjectSpec
from ..runtime.ops import SPIN_FAILED, Invocation, SpinOp
from .sim_ops import (SimulatorState, _most_advanced, sim_object_op,
                      sim_snapshot, sim_write)


class UnsimulableOperation(RuntimeError):
    """A source operation the BG machinery cannot simulate."""


class SourcePortViolation(RuntimeError):
    """A simulated process accessed a source object outside its ports."""


class SourceTranslator:
    """Per-simulator translator with one virtual memory image per thread."""

    def __init__(self, specs: List[ObjectSpec],
                 state: SimulatorState) -> None:
        self.specs: Dict[str, ObjectSpec] = {s.name: s for s in specs}
        self.state = state
        #: thread j -> its merged virtual memory cell (slot -> value).
        self._images: Dict[int, Dict[Hashable, Any]] = {}
        #: (thread, slot) -> multi-writer sequence counter.
        self._seqs: Dict[Tuple[int, Hashable], int] = {}

    # ------------------------------------------------------------------
    def translate(self, j: int, op: Any) -> Generator:
        """Generator: simulate source op ``op`` on behalf of thread j."""
        if isinstance(op, SpinOp):
            result = yield from self._spin(j, op)
            return result
        if isinstance(op, Invocation):
            result = yield from self._invoke(j, op)
            return result
        raise UnsimulableOperation(
            f"thread {j}: cannot simulate yielded {op!r}")

    def _spec_of(self, j: int, name: str) -> ObjectSpec:
        spec = self.specs.get(name)
        if spec is None:
            raise UnsimulableOperation(
                f"thread {j}: unknown source object {name!r}")
        return spec

    def _invoke(self, j: int, inv: Invocation) -> Generator:
        spec = self._spec_of(j, inv.obj)
        projector = self._projector(j, spec, inv.method, inv.args)
        if projector is not None:
            cells = yield from sim_snapshot(self.state, j)
            return projector(cells)
        handler = getattr(self, f"_{spec.kind}_{inv.method}", None)
        if handler is None:
            raise UnsimulableOperation(
                f"thread {j}: cannot simulate {inv.method!r} on "
                f"{spec.kind} object {inv.obj!r}")
        result = yield from handler(j, spec, *inv.args)
        return result

    # ------------------------------------------------------------------
    def _spin(self, j: int, op: SpinOp) -> Generator:
        """Simulate a busy-wait with the monotone-predicate wait protocol
        described in the module docstring."""
        inv = op.invocation
        spec = self._spec_of(j, inv.obj)
        projector = self._projector(j, spec, inv.method, inv.args)
        if projector is None:
            raise UnsimulableOperation(
                f"thread {j}: busy-wait on non-read-only source operation "
                f"{inv!r}")
        while True:
            cells = yield from sim_snapshot(self.state, j)
            result = projector(cells)
            if op.predicate(result):
                return result
            if not self.state.eager_spin:
                yield from self._await_progress(j, op.predicate, projector)

    def _await_progress(self, j: int,
                        predicate: Callable[[Any], bool],
                        projector: Callable) -> Generator:
        """Park until re-reading could possibly change the outcome."""
        # Baseline: the freshest simulators' view.  If the predicate
        # already holds on its local projection, progress is available
        # right now and waiting would be wrong.
        baseline = yield self.state.MEM.snapshot()
        local = projector(
            _most_advanced(baseline, self.state.n_simulated))
        if predicate(local):
            return
        probe = self.state.snap_agreement.instance(
            ("snap", j, self.state.snap_sn[j] + 1))
        probe_op = getattr(probe, "activity_probe", None)
        while True:
            changed = yield SpinOp(
                self.state.MEM.snapshot(),
                lambda s, b=baseline: s != b, period=2)
            if changed is not SPIN_FAILED:
                return
            if probe_op is None:
                continue
            probe_inv, probe_pred = probe_op()
            active = yield SpinOp(probe_inv, probe_pred, period=2)
            if active is not SPIN_FAILED:
                return

    # ------------------------------------------------------------------
    # Projectors: pure functions from the agreed cell vector to the
    # result of a read-like source operation.  Returning None from
    # _projector means the operation is not read-like.
    # ------------------------------------------------------------------
    def _projector(self, j: int, spec: ObjectSpec, method: str,
                   args: Tuple[Any, ...]):
        key = (spec.kind, method)
        if key == ("snapshot", "snapshot"):
            return self._proj_vector(("snap", spec.name),
                                     spec.param("size"))
        if key == ("snapshot", "read"):
            (index,) = args
            return self._proj_cell(index, ("snap", spec.name))
        if key == ("snapshot_family", "snapshot"):
            (fkey,) = args
            return self._proj_vector(("snapf", spec.name, fkey),
                                     spec.param("size"))
        if key == ("snapshot_family", "read"):
            fkey, index = args
            return self._proj_cell(index, ("snapf", spec.name, fkey))
        if key == ("register", "read"):
            writer = spec.param("writer")
            slot = ("reg", spec.name)
            if writer is None:
                return self._proj_tagged(slot)
            return self._proj_cell(writer, slot)
        if key == ("register_array", "read"):
            (index,) = args
            slot = ("rega", spec.name, index)
            if spec.param("single_writer", False):
                return self._proj_cell(index, slot)
            return self._proj_tagged(slot)
        if key == ("register_family", "read"):
            (fkey,) = args
            return self._proj_tagged(("regf", spec.name, fkey))
        return None

    @staticmethod
    def _slot_of(cell: Any, slot: Hashable) -> Any:
        if cell is BOTTOM:
            return BOTTOM
        return cell.get(slot, BOTTOM)

    def _proj_vector(self, slot_prefix: Hashable, size: int):
        def project(cells: Tuple[Any, ...]) -> Tuple[Any, ...]:
            return tuple(
                self._slot_of(cells[y], slot_prefix)
                if y < len(cells) else BOTTOM
                for y in range(size))
        return project

    def _proj_cell(self, index: int, slot: Hashable):
        def project(cells: Tuple[Any, ...]) -> Any:
            return self._slot_of(cells[index], slot)
        return project

    def _proj_tagged(self, slot: Hashable):
        def project(cells: Tuple[Any, ...]) -> Any:
            best = None
            for cell in cells:
                entry = self._slot_of(cell, slot)
                if entry is BOTTOM:
                    continue
                if best is None or entry[:2] > best[:2]:
                    best = entry
            return BOTTOM if best is None else best[2]
        return project

    # -- virtual memory plumbing ---------------------------------------
    def _write_slot(self, j: int, slot: Hashable, value: Any) -> Generator:
        image = self._images.setdefault(j, {})
        image[slot] = value
        yield from sim_write(self.state, j, dict(image))

    def _tagged_write(self, j: int, slot: Hashable, value: Any) -> Generator:
        seq = self._seqs.get((j, slot), 0) + 1
        self._seqs[(j, slot)] = seq
        yield from self._write_slot(j, slot, (seq, j, value))

    # -- snapshot objects ------------------------------------------------
    def _snapshot_write(self, j: int, spec: ObjectSpec, index: int,
                        value: Any) -> Generator:
        if index != j:
            raise SourcePortViolation(
                f"thread {j} wrote entry {index} of snapshot {spec.name!r}; "
                f"only single-writer snapshot memories are simulable")
        yield from self._write_slot(j, ("snap", spec.name), value)

    def _snapshot_update(self, j: int, spec: ObjectSpec,
                         value: Any) -> Generator:
        yield from self._snapshot_write(j, spec, j, value)

    # -- snapshot families -------------------------------------------------
    def _snapshot_family_write(self, j: int, spec: ObjectSpec,
                               key: Hashable, index: int,
                               value: Any) -> Generator:
        if index != j:
            raise SourcePortViolation(
                f"thread {j} wrote entry {index} of snapshot family "
                f"{spec.name!r}[{key!r}]")
        yield from self._write_slot(j, ("snapf", spec.name, key), value)

    # -- registers ---------------------------------------------------------
    def _register_write(self, j: int, spec: ObjectSpec,
                        value: Any) -> Generator:
        writer = spec.param("writer")
        if writer is not None and writer != j:
            raise SourcePortViolation(
                f"thread {j} wrote single-writer register {spec.name!r} "
                f"owned by p{writer}")
        if writer is None:
            yield from self._tagged_write(j, ("reg", spec.name), value)
        else:
            yield from self._write_slot(j, ("reg", spec.name), value)

    # -- register arrays ----------------------------------------------------
    def _register_array_write(self, j: int, spec: ObjectSpec, index: int,
                              value: Any) -> Generator:
        slot = ("rega", spec.name, index)
        if spec.param("single_writer", False):
            if index != j:
                raise SourcePortViolation(
                    f"thread {j} wrote single-writer cell "
                    f"{spec.name}[{index}]")
            yield from self._write_slot(j, slot, value)
        else:
            yield from self._tagged_write(j, slot, value)

    # -- register families ---------------------------------------------------
    def _register_family_write(self, j: int, spec: ObjectSpec,
                               key: Hashable, value: Any) -> Generator:
        yield from self._tagged_write(j, ("regf", spec.name, key), value)

    # -- one-shot decision objects (Figure 4) --------------------------------
    def _xcons_propose(self, j: int, spec: ObjectSpec,
                       value: Any) -> Generator:
        if spec.ports is not None and j not in spec.ports:
            raise SourcePortViolation(
                f"thread {j} proposed to x_cons {spec.name!r}, ports "
                f"{sorted(spec.ports)}")
        result = yield from sim_object_op(
            self.state, ("xcons", spec.name), value)
        return result

    def _kset_propose(self, j: int, spec: ObjectSpec,
                      value: Any) -> Generator:
        if spec.ports is not None and j not in spec.ports:
            raise SourcePortViolation(
                f"thread {j} proposed to kset {spec.name!r}, ports "
                f"{sorted(spec.ports)}")
        # A single agreed value is a legal (1 <= ℓ)-refinement of the
        # ℓ-set agreement specification.
        result = yield from sim_object_op(
            self.state, ("kset", spec.name), value)
        return result

    def _tas_test_and_set(self, j: int, spec: ObjectSpec) -> Generator:
        winner = yield from sim_object_op(
            self.state, ("tas", spec.name), j)
        return winner == j

    def _tas_family_test_and_set(self, j: int, spec: ObjectSpec,
                                 key: Hashable) -> Generator:
        winner = yield from sim_object_op(
            self.state, ("tasf", spec.name, key), j)
        return winner == j

    def _xcons_family_propose(self, j: int, spec: ObjectSpec,
                              key: Hashable, ell: int,
                              value: Any) -> Generator:
        subsets = spec.param("subsets")
        if not 0 <= ell < len(subsets):
            raise UnsimulableOperation(
                f"thread {j}: subset index {ell} out of range for "
                f"{spec.name!r}")
        if j not in subsets[ell]:
            raise SourcePortViolation(
                f"thread {j} proposed to {spec.name!r}[{key!r}][{ell}], "
                f"ports {sorted(subsets[ell])}")
        result = yield from sim_object_op(
            self.state, ("xconsf", spec.name, key, ell), value)
        return result
