"""The simulation operations of the BG machinery (paper Figures 2-4).

A :class:`SimulatorState` holds the local state the paper attributes to a
simulator qi: its local copy ``mem_i`` of the simulated memory (with write
sequence numbers), the per-simulated-process counters ``w_sn`` and
``snap_sn``, and the per-object result cache ``xres``.

The three operations are generator functions yielding *target-model*
operations (plus local mutex ops resolved by the trampoline):

* :func:`sim_write`    -- Figure 2: advance the local copy, publish it in
  the simulators' snapshot object MEM.
* :func:`sim_snapshot` -- Figure 3: snapshot MEM, extract the most advanced
  value per simulated process, agree on the result through the
  safe-agreement object SAFE_AG[j, snapsn] (protected by mutex1).
* :func:`sim_object_op` -- Figure 4 generalized: agree once per simulated
  one-shot object through an agreement instance, cache the result in xres
  (protected by mutex2, nesting mutex1 around the propose).

Which agreement type backs these operations is a parameter: safe-agreement
gives the Section 3 simulation, x-safe-agreement the Section 4 / 5.5 ones.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Hashable, List, Tuple

from ..agreement.base import AgreementFactory
from ..memory.base import BOTTOM
from ..runtime.ops import ObjectProxy
from .mutex import MUTEX1, MUTEX2, AcquireLocal, ReleaseLocal

#: Store name of the simulators' shared snapshot memory.
MEM_NAME = "MEM"


class SimulatorState:
    """Local (per-simulator) state: the paper's mem_i, w_sn, snap_sn, xres."""

    def __init__(self, sim_id: int, n_simulated: int,
                 snap_agreement: AgreementFactory,
                 obj_agreement: AgreementFactory,
                 mem_name: str = MEM_NAME,
                 per_object_mutex2: bool = True,
                 eager_spin: bool = False) -> None:
        self.i = sim_id
        self.n_simulated = n_simulated
        #: Finding F1 (EXPERIMENTS.md): per-object mutex2 is required for
        #: the blocking lemmas; False reverts to the paper's literal
        #: Figure 4 (one global mutex2) for the ablation benchmark.
        self.per_object_mutex2 = per_object_mutex2
        #: True reverts the translator's busy-wait protocol to naive
        #: re-reading (one fresh agreement per failed predicate check);
        #: used by the wait-protocol ablation benchmark.
        self.eager_spin = eager_spin
        #: mem_i[j] = (last value written by pj as simulated here, seq no).
        self.mem_i: List[Tuple[Any, int]] = [(BOTTOM, 0)] * n_simulated
        self.w_sn = [0] * n_simulated
        self.snap_sn = [0] * n_simulated
        self.xres: Dict[Hashable, Any] = {}
        self.MEM = ObjectProxy(mem_name)
        self.snap_agreement = snap_agreement
        self.obj_agreement = obj_agreement
        #: Statistics for the benchmarks.
        self.writes_simulated = 0
        self.snapshots_simulated = 0
        self.object_ops_simulated = 0


def sim_write(state: SimulatorState, j: int, value: Any) -> Generator:
    """Figure 2: simulate ``mem[j].write(value)`` on behalf of pj."""
    # (01)-(02) bump the sequence number and update the local copy.
    state.w_sn[j] += 1
    state.mem_i[j] = (value, state.w_sn[j])
    state.writes_simulated += 1
    # (03) publish the whole local copy in MEM[i], atomically.
    yield state.MEM.write(state.i, tuple(state.mem_i))


def _most_advanced(sm: Tuple[Any, ...], n_simulated: int
                   ) -> Tuple[Any, ...]:
    """Figure 3 lines 02-03: for each simulated process py, the value
    written by the simulator most advanced in py's simulation."""
    result = []
    for y in range(n_simulated):
        best_value, best_sn = BOTTOM, 0
        for row in sm:
            if row is BOTTOM:
                continue
            value, sn = row[y]
            if sn > best_sn:
                best_value, best_sn = value, sn
        result.append(best_value)
    return tuple(result)


def sim_snapshot(state: SimulatorState, j: int) -> Generator:
    """Figure 3: simulate ``mem.snapshot()`` on behalf of pj.

    All simulators obtain the same result for pj's snapsn-th snapshot, via
    the agreement instance keyed ('snap', j, snapsn).  mutex1 ensures this
    simulator has at most one pending propose at a time, so its crash can
    block at most one agreement object (Lemma 1).
    """
    # (01)-(03) snapshot MEM and extract the most advanced values.
    sm = yield state.MEM.snapshot()
    proposal = _most_advanced(sm, state.n_simulated)
    # (04) next snapshot sequence number for pj.
    state.snap_sn[j] += 1
    snapsn = state.snap_sn[j]
    state.snapshots_simulated += 1
    instance = state.snap_agreement.instance(("snap", j, snapsn))
    # (05) propose inside mutex1.
    yield AcquireLocal(MUTEX1)
    yield from instance.propose(state.i, proposal)
    yield ReleaseLocal(MUTEX1)
    # (06)-(07) decide (outside mutex1: deciding may wait, proposing not).
    result = yield from instance.decide(state.i)
    return result


def sim_object_op(state: SimulatorState, obj_key: Hashable,
                  proposal: Any) -> Generator:
    """Figure 4 generalized: simulate a one-shot operation on a shared
    object ``obj_key`` whose outcome must be agreed once for all simulated
    invokers (x_cons_propose, and by the same token one-shot test&set or
    set-agreement -- see `repro.bg.translate`).

    Returns the agreed outcome.  mutex2 makes the xres check-and-fill
    atomic w.r.t. this simulator's other threads, so the simulator proposes
    at most once to the one-shot agreement object; mutex1 is re-entered
    around the propose so that a crash here blocks either this object or
    one snapshot agreement, never both (paper, Section 3.3).

    Refinement over the paper's Figure 4: mutex2 is *per simulated
    object*, not one global mutex.  Figure 4's sa_decide() is invoked
    inside the mutex2 critical section, and sa_decide() blocks forever
    when the agreement object died (its proposer crashed mid-propose);
    with a single global mutex2 that one dead object would stall every
    other simulated object operation of every live simulator, breaking
    the blocking accounting of Lemma 1 / Lemma 7.  A per-object mutex2
    confines the damage to the (<= x) processes sharing the dead object,
    which is exactly the bound the lemmas claim.  (See EXPERIMENTS.md,
    finding F1, for the failing execution that motivates this.)
    """
    mutex2 = f"{MUTEX2}[{obj_key!r}]" if state.per_object_mutex2 else MUTEX2
    # (01) enter mutex2 before checking xres (see the paper's footnote 2).
    yield AcquireLocal(mutex2)
    if obj_key not in state.xres:
        instance = state.obj_agreement.instance(("obj", obj_key))
        # (02) propose inside mutex1.
        yield AcquireLocal(MUTEX1)
        yield from instance.propose(state.i, proposal)
        yield ReleaseLocal(MUTEX1)
        # (03) decide and cache.
        state.xres[obj_key] = yield from instance.decide(state.i)
        state.object_ops_simulated += 1
    yield ReleaseLocal(mutex2)
    # (06) return the cached agreed outcome.
    return state.xres[obj_key]


def sim_input(state: SimulatorState, j: int, own_input: Any) -> Generator:
    """Agree on the input of simulated process pj.

    Each simulator proposes its *own* task input as pj's input; the
    agreement fixes one of them.  For colorless tasks this is legitimate:
    any proposed value may be proposed by any process.  Protected by mutex1
    like any other propose.
    """
    instance = state.snap_agreement.instance(("input", j))
    yield AcquireLocal(MUTEX1)
    yield from instance.propose(state.i, own_input)
    yield ReleaseLocal(MUTEX1)
    value = yield from instance.decide(state.i)
    return value
