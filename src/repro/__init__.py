"""repro: The Multiplicative Power of Consensus Numbers (Imbs & Raynal,
PODC 2010), reproduced as a runnable library.

The package provides:

* ``repro.runtime``    -- a deterministic cooperative-step simulator of
  asynchronous crash-prone shared-memory systems;
* ``repro.memory`` / ``repro.objects`` -- the shared-object substrate
  (registers, snapshots, consensus-number-x objects, test&set, ...);
* ``repro.agreement``  -- safe-agreement (Fig. 1) and the paper's new
  x-safe-agreement (Figs. 5-6);
* ``repro.bg``         -- the generic BG-simulation machinery (Figs. 2-4);
* ``repro.core``       -- the paper's results: the Section 3 and Section 4
  simulations, the colored variant (Sec. 5.5), the floor(t/x) equivalence
  calculus (Sec. 5.4) and transfer chains (Fig. 7);
* ``repro.algorithms`` / ``repro.tasks`` -- concrete algorithms and
  decision-task specifications;
* ``repro.analysis``   -- linearizability checking and lemma certificates.

Quickstart::

    from repro import ASM, KSetReadWrite, simulate_with_xcons, run_algorithm
    src = KSetReadWrite(n=6, t=2, k=3)          # ASM(6, 2, 1)
    alg = simulate_with_xcons(src, t_prime=5, x=2)   # ASM(6, 5, 2)
    result = run_algorithm(alg, [10, 20, 30, 40, 50, 60])
"""

from .algorithms import (Algorithm, ConsensusFromXCons,
                         ConsensusReadWriteFailureFree,
                         GroupedKSetFromXCons, IdentityAlgorithm,
                         KSetReadWrite, OmegaConsensus,
                         OmegaXClusterConsensus, RenamingFromTAS,
                         SplitterGridRenaming, WriteThenSnapshot,
                         run_algorithm)
from .detectors import OmegaLeader, OmegaX
from .core import (ASM, ModelViolation, SimulationAlgorithm, bg_reduce,
                   canonical, consensus_solvable,
                   equivalence_certificate, equivalence_classes,
                   equivalent, generalized_bg_reduce, in_band,
                   kset_solvable, multiplicative_band, partition_table,
                   plan_transfer, resilience_index, simulate_colored,
                   simulate_in_read_write, simulate_with_xcons, stronger,
                   task_solvable, transfer_algorithm,
                   transfer_impossibility, useless_boost)
from .runtime import (CrashPlan, PriorityAdversary, RoundRobinAdversary,
                      RunResult, SeededRandomAdversary, run_processes)
from .tasks import (ConsensusTask, DistinctValuesTask, KSetAgreementTask,
                    RenamingTask, Task, TaskVerdict)

__version__ = "1.0.0"

__all__ = [
    "Algorithm", "ConsensusFromXCons", "ConsensusReadWriteFailureFree",
    "GroupedKSetFromXCons", "IdentityAlgorithm", "KSetReadWrite",
    "OmegaConsensus", "OmegaXClusterConsensus",
    "RenamingFromTAS", "SplitterGridRenaming", "WriteThenSnapshot",
    "run_algorithm",
    "OmegaLeader", "OmegaX",
    "ASM", "ModelViolation", "SimulationAlgorithm", "bg_reduce",
    "canonical", "consensus_solvable", "equivalence_certificate",
    "equivalence_classes",
    "equivalent", "generalized_bg_reduce", "in_band", "kset_solvable",
    "multiplicative_band", "partition_table", "plan_transfer",
    "resilience_index", "simulate_colored", "simulate_in_read_write",
    "simulate_with_xcons", "stronger", "task_solvable",
    "transfer_algorithm", "transfer_impossibility", "useless_boost",
    "CrashPlan", "PriorityAdversary", "RoundRobinAdversary", "RunResult",
    "SeededRandomAdversary", "run_processes",
    "ConsensusTask", "DistinctValuesTask", "KSetAgreementTask",
    "RenamingTask", "Task", "TaskVerdict",
    "__version__",
]
