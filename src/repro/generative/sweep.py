"""The cross-check driver: synthesized configurations vs the oracle.

For each configuration produced by :mod:`repro.generative.generator`
the driver computes two verdicts and fails loudly when they differ:

* **predicted** -- what the solvability oracle derives from the
  paper's calculus (``⌊t/x⌋`` routed through its ``index_fn``);
* **observed** -- what actually happens: exhaustive DPOR exploration
  for the explorable families, direct execution (lifted k-set runs,
  ABD histories, footprint audits) or an independent brute-force
  resilience index for the rest.

A disagreement is shrunk (:func:`repro.generative.source.shrink_choices`)
to a minimal replayable choice tape, so the report pinpoints the
smallest configuration on which theory and machine diverge.  The whole
sweep is budget-aware: a ``timeout`` stops it cleanly between (or
inside) configurations with a partial result listing completed and
remaining indices, and a later sweep can ``skip`` already-verified
indices (``--resume``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms import KSetReadWrite, run_algorithm
from ..analysis import RegisterSpec, check_linearizable
from ..analysis.metrics import RunMetrics
from ..core import simulate_with_xcons
from ..lint import FootprintViolation, audit_scenario
from ..messaging import (DelayFault, DropFault, DuplicateFault,
                         MessageFaultPlan, ReadOp, ReorderFault, WriteOp,
                         run_abd)
from ..runtime import (CounterexampleFound, ExplorationInterrupted,
                       RoundRobinAdversary, SeededRandomAdversary, explore)
from ..runtime.parallel import explore_parallel
from ..scenarios import ScenarioRef
from ..tasks import KSetAgreementTask
from .generator import GENERATOR_VERSION, GeneratedConfig, \
    config_from_choices, generate_config, scenario_for
from .oracle import (PASS, SOLVABLE, UNSOLVABLE, VIOLATION, Prediction,
                     SolvabilityOracle, reference_index)
from .source import shrink_choices


@dataclass
class ConfigOutcome:
    """Predicted vs observed verdict for one configuration.

    All fields are deterministic content (no wall-clock values), so a
    JSON dump of an outcome is bit-for-bit reproducible across runs
    and job counts.  ``shrunk_choices``/``shrunk_config`` are filled
    only for disagreements, after shrinking.
    """

    config: GeneratedConfig
    predicted: Prediction
    observed: str
    observed_detail: str
    shrunk_choices: Optional[Tuple[int, ...]] = None
    shrunk_config: Optional[GeneratedConfig] = None

    @property
    def agree(self) -> bool:
        """True when the oracle's verdict matches the observation."""
        return self.predicted.verdict == self.observed

    def to_dict(self) -> Dict:
        """JSON-serializable, deterministic outcome record."""
        record = {
            "index": self.config.index,
            "name": self.config.name,
            "family": self.config.family,
            "params": dict(sorted(self.config.params.items())),
            "choices": list(self.config.choices),
            "predicted": self.predicted.verdict,
            "predicted_reason": self.predicted.reason,
            "observed": self.observed,
            "observed_detail": self.observed_detail,
            "agree": self.agree,
        }
        if self.shrunk_choices is not None:
            record["shrunk_choices"] = list(self.shrunk_choices)
            record["shrunk"] = self.shrunk_config.describe()
        return record

    def describe(self) -> str:
        """One-line human-readable summary."""
        mark = "ok " if self.agree else "DISAGREE"
        return (f"{mark} {self.config.describe()}: predicted "
                f"{self.predicted}, observed {self.observed} "
                f"({self.observed_detail})")


def _remaining_seconds(deadline: Optional[float]) -> Optional[float]:
    """Seconds left before ``deadline``; raises when already spent."""
    if deadline is None:
        return None
    remaining = deadline - monotonic()
    if remaining <= 0:
        raise ExplorationInterrupted(
            "timeout", "sweep wall-clock budget exhausted")
    return remaining


# ---------------------------------------------------------------------------
# Per-family executors: (config, oracle) -> (Prediction, observed, detail)
# ---------------------------------------------------------------------------

def _execute_calculus(cfg, oracle):
    """Lattice point: oracle index vs an independent brute floor."""
    t, x, k = cfg.params["t"], cfg.params["x"], cfg.params["k"]
    predicted = oracle.kset_solvable(t, x, k)
    index = reference_index(t, x)
    observed = SOLVABLE if k > index else UNSOLVABLE
    return predicted, observed, f"brute-force index(t={t},x={x})={index}"


def _execute_construction(cfg, oracle, deadline):
    """Run the paper's lift: KSetReadWrite through simulate_with_xcons."""
    x, t_prime = cfg.params["x"], cfg.params["t_prime"]
    k, n = cfg.params["k"], cfg.params["n"]
    predicted = oracle.kset_solvable(t_prime, x, k)
    source = KSetReadWrite(n=n, t=k - 1, k=k)
    # The lifted model ASM(n', t', x) needs t' < n' and x <= n'.
    lifted = simulate_with_xcons(source, t_prime=t_prime, x=x,
                                 n_simulators=max(t_prime + 1, x))
    inputs = list(range(lifted.n))
    task = KSetAgreementTask(k)
    adversaries = [RoundRobinAdversary(),
                   SeededRandomAdversary(seed=1),
                   SeededRandomAdversary(seed=2)]
    for adversary in adversaries:
        _remaining_seconds(deadline)
        result = run_algorithm(lifted, inputs, adversary=adversary,
                               max_steps=2_000_000)
        verdict = task.validate_run(inputs, result)
        if not verdict.ok:
            return (predicted, UNSOLVABLE,
                    f"{lifted.name} under {adversary!r}: "
                    f"{verdict.explain()}")
    return (predicted, SOLVABLE,
            f"{lifted.name} solved {k}-set agreement under "
            f"{len(adversaries)} adversaries")


#: The ABD workload and the legal message-fault matrix (a healthy
#: n=3, t=1 ABD tolerates each of these by design -- see
#: ``tests/messaging/test_faults.py`` and ``docs/fault_injection.md``).
_ABD_SCRIPTS = ((WriteOp("a"), WriteOp("b")),
                (ReadOp(), ReadOp()),
                (ReadOp(), ReadOp()))


def _abd_plan(kind: int) -> Optional[MessageFaultPlan]:
    """Message-fault plan #``kind`` (0 = healthy network)."""
    if kind == 0:
        return None
    fault = {1: DropFault(sender=0, dest=1, occurrence=1),
             2: DuplicateFault(sender=0, occurrence=2),
             3: DelayFault(sender=0, dest=2, occurrence=1, not_before=30),
             4: ReorderFault(sender=0, dest=1, swaps=3)}[kind]
    return MessageFaultPlan([fault])


def _execute_message(cfg, oracle):
    """ABD under one legal message-fault rule: still linearizable?"""
    kind, seed = cfg.params["plan"], cfg.params["seed"]
    predicted = oracle.message_faults(3, 1, faulty_links=min(kind, 1))
    result, history = run_abd(
        3, 1, writer=0, scripts=[list(s) for s in _ABD_SCRIPTS],
        seed=seed, faults=_abd_plan(kind))
    if result.stalled:
        return predicted, VIOLATION, f"ABD stalled (plan {kind}, s{seed})"
    if not check_linearizable(history, RegisterSpec()):
        return (predicted, VIOLATION,
                f"history not linearizable (plan {kind}, s{seed})")
    return (predicted, PASS,
            f"{len(history)} ops linearizable (plan {kind}, s{seed})")


def _execute_audit(cfg, oracle):
    """Footprint-audit a generated pass-shaped scenario."""
    base = "snapshot" if cfg.params["base"] == 0 else "renaming"
    n = cfg.params["n"]
    params = ({"n": n, "k": n} if base == "snapshot"
              else {"n": n, "namespace": n})
    target = GeneratedConfig(seed=cfg.seed, index=cfg.index,
                             family=base, params=params)
    scenario = scenario_for(target)
    predicted = oracle.audit_sound()
    try:
        report = audit_scenario(scenario, max_steps=50_000,
                                perturb=bool(cfg.params["perturb"]))
    except FootprintViolation as exc:
        return predicted, VIOLATION, f"unsound footprint: {exc}"
    return (predicted, PASS,
            f"{base} audit: {report.runs} runs, "
            f"{report.audited_ops} ops audited")


def _predict_explorable(cfg, oracle) -> Prediction:
    """The oracle's verdict for an explorable configuration."""
    params = cfg.params
    if cfg.family == "blocking":
        return oracle.blocking(params["n"], params["x"], params["crashes"])
    if cfg.family == "byzantine":
        return oracle.byzantine_value_faults(params["n"], 0)
    if cfg.family == "renaming":
        return oracle.renaming(params["n"], params["namespace"])
    return oracle.kview(params["n"], params["k"])


def _execute_explorable(cfg, oracle, jobs, deadline):
    """Exhaustively explore a generated scenario (serial or sharded)."""
    scenario = scenario_for(cfg)
    predicted = _predict_explorable(cfg, oracle)
    try:
        if jobs is not None and cfg.seed >= 0:
            stats = explore_parallel(
                crash_plan_factory=scenario.crash_plan_factory,
                max_steps=scenario.max_steps,
                max_runs=scenario.max_runs,
                jobs=jobs, reduction="dpor",
                scenario=ScenarioRef(cfg.name),
                deadline=deadline)
        else:
            stats = explore(scenario.build, scenario.check,
                            crash_plan_factory=scenario.crash_plan_factory,
                            max_steps=scenario.max_steps,
                            max_runs=scenario.max_runs,
                            reduction="dpor",
                            timeout=_remaining_seconds(deadline))
    except CounterexampleFound as exc:
        ce = exc.counterexample
        return (predicted, VIOLATION,
                f"{type(ce.error).__name__} on schedule "
                f"{list(ce.schedule)}")
    return (predicted, PASS,
            f"all schedules pass ({stats.complete_runs} complete, "
            f"{stats.pruned_runs} pruned)")


def execute_config(cfg: GeneratedConfig,
                   oracle: Optional[SolvabilityOracle] = None,
                   jobs: Optional[int] = None,
                   deadline: Optional[float] = None) -> ConfigOutcome:
    """Run one configuration's experiment and compare to the oracle.

    ``jobs`` shards the exploration of explorable families (ignored by
    direct-execution families, which are already deterministic);
    ``deadline`` is an absolute ``monotonic()`` budget -- crossing it
    raises :class:`~repro.runtime.explore.ExplorationInterrupted` with
    reason ``"timeout"``, which :func:`run_sweep` converts into a
    partial result.
    """
    oracle = oracle or SolvabilityOracle()
    _remaining_seconds(deadline)
    if cfg.explorable:
        predicted, observed, detail = _execute_explorable(
            cfg, oracle, jobs, deadline)
    elif cfg.family == "calculus":
        predicted, observed, detail = _execute_calculus(cfg, oracle)
    elif cfg.family == "construction":
        predicted, observed, detail = _execute_construction(
            cfg, oracle, deadline)
    elif cfg.family == "message":
        predicted, observed, detail = _execute_message(cfg, oracle)
    else:
        predicted, observed, detail = _execute_audit(cfg, oracle)
    return ConfigOutcome(config=cfg, predicted=predicted,
                         observed=observed, observed_detail=detail)


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Everything one sweep established (or got through before a budget).

    ``outcomes`` covers exactly the ``completed`` indices, in index
    order; ``remaining`` lists what a budget interruption left undone
    (always empty for a full sweep).  ``skipped`` are the indices a
    resume was told to trust from an earlier sweep.
    """

    seed: int
    count: int
    jobs: Optional[int]
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    skipped: Tuple[int, ...] = ()
    remaining: Tuple[int, ...] = ()
    interrupted: bool = False
    interrupt_reason: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def completed(self) -> Tuple[int, ...]:
        """Indices whose experiment ran to a verdict this sweep."""
        return tuple(outcome.config.index for outcome in self.outcomes)

    @property
    def verified(self) -> Tuple[int, ...]:
        """Completed indices whose verdicts agreed with the oracle."""
        return tuple(outcome.config.index for outcome in self.outcomes
                     if outcome.agree)

    @property
    def disagreements(self) -> List[ConfigOutcome]:
        """Outcomes where theory and machine diverged."""
        return [outcome for outcome in self.outcomes
                if not outcome.agree]

    @property
    def agreement_rate(self) -> float:
        """Fraction of completed configurations that agreed (1.0 = all)."""
        if not self.outcomes:
            return 1.0
        return len(self.verified) / len(self.outcomes)

    @property
    def family_counts(self) -> Dict[str, int]:
        """Completed configurations per family (sorted by name)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            family = outcome.config.family
            counts[family] = counts.get(family, 0) + 1
        return dict(sorted(counts.items()))

    def to_record(self) -> Dict:
        """The versioned ``kind="sweep"`` metrics record (a dict).

        Timing values use :data:`repro.analysis.metrics.TIMING_KEYS`
        names (``wall_seconds``, ``jobs``), so ``deterministic_view``
        of this record is identical across runs and job counts of the
        same seed -- the property the golden determinism test pins.
        """
        return RunMetrics(
            kind="sweep", name=f"sweep:seed={self.seed}",
            data={
                "seed": self.seed,
                "count": self.count,
                "generator_version": GENERATOR_VERSION,
                "completed": list(self.completed),
                "verified": list(self.verified),
                "skipped": list(self.skipped),
                "remaining": list(self.remaining),
                "partial": self.interrupted,
                "interrupt_reason": self.interrupt_reason,
                "agreement_rate": self.agreement_rate,
                "families": self.family_counts,
                "disagreements": [outcome.to_dict() for outcome
                                  in self.disagreements],
                "outcomes": [outcome.to_dict()
                             for outcome in self.outcomes],
                "jobs": self.jobs if self.jobs else 1,
                "wall_seconds": self.wall_seconds,
            }).to_dict()

    def summary(self) -> str:
        """One-line human-readable summary."""
        state = "PARTIAL" if self.interrupted else "complete"
        return (f"sweep seed={self.seed}: {len(self.completed)}/"
                f"{self.count} configs ({state}), "
                f"{len(self.disagreements)} disagreement(s), "
                f"agreement rate {self.agreement_rate:.3f}")


def _shrink_outcome(outcome: ConfigOutcome,
                    oracle: SolvabilityOracle,
                    deadline: Optional[float],
                    max_attempts: int) -> None:
    """Reduce a disagreeing tape to a minimal still-disagreeing one."""

    def still_fails(choices: Sequence[int]) -> bool:
        candidate = config_from_choices(choices)
        try:
            return not execute_config(candidate, oracle,
                                      deadline=deadline).agree
        except ExplorationInterrupted:
            return False  # out of budget: stop improving, keep current
        except Exception:
            return False  # malformed candidate cannot be the witness
    shrunk = shrink_choices(outcome.config.choices, still_fails,
                            max_attempts=max_attempts)
    outcome.shrunk_choices = shrunk
    outcome.shrunk_config = config_from_choices(shrunk)


def run_sweep(seed: int, count: int,
              oracle: Optional[SolvabilityOracle] = None,
              jobs: Optional[int] = None,
              timeout: Optional[float] = None,
              skip: Sequence[int] = (),
              shrink: bool = True,
              shrink_attempts: int = 150) -> SweepResult:
    """Cross-check ``count`` synthesized configurations of batch ``seed``.

    Configurations run in index order; ``skip`` indices (e.g. verified
    by an earlier, interrupted sweep of the same seed) are not re-run.
    On ``timeout`` the sweep stops cleanly and the result carries
    ``interrupted=True`` plus the completed/remaining split; the CLI
    maps that to exit code 3 and a metrics record flagged
    ``"partial": true``.  Disagreements are shrunk to minimal
    replayable tapes unless ``shrink=False``.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    oracle = oracle or SolvabilityOracle()
    start = monotonic()
    deadline = start + timeout if timeout else None
    skip_set = frozenset(skip)
    result = SweepResult(seed=seed, count=count, jobs=jobs,
                         skipped=tuple(sorted(skip_set)))
    pending = [i for i in range(count) if i not in skip_set]
    for position, index in enumerate(pending):
        cfg = generate_config(seed, index)
        try:
            outcome = execute_config(cfg, oracle, jobs=jobs,
                                     deadline=deadline)
        except ExplorationInterrupted as exc:
            result.interrupted = True
            result.interrupt_reason = exc.reason
            result.remaining = tuple(pending[position:])
            break
        result.outcomes.append(outcome)
    if shrink:
        for outcome in result.disagreements:
            _shrink_outcome(outcome, oracle, deadline, shrink_attempts)
    result.wall_seconds = monotonic() - start
    return result
