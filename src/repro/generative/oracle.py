"""The solvability oracle: predicted verdicts from the paper's calculus.

The paper's main corollary -- ``ASM(n1,t1,x1) ≃ ASM(n2,t2,x2)`` for
colorless tasks iff ``⌊t1/x1⌋ = ⌊t2/x2⌋`` -- makes solvability across
the whole (n, t, x) lattice a *decidable* predicate (the shape "Set
Consensus Collections are Decidable" mechanizes in general).  This
module is that predicate in executable form, plus the per-family
predictions the generative sweep cross-checks against actual
exploration outcomes:

* k-set agreement is solvable in ASM(n, t, x) iff ``k > ⌊t/x⌋``;
* an x-safe-agreement object can be *killed* (its deciders blocked)
  iff the adversary can spend x crashes inside propose, i.e. iff
  ``⌊c/x⌋ >= 1`` for c crash victims -- the multiplicative phenomenon;
* tight renaming from test&set resolves n processes into any namespace
  of at least n names;
* the k-IS view-size bound holds in every crash-free one-shot
  write/snapshot run iff ``k >= n - 1``.

The resilience index ``⌊t/x⌋`` is computed through an **injectable**
``index_fn`` so the mutation-soundness tier can plant an off-by-one
oracle (``⌈t/x⌉``) and prove the sweep detects it (see
:mod:`repro.mutants`, mutant ``oracle-ceil-index``, pinned to the
``sweep`` stage).  Everything downstream of the index routes through
that one function; the honest default is :func:`floor_index`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Normalized verdict vocabulary shared by predictions and observations.
PASS, VIOLATION = "pass", "violation"
SOLVABLE, UNSOLVABLE = "solvable", "unsolvable"


def floor_index(t: int, x: int) -> int:
    """The paper's resilience index ``⌊t/x⌋`` (the honest oracle)."""
    if t < 0 or x < 1:
        raise ValueError(f"need t >= 0 and x >= 1, got t={t}, x={x}")
    return t // x


def reference_index(t: int, x: int) -> int:
    """``⌊t/x⌋`` by repeated subtraction -- an independent route.

    Deliberately shares no code with :func:`floor_index` or
    :meth:`repro.model.ASM.resilience_index`: the sweep uses it as the
    cross-check's reference so a planted off-by-one in the oracle
    cannot cancel out against an identical off-by-one in the ground
    truth.
    """
    if t < 0 or x < 1:
        raise ValueError(f"need t >= 0 and x >= 1, got t={t}, x={x}")
    index, remaining = 0, t
    while remaining >= x:
        remaining -= x
        index += 1
    return index


@dataclass(frozen=True)
class Prediction:
    """One oracle verdict plus the derivation it came from."""

    verdict: str
    reason: str

    def __str__(self) -> str:
        return f"{self.verdict} ({self.reason})"


class SolvabilityOracle:
    """Per-family predicted verdicts, all routed through ``index_fn``.

    The default ``index_fn`` is :func:`floor_index`; the mutation tier
    substitutes a ceiling to prove the sweep's cross-check has teeth.
    """

    def __init__(self,
                 index_fn: Callable[[int, int], int] = floor_index) -> None:
        self.index_fn = index_fn

    # -- the corollary ------------------------------------------------
    def index(self, t: int, x: int) -> int:
        """The oracle's resilience index for (t, x)."""
        return self.index_fn(t, x)

    def kset_solvable(self, t: int, x: int, k: int) -> Prediction:
        """k-set agreement in ASM(·, t, x): solvable iff k > index."""
        index = self.index(t, x)
        verdict = SOLVABLE if k > index else UNSOLVABLE
        return Prediction(verdict,
                          f"k={k} vs index(t={t},x={x})={index}")

    def equivalent(self, t1: int, x1: int, t2: int, x2: int) -> bool:
        """Main-corollary equivalence: equal resilience indices."""
        return self.index(t1, x1) == self.index(t2, x2)

    # -- executable per-family predictions ----------------------------
    def blocking(self, n: int, x: int, crashes: int) -> Prediction:
        """Can ``crashes`` mid-propose crashes block x-safe-agreement?

        Killing the object costs the adversary x crashes *inside
        propose* (paper Lemma 7): a blocking schedule exists iff the
        victims can own every test&set slot, i.e. iff
        ``index(crashes, x) >= 1`` -- and someone must survive to be
        blocked, so additionally ``n > x``.
        """
        killable = self.index(crashes, x) >= 1
        verdict = VIOLATION if (killable and n > x) else PASS
        return Prediction(
            verdict,
            f"index(c={crashes},x={x})={self.index(crashes, x)}, n={n}")

    def byzantine_value_faults(self, n: int, crashes: int) -> Prediction:
        """Value-only Byzantine rewrites never block safe-agreement.

        DPOR-sound fault plans (see :mod:`repro.runtime.faults`) rewrite
        values, never control structure, so agreement and termination
        are those of the healthy protocol under a different input
        vector: pass iff no crash budget accompanies the rewrites.
        """
        verdict = PASS if self.index(crashes, 1) == 0 else VIOLATION
        return Prediction(verdict, f"value-only faults, {crashes} crashes")

    def renaming(self, n: int, namespace: int) -> Prediction:
        """Tight renaming from test&set: n processes into M names.

        The slot-scan protocol resolves every run to names exactly
        {0..n-1}, so the namespace bound holds iff M >= n.
        """
        verdict = PASS if namespace >= n else VIOLATION
        return Prediction(verdict, f"namespace M={namespace} vs n={n}")

    def kview(self, n: int, k: int) -> Prediction:
        """k-IS view-size bound over crash-free one-shot snapshots.

        The first process to snapshot may have seen only its own write,
        so views of size >= n - k survive every schedule iff
        ``n - k <= 1``.
        """
        verdict = PASS if n - k <= 1 else VIOLATION
        return Prediction(verdict, f"min view 1 vs bound n-k={n - k}")

    def message_faults(self, n: int, t: int, faulty_links: int) -> Prediction:
        """ABD under at most t lagging replicas stays linearizable."""
        verdict = PASS if faulty_links <= t else VIOLATION
        return Prediction(verdict,
                          f"{faulty_links} faulty link(s) vs t={t}")

    def audit_sound(self) -> Prediction:
        """Shipped footprint declarations are sound (audited)."""
        return Prediction(PASS, "declared footprints are exact")
