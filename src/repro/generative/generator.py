"""The scenario grammar: choice sequences -> (n, t, x) configurations.

Every synthesized configuration is a pure function of a recorded
integer choice sequence (see :mod:`repro.generative.source`), drawn
from one of eight **families**, each pairing an executable experiment
with a verdict the solvability oracle can predict:

========== ============================================== ============
family     experiment                                     oracle rule
========== ============================================== ============
calculus   resilience-index lattice point (t, x, k)       k > ⌊t/x⌋
construct  KSetReadWrite lifted by ``simulate_with_xcons``k > ⌊t'/x⌋
blocking   x-safe-agreement, c crash-before-publish       ⌊c/x⌋ >= 1
byzantine  safe-agreement under value-only CorruptWrite   always pass
renaming   test&set slot scan into M names                M >= n
snapshot   write-then-snapshot vs the k-IS size bound     k >= n - 1
message    ABD under a legal message-fault plan           always pass
audit      footprint audit of a generated scenario        always pass
========== ============================================== ============

Families marked *explorable* (blocking, byzantine, renaming, snapshot)
compile to a :class:`repro.scenarios.CheckScenario` via
:func:`generated_scenario` and run through the exhaustive DPOR
explorer; the rest execute directly (see
:mod:`repro.generative.sweep`).  Explorable configurations are
addressable as ``generated:SEED:INDEX`` in the scenario registry, so
``python -m repro check generated:7:3`` and parallel exploration via
:class:`repro.scenarios.ScenarioRef` work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..agreement import SafeAgreementFactory, XSafeAgreementFactory
from ..memory import BOTTOM, ObjectStore, SnapshotFamily, TASFamily
from ..runtime import CrashPlan, ObjectProxy, RunResult
from ..runtime.crash import op_on
from ..runtime.faults import CorruptWrite, FaultPlan, FaultTrigger
from ..scenarios import CheckScenario
from ..tasks import KImmediateSnapshotTask
from .oracle import SolvabilityOracle
from .source import ChoiceSource

#: Version of the choice-tape grammar.  A batch is a pure function of
#: ``(seed, count, GENERATOR_VERSION)``: any change to the family
#: wheel, the per-family decoders, or the choice layout must bump this,
#: so ``sweep --resume`` can refuse to skip indices whose meaning
#: shifted between builds.
GENERATOR_VERSION = 1

#: Families whose experiment is exhaustive schedule exploration; only
#: these resolve through the ``generated:`` scenario namespace.
EXPLORABLE_FAMILIES = frozenset(
    {"blocking", "byzantine", "renaming", "snapshot"})

#: All families, in the (stable) order reports enumerate them.
FAMILIES = ("calculus", "construction", "blocking", "byzantine",
            "renaming", "snapshot", "message", "audit")

#: Weighted family wheel: calculus points are cheap, so they dominate;
#: every family keeps enough mass to appear in a 200-config batch.
_FAMILY_WHEEL = (("calculus",) * 5 + ("blocking",) * 2 + ("renaming",) * 2
                 + ("snapshot",) * 2 + ("construction",) * 2
                 + ("byzantine",) + ("message",) + ("audit",))


@dataclass(frozen=True)
class GeneratedConfig:
    """One synthesized configuration, fully determined by its tape.

    ``choices`` is the recorded choice sequence; replaying it through
    :func:`config_from_choices` regenerates ``family`` and ``params``
    exactly, which is what makes shrinking and ``--replay`` possible.
    ``seed``/``index`` are bookkeeping (-1 when rebuilt from a bare
    tape).
    """

    seed: int
    index: int
    family: str
    params: Dict[str, int] = field(compare=False)
    choices: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")

    @property
    def name(self) -> str:
        """The registry name, ``generated:SEED:INDEX``."""
        return f"generated:{self.seed}:{self.index}"

    @property
    def explorable(self) -> bool:
        """True when the experiment is exhaustive exploration."""
        return self.family in EXPLORABLE_FAMILIES

    def describe(self) -> str:
        """One-line human-readable summary."""
        params = ", ".join(f"{k}={v}"
                           for k, v in sorted(self.params.items()))
        return f"{self.name} {self.family}({params})"


def _draw(source: ChoiceSource) -> Tuple[str, Dict[str, int]]:
    """Draw one (family, params) pair from the grammar."""
    family = source.pick(_FAMILY_WHEEL)
    if family == "calculus":
        return family, {"t": source.choose(13),
                        "x": 1 + source.choose(6),
                        "k": 1 + source.choose(6)}
    if family == "construction":
        # Source algorithm solves (index+1)-set agreement ⌊t'/x⌋-
        # resiliently; the lift must preserve that for any t' with the
        # same index (r is the "wasted" crash remainder, kept >= 1 at
        # index 0 so the lifted model is never failure-free).
        x = 2 + source.choose(2)
        index = source.choose(3)
        r = 1 + source.choose(x - 1) if index == 0 else source.choose(x)
        return family, {"x": x, "t_prime": index * x + r,
                        "k": index + 1, "n": index + 2}
    if family == "blocking":
        n = 2 + source.choose(2)
        return family, {"n": n, "x": 1 + source.choose(n),
                        "crashes": source.choose(n + 1)}
    if family == "byzantine":
        return family, {"n": 2, "victim": source.choose(2),
                        "persistent": source.choose(2)}
    if family == "renaming":
        n = 2 + source.choose(2)
        return family, {"n": n, "namespace": 1 + source.choose(2 * n)}
    if family == "snapshot":
        n = 2 + source.choose(2)
        return family, {"n": n, "k": source.choose(n + 1)}
    if family == "message":
        return family, {"plan": source.choose(5), "seed": source.choose(6)}
    # audit
    return family, {"base": source.choose(2), "n": 2 + source.choose(2),
                    "perturb": source.choose(2)}


def generate_config(seed: int, index: int) -> GeneratedConfig:
    """Configuration ``index`` of batch ``seed`` (pure function)."""
    source = ChoiceSource.from_seed(seed, index)
    family, params = _draw(source)
    return GeneratedConfig(seed=seed, index=index, family=family,
                           params=params, choices=tuple(source.choices))


def generate_batch(seed: int, count: int) -> Tuple[GeneratedConfig, ...]:
    """The first ``count`` configurations of batch ``seed``."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return tuple(generate_config(seed, i) for i in range(count))


def config_from_choices(choices: Sequence[int],
                        seed: int = -1,
                        index: int = -1) -> GeneratedConfig:
    """Rebuild a configuration from a recorded (or shrunk) tape.

    Any integer sequence is valid (choices reduce modulo their bound;
    exhausted tapes pad with zeros), so this is total -- the property
    the shrinker relies on.
    """
    source = ChoiceSource.from_choices(choices)
    family, params = _draw(source)
    return GeneratedConfig(seed=seed, index=index, family=family,
                           params=params, choices=tuple(source.choices))


# ---------------------------------------------------------------------------
# Explorable families -> CheckScenario
# ---------------------------------------------------------------------------

#: Family names for the shared objects of generated scenarios.
_XSA_PREFIX = "XSA"
_SA_FAMILY = "SAFE_AG"
_NAMES_FAMILY = "NAMES"
_SNAP_FAMILY = "SNAP"

#: Byzantine replacement value -- anything outside the honest inputs.
BYZ_VALUE = "byz"


def _blocking_scenario(cfg: GeneratedConfig) -> CheckScenario:
    """x-safe-agreement with ``crashes`` victims dying pre-publish.

    Victims crash immediately before their write to the result
    register -- i.e. *inside* propose, after winning a test&set slot
    and completing the x_cons chain.  The paper's blocking lemma says
    the adversary kills the object (deadlocking every survivor stuck
    in decide) iff it can spend x such crashes, so the scenario's
    safety property is simply "no deadlock"; the oracle predicts which
    side holds from ``⌊crashes/x⌋``.
    """
    n, x = cfg.params["n"], cfg.params["x"]
    crashes = cfg.params["crashes"]

    def build():
        factory = XSafeAgreementFactory(n, x, prefix=_XSA_PREFIX)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from inst.propose(i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    proposals = {f"v{i}" for i in range(n)}

    def check(result: RunResult) -> None:
        assert not result.deadlocked, \
            (f"{crashes} crash(es) inside propose blocked "
             f"x-safe-agreement (x={x}): {result.summary()}")
        assert len(result.decided_values) <= 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= proposals, \
            f"validity violated: {sorted(result.decided_values)}"

    crash_plan_factory = None
    if crashes:
        def crash_plan_factory():
            return CrashPlan.before_operation_each(
                range(crashes), op_on(f"{_XSA_PREFIX}_REG", "write"))

    expected = SolvabilityOracle().blocking(n, x, crashes)
    return CheckScenario(
        name=cfg.name,
        description=(f"[generated] x-safe-agreement n={n} x={x}, "
                     f"{crashes} crash(es) before publishing; paper "
                     f"predicts {expected}"),
        build=build, check=check,
        crash_plan_factory=crash_plan_factory,
        max_steps=20 * n,
        expect_violation=expected.verdict == "violation")


def _byzantine_scenario(cfg: GeneratedConfig) -> CheckScenario:
    """Safe-agreement with one victim's writes value-corrupted.

    The corruption rewrites only the *value* slot of the victim's
    ``(value, level)`` snapshot entries, preserving the protocol's
    level structure -- the DPOR-soundness contract of the fault layer.
    Agreement is value-independent, so the run must still decide one
    value, drawn from the honest proposals plus the planted one.
    """
    n, victim = cfg.params["n"], cfg.params["victim"]
    persistent = bool(cfg.params["persistent"])

    def build():
        factory = SafeAgreementFactory(n, family_name=_SA_FAMILY)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from inst.propose(i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    def corrupt(args):
        key, sim_id, entry = args
        return (key, sim_id, (BYZ_VALUE, entry[1]))

    def crash_plan_factory():
        trigger = FaultTrigger(matching=op_on(_SA_FAMILY, "write"),
                               once=not persistent)
        return FaultPlan(behaviors={
            victim: [CorruptWrite(trigger, corrupt=corrupt)]})

    allowed = {f"v{i}" for i in range(n)} | {BYZ_VALUE}

    def check(result: RunResult) -> None:
        assert not result.deadlocked, \
            f"value-only faults must not block: {result.summary()}"
        assert result.decided_pids == set(range(n)), \
            f"not everyone decided: {result.summary()}"
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= allowed, \
            f"decided value from nowhere: {sorted(result.decided_values)}"

    return CheckScenario(
        name=cfg.name,
        description=(f"[generated] safe-agreement n={n}, p{victim} "
                     f"publishes corrupted values "
                     f"({'persistent' if persistent else 'once'}): "
                     f"agreement must survive"),
        build=build, check=check,
        crash_plan_factory=crash_plan_factory,
        max_steps=8 * n)


def _renaming_scenario(cfg: GeneratedConfig) -> CheckScenario:
    """Test&set slot scan: n processes grab names in {0..M-1}.

    Each process tries slots in increasing order and takes the first
    test&set it wins.  Exactly one process wins each contested slot,
    so every run resolves to names exactly {0..n-1}; the namespace
    bound therefore holds in all schedules iff M >= n, which is the
    oracle's prediction.
    """
    n, namespace = cfg.params["n"], cfg.params["namespace"]

    def build():
        store = ObjectStore()
        store.add(TASFamily(_NAMES_FAMILY))
        tas = ObjectProxy(_NAMES_FAMILY)

        def prog(pid):
            for slot in range(namespace):
                won = yield tas.test_and_set(slot)
                if won:
                    return slot
            return None

        return {i: prog(i) for i in range(n)}, store

    def check(result: RunResult) -> None:
        names = sorted(result.decisions.items())
        assert result.decided_pids == set(range(n)), \
            f"renaming is wait-free, yet: {result.summary()}"
        for pid, name in names:
            assert name is not None and 0 <= name < namespace, \
                (f"p{pid} got no name in the M={namespace} "
                 f"namespace: {names}")
        assert len({name for _, name in names}) == n, \
            f"names collide: {names}"

    expected = SolvabilityOracle().renaming(n, namespace)
    return CheckScenario(
        name=cfg.name,
        description=(f"[generated] test&set renaming, n={n} into "
                     f"M={namespace} names; paper predicts {expected}"),
        build=build, check=check,
        max_steps=n * namespace + 4,
        expect_violation=expected.verdict == "violation")


def _snapshot_scenario(cfg: GeneratedConfig) -> CheckScenario:
    """Write-then-snapshot graded by the k-IS task specification.

    Self-inclusion and containment hold in every run of an atomic
    snapshot; the k-IS view-size bound ``>= n - k`` additionally
    survives all crash-free schedules iff ``k >= n - 1`` (a solo
    snapshotter sees only itself), which is the oracle's prediction.
    """
    n, k = cfg.params["n"], cfg.params["k"]
    inputs = [f"v{i}" for i in range(n)]
    task = KImmediateSnapshotTask(n, k)

    def build():
        store = ObjectStore()
        store.add(SnapshotFamily(_SNAP_FAMILY, n))
        mem = ObjectProxy(_SNAP_FAMILY)

        def prog(pid):
            yield mem.write("k", pid, inputs[pid])
            snap = yield mem.snapshot("k")
            return tuple((i, entry) for i, entry in enumerate(snap)
                         if entry is not BOTTOM)

        return {i: prog(i) for i in range(n)}, store

    def check(result: RunResult) -> None:
        assert result.decided_pids == set(range(n)), \
            f"snapshot protocol is wait-free, yet: {result.summary()}"
        violations = task.check_outputs(inputs, result.decisions)
        assert not violations, f"{task.name}: " + "; ".join(violations)

    expected = SolvabilityOracle().kview(n, k)
    return CheckScenario(
        name=cfg.name,
        description=(f"[generated] one-shot snapshot n={n} vs the "
                     f"{k}-IS view bound; paper predicts {expected}"),
        build=build, check=check,
        max_steps=2 * n + 2,
        expect_violation=expected.verdict == "violation")


_SCENARIO_BUILDERS = {
    "blocking": _blocking_scenario,
    "byzantine": _byzantine_scenario,
    "renaming": _renaming_scenario,
    "snapshot": _snapshot_scenario,
}


def scenario_for(cfg: GeneratedConfig) -> CheckScenario:
    """Compile an explorable configuration to a CheckScenario."""
    builder = _SCENARIO_BUILDERS.get(cfg.family)
    if builder is None:
        raise KeyError(
            f"{cfg.describe()} is not explorable: family "
            f"{cfg.family!r} executes directly (explorable families: "
            f"{sorted(EXPLORABLE_FAMILIES)})")
    return builder(cfg)


def generated_scenario(seed: int, index: int) -> CheckScenario:
    """Resolve ``generated:seed:index`` to its CheckScenario.

    This is the hook :func:`repro.scenarios.build_scenario` calls for
    the ``generated:`` namespace, which is what lets fork-pool workers
    rebuild a synthesized scenario from its picklable
    :class:`~repro.scenarios.ScenarioRef` by (seed, index) alone.
    Raises ``KeyError`` for non-explorable families.
    """
    return scenario_for(generate_config(seed, index))
