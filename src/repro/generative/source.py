"""Seeded, replayable choice streams and counterexample shrinking.

The generative sweep (see :mod:`repro.generative.sweep`) must be

* **reproducible** -- the batch synthesized from ``--seed S`` is a pure
  function of ``S``, bit-for-bit identical across runs, platforms, and
  job counts; and
* **shrinkable** -- when a synthesized scenario disagrees with the
  solvability oracle, the failure must be reduced to a minimal
  replayable witness.

Both follow from one idea borrowed from Hypothesis: a generator never
calls a PRNG directly.  It *draws* bounded integers from a
:class:`ChoiceSource`, which records every value drawn.  The recorded
sequence fully determines the generated configuration, so

* replaying the sequence regenerates the identical configuration
  (:meth:`ChoiceSource.from_choices`), and
* *shrinking* is plain list surgery on integers
  (:func:`shrink_choices`): delete chunks, lower values toward zero,
  re-run the predicate, keep whatever still fails.

Values are drawn with :meth:`ChoiceSource.choose`, which reduces a
replayed or mutated value modulo the requested bound -- every integer
sequence is therefore a *valid* choice sequence (the generator is
total), which is what lets the shrinker mutate freely without tracking
grammar structure.

Seeding is integer-only (``seed * _SEED_STRIDE + index``): seeding
:class:`random.Random` with an int is stable across processes and
platforms, unlike hash-based tuple seeding which varies with
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

#: Multiplier folding (seed, index) into one integer PRNG seed.  Any
#: two distinct (seed, index) pairs with index below the stride map to
#: distinct seeds; the stride is a prime far above any realistic batch.
_SEED_STRIDE = 1_000_003


class ChoiceSource:
    """A stream of bounded integer choices, recorded for replay.

    Exactly one backing mode:

    * *generative* (:meth:`from_seed`): values come from a private
      ``random.Random`` seeded from ``(seed, index)``;
    * *replay* (:meth:`from_choices`): values come from a prerecorded
      sequence, padded with zeros once exhausted (the Hypothesis
      convention that makes deletion-shrinking total).

    Either way every drawn value is appended to :attr:`choices`, so the
    recorded tape of a generative run replays to the same configuration.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 prerecorded: Optional[Sequence[int]] = None) -> None:
        if (rng is None) == (prerecorded is None):
            raise ValueError("specify exactly one of rng / prerecorded")
        self._rng = rng
        self._tape: Tuple[int, ...] = tuple(prerecorded or ())
        self._cursor = 0
        self.choices: List[int] = []

    @classmethod
    def from_seed(cls, seed: int, index: int) -> "ChoiceSource":
        """The source for configuration ``index`` of batch ``seed``.

        Each configuration gets an *independent* source, so config i
        never depends on configs 0..i-1: workers and ``--resume`` can
        regenerate any single configuration from ``(seed, index)``.
        """
        if index < 0:
            raise ValueError("index must be >= 0")
        return cls(rng=random.Random(seed * _SEED_STRIDE + index))

    @classmethod
    def from_choices(cls, choices: Sequence[int]) -> "ChoiceSource":
        """Replay a recorded (or shrunk) choice sequence."""
        return cls(prerecorded=choices)

    @property
    def replaying(self) -> bool:
        """True when backed by a prerecorded tape."""
        return self._rng is None

    def choose(self, bound: int) -> int:
        """Draw the next choice in ``[0, bound)`` and record it."""
        if bound < 1:
            raise ValueError(f"bound must be >= 1, got {bound}")
        if self._rng is not None:
            value = self._rng.randrange(bound)
        elif self._cursor < len(self._tape):
            # Reduce modulo the bound: shrunk/mutated tapes stay valid.
            value = self._tape[self._cursor] % bound
        else:
            value = 0  # exhausted tape pads with the minimal choice
        self._cursor += 1
        self.choices.append(value)
        return value

    def pick(self, options: Sequence):
        """Draw one element of a non-empty sequence."""
        return options[self.choose(len(options))]


def shrink_choices(choices: Sequence[int],
                   still_fails: Callable[[Sequence[int]], bool],
                   max_attempts: int = 500) -> Tuple[int, ...]:
    """Reduce a failing choice sequence to a smaller failing one.

    ``still_fails(candidate)`` re-runs generation + cross-check on the
    candidate tape and reports whether the failure persists.  Two
    passes repeat to a fixpoint (or until ``max_attempts`` predicate
    calls):

    1. **chunk deletion** -- remove spans of halving sizes, preferring
       the tail (later choices usually encode less structure);
    2. **value lowering** -- set each element to 0, then halve it
       toward 0.

    The result is *locally* minimal: no single deletion or lowering
    step preserves the failure.  Deterministic given a deterministic
    predicate, so shrunk counterexamples are stable across runs.
    """
    current = list(choices)
    budget = [max_attempts]

    def attempt(candidate: List[int]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return still_fails(candidate)

    improved = True
    while improved and budget[0] > 0:
        improved = False
        # Pass 1: delete chunks, largest first, scanning from the tail.
        size = len(current)
        while size >= 1:
            start = len(current) - size
            while start >= 0:
                candidate = current[:start] + current[start + size:]
                if attempt(candidate):
                    current = candidate
                    improved = True
                    # Re-scan at this size from the (new) tail.
                    start = min(start, len(current) - size)
                else:
                    start -= size
            size //= 2
        # Pass 2: lower individual values toward zero.
        for position in range(len(current)):
            if current[position] == 0:
                continue
            lowered = list(current)
            lowered[position] = 0
            if attempt(lowered):
                current = lowered
                improved = True
                continue
            value = current[position]
            while value > 1:
                value //= 2
                lowered = list(current)
                lowered[position] = value
                if attempt(lowered):
                    current = lowered
                    improved = True
                    break
    return tuple(current)
