"""Generative corollary sweep: synthesized scenarios vs the oracle.

This package closes the loop between the paper's *calculus* and the
repo's *machines*.  A seeded, Hypothesis-style generator
(:mod:`~repro.generative.generator`) synthesizes (n, t, x)
configurations, task choices, and fault plans from recorded integer
choice tapes (:mod:`~repro.generative.source`); a solvability oracle
(:mod:`~repro.generative.oracle`) predicts each configuration's
verdict from ``⌊t/x⌋``; and the sweep driver
(:mod:`~repro.generative.sweep`) runs the actual experiment --
exhaustive DPOR exploration, lifted-algorithm runs, ABD histories,
footprint audits -- failing loudly (with a shrunk, replayable witness)
whenever prediction and observation disagree.

Entry points: ``python -m repro sweep --seed S --count N`` and the
``sweep``-marked pytest tier; see ``docs/generative_sweep.md``.
"""

from .generator import (EXPLORABLE_FAMILIES, FAMILIES, GENERATOR_VERSION,
                        GeneratedConfig, config_from_choices,
                        generate_batch, generate_config,
                        generated_scenario, scenario_for)
from .oracle import (Prediction, SolvabilityOracle, floor_index,
                     reference_index)
from .source import ChoiceSource, shrink_choices
from .sweep import ConfigOutcome, SweepResult, execute_config, run_sweep

__all__ = [
    "ChoiceSource", "shrink_choices",
    "Prediction", "SolvabilityOracle", "floor_index", "reference_index",
    "EXPLORABLE_FAMILIES", "FAMILIES", "GENERATOR_VERSION",
    "GeneratedConfig",
    "config_from_choices", "generate_batch", "generate_config",
    "generated_scenario", "scenario_for",
    "ConfigOutcome", "SweepResult", "execute_config", "run_sweep",
]
