"""Deterministic message-level fault plans for the messaging engine.

The asynchronous network of :func:`repro.messaging.engine.run_messaging`
already delivers in adversarial order; this module adds the *other*
standard message-level adversary capabilities as composable, seeded-
deterministic rules (companion to the process-level Byzantine layer in
:mod:`repro.runtime.faults` -- see ``docs/fault_injection.md``):

* **drop** -- a matched message silently never enters the network
  (message loss; distinct from a crash because the sender stays live);
* **duplicate** -- a matched message is injected twice, with distinct
  uids (at-least-once links);
* **bounded delay** -- a matched message carries
  :attr:`~repro.messaging.engine.Envelope.not_before` and cannot be
  delivered until that many total deliveries have happened (it is
  *bounded*: a starved network force-releases delayed traffic rather
  than letting delay masquerade as an unplanned crash);
* **per-pair reorder** -- consecutive messages on one ``sender -> dest``
  link are swapped (non-FIFO links), at most ``swaps`` times.

Rules are keyed by ``(sender, dest, occurrence)`` with ``None`` as a
wildcard, mirroring the occurrence-counted triggers of
:class:`repro.runtime.crash.CrashPoint`.  A plan also carries
:class:`~repro.messaging.engine.MessageCrash` instances, making the
legacy ``crashes=`` argument one case of the unified plan.

Determinism: rules fire on occurrence counts over the (deterministic)
send sequence, never on wall clock or fresh randomness, so a run with a
given ``seed`` + plan replays exactly.  Plans are reusable: the engine
calls :meth:`MessageFaultPlan.reset` at the start of every run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import Envelope, MessageCrash

__all__ = [
    "DelayFault", "DropFault", "DuplicateFault", "MessageFault",
    "MessageFaultPlan", "ReorderFault",
]


@dataclass(frozen=True)
class MessageFault:
    """Base selector: which messages a rule applies to.

    ``sender`` / ``dest`` restrict the rule to one link endpoint
    (``None`` = any); ``occurrence`` selects the k-th matching message
    (1-based).  Subclasses define what happens to the selected message.
    """

    sender: Optional[int] = None
    dest: Optional[int] = None
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")

    def matches(self, env: Envelope) -> bool:
        return ((self.sender is None or env.sender == self.sender)
                and (self.dest is None or env.dest == self.dest))


@dataclass(frozen=True)
class DropFault(MessageFault):
    """The selected message is lost: it never enters the network."""


@dataclass(frozen=True)
class DuplicateFault(MessageFault):
    """The selected message is injected twice (distinct uids)."""


@dataclass(frozen=True)
class DelayFault(MessageFault):
    """The selected message cannot be delivered before ``not_before``
    total deliveries have happened (an absolute delivery-count horizon,
    so the delay is deterministic and independent of wall clock)."""

    not_before: int = 0


@dataclass(frozen=True)
class ReorderFault(MessageFault):
    """Swap consecutive message pairs on the selected link.

    The first matching message is held back; when the next one arrives
    the two enter the network in swapped order.  At most ``swaps``
    swaps are performed; ``occurrence`` is ignored (the rule is
    link-scoped, not message-scoped).  Held messages that never get a
    partner are force-released by the engine, never silently lost.
    """

    swaps: int = 1


class MessageFaultPlan:
    """A composable, reusable set of message-level fault rules.

    ``faults`` are consulted in order per sent message; the first rule
    that *fires* (matches and hits its occurrence / swap budget)
    applies, so rule order is part of the plan.  ``crashes`` carries
    :class:`MessageCrash` instances, folding the legacy crash argument
    into the unified plan.

    The plan keeps per-rule occurrence counters and the reorder
    holdback buffer as run-scoped state; ``run_messaging`` resets it at
    the start of every run, so one plan object can drive many seeds.
    The ``dropped`` / ``duplicated`` / ``delayed`` / ``reordered``
    counters report what actually fired in the last run.
    """

    def __init__(self, faults: Sequence[MessageFault] = (),
                 crashes: Sequence[MessageCrash] = ()) -> None:
        self.faults: Tuple[MessageFault, ...] = tuple(faults)
        self.crashes: Tuple[MessageCrash, ...] = tuple(crashes)
        for fault in self.faults:
            if not isinstance(fault, MessageFault):
                raise TypeError(f"not a MessageFault: {fault!r}")
        self.reset()

    @classmethod
    def from_crashes(cls, crashes: Sequence[MessageCrash]
                     ) -> "MessageFaultPlan":
        """Wrap plain crashes as a (message-fault-free) plan."""
        return cls(faults=(), crashes=crashes)

    def reset(self) -> None:
        """Clear run-scoped state so the plan can drive a fresh run."""
        self._seen: List[int] = [0] * len(self.faults)
        self._swaps_done: List[int] = [0] * len(self.faults)
        self._held: Dict[int, Envelope] = {}
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0

    # -- engine interface ----------------------------------------------

    def on_send(self, env: Envelope, alloc_uid: Callable[[], int]
                ) -> List[Envelope]:
        """Rewrite one sent envelope into the envelopes that actually
        enter the network (possibly none, possibly several)."""
        for idx, rule in enumerate(self.faults):
            if not rule.matches(env):
                continue
            if isinstance(rule, ReorderFault):
                if self._swaps_done[idx] >= rule.swaps:
                    continue
                held = self._held.pop(idx, None)
                if held is None:
                    self._held[idx] = env
                    return []
                self._swaps_done[idx] += 1
                self.reordered += 1
                return [env, held]
            self._seen[idx] += 1
            if self._seen[idx] != rule.occurrence:
                continue
            if isinstance(rule, DropFault):
                self.dropped += 1
                return []
            if isinstance(rule, DuplicateFault):
                self.duplicated += 1
                return [env, replace(env, uid=alloc_uid())]
            if isinstance(rule, DelayFault):
                self.delayed += 1
                return [replace(env, not_before=rule.not_before)]
        return [env]

    def fingerprint_state(self) -> tuple:
        """Complete run-scoped state, for state fingerprinting
        (:mod:`repro.runtime.fingerprint`): rule configuration,
        occurrence/swap counters, the holdback buffer, and the fired
        tallies.  Two plans mid-run that would treat the next send
        differently never share a fingerprint."""
        return (self.faults, self.crashes, tuple(self._seen),
                tuple(self._swaps_done),
                tuple(sorted(self._held.items())),
                (self.dropped, self.duplicated, self.delayed,
                 self.reordered))

    def drain(self) -> List[Envelope]:
        """Force-release every held (reorder) envelope, in rule order.

        Called by the engine when the network would otherwise stall, and
        again at the end of the run, so holdback can never silently
        drop a message -- only :class:`DropFault` may lose traffic.
        """
        held = [self._held[idx] for idx in sorted(self._held)]
        self._held.clear()
        return held

    def __repr__(self) -> str:
        return (f"MessageFaultPlan(faults={list(self.faults)!r}, "
                f"crashes={list(self.crashes)!r})")
