"""An asynchronous message-passing engine.

The ASM model's registers are themselves implementable in asynchronous
message-passing systems with a majority of correct processes (Attiya-
Bar-Noy-Dolev) -- the classic bridge that grounds shared-memory models
like the paper's in networked systems.  This engine provides the
substrate for that emulation (`repro.messaging.abd`):

* processes are event-driven :class:`MessageMachine` state machines
  (start -> messages out; each delivery -> messages out);
* the *network* is a multiset of in-flight messages; an adversary picks
  which one to deliver next (asynchrony = adversarial reordering and
  unbounded delay);
* crashes silence a process: no further sends or deliveries to it;
  messages it sent before crashing may still be delivered (or not --
  the adversary already controls ordering, and a crash plan can drop
  them explicitly).

Determinism: given the seed and crash plan, runs replay exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Envelope:
    """One in-flight message.

    ``not_before`` is a delivery-count horizon set by delay faults
    (:class:`repro.messaging.faults.DelayFault`): the envelope is not
    deliverable until that many total deliveries have happened.  The
    default 0 means "immediately deliverable" -- fault-free runs never
    see anything else.
    """

    uid: int
    sender: int
    dest: int
    payload: Any
    not_before: int = 0


class MessageMachine(ABC):
    """An event-driven process."""

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n
        self.outbox: List[Tuple[int, Any]] = []
        self.decision: Any = None
        self.decided = False

    # -- actions available to subclasses --------------------------------
    def send(self, dest: int, payload: Any) -> None:
        self.outbox.append((dest, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        for dest in range(self.n):
            if include_self or dest != self.pid:
                self.send(dest, payload)

    def decide(self, value: Any) -> None:
        self.decision = value
        self.decided = True

    # -- hooks ------------------------------------------------------------
    @abstractmethod
    def start(self) -> None:
        """Initial actions (fill the outbox via send/broadcast)."""

    @abstractmethod
    def on_message(self, sender: int, payload: Any) -> None:
        """Handle one delivered message."""


@dataclass(frozen=True)
class MessageCrash:
    """Crash the victim after it has processed ``after_events`` events
    (0 = before doing anything, including its start actions)."""

    victim: int
    after_events: int
    #: also drop the victim's still-undelivered messages at crash time
    #: (a harsher but legal asynchronous behavior).
    drop_in_flight: bool = False


@dataclass
class MessagingResult:
    decisions: Dict[int, Any]
    crashed: Set[int]
    delivered: int
    undelivered: int
    stalled: bool  # live processes left with no deliverable messages

    @property
    def decided_pids(self) -> Set[int]:
        return set(self.decisions)


def run_messaging(machines: Sequence[MessageMachine],
                  crashes: Sequence[MessageCrash] = (),
                  seed: int = 0,
                  max_events: int = 100_000,
                  fifo: bool = False,
                  faults: Optional[Any] = None) -> MessagingResult:
    """Drive the machines until quiescence, decision, or the event cap.

    ``fifo=False`` (default) delivers in adversarial (seeded-random)
    order; ``fifo=True`` delivers in send order (useful for debugging).
    The run ends when every live machine has decided, or no deliverable
    message remains (stalled -- e.g. too many crashes for a quorum), or
    ``max_events`` deliveries happened.

    ``faults`` is an optional
    :class:`repro.messaging.faults.MessageFaultPlan` (duck-typed, so
    this module never imports that one): each sent envelope is routed
    through ``faults.on_send`` (drop / duplicate / delay / reorder) and
    the plan's own ``crashes`` are merged with the ``crashes``
    argument.  ``faults=None`` leaves every code path and the rng call
    sequence exactly as before -- fault-free runs are bit-for-bit
    unchanged.
    """
    n = len(machines)
    rng = random.Random(seed)
    all_crashes = list(crashes)
    if faults is not None:
        faults.reset()
        all_crashes.extend(faults.crashes)
    crash_at = {c.victim: c for c in all_crashes}
    if len(crash_at) != len(all_crashes):
        raise ValueError("one crash per victim")
    crashed: Set[int] = set()
    events_processed = {pid: 0 for pid in range(n)}
    network: List[Envelope] = []
    uid_counter = 0

    def alloc_uid() -> int:
        nonlocal uid_counter
        uid = uid_counter
        uid_counter += 1
        return uid

    def flush(machine: MessageMachine) -> None:
        for dest, payload in machine.outbox:
            if not 0 <= dest < n:
                raise ValueError(f"bad destination {dest}")
            env = Envelope(alloc_uid(), machine.pid, dest, payload)
            if faults is None:
                network.append(env)
            else:
                network.extend(faults.on_send(env, alloc_uid))
        machine.outbox.clear()

    def maybe_crash(pid: int) -> bool:
        plan = crash_at.get(pid)
        if plan is not None and events_processed[pid] >= plan.after_events:
            crashed.add(pid)
            if plan.drop_in_flight:
                network[:] = [e for e in network if e.sender != pid]
            return True
        return False

    # start actions (a machine may crash before starting).
    for machine in machines:
        if maybe_crash(machine.pid):
            continue
        machine.start()
        events_processed[machine.pid] += 1
        maybe_crash(machine.pid)
        flush(machine)

    delivered = 0
    while delivered < max_events:
        deliverable = [i for i, env in enumerate(network)
                       if env.dest not in crashed
                       and env.not_before <= delivered]
        live_undecided = [m for m in machines
                          if m.pid not in crashed and not m.decided]
        if not live_undecided:
            break
        if not deliverable and faults is not None:
            # Force-release: delay and reorder are *bounded* faults --
            # a starved network frees held/delayed traffic instead of
            # letting the plan fake an unplanned crash.
            network.extend(faults.drain())
            deliverable = [i for i, env in enumerate(network)
                           if env.dest not in crashed]
        if not deliverable:
            break
        index = deliverable[0] if fifo else rng.choice(deliverable)
        env = network.pop(index)
        delivered += 1
        machine = machines[env.dest]
        if machine.pid in crashed:
            continue
        machine.on_message(env.sender, env.payload)
        events_processed[machine.pid] += 1
        maybe_crash(machine.pid)
        if machine.pid in crashed:
            machine.outbox.clear()
        else:
            flush(machine)

    if faults is not None:
        # Anything still held back by a reorder rule counts as
        # undelivered, exactly like in-flight network traffic.
        network.extend(faults.drain())
    live_undecided = [m for m in machines
                      if m.pid not in crashed and not m.decided]
    return MessagingResult(
        decisions={m.pid: m.decision for m in machines
                   if m.decided and m.pid not in crashed},
        crashed=set(crashed),
        delivered=delivered,
        undelivered=len(network),
        stalled=bool(live_undecided) and delivered < max_events,
    )
