"""An asynchronous message-passing engine.

The ASM model's registers are themselves implementable in asynchronous
message-passing systems with a majority of correct processes (Attiya-
Bar-Noy-Dolev) -- the classic bridge that grounds shared-memory models
like the paper's in networked systems.  This engine provides the
substrate for that emulation (`repro.messaging.abd`):

* processes are event-driven :class:`MessageMachine` state machines
  (start -> messages out; each delivery -> messages out);
* the *network* is a multiset of in-flight messages; an adversary picks
  which one to deliver next (asynchrony = adversarial reordering and
  unbounded delay);
* crashes silence a process: no further sends or deliveries to it;
  messages it sent before crashing may still be delivered (or not --
  the adversary already controls ordering, and a crash plan can drop
  them explicitly).

Determinism: given the seed and crash plan, runs replay exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Envelope:
    """One in-flight message."""

    uid: int
    sender: int
    dest: int
    payload: Any


class MessageMachine(ABC):
    """An event-driven process."""

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n
        self.outbox: List[Tuple[int, Any]] = []
        self.decision: Any = None
        self.decided = False

    # -- actions available to subclasses --------------------------------
    def send(self, dest: int, payload: Any) -> None:
        self.outbox.append((dest, payload))

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        for dest in range(self.n):
            if include_self or dest != self.pid:
                self.send(dest, payload)

    def decide(self, value: Any) -> None:
        self.decision = value
        self.decided = True

    # -- hooks ------------------------------------------------------------
    @abstractmethod
    def start(self) -> None:
        """Initial actions (fill the outbox via send/broadcast)."""

    @abstractmethod
    def on_message(self, sender: int, payload: Any) -> None:
        """Handle one delivered message."""


@dataclass(frozen=True)
class MessageCrash:
    """Crash the victim after it has processed ``after_events`` events
    (0 = before doing anything, including its start actions)."""

    victim: int
    after_events: int
    #: also drop the victim's still-undelivered messages at crash time
    #: (a harsher but legal asynchronous behavior).
    drop_in_flight: bool = False


@dataclass
class MessagingResult:
    decisions: Dict[int, Any]
    crashed: Set[int]
    delivered: int
    undelivered: int
    stalled: bool  # live processes left with no deliverable messages

    @property
    def decided_pids(self) -> Set[int]:
        return set(self.decisions)


def run_messaging(machines: Sequence[MessageMachine],
                  crashes: Sequence[MessageCrash] = (),
                  seed: int = 0,
                  max_events: int = 100_000,
                  fifo: bool = False) -> MessagingResult:
    """Drive the machines until quiescence, decision, or the event cap.

    ``fifo=False`` (default) delivers in adversarial (seeded-random)
    order; ``fifo=True`` delivers in send order (useful for debugging).
    The run ends when every live machine has decided, or no deliverable
    message remains (stalled -- e.g. too many crashes for a quorum), or
    ``max_events`` deliveries happened.
    """
    n = len(machines)
    rng = random.Random(seed)
    crash_at = {c.victim: c for c in crashes}
    if len(crash_at) != len(list(crashes)):
        raise ValueError("one crash per victim")
    crashed: Set[int] = set()
    events_processed = {pid: 0 for pid in range(n)}
    network: List[Envelope] = []
    uid_counter = 0

    def flush(machine: MessageMachine) -> None:
        nonlocal uid_counter
        for dest, payload in machine.outbox:
            if not 0 <= dest < n:
                raise ValueError(f"bad destination {dest}")
            network.append(Envelope(uid_counter, machine.pid, dest,
                                    payload))
            uid_counter += 1
        machine.outbox.clear()

    def maybe_crash(pid: int) -> bool:
        plan = crash_at.get(pid)
        if plan is not None and events_processed[pid] >= plan.after_events:
            crashed.add(pid)
            if plan.drop_in_flight:
                network[:] = [e for e in network if e.sender != pid]
            return True
        return False

    # start actions (a machine may crash before starting).
    for machine in machines:
        if maybe_crash(machine.pid):
            continue
        machine.start()
        events_processed[machine.pid] += 1
        maybe_crash(machine.pid)
        flush(machine)

    delivered = 0
    while delivered < max_events:
        deliverable = [i for i, env in enumerate(network)
                       if env.dest not in crashed]
        live_undecided = [m for m in machines
                          if m.pid not in crashed and not m.decided]
        if not live_undecided:
            break
        if not deliverable:
            break
        index = deliverable[0] if fifo else rng.choice(deliverable)
        env = network.pop(index)
        delivered += 1
        machine = machines[env.dest]
        if machine.pid in crashed:
            continue
        machine.on_message(env.sender, env.payload)
        events_processed[machine.pid] += 1
        maybe_crash(machine.pid)
        if machine.pid in crashed:
            machine.outbox.clear()
        else:
            flush(machine)

    live_undecided = [m for m in machines
                      if m.pid not in crashed and not m.decided]
    return MessagingResult(
        decisions={m.pid: m.decision for m in machines
                   if m.decided and m.pid not in crashed},
        crashed=set(crashed),
        delivered=delivered,
        undelivered=len(network),
        stalled=bool(live_undecided) and delivered < max_events,
    )
