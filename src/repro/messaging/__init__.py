"""Asynchronous message passing and the ABD register emulation: the
substrate that grounds shared-memory models in networks."""

from .abd import ABDProcess, ReadOp, WriteOp, run_abd
from .engine import (Envelope, MessageCrash, MessageMachine,
                     MessagingResult, run_messaging)
from .faults import (DelayFault, DropFault, DuplicateFault, MessageFault,
                     MessageFaultPlan, ReorderFault)
from .hosted import HostedProcess, host_program_run

__all__ = [
    "ABDProcess", "ReadOp", "WriteOp", "run_abd",
    "Envelope", "MessageCrash", "MessageMachine", "MessagingResult",
    "run_messaging",
    "DelayFault", "DropFault", "DuplicateFault", "MessageFault",
    "MessageFaultPlan", "ReorderFault",
    "HostedProcess", "host_program_run",
]
