"""The ABD register emulation (Attiya, Bar-Noy & Dolev 1995).

Implements an atomic single-writer multi-reader register on top of
asynchronous message passing with up to t < n/2 crashes -- the theorem
that grounds shared-memory models (like the paper's ASM) in networks:
"registers exist wherever majorities survive".

Protocol (the classic two-phase quorum scheme):

* ``write(v)`` (owner only): bump the timestamp, broadcast
  ``STORE(ts, v)``, await n - t acks.
* ``read()``: phase 1 broadcast ``QUERY``; await n - t replies, pick the
  value with the highest timestamp; phase 2 *write back* that pair via
  ``STORE`` and await n - t acks (the write-back is what makes reads
  atomic rather than merely regular), then return the value.

Each :class:`ABDProcess` interleaves serving replica duties (answering
STORE/QUERY) with executing its own script of operations sequentially.
Completed operations are recorded with (start, end) delivery-time stamps
so the generic linearizability checker can validate entire histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..analysis.linearizability import OpRecord
from .engine import MessageMachine

#: message kinds
STORE, STORE_ACK, QUERY, QUERY_REPLY = "store", "store-ack", "query", \
    "query-reply"


@dataclass(frozen=True)
class WriteOp:
    value: Any


@dataclass(frozen=True)
class ReadOp:
    pass


class ABDProcess(MessageMachine):
    """One process: a replica plus a scripted client."""

    def __init__(self, pid: int, n: int, t: int, writer: int,
                 script: Sequence[Any], clock) -> None:
        super().__init__(pid, n)
        if not t < n / 2:
            raise ValueError(
                f"ABD requires t < n/2 (got t={t}, n={n}): quorums of "
                f"n-t must intersect")
        self.t = t
        self.writer = writer
        self.script = list(script)
        self.clock = clock                    # callable -> global time
        # replica state
        self.value: Any = None
        self.ts: Tuple[int, int] = (0, -1)    # (counter, writer-id)
        # the writer's own monotone counter.  Deriving the next write
        # timestamp from the *replica* state is a genuine ABD
        # implementation pitfall: the writer's self-addressed STORE may
        # still be in flight when its write completes (acked by others),
        # so a replica-derived counter can repeat and two writes collide
        # on one timestamp, breaking atomicity.  (Found by the
        # linearizability checker; see tests/messaging/test_abd.py.)
        self.write_counter = 0
        # client state
        self.op_index = -1
        self.phase: Optional[str] = None
        self.pending_tag = 0
        self.replies: List[Tuple[Tuple[int, int], Any]] = []
        self.acks = 0
        self.op_started_at = 0
        self.read_choice: Optional[Tuple[Tuple[int, int], Any]] = None
        self.history: List[OpRecord] = []

    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        return self.n - self.t

    def start(self) -> None:
        self._next_op()

    def _next_op(self) -> None:
        self.op_index += 1
        if self.op_index >= len(self.script):
            self.phase = None
            self.decide(tuple(self.history))
            return
        op = self.script[self.op_index]
        self.pending_tag += 1
        self.acks = 0
        self.replies = []
        self.op_started_at = self.clock()
        if isinstance(op, WriteOp):
            if self.pid != self.writer:
                raise ValueError(
                    f"p{self.pid} cannot write a register owned by "
                    f"p{self.writer}")
            self.write_counter += 1
            new_ts = (self.write_counter, self.pid)
            # apply locally right away (the self-STORE would arrive
            # asynchronously; the local replica must not lag own writes).
            if new_ts > self.ts:
                self.ts, self.value = new_ts, op.value
            self.phase = "write"
            self._store(new_ts, op.value)
        else:
            self.phase = "read-query"
            self.broadcast((QUERY, self.pending_tag))

    def _store(self, ts, value) -> None:
        self.broadcast((STORE, self.pending_tag, ts, value))

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == STORE:
            _, tag, ts, value = payload
            if ts > self.ts:
                self.ts, self.value = ts, value
            self.send(sender, (STORE_ACK, tag))
        elif kind == QUERY:
            _, tag = payload
            self.send(sender, (QUERY_REPLY, tag, self.ts, self.value))
        elif kind == STORE_ACK:
            _, tag = payload
            if tag != self.pending_tag or self.phase not in (
                    "write", "read-writeback"):
                return
            self.acks += 1
            if self.acks >= self.quorum:
                self._complete_op()
        elif kind == QUERY_REPLY:
            _, tag, ts, value = payload
            if tag != self.pending_tag or self.phase != "read-query":
                return
            self.replies.append((ts, value))
            if len(self.replies) >= self.quorum:
                self.read_choice = max(self.replies, key=lambda r: r[0])
                self.phase = "read-writeback"
                self.pending_tag += 1
                self.acks = 0
                self._store(*self.read_choice)
        else:
            raise ValueError(f"unknown message {payload!r}")

    def _complete_op(self) -> None:
        op = self.script[self.op_index]
        end = self.clock()
        if isinstance(op, WriteOp):
            self.history.append(OpRecord(
                self.pid, self.op_started_at, end, "write",
                (op.value,), None))
        else:
            self.history.append(OpRecord(
                self.pid, self.op_started_at, end, "read",
                (), self.read_choice[1]))
        self._next_op()


def run_abd(n: int, t: int, writer: int,
            scripts: Sequence[Sequence[Any]],
            crashes=(), seed: int = 0,
            max_events: int = 100_000, faults=None):
    """Wire up and run one ABD system; returns (result, history).

    ``scripts[pid]`` is pid's operation sequence.  The returned history
    is the merged list of completed operations with global-time
    intervals, ready for the linearizability checker.  ``faults`` is an
    optional :class:`repro.messaging.faults.MessageFaultPlan` passed
    straight to :func:`run_messaging` -- ABD's quorum phases must stay
    atomic under drop / duplicate / delay / reorder, which is exactly
    what the fault-matrix tests exercise.
    """
    from .engine import run_messaging
    ticks = [0]

    def clock() -> int:
        ticks[0] += 1
        return ticks[0]

    machines = [ABDProcess(pid, n, t, writer, scripts[pid], clock)
                for pid in range(n)]
    result = run_messaging(machines, crashes=crashes, seed=seed,
                           max_events=max_events, faults=faults)
    history = [record for machine in machines
               for record in machine.history]
    return result, history
