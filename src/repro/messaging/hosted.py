"""Hosting shared-memory algorithms on message passing.

The full-stack theorem made executable: an algorithm written for the
ASM world's registers runs unchanged over an asynchronous network --

    messages  --ABD-->  SWMR registers  --Afek-->  snapshots  -->  task

A :class:`HostedProcess` wraps a cooperative-runtime process generator
(yielding ``register_array`` invocations, e.g. the Afek snapshot
construction and anything built on it) and executes every register
operation through the ABD quorum protocol, while simultaneously serving
as a replica for everyone else's registers.  Up to t < n/2 machines may
crash; the shared-memory algorithm on top sees ordinary crash-prone
registers.

This is the ground floor under the paper's model: ASM(n, t, 1) "exists"
in any majority-correct network.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..runtime.ops import Invocation
from .engine import MessageMachine

STORE, STORE_ACK, QUERY, QUERY_REPLY = "h-store", "h-ack", "h-query", \
    "h-reply"


class HostedProcess(MessageMachine):
    """Runs a register-program over ABD-emulated registers.

    ``program`` is a generator yielding :class:`Invocation`s on one
    single-writer register array named ``reg_name`` (cell w writable by
    machine w only).  The generator's return value becomes the machine's
    decision.
    """

    def __init__(self, pid: int, n: int, t: int,
                 program: Generator, reg_name: str = "R") -> None:
        super().__init__(pid, n)
        if not t < n / 2:
            raise ValueError(f"need t < n/2 (t={t}, n={n})")
        self.t = t
        self.program = program
        self.reg_name = reg_name
        # replica: register index -> (ts, value); ts = (counter, writer).
        self.replica: Dict[int, Tuple[Tuple[int, int], Any]] = {}
        self.write_counter = 0
        # pending client operation state.
        self.tag = 0
        self.phase: Optional[str] = None
        self.acks = 0
        self.replies = []
        self.pending_inv: Optional[Invocation] = None
        self.read_choice = None
        self._started_program = False

    @property
    def quorum(self) -> int:
        return self.n - self.t

    # -- program driving -------------------------------------------------
    def start(self) -> None:
        self._advance(None)

    def _advance(self, result: Any) -> None:
        try:
            if self._started_program:
                op = self.program.send(result)
            else:
                self._started_program = True
                op = next(self.program)
        except StopIteration as stop:
            self.decide(stop.value)
            return
        self._execute(op)

    def _execute(self, op: Any) -> None:
        if not isinstance(op, Invocation) or op.obj != self.reg_name:
            raise ValueError(
                f"hosted programs may only access the register array "
                f"{self.reg_name!r}; got {op!r}")
        self.pending_inv = op
        self.tag += 1
        self.acks = 0
        self.replies = []
        if op.method == "write":
            index, value = op.args
            if index != self.pid:
                raise ValueError(
                    f"p{self.pid} wrote single-writer cell {index}")
            self.write_counter += 1
            ts = (self.write_counter, self.pid)
            current = self.replica.get(index)
            if current is None or ts > current[0]:
                self.replica[index] = (ts, value)
            self.phase = "write"
            self.broadcast((STORE, self.tag, index, ts, value))
        elif op.method == "read":
            (index,) = op.args
            self.phase = "read-query"
            self.broadcast((QUERY, self.tag, index))
        else:
            raise ValueError(f"unsupported register op {op.method!r}")

    # -- message handling --------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == STORE:
            _, tag, index, ts, value = payload
            current = self.replica.get(index)
            if current is None or ts > current[0]:
                self.replica[index] = (ts, value)
            self.send(sender, (STORE_ACK, tag))
        elif kind == QUERY:
            _, tag, index = payload
            entry = self.replica.get(index)
            self.send(sender, (QUERY_REPLY, tag, entry))
        elif kind == STORE_ACK:
            _, tag = payload
            if tag != self.tag or self.phase not in ("write",
                                                     "read-writeback"):
                return
            self.acks += 1
            if self.acks >= self.quorum:
                self._complete()
        elif kind == QUERY_REPLY:
            _, tag, entry = payload
            if tag != self.tag or self.phase != "read-query":
                return
            self.replies.append(entry)
            if len(self.replies) >= self.quorum:
                known = [e for e in self.replies if e is not None]
                if not known:
                    self.read_choice = None
                    self._complete()
                    return
                ts, value = max(known, key=lambda e: e[0])
                self.read_choice = (ts, value)
                (index,) = self.pending_inv.args
                self.phase = "read-writeback"
                self.tag += 1
                self.acks = 0
                self.broadcast((STORE, self.tag, index, ts, value))
        else:
            raise ValueError(f"unknown message {payload!r}")

    def _complete(self) -> None:
        op = self.pending_inv
        self.pending_inv = None
        self.phase = None
        if op.method == "write":
            self._advance(None)
        else:
            from ..memory.base import BOTTOM
            result = BOTTOM if self.read_choice is None \
                else self.read_choice[1]
            self.read_choice = None
            self._advance(result)


def host_program_run(n: int, t: int, programs, crashes=(), seed: int = 0,
                     max_events: int = 500_000):
    """Run per-pid register programs over the hosted stack.

    ``programs[pid]`` is a generator over ``register_array`` ops (name
    "R").  Returns the MessagingResult (decisions = program returns).
    """
    from .engine import run_messaging
    machines = [HostedProcess(pid, n, t, programs[pid])
                for pid in range(n)]
    return run_messaging(machines, crashes=crashes, seed=seed,
                         max_events=max_events)
