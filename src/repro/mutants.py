"""Mutation soundness: planted protocol bugs the pipeline must catch.

A verification stack is only as trustworthy as its ability to *fail*:
if the explorer, the linearizability checker, and the footprint auditor
all pass on a subtly broken protocol, a green run proves nothing.  This
module plants a registry of known-bad protocol mutants -- each a
minimal, realistic transcription error in one of the repo's agreement
or register protocols -- and asserts that at least one detection stage
catches every one of them:

* ``lint``     -- the static footprint analyzer
  (:mod:`repro.lint.footprints`) flags an under-declared footprint
  from source alone, without executing a single schedule;
* ``explore``  -- exhaustive schedule exploration
  (:func:`repro.runtime.explore.explore` with DPOR) fails the
  scenario's safety property on some interleaving;
* ``check``    -- the Wing & Gong linearizability checker
  (:func:`repro.analysis.linearizability.check_linearizable`) rejects a
  history produced under seeded adversarial delivery;
* ``audit``    -- the dynamic footprint auditor
  (:mod:`repro.lint.audit`) catches an unsound footprint declaration;
* ``sweep``    -- the generative corollary sweep
  (:mod:`repro.generative`) cross-checks synthesized configurations
  against the solvability oracle and flags the disagreement;
* ``cache``    -- the state-cache differential (cache-on vs cache-off
  DPOR, see ``docs/performance.md``) detects an unsound fingerprint by
  the divergence of its deterministic exploration outcome;
* ``resume``   -- the checkpoint/resume differential (interrupted vs
  uninterrupted exploration, see ``docs/resumable_exploration.md``)
  detects an unsound frontier-store resume by the divergence of the
  resumed statistics from the single-run reference;
* ``network``  -- the socket-transport differential (serial vs
  socket-served exploration, see ``docs/distributed_exploration.md``)
  detects an unsound shard server -- one that trusts the transport
  more than the lease protocol allows -- by the divergence of the
  served statistics from the serial reference.

Each :class:`Mutant` pins the stage *expected* to catch it; the
``mutation`` pytest tier (``tests/mutation/``) asserts the pinned stage
per mutant, and ``python -m repro mutants`` exits 0 only when every
mutant is detected.  An undetected mutant means a hole in the matrix --
treat it like a failing test, not a curiosity.

The mutants are hand-planted rather than generated: each one encodes a
documented pitfall of its protocol (eager stabilization, lost
publishes, missing ABD read write-back, off-by-one port arity, ...),
so a regression in detection points at a specific lost capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

#: Detection stages, in the order the harness consults them.
STAGES = ("lint", "explore", "check", "audit", "sweep", "cache",
          "resume", "network")


@dataclass(frozen=True)
class Mutant:
    """One planted protocol bug and its detection pipeline.

    ``detect()`` runs the relevant stage(s) and returns the name of the
    first stage that caught the bug, or ``None`` if the mutant slipped
    through -- which the harness treats as a soundness failure.
    """

    name: str
    description: str
    expected_stage: str
    detect: Callable[[], Optional[str]]

    def __post_init__(self) -> None:
        if self.expected_stage not in STAGES:
            raise ValueError(f"unknown stage {self.expected_stage!r}")


# ---------------------------------------------------------------------------
# Stage runners
# ---------------------------------------------------------------------------

def _explore_detects(build, check, max_steps: int,
                     crash_plan_factory=None,
                     max_runs: int = 200_000) -> Optional[str]:
    """Run DPOR exploration; a counterexample means ``explore`` caught
    the mutant.  A clean sweep returns None (not caught here)."""
    from .runtime import CounterexampleFound, explore
    try:
        explore(build, check, crash_plan_factory=crash_plan_factory,
                max_steps=max_steps, max_runs=max_runs, reduction="dpor")
    except CounterexampleFound:
        return "explore"
    return None


def _agreement_check(n: int) -> Callable[[Any], None]:
    """The standard agreement + validity + termination property."""
    proposals = {f"v{i}" for i in range(n)}

    def check(result) -> None:
        assert not result.deadlocked, \
            f"deadlocked: {result.summary()}"
        assert result.decided_pids == set(range(n)), \
            f"not everyone decided: {result.summary()}"
        assert len(result.decided_values) == 1, \
            f"agreement violated: {sorted(result.decided_values)}"
        assert result.decided_values <= proposals, \
            f"validity violated: {sorted(result.decided_values)}"

    return check


# ---------------------------------------------------------------------------
# safe-agreement mutants (paper Figure 1)
# ---------------------------------------------------------------------------

def _sa_build(n: int, propose: Callable[..., Generator]):
    """A safe-agreement system whose propose body is the mutant's."""
    from .agreement import SafeAgreementFactory
    from .memory import ObjectStore

    def build():
        factory = SafeAgreementFactory(n)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from propose(inst, i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    return build


def _sa_dropped_resolve() -> Optional[str]:
    """Propose never resolves its UNSTABLE entry (line 03 dropped), so
    every decide spins forever on the no-unstable predicate: the
    explorer reaches the exact deadlock and the termination property
    fails."""
    from .agreement.safe_agreement import UNSTABLE

    def propose(inst, i, value):
        yield inst.sm.write(inst.key, i, (value, UNSTABLE))
        yield inst.sm.snapshot(inst.key)
        # MUTANT: the level-0/2 overwrite (cancel or stabilize) is gone.

    return _explore_detects(_sa_build(2, propose), _agreement_check(2),
                            max_steps=20)


def _sa_eager_stabilize() -> Optional[str]:
    """Propose stabilizes immediately, skipping the write-(v,1) /
    snapshot / cancel dance: two solo runs can stabilize different
    values and decide differently."""
    from .agreement.safe_agreement import STABLE

    def propose(inst, i, value):
        # MUTANT: straight to stable -- no unstable phase, no snapshot.
        yield inst.sm.write(inst.key, i, (value, STABLE))

    return _explore_detects(_sa_build(2, propose), _agreement_check(2),
                            max_steps=20)


# ---------------------------------------------------------------------------
# adopt-commit mutants (Gafni 1998)
# ---------------------------------------------------------------------------

def _ac_build(mutate_pid: Optional[int], propose: Callable[..., Generator],
              n: int = 2):
    """An adopt-commit system where ``mutate_pid`` runs the mutant
    propose (None = everyone does)."""
    from .agreement.adopt_commit import AdoptCommit, adopt_commit_specs
    from .memory import build_store

    values = ["a" if i == 0 else "b" for i in range(n)]

    def build():
        store = build_store(adopt_commit_specs(n))

        def proposer(pid):
            ac = AdoptCommit("k", n)
            if mutate_pid is None or pid == mutate_pid:
                out = yield from propose(ac, pid, values[pid])
            else:
                out = yield from ac.propose(pid, values[pid])
            return out

        return {i: proposer(i) for i in range(n)}, store

    return build, values


def _ac_check(n: int, values: List[Any]) -> Callable[[Any], None]:
    from .agreement.adopt_commit import COMMIT

    def check(result) -> None:
        outs = list(result.decisions.values())
        assert result.decided_pids == set(range(n)), \
            f"adopt-commit is wait-free, yet: {result.summary()}"
        committed = {v for tag, v in outs if tag == COMMIT}
        assert len(committed) <= 1, f"coherence violated: {outs}"
        if committed:
            winner = committed.pop()
            assert all(v == winner for _, v in outs), \
                f"coherence violated: {outs}"
        assert {v for _, v in outs} <= set(values), \
            f"validity violated: {outs}"

    return check


def _ac_dropped_publish() -> Optional[str]:
    """p0 skips its phase-1 publish: it can then see a unanimous-looking
    snapshot containing only the *other* proposal and commit its own
    value while the other process already committed a different one."""
    from .agreement.adopt_commit import ADOPT, COMMIT
    from .memory.base import BOTTOM

    def propose(ac, pid, value):
        # MUTANT: the phase-1 ``a.write`` is dropped entirely.
        seen = yield ac.a.snapshot(ac.key)
        values = {repr(e): e for e in seen if e is not BOTTOM}
        if len(values) == 1:
            verdict = (COMMIT, value)
        else:
            verdict = (ADOPT, value)
        yield ac.b.write(ac.key, pid, verdict)
        verdicts = [e for e in (yield ac.b.snapshot(ac.key))
                    if e is not BOTTOM]
        committed = [v for tag, v in verdicts if tag == COMMIT]
        if committed and all(tag == COMMIT for tag, _ in verdicts):
            return (COMMIT, committed[0])
        if committed:
            return (ADOPT, committed[0])
        return (ADOPT, value)

    build, values = _ac_build(0, propose)
    return _explore_detects(build, _ac_check(2, values), max_steps=12)


def _ac_adopt_own_value() -> Optional[str]:
    """The some-committed branch adopts the process's *own* value
    instead of the committed one -- the exact rule that makes
    adopt-commit the anchor of indulgent consensus."""
    from .agreement.adopt_commit import ADOPT, COMMIT
    from .memory.base import BOTTOM

    def propose(ac, pid, value):
        yield ac.a.write(ac.key, pid, value)
        seen = yield ac.a.snapshot(ac.key)
        values = {repr(e): e for e in seen if e is not BOTTOM}
        if len(values) == 1:
            verdict = (COMMIT, value)
        else:
            verdict = (ADOPT, value)
        yield ac.b.write(ac.key, pid, verdict)
        verdicts = [e for e in (yield ac.b.snapshot(ac.key))
                    if e is not BOTTOM]
        committed = [v for tag, v in verdicts if tag == COMMIT]
        if committed and all(tag == COMMIT for tag, _ in verdicts):
            return (COMMIT, committed[0])
        if committed:
            return (ADOPT, value)  # MUTANT: keeps own value on adopt.
        return (ADOPT, value)

    build, values = _ac_build(None, propose)
    return _explore_detects(build, _ac_check(2, values), max_steps=12)


# ---------------------------------------------------------------------------
# x-safe-agreement mutant (paper Figures 5-6)
# ---------------------------------------------------------------------------

def _xsa_port_arity() -> Optional[str]:
    """x_compete scans x+1 test&set slots instead of x, so more than x
    owners can win; the owner set then fits no SET_LIST subset and the
    owners' consensus chains need not converge before publishing."""
    from .agreement import XSafeAgreementFactory
    from .memory import ObjectStore

    n, x = 2, 1

    def propose(inst, sim_id, value):
        owner = False
        # MUTANT: one slot too many -- at most x+1 owners, not x.
        for ell in range(inst.x + 1):
            winner = yield inst.tas.test_and_set((inst.key, ell))
            if winner:
                owner = True
                break
        if not owner:
            return
        res = value
        for ell, subset in enumerate(inst.subsets):
            if sim_id in subset:
                res = yield inst.xcons.propose(inst.key, ell, res)
        yield inst.reg.write(inst.key, res)

    def build():
        factory = XSafeAgreementFactory(n, x)
        store = ObjectStore()
        store.add_all(factory.shared_objects())

        def participant(i):
            inst = factory.instance("k")
            yield from propose(inst, i, f"v{i}")
            decided = yield from inst.decide(i)
            return decided

        return {i: participant(i) for i in range(n)}, store

    return _explore_detects(build, _agreement_check(n), max_steps=24)


# ---------------------------------------------------------------------------
# queue-based 2-consensus mutant (Herlihy 1991)
# ---------------------------------------------------------------------------

def _queue_tiebreak_own() -> Optional[str]:
    """The LOSER decides its own value instead of the winner's
    announcement -- the queue's decision power is simply ignored."""
    from .memory import build_store, make_spec
    from .objects import LOSER, WINNER
    from .runtime import ObjectProxy

    def build():
        store = build_store([
            make_spec("queue", "q", initial=(WINNER, LOSER)),
            make_spec("register_array", "ann", size=2),
        ])
        q, ann = ObjectProxy("q"), ObjectProxy("ann")

        def prog(pid):
            yield ann.write(pid, f"v{pid}")
            token = yield q.dequeue()
            if token == WINNER:
                return f"v{pid}"
            yield ann.read(1 - pid)
            return f"v{pid}"  # MUTANT: loser keeps its own value.

        return {i: prog(i) for i in range(2)}, store

    return _explore_detects(build, _agreement_check(2), max_steps=12)


# ---------------------------------------------------------------------------
# ABD mutant (Attiya, Bar-Noy & Dolev 1995)
# ---------------------------------------------------------------------------

#: Seeds the ABD mutant detector sweeps per fault plan.  Deterministic:
#: the first (plan, seed) pair exhibiting a new-old inversion is what
#: the detecting stage reports.
ABD_MUTANT_SEEDS = tuple(range(48))


def _abd_fault_plans():
    """The message-fault matrix the ABD mutant is swept under.

    Besides fault-free delivery, the writer's STORE traffic to each
    replica is dropped or delayed (one legal t=1 message fault at a
    time): a reader quorum then splits around the lagging replica,
    which is exactly the window the missing write-back leaves open.
    The healthy :class:`~repro.messaging.abd.ABDProcess` stays
    linearizable under every one of these plans (pinned by the
    mutation tier), so a rejection isolates the mutant."""
    from .messaging import DelayFault, DropFault, MessageFaultPlan
    plans: List[Any] = [None]
    for dest in (1, 2):
        plans.append(MessageFaultPlan(
            [DropFault(sender=0, dest=dest, occurrence=1)]))
        plans.append(MessageFaultPlan(
            [DelayFault(sender=0, dest=dest, occurrence=1,
                        not_before=30)]))
    return plans


def _abd_no_read_repair() -> Optional[str]:
    """A read completes at quorum *without* the write-back phase.  The
    emulated register is then merely regular, not atomic: two
    sequential reads can see the new value then the old one (new-old
    inversion), which the linearizability checker rejects on some
    (fault plan, seed) pairs of adversarial delivery."""
    from .analysis.linearizability import (RegisterSpec,
                                           check_linearizable)
    from .messaging import run_messaging
    from .messaging.abd import (QUERY_REPLY, ABDProcess, ReadOp,
                                WriteOp)

    class NoWriteBackABD(ABDProcess):
        def on_message(self, sender, payload):
            if payload[0] == QUERY_REPLY:
                _, tag, ts, value = payload
                if tag != self.pending_tag or self.phase != "read-query":
                    return
                self.replies.append((ts, value))
                if len(self.replies) >= self.quorum:
                    self.read_choice = max(self.replies,
                                           key=lambda r: r[0])
                    # MUTANT: no write-back -- the read returns at
                    # quorum without re-storing the chosen pair.
                    self._complete_op()
                return
            super().on_message(sender, payload)

    n, t, writer = 3, 1, 0
    scripts = {0: [WriteOp("a"), WriteOp("b")],
               1: [ReadOp(), ReadOp()],
               2: [ReadOp(), ReadOp()]}

    for plan in _abd_fault_plans():
        for seed in ABD_MUTANT_SEEDS:
            ticks = [0]

            def clock() -> int:
                ticks[0] += 1
                return ticks[0]

            machines = [NoWriteBackABD(pid, n, t, writer,
                                       scripts.get(pid, []), clock)
                        for pid in range(n)]
            run_messaging(machines, seed=seed, faults=plan)
            history = [record for machine in machines
                       for record in machine.history]
            if not check_linearizable(history, RegisterSpec()):
                return "check"
    return None


# ---------------------------------------------------------------------------
# footprint mutant (the auditor's own soundness)
# ---------------------------------------------------------------------------

def _footprint_underdeclared() -> Optional[str]:
    """A register variant whose ``total`` operation sums every cell but
    *declares* a single-cell read footprint.  Exploration and the
    protocol checks pass (the program is correct); only the footprint
    auditor's read-perturbation catches the unsound declaration that
    would let DPOR prune real interleavings."""
    from .lint.audit import FootprintViolation, audit_scenario
    from .memory import ObjectStore
    from .memory.registers import RegisterArray
    from .runtime import ObjectProxy
    from .runtime.ops import Footprint
    from .scenarios import CheckScenario

    class LyingRegisterArray(RegisterArray):
        READONLY = RegisterArray.READONLY | frozenset({"total"})

        # The under-declaration below is the planted bug itself; the
        # static pass flags it too, but this mutant pins the *dynamic*
        # auditor's ability to catch it at runtime.
        def op_total(self, pid: int) -> int:  # lint: ignore[F501]
            return sum(1 for cell in self.cells if cell == 1)

        def footprint(self, pid, method, args):
            if method == "total":
                # MUTANT: reads every cell, declares only cell 0.
                return Footprint.read(self.name, 0)
            return super().footprint(pid, method, args)

    reg = ObjectProxy("reg")

    def build():
        store = ObjectStore()
        store.add(LyingRegisterArray("reg", 2, initial=0))

        def prog(pid):
            yield reg.write(pid, 1)
            count = yield reg.total()
            return count

        return {i: prog(i) for i in range(2)}, store

    scenario = CheckScenario(
        name="footprint-underdeclared",
        description="register variant with an underdeclared read set",
        build=build, check=lambda result: None, max_steps=16)
    try:
        audit_scenario(scenario, max_steps=64)
    except FootprintViolation:
        return "audit"
    return None


# ---------------------------------------------------------------------------
# static footprint mutant (the lint pass's own soundness)
# ---------------------------------------------------------------------------

#: The planted source the ``lint`` stage must flag.  ``op_swap`` writes
#: the addressed cell *and* status cell 0, but the declaration drops
#: the second write: DPOR would wrongly commute two swaps on distinct
#: cells.  Kept as source text so detection is purely static -- the
#: class is never instantiated and no schedule is ever executed.
FOOTPRINT_DROP_WRITE_SOURCE = '''\
"""Planted mutant: a swap whose declaration drops its status write."""

from repro.memory.registers import RegisterArray
from repro.runtime.ops import Footprint


class DroppedWriteRegisterArray(RegisterArray):
    """Register array whose swap also updates shared status cell 0."""

    def op_swap(self, pid, index, value):
        self._check_index(index)
        old = self.cells[index]
        self.cells[index] = value
        self.cells[0] = pid
        return old

    def footprint(self, pid, method, args):
        if method == "swap" and args:
            # MUTANT: the write to status cell 0 is dropped.
            return Footprint.readwrite(self.name, args[0])
        return super().footprint(pid, method, args)
'''


def _footprint_drop_write() -> Optional[str]:
    """A swap operation writes a fixed status cell on top of the
    addressed one, but its footprint declares only the addressed cell.
    The program is correct and the declaration covers every *declared*
    conflict the scenario exhibits, so nothing dynamic need fail; the
    static analyzer alone proves the handler can write ``cells[0]``
    while the declaration never mentions it."""
    from .lint import lint_source
    findings = lint_source(FOOTPRINT_DROP_WRITE_SOURCE,
                           path="footprint_drop_write_mutant.py")
    if any(violation.code == "F501" for violation in findings):
        return "lint"
    return None


# ---------------------------------------------------------------------------
# fingerprint mutant (the state cache's own soundness)
# ---------------------------------------------------------------------------

def _cache_scenario():
    """A register scenario that is decided by shared state the mutant
    fingerprint ignores.  Two writers race on cell 0; once both have
    decided, the two write orders leave states that differ *only* in
    cell 0's audited value (same continuations, decisions, and step
    count).  A third process then reads the cell and decides what it
    saw, and the property rejects exactly one of the two read values --
    so folding the two states together skips the violating subtree."""
    from .memory import build_store, make_spec
    from .runtime import ObjectProxy, wait_until

    r = ObjectProxy("r")
    done = ObjectProxy("done")

    def build():
        store = build_store([make_spec("register_array", "r", size=1),
                             make_spec("register_array", "done", size=2)])

        def writer(pid, value):
            yield r.write(0, value)
            yield done.write(pid, 1)

        def reader():
            yield from wait_until(lambda: done.read(0),
                                  lambda v: v == 1)
            yield from wait_until(lambda: done.read(1),
                                  lambda v: v == 1)
            value = yield r.read(0)
            return value

        return {0: writer(0, 1), 1: writer(1, 2), 2: reader()}, store

    def check(result) -> None:
        assert result.decisions.get(2) != 1, "reader saw loser value"

    return build, check


def _cache_outcome(state_cache, fingerprinter=None):
    """Deterministic exploration outcome of the cache mutant scenario
    under one cache configuration."""
    from .runtime import CounterexampleFound
    from .runtime.dpor import explore_dpor

    build, check = _cache_scenario()
    try:
        stats = explore_dpor(build, check, max_steps=12, shrink=False,
                             state_cache=state_cache,
                             fingerprinter=fingerprinter)
    except CounterexampleFound as exc:
        stats = exc.stats
        return ("violation", stats.total_runs
                if stats is not None else None)
    return ("passed", stats.total_runs, stats.complete_runs,
            stats.truncated_runs, stats.pruned_runs,
            stats.max_depth_seen)


def _fingerprint_ignore_field() -> Optional[str]:
    """The state fingerprint silently drops one shared field: the first
    audited entry of every object (cell 0 of the register above, once
    written).  States that differ only in that field then collide, the
    cache folds a subtree recorded under a *different* cell-0 value,
    and the deterministic exploration outcome diverges from cache-off
    -- which is exactly what the ``cache`` differential stage compares.
    No other stage consults fingerprints, so only it can catch this.
    """
    from .runtime import Fingerprinter

    class IgnoreFieldFingerprinter(Fingerprinter):
        """MUTANT: drops the first audited field of every object."""

        def object_fingerprint(self, obj):
            kind, items = super().object_fingerprint(obj)
            return (kind, items[1:])

    reference = _cache_outcome(state_cache=False)
    mutated = _cache_outcome(state_cache=True,
                             fingerprinter=IgnoreFieldFingerprinter())
    if mutated != reference:
        return "cache"
    return None


# ---------------------------------------------------------------------------
# oracle mutant (the generative sweep's own soundness)
# ---------------------------------------------------------------------------

#: The pinned batch the oracle mutant is swept against.  Seed 7's first
#: dozen configurations include resilience-lattice points with
#: ``t % x != 0`` (where ceiling and floor differ), which is exactly
#: where an off-by-one oracle contradicts the machines.  The ``sweep``
#: pytest tier pins the complementary fact: the *honest* floor oracle
#: agrees with every observation on this same batch.
SWEEP_MUTANT_SEED = 7
SWEEP_MUTANT_COUNT = 12


def _ceil_index(t: int, x: int) -> int:
    """The off-by-one resilience index ``⌈t/x⌉`` (the planted bug)."""
    return -((-t) // x)


def _oracle_ceil_index() -> Optional[str]:
    """The solvability oracle computes ``⌈t/x⌉`` instead of ``⌊t/x⌋``.

    Every downstream prediction shifts by one whenever x does not
    divide t -- e.g. k-set agreement with k = ⌊t/x⌋ + 1 is declared
    impossible although the construction demonstrably solves it.  The
    exploration/check/audit stages never consult the oracle, so only
    the generative cross-check can catch this: the sweep compares the
    mutated predictions against brute-force indices, actual lifted
    runs, and exhaustive exploration, and reports the disagreement.
    """
    from .generative import SolvabilityOracle, run_sweep
    result = run_sweep(SWEEP_MUTANT_SEED, SWEEP_MUTANT_COUNT,
                       oracle=SolvabilityOracle(index_fn=_ceil_index),
                       shrink=False)
    if result.disagreements:
        return "sweep"
    return None


# ---------------------------------------------------------------------------
# resume mutant (the frontier store's own soundness)
# ---------------------------------------------------------------------------

def _resume_drop_completed_shard() -> Optional[str]:
    """A resume whose pending set re-includes a shard the journal has
    already settled.  The coordinator merges prior journaled completions
    with every fresh outcome, so the re-executed shard's statistics are
    folded *twice* -- exactly the corruption an unsound ``--resume``
    produces -- and the resumed run no longer equals the uninterrupted
    reference.  Exploration, checking, and auditing never read the
    journal, so only the ``resume`` differential can catch this.
    """
    import os
    import tempfile

    from .runtime.frontier import FrontierStore
    from .runtime.parallel import explore_parallel
    from .scenarios import check_scenarios

    scenario = check_scenarios(n=3)["adopt-commit"]

    class DropCompletedShard(FrontierStore):
        """MUTANT: treats the first settled shard as still pending."""

        def pending_indices(self, total):
            pending = super().pending_indices(total)
            if self.completed:
                pending.append(min(self.completed))
                pending.sort()
            return pending

    reference = explore_parallel(scenario.build, scenario.check, jobs=1,
                                 max_steps=scenario.max_steps)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "frontier.jsonl")
        explore_parallel(scenario.build, scenario.check, jobs=1,
                         max_steps=scenario.max_steps,
                         frontier=FrontierStore(path))
        resumed = explore_parallel(scenario.build, scenario.check, jobs=1,
                                   max_steps=scenario.max_steps,
                                   frontier=DropCompletedShard(path))
    if resumed != reference:
        return "resume"
    return None


# ---------------------------------------------------------------------------
# netshard mutant (the shard server's own soundness)
# ---------------------------------------------------------------------------

def _netshard_accept_stale_result() -> Optional[str]:
    """The shard server applies a completion frame from an expired
    lease holder.

    Within one run the damage is invisible -- shards are deterministic,
    so a stale holder's stats equal the new holder's -- but the lease
    check is the server's *only* defence against frames the transport
    replays from a previous incarnation of the run: a delayed,
    duplicated completion from an earlier exploration (different
    configuration, same shard index, same port) carries statistics
    from a different state space.  The honest server rejects it
    because the sender no longer holds the lease; the mutant folds the
    alien statistics into the merge, and the served outcome diverges
    from the serial reference -- exactly the comparison the ``network``
    differential tier (and nothing else in the pipeline) performs.
    """
    from .runtime.explore import ExplorationStats
    from .runtime.frontier import stats_to_dict
    from .runtime.netshard import ShardServer
    from .runtime.parallel import explore_parallel
    from .scenarios import check_scenarios

    scenario = check_scenarios(n=3)["adopt-commit"]

    class AcceptStaleResult(ShardServer):
        """MUTANT: trusts any completion for a still-open shard."""

        def _accept_completion(self, shard, worker_id):
            return shard not in self._completed

    def run_with(server_cls):
        # Drive the protocol core directly (no sockets): one worker
        # joins, gets a grant, lets its lease lapse, and then -- as a
        # replaying network would -- delivers a completion carrying
        # statistics from some other exploration.  The coordinator
        # finishes the real work in-process either way.
        server = server_cls(config={})

        def scripted_pool(payloads, runner, jobs, fault_plan=None,
                          task_log=None, deadline=None, on_grant=None,
                          on_settle=None):
            server.begin(payloads, runner, on_grant=on_grant,
                         on_settle=on_settle, task_log=task_log,
                         deadline=deadline)
            welcome = server.handle_message(
                {"type": "hello", "worker": "replayed"}, now=0.0)
            wid = welcome["worker_id"]
            grant = server.handle_message(
                {"type": "request", "worker_id": wid}, now=0.0)
            shard = grant["shard"]
            server.tick(now=1e9)  # the holder's lease lapses
            alien = ExplorationStats(complete_runs=999,
                                     max_depth_seen=42)
            server.handle_message(
                {"type": "complete", "worker_id": wid, "shard": shard,
                 "stats": stats_to_dict(alien), "counters": {}},
                now=1e9)
            while not server.done:
                server.run_one_inprocess()
            return server.outcomes

        return explore_parallel(scenario.build, scenario.check, jobs=1,
                                max_steps=scenario.max_steps,
                                pool=scripted_pool)

    reference = explore_parallel(scenario.build, scenario.check, jobs=1,
                                 max_steps=scenario.max_steps)
    if run_with(ShardServer) != reference:
        return None  # the honest server must match; the harness is off
    if run_with(AcceptStaleResult) != reference:
        return "network"
    return None


# ---------------------------------------------------------------------------
# Registry + harness
# ---------------------------------------------------------------------------

MUTANTS: Tuple[Mutant, ...] = (
    Mutant("sa-dropped-resolve",
           "safe-agreement propose never resolves its unstable entry",
           "explore", _sa_dropped_resolve),
    Mutant("sa-eager-stabilize",
           "safe-agreement propose stabilizes without the snapshot check",
           "explore", _sa_eager_stabilize),
    Mutant("ac-dropped-publish",
           "adopt-commit p0 skips its phase-1 publish",
           "explore", _ac_dropped_publish),
    Mutant("ac-adopt-own-value",
           "adopt-commit adopts its own value instead of the committed one",
           "explore", _ac_adopt_own_value),
    Mutant("xsa-port-arity",
           "x_compete scans x+1 test&set slots, electing too many owners",
           "explore", _xsa_port_arity),
    Mutant("queue-tiebreak-own",
           "queue-consensus loser decides its own value",
           "explore", _queue_tiebreak_own),
    Mutant("abd-no-read-repair",
           "ABD read completes at quorum without the write-back phase",
           "check", _abd_no_read_repair),
    Mutant("footprint-underdeclared",
           "operation reads every cell but declares a one-cell footprint",
           "audit", _footprint_underdeclared),
    Mutant("footprint-drop-write",
           "swap writes a status cell its declared footprint never mentions",
           "lint", _footprint_drop_write),
    Mutant("oracle-ceil-index",
           "solvability oracle computes ceil(t/x) instead of floor(t/x)",
           "sweep", _oracle_ceil_index),
    Mutant("fingerprint-ignore-field",
           "state fingerprint skips one shared field, merging distinct "
           "states",
           "cache", _fingerprint_ignore_field),
    Mutant("resume-drop-completed-shard",
           "frontier resume re-grants a shard the journal already "
           "settled, double-merging its statistics",
           "resume", _resume_drop_completed_shard),
    Mutant("netshard-accept-stale-result",
           "shard server applies a completion frame from an expired "
           "lease holder",
           "network", _netshard_accept_stale_result),
)


def mutant_names() -> List[str]:
    """Registry order of mutant names (stable; used as CLI/test ids)."""
    return [mutant.name for mutant in MUTANTS]


def get_mutant(name: str) -> Mutant:
    """Look one mutant up by name; KeyError lists what exists."""
    for mutant in MUTANTS:
        if mutant.name == name:
            return mutant
    raise KeyError(f"unknown mutant {name!r} "
                   f"(expected one of {mutant_names()})")


def detect_all() -> Dict[str, Optional[str]]:
    """Run every mutant's detector; maps name -> detecting stage/None."""
    return {mutant.name: mutant.detect() for mutant in MUTANTS}
