"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``classes N T``   -- print the equivalence-class partition of
  ASM(N, T, x) for x = 1..N (paper Section 5.4).
* ``band T X``      -- the multiplicative band of t' for ASM(n, t', X)
  ~ ASM(n, T, 1).
* ``solve N T X K`` -- decide solvability of K-set agreement in
  ASM(N, T, X) and, on the possible side, run the paper's construction.
* ``check NAME``    -- exhaustively model-check a named scenario over
  ALL interleavings (DPOR-accelerated); exit 0 = property holds,
  1 = counterexample found (printed shrunk), 2 = configuration error,
  3 = a ``--timeout`` / ``--max-runs`` budget interrupted the sweep
  (partial coverage, no violation found so far).
  ``check --list`` enumerates the registered scenarios.  ``--metrics``
  prints a per-scenario observability summary; ``--metrics-out PATH``
  writes one JSON-lines run record per scenario (atomically; see
  docs/observability.md for the schema -- interrupted sweeps emit a
  record flagged ``"partial": true``).
* ``lint [PATHS]``  -- static protocol-discipline linter over process
  code plus the footprint-soundness pass (see docs/static_analysis.md);
  exit 0 = clean, 1 = violations, 2 = unparsable/unreadable input.
  ``--format json`` emits a machine-readable report; ``--baseline FILE``
  fails only on findings not in the snapshot (``--update-baseline``
  rewrites it atomically).
* ``audit NAME``    -- dynamic footprint-soundness audit of a named
  scenario (every executed operation is checked against the footprint
  it declares to DPOR); exit codes mirror ``check``.
* ``mutants``       -- mutation-soundness harness: run every planted
  protocol mutant (see ``repro.mutants`` and docs/fault_injection.md)
  and verify the expected detection stage catches it; exit 0 only when
  every mutant is caught.
* ``sweep``         -- generative corollary sweep: synthesize ``--count``
  seeded configurations (see ``repro.generative`` and
  docs/generative_sweep.md), run each one's experiment, and cross-check
  the outcome against the solvability oracle's ``floor(t/x)``
  prediction; exit 0 = full agreement, 1 = a disagreement (printed with
  its shrunk minimal witness), 2 = configuration error, 3 = the
  ``--timeout`` budget interrupted the sweep (partial record emitted,
  resumable via ``--resume``).
* ``serve``         -- coordinate one scenario's exhaustive check over
  a TCP shard service (``--bind HOST:PORT``): remote ``worker``
  processes execute frontier shards under the lease protocol, the
  coordinator degrades to in-process execution when none are around,
  and ``--checkpoint``/``--resume`` make the run durable exactly like
  ``check`` (see docs/distributed_exploration.md).  Exit codes mirror
  ``check``.
* ``worker``        -- join a shard server (``--connect HOST:PORT``)
  with ``--jobs`` worker sessions; exit 0 when the run ends (even if
  the coordinator vanishes mid-run), 2 if it was never reachable.
* ``demo``          -- a one-minute tour (runs the quickstart scenario).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .core import (kset_solvable, multiplicative_band, partition_table,
                   simulate_with_xcons)
from .model import ASM


def cmd_classes(args: argparse.Namespace) -> int:
    """Print the Section 5.4 equivalence-class partition."""
    print(partition_table(args.n, args.t))
    return 0


def cmd_band(args: argparse.Namespace) -> int:
    """Print the multiplicative band of t' for the given (t, x)."""
    lo, hi = multiplicative_band(args.t, args.x)
    print(f"ASM(n, t', {args.x}) ~ ASM(n, {args.t}, 1)  iff  "
          f"{lo} <= t' <= {hi}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    """Decide solvability; on the possible side run the construction."""
    model = ASM(args.n, args.t, args.x)
    possible = kset_solvable(model, args.k)
    print(f"{args.k}-set agreement in {model}: "
          f"{'SOLVABLE' if possible else 'IMPOSSIBLE'} "
          f"(floor(t/x) = {model.resilience_index}, need k > that)")
    if not possible:
        return 1
    from .algorithms import KSetReadWrite, run_algorithm
    from .tasks import KSetAgreementTask
    t0 = model.resilience_index
    src = KSetReadWrite(n=args.n, t=t0, k=max(args.k, t0 + 1))
    alg = src if args.x == 1 else simulate_with_xcons(
        src, t_prime=args.t, x=args.x)
    result = run_algorithm(alg, list(range(args.n)),
                           max_steps=20_000_000)
    verdict = KSetAgreementTask(args.k).validate_run(
        list(range(args.n)), result)
    print(f"construction executed: {result.summary()}")
    print(f"task verdict: {verdict.explain()}")
    return 0 if verdict.ok else 1


def _resolve_jobs_arg(value):
    """Parse a ``--jobs`` flag value; returns (jobs_or_None, error)."""
    if value is None:
        return None, None
    from .runtime import resolve_jobs
    try:
        return resolve_jobs(value), None
    except ValueError as exc:
        return None, str(exc)


def _emit_metrics(records, show_table: bool,
                  out_path: Optional[str]) -> None:
    """Print and/or atomically persist collected run records."""
    if not records:
        return
    if show_table:
        from .analysis.metrics import render_metrics_table
        print()
        for line in render_metrics_table(records):
            print(line)
    if out_path:
        from .analysis.metrics import write_jsonl
        write_jsonl(out_path, records)


def cmd_check(args: argparse.Namespace) -> int:
    """Exhaustively check one named scenario (or ``all`` sound ones)."""
    import os

    from .runtime import (CounterexampleFound, ExplorationInterrupted,
                          FrontierMismatch, FrontierStore, explore)
    from .runtime.parallel import explore_parallel
    from .scenarios import SOUND_SCENARIOS, ScenarioRef, check_scenarios

    jobs, jobs_error = _resolve_jobs_arg(args.jobs)
    if jobs_error is not None:
        print(f"check: {jobs_error}", file=sys.stderr)
        return 2
    checkpoint_path = args.checkpoint or args.resume
    if args.checkpoint and args.resume:
        print("check: --checkpoint and --resume are mutually exclusive "
              "(--resume continues the store it names)", file=sys.stderr)
        return 2
    if checkpoint_path and jobs is None:
        # Durability is a property of the sharded engine; jobs=1 keeps
        # serial-speed execution while the frontier store journals it.
        jobs = 1
    scenarios = check_scenarios(n=args.n, x=args.x)
    if args.list or args.scenario in (None, "list"):
        if args.scenario is None and not args.list:
            print("no scenario given; registered scenarios "
                  "(also: --list):", file=sys.stderr)
        for name, sc in scenarios.items():
            print(f"{name:18s} {sc.description}")
        print(f"{'generated:S:I':18s} [generative] explorable "
              f"configuration I of sweep batch S (synthesized; see "
              f"'sweep --describe' and docs/generative_sweep.md)")
        return 0 if (args.list or args.scenario == "list") else 2
    if args.scenario == "all":
        names = list(SOUND_SCENARIOS)
    elif args.scenario in scenarios:
        names = [args.scenario]
    elif args.scenario.startswith("generated:"):
        # Synthesized scenarios resolve through the generative grammar;
        # the ref round-trips by name, so --jobs sharding is unchanged.
        from .scenarios import build_scenario
        try:
            scenarios[args.scenario] = build_scenario(args.scenario)
        except KeyError as exc:
            print(f"check: {exc.args[0]}", file=sys.stderr)
            return 2
        names = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; try "
              f"'--list' or one of: {', '.join(scenarios)}",
              file=sys.stderr)
        return 2

    if checkpoint_path and len(names) != 1:
        print("check: --checkpoint/--resume journal exactly one "
              "scenario per store (not 'all')", file=sys.stderr)
        return 2
    if args.checkpoint and os.path.exists(args.checkpoint):
        # --checkpoint starts a fresh exploration; continuing an
        # existing store is what --resume is for.
        os.unlink(args.checkpoint)

    reduction = "naive" if args.naive else "dpor"
    collect_metrics = args.metrics or args.metrics_out
    records = []
    exit_code = 0
    for name in names:
        sc = scenarios[name]
        max_steps = args.max_steps or sc.max_steps
        max_runs = args.max_runs or sc.max_runs
        print(f"[{name}] {sc.description}")
        extra = f", jobs={jobs}" if jobs is not None else ""
        print(f"[{name}] exploring ({reduction}, max_steps={max_steps}, "
              f"max_runs={max_runs}{extra}) ...")
        metrics = None
        if collect_metrics:
            from time import perf_counter

            from .analysis.metrics import ExplorationMetrics
            metrics = ExplorationMetrics(scenario=name, engine=reduction,
                                         jobs=jobs if jobs else 1)
            wall_start = perf_counter()

        def settle_metrics():
            if metrics is not None:
                records.append(metrics.finalize(
                    perf_counter() - wall_start).to_dict())
        try:
            if jobs is not None:
                from time import monotonic

                # Workers rebuild the scenario by name (closures do not
                # pickle); the ref pins the CLI's sizing flags.  The
                # wall-clock budget ships as an absolute monotonic
                # deadline, valid across fork on Linux.
                deadline = (monotonic() + args.timeout
                            if args.timeout else None)
                frontier = None
                if checkpoint_path:
                    frontier = FrontierStore(checkpoint_path)
                    if args.resume:
                        # A resume names a store the user believes
                        # exists; silently starting fresh would hide a
                        # typo'd path (or a lost disk) behind a full
                        # re-exploration.  Reject missing and
                        # unreadable stores exactly like a fingerprint
                        # mismatch: loudly, exit 2.
                        if not frontier.exists():
                            print(f"[{name}] RESUME REJECTED: no "
                                  f"frontier store at "
                                  f"{checkpoint_path}", file=sys.stderr)
                            exit_code = max(exit_code, 2)
                            continue
                        try:
                            frontier.load()
                        except (OSError, ValueError) as exc:
                            print(f"[{name}] RESUME REJECTED: "
                                  f"unreadable frontier store "
                                  f"{checkpoint_path}: {exc}",
                                  file=sys.stderr)
                            exit_code = max(exit_code, 2)
                            continue
                        print(f"[{name}] resuming from "
                              f"{checkpoint_path}")
                stats = explore_parallel(
                    crash_plan_factory=sc.crash_plan_factory,
                    max_steps=max_steps, max_runs=max_runs,
                    jobs=jobs, reduction=reduction,
                    scenario=ScenarioRef(name, n=args.n, x=args.x),
                    metrics=metrics, deadline=deadline,
                    state_cache=not args.no_state_cache,
                    frontier=frontier)
            else:
                stats = explore(sc.build, sc.check,
                                crash_plan_factory=sc.crash_plan_factory,
                                max_steps=max_steps, max_runs=max_runs,
                                reduction=reduction, metrics=metrics,
                                timeout=args.timeout or None,
                                state_cache=not args.no_state_cache)
        except CounterexampleFound as exc:
            print(f"[{name}] PROPERTY VIOLATED ({exc.stats})")
            print(exc.counterexample.describe())
            if metrics is not None:
                if exc.stats is not None:
                    metrics.record_stats(exc.stats)
                metrics.record_violation(
                    error_type=type(exc.counterexample.error).__name__,
                    prefix=exc.counterexample.prefix,
                    schedule=exc.counterexample.schedule)
                if not metrics.ddmin_replays:
                    metrics.ddmin_replays = \
                        exc.counterexample.ddmin_attempts
                settle_metrics()
            exit_code = max(exit_code, 1)
            continue
        except AssertionError as exc:
            # The naive engine reports the bare failure; only DPOR
            # shrinks it to a replayable counterexample.
            print(f"[{name}] PROPERTY VIOLATED: {exc}")
            print(f"[{name}] (rerun without --naive for a shrunk "
                  f"counterexample)")
            if metrics is not None:
                metrics.record_violation(error_type=type(exc).__name__)
                settle_metrics()
            exit_code = max(exit_code, 1)
            continue
        except ExplorationInterrupted as exc:
            # Graceful degradation: the budget stopped the sweep before
            # the tree was done.  Partial coverage is reported (flagged
            # ``"partial": true`` in the metrics record) and the
            # distinct exit code 3 separates "ran out of budget" from
            # "found a violation" (1) and "bad invocation" (2).
            print(f"[{name}] INTERRUPTED ({exc.reason}): {exc}",
                  file=sys.stderr)
            if metrics is not None:
                metrics.record_interrupted(exc.reason, exc.stats)
                settle_metrics()
            exit_code = max(exit_code, 3)
            continue
        except FrontierMismatch as exc:
            # Resuming under a different configuration would merge
            # statistics from two different state spaces; reject like
            # a mismatched sweep --resume seed (exit 2).
            print(f"[{name}] RESUME REJECTED: {exc}", file=sys.stderr)
            exit_code = max(exit_code, 2)
            continue
        except RuntimeError as exc:
            print(f"[{name}] BUDGET EXCEEDED: {exc}", file=sys.stderr)
            if metrics is not None:
                metrics.record_budget_exceeded()
                settle_metrics()
            exit_code = max(exit_code, 2)
            continue
        settle_metrics()
        if stats.truncated_runs:
            print(f"[{name}] PASSED up to depth {max_steps} "
                  f"(bounded: {stats})")
        else:
            print(f"[{name}] PASSED: {stats}")
    _emit_metrics(records, args.metrics, args.metrics_out)
    return exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically lint protocol code (exit 0/1/2 like ``check``)."""
    import json as json_module

    from .lint import (all_rules, filter_baseline, lint_paths,
                       load_baseline, select_rules, violations_payload,
                       write_baseline)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name:22s} {rule.description}")
        return 0
    if args.update_baseline and not args.baseline:
        print("lint: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    try:
        rules = (select_rules(args.select.split(","))
                 if args.select else None)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    violations, errors = lint_paths(args.paths, rules=rules)
    if args.update_baseline:
        if errors:
            for error in errors:
                print(error.render(), file=sys.stderr)
            print("lint: refusing to baseline an unparsable tree",
                  file=sys.stderr)
            return 2
        write_baseline(args.baseline, violations)
        print(f"lint: baseline written to {args.baseline} "
              f"({len(violations)} finding(s))")
        return 0
    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError,
                json_module.JSONDecodeError) as exc:
            print(f"lint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        violations, suppressed = filter_baseline(violations, baseline)
    if args.format == "json":
        print(json_module.dumps(
            violations_payload(violations, errors,
                               baseline_suppressed=suppressed),
            indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(violation.render())
        for error in errors:
            print(error.render(), file=sys.stderr)
        if suppressed:
            print(f"lint: {suppressed} baselined finding(s) suppressed")
    if errors:
        return 2
    if violations:
        if args.format != "json":
            print(f"lint: {len(violations)} violation(s)")
        return 1
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Dynamically audit footprint declarations over a scenario."""
    from .lint import FootprintViolation, audit_scenario
    from .scenarios import check_scenarios

    jobs, jobs_error = _resolve_jobs_arg(args.jobs)
    if jobs_error is not None:
        print(f"audit: {jobs_error}", file=sys.stderr)
        return 2
    scenarios = check_scenarios(n=args.n, x=args.x)
    if args.scenario == "all":
        names = list(scenarios)
    elif args.scenario in scenarios:
        names = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; one of: "
              f"all, {', '.join(scenarios)}", file=sys.stderr)
        return 2

    collect_metrics = args.metrics or args.metrics_out
    records = []
    exit_code = 0
    for name in names:
        sc = scenarios[name]
        if collect_metrics:
            from time import perf_counter

            from .analysis.metrics import RunMetrics
            wall_start = perf_counter()

        def settle_metrics(outcome, report=None):
            if not collect_metrics:
                return
            data = {"outcome": outcome, "jobs": jobs if jobs else 1,
                    "wall_seconds": perf_counter() - wall_start}
            if report is not None:
                # Adversary reprs carry the seeds (see lint.audit):
                # the record alone reproduces a randomized audit.
                data.update(runs=report.runs,
                            audited_ops=report.audited_ops,
                            adversaries=list(report.adversaries))
            records.append(
                RunMetrics(kind="audit", name=name, data=data).to_dict())
        try:
            report = audit_scenario(sc, max_steps=args.max_steps,
                                    perturb=not args.no_perturb,
                                    jobs=jobs)
        except FootprintViolation as exc:
            print(f"[{name}] FOOTPRINT VIOLATION")
            print(exc)
            settle_metrics("violation")
            exit_code = max(exit_code, 1)
            continue
        except RuntimeError as exc:
            print(f"[{name}] BUDGET EXCEEDED: {exc}", file=sys.stderr)
            settle_metrics("budget_exceeded")
            exit_code = max(exit_code, 2)
            continue
        settle_metrics("passed", report)
        print(f"[{name}] AUDIT PASSED: {report}")
    _emit_metrics(records, args.metrics, args.metrics_out)
    return exit_code


def cmd_mutants(args: argparse.Namespace) -> int:
    """Run the mutation-soundness harness (see ``repro.mutants``)."""
    from .mutants import MUTANTS, get_mutant

    if args.list:
        for mutant in MUTANTS:
            print(f"{mutant.name:26s} [{mutant.expected_stage:7s}] "
                  f"{mutant.description}")
        return 0
    if args.name:
        try:
            selected = [get_mutant(args.name)]
        except KeyError as exc:
            print(f"mutants: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        selected = list(MUTANTS)

    exit_code = 0
    for mutant in selected:
        stage = mutant.detect()
        if stage is None:
            print(f"[{mutant.name}] NOT DETECTED -- "
                  f"{mutant.description}", file=sys.stderr)
            print(f"[{mutant.name}] the {mutant.expected_stage} stage "
                  f"was expected to catch this mutant; a hole in the "
                  f"detection matrix", file=sys.stderr)
            exit_code = 1
        elif stage != mutant.expected_stage:
            print(f"[{mutant.name}] detected by {stage}, but the "
                  f"pinned stage is {mutant.expected_stage} -- the "
                  f"detection matrix shifted", file=sys.stderr)
            exit_code = 1
        else:
            print(f"[{mutant.name}] detected by {stage}")
    if exit_code == 0:
        print(f"all {len(selected)} mutant(s) detected")
    return exit_code


def _sweep_resume_skip(path: str, seed: int, count: int):
    """Indices an earlier sweep of ``seed`` verified; (skip, error).

    The synthesized batch is a pure function of ``(seed, count,
    GENERATOR_VERSION)``, so all three are validated against the
    partial record -- resuming under a different count (or a different
    grammar build) would re-derive a different configuration set and
    silently skip the wrong indices.  Records predating the
    ``generator_version`` field are accepted as current.
    """
    import json
    import os

    from .generative import GENERATOR_VERSION
    if not os.path.exists(path):
        return None, f"resume file {path!r} does not exist"
    data = None
    with open(path) as handle:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            if (record.get("kind") == "sweep"
                    and record.get("data", {}).get("seed") == seed):
                data = record["data"]
    if data is None:
        return None, (f"no sweep record for seed {seed} in {path!r} "
                      f"(a resume must reuse the original --seed)")
    stored_count = data.get("count")
    if stored_count != count:
        return None, (f"sweep record for seed {seed} in {path!r} was "
                      f"written with --count {stored_count}, not "
                      f"--count {count} (a resume must reuse the "
                      f"original --count; the batch is a pure function "
                      f"of seed and count)")
    stored_version = data.get("generator_version", GENERATOR_VERSION)
    if stored_version != GENERATOR_VERSION:
        return None, (f"sweep record for seed {seed} in {path!r} was "
                      f"written by generator grammar version "
                      f"{stored_version}; this build is version "
                      f"{GENERATOR_VERSION}, so the synthesized batch "
                      f"may differ -- rerun without --resume")
    return data.get("verified", []), None


def cmd_sweep(args: argparse.Namespace) -> int:
    """Generative corollary sweep (see ``repro.generative``)."""
    from .generative import (config_from_choices, execute_config,
                             generate_batch, run_sweep)

    jobs, jobs_error = _resolve_jobs_arg(args.jobs)
    if jobs_error is not None:
        print(f"sweep: {jobs_error}", file=sys.stderr)
        return 2
    if args.count < 1:
        print("sweep: --count must be >= 1", file=sys.stderr)
        return 2

    if args.describe:
        for cfg in generate_batch(args.seed, args.count):
            kind = "explore" if cfg.explorable else "execute"
            print(f"{cfg.describe():48s} [{kind}] "
                  f"choices={list(cfg.choices)}")
        return 0

    if args.replay is not None:
        try:
            choices = [int(piece) for piece
                       in args.replay.split(",") if piece.strip()]
        except ValueError:
            print(f"sweep: --replay wants a comma-separated integer "
                  f"tape, got {args.replay!r}", file=sys.stderr)
            return 2
        outcome = execute_config(config_from_choices(choices))
        print(outcome.describe())
        return 0 if outcome.agree else 1

    skip = ()
    if args.resume:
        skip, resume_error = _sweep_resume_skip(args.resume, args.seed,
                                                args.count)
        if resume_error is not None:
            print(f"sweep: {resume_error}", file=sys.stderr)
            return 2
        print(f"[sweep] resuming seed={args.seed}: skipping "
              f"{len(skip)} verified configuration(s)")

    extra = f", jobs={jobs}" if jobs is not None else ""
    print(f"[sweep] seed={args.seed} count={args.count}{extra}: "
          f"synthesizing and cross-checking against the oracle ...")
    result = run_sweep(args.seed, args.count, jobs=jobs,
                       timeout=args.timeout or None, skip=skip,
                       shrink=not args.no_shrink)
    for outcome in result.disagreements:
        print(f"[sweep] {outcome.describe()}")
        if outcome.shrunk_choices is not None:
            print(f"[sweep]   shrunk witness: "
                  f"{outcome.shrunk_config.describe()} "
                  f"(--replay "
                  f"{','.join(map(str, outcome.shrunk_choices))})")
    if result.interrupted:
        print(f"[sweep] INTERRUPTED ({result.interrupt_reason}): "
              f"{len(result.remaining)} configuration(s) left; rerun "
              f"with --resume to continue", file=sys.stderr)
    print(f"[sweep] {result.summary()}")

    records = [result.to_record()] if (args.metrics
                                       or args.metrics_out) else []
    _emit_metrics(records, args.metrics, args.metrics_out)
    if result.disagreements:
        return 1
    if result.interrupted:
        return 3
    return 0


def _parse_hostport(value: str, flag: str):
    """Parse a ``HOST:PORT`` flag value; returns ((host, port), error)."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        return None, (f"{flag} wants HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        return None, (f"{flag} wants a numeric port, got {port_text!r}")
    if not 0 <= port <= 65535:
        return None, f"{flag} port out of range: {port}"
    return (host, port), None


def cmd_serve(args: argparse.Namespace) -> int:
    """Coordinate one scenario's exploration over a TCP shard service.

    Binds ``--bind HOST:PORT`` (port 0 = ephemeral; the bound address
    is printed as ``[serve] listening on HOST:PORT`` before any shard
    runs), serves frontier shards to ``python -m repro worker``
    clients, and degrades to in-process execution when no workers show
    up (or all of them vanish).  Exit codes mirror ``check``: 0 pass,
    1 violation, 2 configuration error, 3 budget interrupt.  With
    ``--checkpoint``/``--resume`` the run is durable exactly like
    ``check --checkpoint`` -- the store fingerprint excludes the
    transport, so a killed ``serve`` resumes under a plain ``check
    --resume`` and vice versa.
    """
    import os

    from .runtime import (CounterexampleFound, ExplorationInterrupted,
                          FrontierMismatch, FrontierStore)
    from .runtime.netshard import ShardServer
    from .runtime.parallel import explore_parallel
    from .scenarios import ScenarioRef, check_scenarios

    bind, bind_error = _parse_hostport(args.bind, "--bind")
    if bind_error is not None:
        print(f"serve: {bind_error}", file=sys.stderr)
        return 2
    checkpoint_path = args.checkpoint or args.resume
    if args.checkpoint and args.resume:
        print("serve: --checkpoint and --resume are mutually exclusive",
              file=sys.stderr)
        return 2
    scenarios = check_scenarios(n=args.n, x=args.x)
    name = args.scenario
    if name not in scenarios:
        if name.startswith("generated:"):
            from .scenarios import build_scenario
            try:
                scenarios[name] = build_scenario(name)
            except KeyError as exc:
                print(f"serve: {exc.args[0]}", file=sys.stderr)
                return 2
        else:
            print(f"unknown scenario {name!r}; try 'check --list'",
                  file=sys.stderr)
            return 2
    sc = scenarios[name]
    max_steps = args.max_steps or sc.max_steps
    max_runs = args.max_runs or sc.max_runs

    frontier = None
    if checkpoint_path:
        frontier = FrontierStore(checkpoint_path)
        if args.resume:
            if not frontier.exists():
                print(f"[{name}] RESUME REJECTED: no frontier store "
                      f"at {checkpoint_path}", file=sys.stderr)
                return 2
            try:
                frontier.load()
            except (OSError, ValueError) as exc:
                print(f"[{name}] RESUME REJECTED: unreadable frontier "
                      f"store {checkpoint_path}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"[{name}] resuming from {checkpoint_path}")
        elif os.path.exists(args.checkpoint):
            os.unlink(args.checkpoint)

    state_cache = not args.no_state_cache
    server = ShardServer(
        bind[0], bind[1],
        config={"scenario": name, "n": args.n, "x": args.x,
                "max_steps": max_steps, "max_runs": max_runs,
                "reduction": "dpor", "state_cache": state_cache},
        lease_timeout=args.lease_timeout,
        solo_after=args.solo_after,
        announce=lambda host, port: print(
            f"[serve] listening on {host}:{port}", flush=True))

    collect_metrics = args.metrics or args.metrics_out
    metrics = None
    records = []
    if collect_metrics:
        from time import perf_counter

        from .analysis.metrics import ExplorationMetrics
        metrics = ExplorationMetrics(scenario=name, engine="dpor",
                                     jobs=1)
        wall_start = perf_counter()

    def settle_metrics():
        if metrics is not None:
            metrics.record_network(server.tallies)
            records.append(metrics.finalize(
                perf_counter() - wall_start).to_dict())
            _emit_metrics(records, args.metrics, args.metrics_out)

    from time import monotonic
    deadline = monotonic() + args.timeout if args.timeout else None
    print(f"[{name}] {sc.description}")
    print(f"[{name}] serving shards (dpor, max_steps={max_steps}, "
          f"max_runs={max_runs}) ...", flush=True)
    try:
        stats = explore_parallel(
            crash_plan_factory=sc.crash_plan_factory,
            max_steps=max_steps, max_runs=max_runs, jobs=1,
            reduction="dpor",
            scenario=ScenarioRef(name, n=args.n, x=args.x),
            metrics=metrics, deadline=deadline,
            state_cache=state_cache, frontier=frontier, pool=server)
    except CounterexampleFound as exc:
        print(f"[{name}] PROPERTY VIOLATED ({exc.stats})")
        print(exc.counterexample.describe())
        if metrics is not None:
            if exc.stats is not None:
                metrics.record_stats(exc.stats)
            metrics.record_violation(
                error_type=type(exc.counterexample.error).__name__,
                prefix=exc.counterexample.prefix,
                schedule=exc.counterexample.schedule)
            if not metrics.ddmin_replays:
                metrics.ddmin_replays = exc.counterexample.ddmin_attempts
            settle_metrics()
        return 1
    except ExplorationInterrupted as exc:
        print(f"[{name}] INTERRUPTED ({exc.reason}): {exc}",
              file=sys.stderr)
        if metrics is not None:
            metrics.record_interrupted(exc.reason, exc.stats)
            settle_metrics()
        return 3
    except FrontierMismatch as exc:
        print(f"[{name}] RESUME REJECTED: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"[{name}] BUDGET EXCEEDED: {exc}", file=sys.stderr)
        if metrics is not None:
            metrics.record_budget_exceeded()
            settle_metrics()
        return 2
    settle_metrics()
    tallies = server.tallies
    print(f"[serve] {tallies['remote_shards']} shard(s) remote, "
          f"{tallies['inprocess_shards']} in-process, "
          f"{tallies['reconnects']} reconnect(s), "
          f"{tallies['stale_rejections']} stale rejection(s)")
    if stats.truncated_runs:
        print(f"[{name}] PASSED up to depth {max_steps} "
              f"(bounded: {stats})")
    else:
        print(f"[{name}] PASSED: {stats}")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Join a shard server as a remote worker (``--jobs`` threads).

    Each thread is an independent :class:`~repro.runtime.netshard.
    ShardWorker` session: it connects with jittered backoff, rebuilds
    the announced scenario by name, and serves shards until the
    coordinator finishes.  Exit 0 when the run ended normally (even if
    the coordinator vanished mid-run -- a worker is expendable by
    design); exit 2 only when the server was never reachable.
    """
    import threading

    from .runtime.netshard import ShardWorker, WorkerUnavailable

    connect, connect_error = _parse_hostport(args.connect, "--connect")
    if connect_error is not None:
        print(f"worker: {connect_error}", file=sys.stderr)
        return 2
    jobs, jobs_error = _resolve_jobs_arg(args.jobs or "1")
    if jobs_error is not None:
        print(f"worker: {jobs_error}", file=sys.stderr)
        return 2

    workers = []
    for i in range(jobs):
        suffix = f"-{i}" if jobs > 1 else ""
        workers.append(ShardWorker(
            connect[0], connect[1],
            name=f"{args.name}{suffix}" if args.name else None,
            rpc_timeout=args.rpc_timeout,
            connect_attempts=args.connect_attempts))
    results: dict = {}

    def serve_one(worker) -> None:
        try:
            results[worker.name] = worker.run()
        except WorkerUnavailable as exc:
            results[worker.name] = exc

    threads = [threading.Thread(target=serve_one, args=(w,))
               for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    unreachable = [r for r in results.values()
                   if isinstance(r, WorkerUnavailable)]
    completed = sum(r for r in results.values() if isinstance(r, int))
    retries = sum(w.tallies["retries"] for w in workers)
    reconnects = sum(w.tallies["reconnects"] for w in workers)
    print(f"[worker] {completed} shard(s) completed across {jobs} "
          f"session(s), {retries} RPC retr(ies), "
          f"{reconnects} reconnect(s)")
    if unreachable and len(unreachable) == len(workers):
        print(f"worker: {unreachable[0]}", file=sys.stderr)
        return 2
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """A one-minute tour of the headline result."""
    from .algorithms import KSetReadWrite, run_algorithm
    from .runtime import CrashPlan
    from .tasks import KSetAgreementTask
    n, t, x = 6, 1, 3
    t_prime = t * x + x - 1
    src = KSetReadWrite(n=n, t=t, k=t + 1)
    lifted = simulate_with_xcons(src, t_prime=t_prime, x=x)
    print(f"{src.name} in {src.model()} lifted to {lifted.model()}")
    plan = CrashPlan.at_own_step({v: 4 + 3 * v for v in range(t_prime)})
    result = run_algorithm(lifted, list(range(n)), crash_plan=plan,
                           max_steps=5_000_000)
    print(f"with {t_prime} crashes: {result.summary()}")
    ok = KSetAgreementTask(t + 1).validate_run(
        list(range(n)), result).ok
    print(f"2-set agreement: {'preserved' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def main(argv=None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Multiplicative Power of Consensus Numbers -- "
                    "reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classes", help="Section 5.4 partition table")
    p.add_argument("n", type=int)
    p.add_argument("t", type=int)
    p.set_defaults(func=cmd_classes)

    p = sub.add_parser("band", help="multiplicative band of t'")
    p.add_argument("t", type=int)
    p.add_argument("x", type=int)
    p.set_defaults(func=cmd_band)

    p = sub.add_parser("solve", help="solvability of k-set agreement")
    p.add_argument("n", type=int)
    p.add_argument("t", type=int)
    p.add_argument("x", type=int)
    p.add_argument("k", type=int)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser(
        "check",
        help="exhaustively model-check a named scenario (DPOR)")
    p.add_argument("scenario", nargs="?", default=None,
                   help="scenario name, 'all' (sound scenarios), or "
                        "'list'")
    p.add_argument("--list", action="store_true",
                   help="enumerate the registered scenarios and exit")
    p.add_argument("--n", type=int, default=3,
                   help="process count for sized scenarios (default 3)")
    p.add_argument("--x", type=int, default=2,
                   help="consensus number x for x-safe-agreement "
                        "(default 2)")
    p.add_argument("--max-steps", type=int, default=0,
                   help="override the scenario's depth bound")
    p.add_argument("--max-runs", type=int, default=0,
                   help="override the scenario's run budget")
    p.add_argument("--timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="wall-clock budget per scenario; on expiry the "
                        "sweep stops cleanly, emits a partial metrics "
                        "record, and exits 3")
    p.add_argument("--naive", action="store_true",
                   help="disable partial-order reduction (enumerate "
                        "every interleaving)")
    p.add_argument("--no-state-cache", action="store_true",
                   help="disable the DPOR state cache (escape hatch: "
                        "re-execute every schedule prefix instead of "
                        "folding already-expanded states; see "
                        "docs/performance.md)")
    p.add_argument("--jobs", default=None, metavar="N",
                   help="shard exploration across N worker processes "
                        "('auto' = cpu count); run counts are identical "
                        "for every N")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="journal the exploration to a durable frontier "
                        "store at PATH (fresh store; overwrites an "
                        "existing one -- see --resume), so a killed run "
                        "can continue; implies --jobs 1 unless --jobs "
                        "is given (see docs/resumable_exploration.md)")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="continue an interrupted --checkpoint "
                        "exploration from the frontier store at PATH; "
                        "the store's configuration fingerprint must "
                        "match this invocation (exit 2 otherwise), and "
                        "final statistics are bit-for-bit identical to "
                        "an uninterrupted run")
    p.add_argument("--metrics", action="store_true",
                   help="print a per-scenario observability summary "
                        "(phases, prune/sleep rates, runs/sec)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write one JSON-lines run record per scenario "
                        "to PATH (atomic; schema in "
                        "docs/observability.md)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint",
        help="static protocol-discipline linter (AST rules)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files/directories to lint "
                        "(default: src/repro)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule codes/names to run "
                        "(default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="finding output format (default: text)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="accept-current-findings snapshot: only "
                        "violations not in FILE fail the run")
    p.add_argument("--update-baseline", action="store_true",
                   help="(re)write --baseline FILE from the current "
                        "findings and exit 0")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "audit",
        help="dynamic footprint-soundness audit of a scenario")
    p.add_argument("scenario",
                   help="scenario name or 'all' (every registered "
                        "scenario)")
    p.add_argument("--n", type=int, default=3,
                   help="process count for sized scenarios (default 3)")
    p.add_argument("--x", type=int, default=2,
                   help="consensus number x for x-safe-agreement "
                        "(default 2)")
    p.add_argument("--max-steps", type=int, default=100_000,
                   help="per-run step budget (default 100000)")
    p.add_argument("--no-perturb", action="store_true",
                   help="skip the replay-based read audit (state-diff "
                        "write audit only)")
    p.add_argument("--jobs", default=None, metavar="N",
                   help="audit the scenario's adversaries across N "
                        "worker processes ('auto' = cpu count)")
    p.add_argument("--metrics", action="store_true",
                   help="print a per-scenario observability summary")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write one JSON-lines run record per scenario "
                        "to PATH (atomic)")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "mutants",
        help="mutation-soundness harness over planted protocol bugs")
    p.add_argument("name", nargs="?", default=None,
                   help="run one mutant by name (default: all)")
    p.add_argument("--list", action="store_true",
                   help="list the planted mutants and exit")
    p.set_defaults(func=cmd_mutants)

    p = sub.add_parser(
        "sweep",
        help="generative corollary sweep vs the solvability oracle")
    p.add_argument("--seed", type=int, default=0,
                   help="batch seed; the synthesized configurations "
                        "are a pure function of it (default 0)")
    p.add_argument("--count", type=int, default=50,
                   help="configurations to synthesize (default 50)")
    p.add_argument("--timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="wall-clock budget for the whole sweep; on "
                        "expiry the sweep stops cleanly, emits a "
                        "partial metrics record listing completed and "
                        "remaining indices, and exits 3")
    p.add_argument("--jobs", default=None, metavar="N",
                   help="shard each explorable configuration across N "
                        "worker processes ('auto' = cpu count); "
                        "verdicts and records are identical for "
                        "every N")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="skip configurations a previous sweep of the "
                        "same seed verified (PATH = its --metrics-out "
                        "file)")
    p.add_argument("--describe", action="store_true",
                   help="print the synthesized batch without "
                        "executing anything")
    p.add_argument("--replay", default=None, metavar="CHOICES",
                   help="rebuild one configuration from a "
                        "comma-separated choice tape (as printed for "
                        "shrunk witnesses) and cross-check it")
    p.add_argument("--no-shrink", action="store_true",
                   help="report disagreements without shrinking them "
                        "to minimal tapes")
    p.add_argument("--metrics", action="store_true",
                   help="print an observability summary")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the sweep's JSON-lines run record to "
                        "PATH (atomic; required for --resume)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="coordinate a scenario check over a TCP shard service")
    p.add_argument("scenario",
                   help="scenario name (or generated:SEED:INDEX)")
    p.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="address to listen on (default 127.0.0.1:0; "
                        "port 0 picks an ephemeral port, printed as "
                        "'[serve] listening on HOST:PORT')")
    p.add_argument("--n", type=int, default=3,
                   help="process count for sized scenarios (default 3)")
    p.add_argument("--x", type=int, default=2,
                   help="consensus number x for x-safe-agreement "
                        "(default 2)")
    p.add_argument("--max-steps", type=int, default=0,
                   help="override the scenario's depth bound")
    p.add_argument("--max-runs", type=int, default=0,
                   help="override the scenario's run budget")
    p.add_argument("--timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="wall-clock budget; on expiry the run stops "
                        "cleanly and exits 3")
    p.add_argument("--no-state-cache", action="store_true",
                   help="disable the DPOR state cache (workers follow "
                        "via the announced config)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="journal the exploration to a durable frontier "
                        "store at PATH (fresh store); a killed serve "
                        "resumes via --resume here or via plain "
                        "'check --resume' -- the store is "
                        "transport-agnostic")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="continue an interrupted checkpointed run from "
                        "the frontier store at PATH (exit 2 if the "
                        "store is missing, unreadable, or fingerprint-"
                        "mismatched)")
    p.add_argument("--lease-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="seconds a shard lease survives without a "
                        "heartbeat before re-grant (default 10)")
    p.add_argument("--solo-after", type=float, default=5.0,
                   metavar="SECONDS",
                   help="seconds to wait for a first worker before "
                        "executing shards in-process (default 5)")
    p.add_argument("--metrics", action="store_true",
                   help="print an observability summary (includes the "
                        "per-connection net tallies)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the JSON-lines run record to PATH "
                        "(atomic; 'net' key carries transport tallies)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="join a shard server as a remote exploration worker")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="shard server address (from '[serve] listening "
                        "on HOST:PORT')")
    p.add_argument("--jobs", default=None, metavar="N",
                   help="worker sessions to run in this process "
                        "('auto' = cpu count; default 1)")
    p.add_argument("--name", default=None,
                   help="stable worker name prefix (reconnections "
                        "re-identify by name; default host-pid based)")
    p.add_argument("--rpc-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="per-RPC frame deadline (default 10)")
    p.add_argument("--connect-attempts", type=int, default=10,
                   help="connect attempts (jittered capped backoff) "
                        "before giving up (default 10)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("demo", help="one-minute tour")
    p.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
