"""The classic Borowsky-Gafni simulation: ASM(n, t, 1) -> ASM(t+1, t, 1).

"The BG simulation shows that the models ASM(n, t, 1) and ASM(t+1, t, 1)
are equivalent" (paper, abstract).  This is the x = 1 corner of the
machinery: t+1 simulators, wait-free (t of them may crash), simulating the
n processes of a t-resilient read/write algorithm through safe-agreement
objects.

`bg_reduce` also accepts any ``n_simulators >= t+1`` (the reduction is
usually stated for exactly t+1, but the construction is insensitive to
extra simulators), and `generalized_bg_reduce` gives the paper's
contribution #2 -- ASM(n, t, x) ≃ ASM(t+1, t, x) -- as the composition of
the Section 3 and Section 4 simulations around a classic BG core, exactly
the transitivity argument of Section 5.2.
"""

from __future__ import annotations

from ..agreement.safe_agreement import SafeAgreementFactory
from ..algorithms.protocol import Algorithm
from ..core.model import ASM, ModelViolation
from . import extended_bg, reverse_bg
from .simulation import SimulationAlgorithm


def bg_reduce(source: Algorithm,
              n_simulators: int = None) -> SimulationAlgorithm:
    """Wait-free (t+1)-simulator reduction of a t-resilient read/write
    algorithm (the original BG simulation)."""
    t = source.resilience
    if t < 1:
        raise ModelViolation(
            "BG reduction needs t >= 1 (with t = 0 the reduction target "
            "ASM(1, 0, 1) is a trivial sequential model)")
    n_sims = t + 1 if n_simulators is None else n_simulators
    if n_sims < t + 1:
        raise ModelViolation(
            f"need at least t+1 = {t + 1} simulators, got {n_sims}")
    return SimulationAlgorithm(
        source,
        n_simulators=n_sims,
        resilience=t,
        snap_agreement=SafeAgreementFactory(n_sims, family_name="SAFE_AG"),
        obj_agreement=SafeAgreementFactory(n_sims, family_name="XSAFE_AG"),
        label=f"bg_to_ASM({n_sims},{t},1)",
    )


def generalized_bg_reduce(source: Algorithm, x: int = None
                          ) -> SimulationAlgorithm:
    """Contribution #2: any task solvable in ASM(n, t, x) is solvable in
    ASM(t+1, t, x) -- the generalization of the BG simulation.

    Composition (the transitivity argument of Section 5.2): first reduce
    the source to read/write resilience t0 = ⌊t/x⌋ (Section 3), then run
    that t0-resilient algorithm under t+1 simulators equipped with
    consensus-number-x objects and tolerating t crashes (Section 4 with
    n' = t+1): t crashes kill at most ⌊t/x⌋ = t0 x-safe-agreement objects,
    which the t0-resilient inner algorithm absorbs.
    """
    x = int(source.consensus_power()) if x is None else x
    t = source.resilience
    if t < 1:
        raise ModelViolation("generalized BG reduction needs t >= 1")
    t0 = t // x
    # Step 1 (Section 3): ASM(n, t, x) -> ASM(n, t0, 1).
    in_rw = extended_bg.simulate_in_read_write(source, t0)
    if x == 1:
        # Degenerate case: the classic BG simulation itself.
        return bg_reduce(in_rw)
    # Step 2 (Section 4 with t+1 simulators): -> ASM(t+1, t, x).
    return reverse_bg.simulate_with_xcons(
        in_rw, t_prime=t, x=x, n_simulators=t + 1)


def target_model(source: Algorithm) -> ASM:
    """ASM(t+1, t, 1): the classic BG target for ``source``."""
    return ASM(source.resilience + 1, source.resilience, 1)
