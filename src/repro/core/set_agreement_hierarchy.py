"""The (m, ℓ)-set-agreement landscape around the paper (Section 1.3).

The paper situates its result among three related ones, all of which are
closed-form and therefore reproducible exactly:

* **Borowsky-Gafni set-consensus hierarchy**: an (n, k)-set agreement
  object cannot be wait-free implemented from (m, ℓ)-set agreement
  objects when n/k > m/ℓ; the matching possibility side is the grouping
  construction (partition the n ports into batches of m, one object per
  batch, ℓ outputs each).
* **Herlihy-Rajsbaum (algebraic spans)**: in a t-resilient system
  enriched with (m, ℓ)-set agreement objects, k-set agreement is
  solvable iff k >= k_min(t, m, ℓ) = ℓ·⌊(t+1)/m⌋ + min(ℓ, (t+1) mod m).
* **Mostéfaoui-Raynal-Travers**: in *synchronous* systems enriched with
  (m, ℓ)-set agreement objects, k-set agreement takes exactly
  ⌊t / (m·⌊k/ℓ⌋ + (k mod ℓ))⌋ + 1 rounds.
* **Gafni's round-reduction**: an asynchronous system with t' crashes
  can simulate the first ⌊t/t'⌋ rounds of a synchronous t-resilient
  algorithm ("the dividing power of asynchrony") -- the additive
  counterpart of the paper's multiplicative result.

`GroupedKSetFromSetObjects` is the constructive witness of the
possibility sides, runnable on the simulator.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..algorithms.protocol import Algorithm
from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy


# ----------------------------------------------------------------------
# Borowsky-Gafni hierarchy.
# ----------------------------------------------------------------------
def bg_set_hierarchy_implementable(n: int, k: int, m: int, ell: int
                                   ) -> bool:
    """Can an (n, k)-set agreement object be wait-free built from
    (m, ℓ)-set agreement objects (and registers)?  Iff n/k <= m/ℓ.

    Impossibility for n/k > m/ℓ is Borowsky-Gafni 1993; possibility:
    with n/k <= m/ℓ, i.e. k >= ⌈ℓ·n/m⌉ ... concretely the grouping
    construction below yields ⌈n/m⌉·ℓ <= k outputs whenever
    ⌈n/m⌉·ℓ <= k, which the inequality guarantees for m | n; for ragged
    n the classical partial-object trick closes the gap.
    """
    if min(n, k, m, ell) < 1:
        raise ValueError("all parameters must be >= 1")
    return n * ell <= k * m


def grouping_outputs(n: int, m: int, ell: int) -> int:
    """Distinct outputs of the grouping construction: ℓ per batch of m,
    and min(ℓ, batch size) for the ragged last batch."""
    full, ragged = divmod(n, m)
    return full * ell + min(ell, ragged)


# ----------------------------------------------------------------------
# Herlihy-Rajsbaum solvability frontier.
# ----------------------------------------------------------------------
def herlihy_rajsbaum_min_k(t: int, m: int, ell: int) -> int:
    """Smallest k such that k-set agreement is solvable in an
    asynchronous t-resilient system with (m, ℓ)-set agreement objects:
    k = ℓ·⌊(t+1)/m⌋ + min(ℓ, (t+1) mod m)."""
    if t < 0 or m < 1 or ell < 1:
        raise ValueError("need t >= 0, m >= 1, ell >= 1")
    return ell * ((t + 1) // m) + min(ell, (t + 1) % m)


def herlihy_rajsbaum_solvable(k: int, t: int, m: int, ell: int) -> bool:
    """Is k-set agreement solvable t-resiliently with (m, ℓ)-objects?"""
    return k >= herlihy_rajsbaum_min_k(t, m, ell)


# ----------------------------------------------------------------------
# Mostéfaoui-Raynal-Travers synchronous round complexity.
# ----------------------------------------------------------------------
def mrt_sync_rounds(t: int, k: int, m: int, ell: int) -> int:
    """Optimal synchronous round count for k-set agreement with
    (m, ℓ)-objects: ⌊t / (m·⌊k/ℓ⌋ + (k mod ℓ))⌋ + 1."""
    if t < 0 or min(k, m, ell) < 1:
        raise ValueError("need t >= 0 and k, m, ell >= 1")
    denom = m * (k // ell) + (k % ell)
    if denom == 0:
        raise ValueError("k < ell with k % ell == 0 is impossible")
    return t // denom + 1


# ----------------------------------------------------------------------
# Gafni's dividing power of asynchrony.
# ----------------------------------------------------------------------
def gafni_simulatable_rounds(t: int, t_prime: int) -> int:
    """Rounds of a t-resilient synchronous algorithm simulatable in an
    asynchronous system with t' crashes: ⌊t/t'⌋ (Gafni 1998).  The
    additive/dividing counterpart of the paper's multiplicative result.
    """
    if t < 0 or t_prime < 1:
        raise ValueError("need t >= 0 and t' >= 1")
    return t // t_prime


# ----------------------------------------------------------------------
# The constructive witness.
# ----------------------------------------------------------------------
class GroupedKSetFromSetObjects(Algorithm):
    """Wait-free k-set agreement from (m, ℓ)-set agreement objects.

    Partition the n processes into ⌈n/m⌉ batches of at most m; each
    batch shares one (m, ℓ)-object; each process proposes to its batch's
    object and decides the output.  Distinct decisions <= grouping
    outputs = ⌊n/m⌋·ℓ + min(ℓ, n mod m).
    """

    def __init__(self, n: int, m: int, ell: int) -> None:
        super().__init__(n, resilience=n - 1)
        if m < 1 or ell < 1:
            raise ValueError("need m >= 1 and ell >= 1")
        self.m = m
        self.ell = ell
        self.k = grouping_outputs(n, m, ell)
        self.name = f"grouped_kset_from_({m},{ell})_objects(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        specs = []
        for batch, start in enumerate(range(0, self.n, self.m)):
            members = range(start, min(start + self.m, self.n))
            specs.append(make_spec("kset", f"SA[{batch}]", ports=members,
                                   ell=self.ell))
        return specs

    def program(self, pid: int, value: Any) -> Generator:
        batch = pid // self.m
        obj = ObjectProxy(f"SA[{batch}]")
        decided = yield obj.propose(value)
        return decided
