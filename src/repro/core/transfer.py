"""Solvability transfer: composing simulations along Figure 7.

The paper proves ``ASM(n1, t1, x1) ≃ ASM(n2, t2, x2)`` for
⌊t1/x1⌋ = ⌊t2/x2⌋ = t by chaining

    ASM(n1, t1, x1) --Sec.3--> ASM(n1, t, 1) --BG--> ASM(n2, t, 1)
                                                     --Sec.4--> ASM(n2, t2, x2)

`transfer_algorithm` performs the constructive direction: given an
algorithm for one model, it produces an algorithm for any other model of
the same or a stronger class, as an explicit composition of
:class:`~repro.core.simulation.SimulationAlgorithm` layers.  Each layer is
itself a runnable Algorithm, so a chain is an *executable certificate* of
the equivalence.

`transfer_impossibility` performs the contrapositive bookkeeping: an
impossibility in one model propagates to every model of the same or a
weaker class.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import List, Optional

from ..algorithms.protocol import Algorithm
from . import classic_bg, extended_bg, reverse_bg
from .equivalence import at_least_as_strong, equivalent
from .model import ASM, ModelViolation
from .simulation import SimulationAlgorithm


@dataclass(frozen=True)
class TransferStep:
    """One arrow of a Figure 7 chain."""

    kind: str        # "section3" | "weaken" | "bg" | "section4"
    source: ASM
    target: ASM

    def __str__(self) -> str:
        return f"{self.source} --{self.kind}--> {self.target}"


def plan_transfer(source_model: ASM, target_model: ASM
                  ) -> List[TransferStep]:
    """The chain of simulations taking an algorithm from ``source_model``
    to ``target_model``.

    Requires ⌊t2/x2⌋ <= ⌊t1/x1⌋ (the target is at least as strong); the
    route goes through the canonical read/write models:

    1. Section 3 down to ASM(n1, ⌊t1/x1⌋, 1)      (skipped when x1 = 1);
    2. weaken the resilience claim to ⌊t2/x2⌋      (always sound);
    3. classic BG onto n2 simulators               (skipped when n1 = n2);
    4. Section 4 up to ASM(n2, t2, x2)             (skipped when x2 = 1 and
                                                    t2 is already the index).
    """
    if not at_least_as_strong(target_model, source_model):
        raise ModelViolation(
            f"cannot transfer from {source_model} "
            f"(index {source_model.resilience_index}) to the weaker "
            f"{target_model} (index {target_model.resilience_index})")
    if target_model.x == math.inf:
        raise ModelViolation(
            "transfer into an x = inf model: use x = n instead")
    idx1 = source_model.resilience_index
    idx2 = target_model.resilience_index
    steps: List[TransferStep] = []
    current = source_model

    if current.x != 1:
        nxt = ASM(current.n, idx1, 1)
        steps.append(TransferStep("section3", current, nxt))
        current = nxt
    if current.t != idx2:
        nxt = ASM(current.n, idx2, 1)
        steps.append(TransferStep("weaken", current, nxt))
        current = nxt
    if current.n != target_model.n:
        nxt = ASM(target_model.n, idx2, 1)
        steps.append(TransferStep("bg", current, nxt))
        current = nxt
    if current != target_model:
        steps.append(TransferStep("section4", current, target_model))
    return steps


def transfer_algorithm(algorithm: Algorithm,
                       target_model: ASM) -> Algorithm:
    """Compose simulations so ``algorithm`` runs in ``target_model``,
    solving the same colorless task."""
    steps = plan_transfer(algorithm.model(), target_model)
    current = algorithm
    for step in steps:
        if step.kind == "section3":
            current = extended_bg.simulate_in_read_write(
                current, t=step.target.t)
        elif step.kind == "weaken":
            current = _with_resilience(current, step.target.t)
        elif step.kind == "bg":
            if step.target.t >= 1:
                current = classic_bg.bg_reduce(
                    current, n_simulators=step.target.n)
            else:
                # Failure-free re-hosting: the BG machinery with zero
                # tolerated crashes.
                current = classic_bg.bg_reduce(
                    _with_resilience(current, 1, force=True),
                    n_simulators=max(step.target.n, 2))
                current = _with_resilience(current, 0)
        elif step.kind == "section4":
            current = reverse_bg.simulate_with_xcons(
                current, t_prime=step.target.t, x=int(step.target.x),
                n_simulators=step.target.n)
        else:
            raise AssertionError(step.kind)
    return current


def _with_resilience(algorithm: Algorithm, t: int,
                     force: bool = False) -> Algorithm:
    """A shallow view of ``algorithm`` with an adjusted resilience claim.

    Lowering is always sound (a t-resilient algorithm is t''-resilient for
    t'' < t).  ``force`` permits raising the claim, used only to host a
    0-resilient algorithm on the crash-free BG machinery.
    """
    if t == algorithm.resilience:
        return algorithm
    if t > algorithm.resilience and not force:
        raise ModelViolation(
            f"cannot raise resilience of {algorithm.name} from "
            f"{algorithm.resilience} to {t}")
    view = copy.copy(algorithm)
    view.resilience = t
    return view


def transfer_impossibility(impossible_in: ASM, candidate: ASM) -> bool:
    """If a colorless task is impossible in ``impossible_in``, is it
    impossible in ``candidate``?  Yes iff the candidate is not stronger:
    ⌊t2/x2⌋ >= ⌊t1/x1⌋ (contrapositive of the transfer direction)."""
    return (candidate.resilience_index >=
            impossible_in.resilience_index)


def equivalence_certificate(m1: ASM, m2: ASM
                            ) -> Optional[List[TransferStep]]:
    """For equivalent models, the full Figure 7 chain m1 -> m2 through the
    canonical wait-free model ASM(t+1, t, 1); None when not equivalent."""
    if not equivalent(m1, m2):
        return None
    t = m1.resilience_index
    mid = ASM(t + 1, t, 1)
    first = plan_transfer(m1, mid) if mid != m1 else []
    second = plan_transfer(mid, m2) if mid != m2 else []
    return first + second
