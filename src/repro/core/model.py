"""Re-export of :mod:`repro.model` (kept here so the model descriptor
lives conceptually with the paper's core results while avoiding an import
cycle with :mod:`repro.algorithms`)."""

from ..model import ASM, ModelViolation

__all__ = ["ASM", "ModelViolation"]
