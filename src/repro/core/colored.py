"""Section 5.5: simulating colored tasks.

A colored task forbids two processes from deciding the same (simulated)
value, so the colorless trick "every simulator adopts the first decision it
sees" is unsound.  Section 5.5 simulates the execution of an algorithm
solving a colored task in ASM(n, t, x) within ASM(n', t', x') under three
conditions:

* ``x' > 1``                 -- needed to build the test&set objects that
  allocate decisions to simulators;
* ``⌊t/x⌋ >= ⌊t'/x'⌋``       -- the colorless blocking arithmetic;
* ``n >= max(n', (n'-t') + t)`` -- enough simulated decisions survive for
  every correct simulator to claim a distinct one.

Mechanics: snapshots *and* simulated x_cons objects go through
x'-safe-agreement (Figure 8); when a simulator obtains pj's decision it
completes its pending propose, competes on T&S[j], and adopts the value on
a win or resumes simulating on a loss.
"""

from __future__ import annotations

from ..agreement.x_safe_agreement import XSafeAgreementFactory
from ..algorithms.protocol import Algorithm
from ..bg.policy import ColoredTASPolicy
from ..core.model import ASM, ModelViolation
from .simulation import SimulationAlgorithm


def colored_simulation_possible(source_model: ASM, target: ASM) -> bool:
    """The three side conditions of Section 5.5."""
    if target.x <= 1:
        return False
    if source_model.resilience_index < target.resilience_index:
        return False
    return source_model.n >= max(
        target.n, (target.n - target.t) + source_model.t)


def simulate_colored(source: Algorithm,
                     n_prime: int,
                     t_prime: int,
                     x_prime: int,
                     check: bool = True) -> SimulationAlgorithm:
    """Build the ASM(n', t', x') algorithm simulating the colored-task
    algorithm ``source`` (designed for ASM(n, t, x))."""
    source_model = source.model()
    target = ASM(n_prime, t_prime, x_prime)
    if check and not colored_simulation_possible(source_model, target):
        raise ModelViolation(
            f"Section 5.5 conditions violated for {source_model} -> "
            f"{target}: need x' > 1, floor(t/x) >= floor(t'/x'), and "
            f"n >= max(n', (n'-t')+t)")
    factory = XSafeAgreementFactory(n_prime, min(x_prime, n_prime),
                                    prefix="XSA")
    return SimulationAlgorithm(
        source,
        n_simulators=n_prime,
        resilience=t_prime,
        snap_agreement=factory,
        obj_agreement=factory,
        policy_class=ColoredTASPolicy,
        label=f"sec55_to_ASM({n_prime},{t_prime},{x_prime})",
    )
