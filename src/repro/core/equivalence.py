"""The ⌊t/x⌋ calculus: equivalence classes, hierarchy, solvability.

This module is the paper's main theorem in executable form:

* ``ASM(n1, t1, x1) ≃ ASM(n2, t2, x2)`` for colorless decision tasks
  **iff** ⌊t1/x1⌋ = ⌊t2/x2⌋ (Section 5.3);
* the *multiplicative band*: ASM(n, t', x) ≃ ASM(n, t, 1) iff
  t·x <= t' <= t·x + (x-1) (Section 5.4);
* a task with set consensus number k is solvable in ASM(n, t, x) iff
  k > ⌊t/x⌋ (Section 5.4);
* the strictness hierarchy between models, and the Section 5.4 worked
  partition of models into equivalence classes (the t' = 8 example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .model import ASM, ModelViolation


# ----------------------------------------------------------------------
# The core quantity.
# ----------------------------------------------------------------------
def resilience_index(t: int, x: float) -> int:
    """⌊t/x⌋ -- the equivalence-class invariant of ASM(·, t, x)."""
    if t < 0:
        raise ValueError("t must be >= 0")
    if x == math.inf:
        return 0
    if not isinstance(x, int) or x < 1:
        raise ValueError("x must be a positive int or inf")
    return t // x


def equivalent(m1: ASM, m2: ASM) -> bool:
    """Main theorem: same computational power for colorless tasks iff
    ⌊t1/x1⌋ = ⌊t2/x2⌋."""
    return m1.resilience_index == m2.resilience_index


def stronger(m1: ASM, m2: ASM) -> bool:
    """Strict hierarchy: m1 ≻ m2 iff more (colorless) tasks are solvable
    in m1, i.e. ⌊t1/x1⌋ < ⌊t2/x2⌋ (a smaller index solves more)."""
    return m1.resilience_index < m2.resilience_index


def at_least_as_strong(m1: ASM, m2: ASM) -> bool:
    """m1 solves every colorless task m2 solves: ⌊t1/x1⌋ <= ⌊t2/x2⌋."""
    return m1.resilience_index <= m2.resilience_index


def canonical(model: ASM) -> ASM:
    """Canonical representative ASM(n, ⌊t/x⌋, 1) of the class."""
    return model.canonical()


# ----------------------------------------------------------------------
# The multiplicative band (Section 5.4).
# ----------------------------------------------------------------------
def multiplicative_band(t: int, x: int) -> Tuple[int, int]:
    """The range of t' with ASM(n, t', x) ≃ ASM(n, t, 1):
    t·x <= t' <= t·x + (x-1)."""
    if t < 0 or x < 1:
        raise ValueError("need t >= 0 and x >= 1")
    return (t * x, t * x + (x - 1))


def in_band(t_prime: int, t: int, x: int) -> bool:
    """Is t' inside the multiplicative band of (t, x)?"""
    lo, hi = multiplicative_band(t, x)
    return lo <= t_prime <= hi


def useless_boost(t: int, x: int, delta_x: int) -> bool:
    """Section 5.4, 'increasing the consensus number can be useless':
    ASM(n, t, x) ≃ ASM(n, t, x + Δx) iff ⌊t/x⌋ = ⌊t/(x+Δx)⌋."""
    if delta_x < 0:
        raise ValueError("delta_x must be >= 0")
    return resilience_index(t, x) == resilience_index(t, x + delta_x)


def useless_extra_failures(t: int, delta_t: int, x: int) -> bool:
    """Dual observation: raising t to t+Δt does not weaken the model iff
    ⌊t/x⌋ = ⌊(t+Δt)/x⌋."""
    if delta_t < 0:
        raise ValueError("delta_t must be >= 0")
    return resilience_index(t, x) == resilience_index(t + delta_t, x)


# ----------------------------------------------------------------------
# Solvability of tasks by set consensus number (Sections 1.2 and 5.4).
# ----------------------------------------------------------------------
def kset_solvable(model: ASM, k: int) -> bool:
    """Is k-set agreement solvable in the model?  Iff k > ⌊t/x⌋.

    (k-set agreement is solvable in ASM(n, t, 1) iff t < k [Chaudhuri 93 /
    BG-HS-SZ impossibility]; the main theorem transfers this across the
    equivalence classes.)
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return k > model.resilience_index


def task_solvable(set_consensus_number: int, model: ASM) -> bool:
    """A task with set consensus number k is solvable in ASM(n, t, x)
    iff k > ⌊t/x⌋ (Section 5.4, 'A hierarchy of system models')."""
    return kset_solvable(model, set_consensus_number)


def consensus_solvable(model: ASM) -> bool:
    """Consensus = 1-set agreement: solvable iff ⌊t/x⌋ = 0, i.e. t < x."""
    return kset_solvable(model, 1)


def max_xcons_resilience(k: int, x: int) -> int:
    """Largest t' such that a task of set consensus number k is solvable
    in ASM(n, t', x): t' = k·x - 1 (paper, contribution #1 example)."""
    if k < 1 or x < 1:
        raise ValueError("need k >= 1 and x >= 1")
    return k * x - 1


def min_x_for_resilience(k: int, t_prime: int) -> int:
    """Smallest x such that a task of set consensus number k is solvable
    in ASM(n, t', x): x >= (t'+1)/k, i.e. ⌈(t'+1)/k⌉ (paper, same spot)."""
    if k < 1 or t_prime < 0:
        raise ValueError("need k >= 1 and t' >= 0")
    return -(-(t_prime + 1) // k)


# ----------------------------------------------------------------------
# Equivalence-class partitions (Section 5.4 worked example).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EquivalenceClass:
    """One class of the x-partition of models ASM(n, t', ·)."""

    index: int                  # the shared ⌊t'/x⌋ value
    x_range: Tuple[int, int]    # inclusive range of x in the class
    canonical_t: int            # t of the canonical ASM(n, t, 1)

    def contains(self, x: int) -> bool:
        return self.x_range[0] <= x <= self.x_range[1]


def equivalence_classes(n: int, t_prime: int) -> List[EquivalenceClass]:
    """Partition {ASM(n, t', x) : 1 <= x <= n} into equivalence classes.

    Reproduces the paper's worked example (t' = 8):
    x in 9..n -> class of ASM(n, 0, 1); x in 5..8 -> ASM(n, 1, 1);
    x in 3..4 -> ASM(n, 2, 1); x = 2 -> ASM(n, 4, 1); x = 1 -> ASM(n, 8, 1).
    """
    if not 0 <= t_prime < n:
        raise ModelViolation(f"need 0 <= t' < n, got t'={t_prime}, n={n}")
    classes: List[EquivalenceClass] = []
    x = 1
    while x <= n:
        index = t_prime // x
        # Largest x' with t'//x' == index.
        hi = n if index == 0 else min(n, t_prime // index)
        classes.append(EquivalenceClass(index=index, x_range=(x, hi),
                                        canonical_t=index))
        x = hi + 1
    return classes


def class_of(model: ASM) -> EquivalenceClass:
    """The equivalence class containing ``model`` within its (n, t) row."""
    if model.x == math.inf:
        return EquivalenceClass(0, (model.t + 1, model.n), 0)
    for cls in equivalence_classes(model.n, model.t):
        if cls.contains(int(model.x)):
            return cls
    raise AssertionError("partition must cover 1..n")


def x_band_for_index(t_prime: int, t: int) -> Optional[Tuple[int, int]]:
    """All x with ⌊t'/x⌋ = t: the paper's 'if t'/t >= x > t'/(t+1) then
    ASM(n, t', x) ≃ ASM(n, t, 1)'.  None if the band is empty."""
    if t_prime < 0 or t < 0:
        raise ValueError("need t', t >= 0")
    if t == 0:
        return (t_prime + 1, max(t_prime + 1, 10 ** 9))  # unbounded above
    lo = t_prime // (t + 1) + 1
    hi = t_prime // t
    if lo > hi:
        return None
    return (lo, hi)


def partition_table(n: int, t_prime: int) -> str:
    """Human-readable Section 5.4-style table for models ASM(n, t', x)."""
    lines = [f"Equivalence classes of ASM(n={n}, t'={t_prime}, x):"]
    for cls in equivalence_classes(n, t_prime):
        lo, hi = cls.x_range
        span = f"x = {lo}" if lo == hi else f"{lo} <= x <= {hi}"
        lines.append(
            f"  {span:<16} ~ ASM(n, {cls.canonical_t}, 1)   "
            f"[floor(t'/x) = {cls.index}]")
    return "\n".join(lines)
