"""Section 3: simulating ASM(n, t', x) in ASM(n, t, 1).

Given a t'-resilient algorithm A that uses objects of consensus number x,
`simulate_in_read_write` produces a t-resilient read/write algorithm
solving the same colorless task, provided t <= ⌊t'/x⌋ (Theorem 1).

The construction is the BG simulation extended with Figure 4: simulated
snapshots go through safe-agreement objects SAFE_AG[j, snapsn] and
simulated x_cons_propose() operations through one safe-agreement object
XSAFE_AG[a] per simulated consensus object.  mutex1 limits each simulator
to one pending propose, so a crashed simulator blocks either one simulated
process (snapshot agreement) or the <= x processes sharing one consensus
object (Lemma 1) -- whence the requirement t·x <= t'.
"""

from __future__ import annotations

import math

from ..agreement.safe_agreement import SafeAgreementFactory
from ..algorithms.protocol import Algorithm
from ..core.model import ASM, ModelViolation
from .simulation import SimulationAlgorithm


def max_target_resilience(source: Algorithm) -> int:
    """The largest t for which Theorem 1 applies: ⌊t'/x⌋."""
    x = source.consensus_power()
    if x == math.inf:
        return 0
    return source.resilience // int(x)


def simulate_in_read_write(source: Algorithm,
                           t: int,
                           check: bool = True) -> SimulationAlgorithm:
    """Build the ASM(n, t, 1) algorithm simulating ``source``.

    ``source`` is an algorithm for ASM(n, t', x); the result is an
    algorithm for ASM(n, t, 1) solving the same colorless task.  With
    ``check`` (default) the precondition t <= ⌊t'/x⌋ of Theorem 1 is
    enforced; pass check=False to build a deliberately unsound simulation
    (used by the tests to *demonstrate* the necessity of the bound).
    """
    bound = max_target_resilience(source)
    if check and t > bound:
        raise ModelViolation(
            f"Theorem 1 requires t <= floor(t'/x) = {bound}; got t={t} "
            f"for source {source.name} in {source.model()}")
    n = source.n
    return SimulationAlgorithm(
        source,
        n_simulators=n,
        resilience=t,
        snap_agreement=SafeAgreementFactory(n, family_name="SAFE_AG"),
        obj_agreement=SafeAgreementFactory(n, family_name="XSAFE_AG"),
        label=f"sec3_to_ASM({n},{t},1)",
    )


def target_model(source: Algorithm, t: int) -> ASM:
    """The target model ASM(n, t, 1) of the Section 3 simulation."""
    return ASM(source.n, t, 1)
