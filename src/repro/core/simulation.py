"""The generic BG-style simulation as an Algorithm transformer.

:class:`SimulationAlgorithm` wraps a source :class:`~repro.algorithms.
protocol.Algorithm` (designed for some ASM(n, t, x)) into an algorithm for
a target model, parameterized by

* the number of simulators,
* the agreement factories backing simulated snapshots and simulated
  one-shot object operations (safe-agreement for Section 3 / classic BG,
  x-safe-agreement for Sections 4 and 5.5),
* the decision policy (colorless / colored / measurement).

Because the result is itself an Algorithm whose operations use only
translatable object kinds, simulations *compose*: the equivalence chains of
the paper's Figure 7 are literal compositions of this class (see
`repro.core.transfer`).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..agreement.base import AgreementFactory
from ..algorithms.protocol import Algorithm
from ..bg.policy import DecisionPolicy, FirstDecisionPolicy
from ..bg.sim_ops import MEM_NAME
from ..bg.simulator import SimulationConfig, simulator_process
from ..memory.specs import ObjectSpec, make_spec


class SimulationAlgorithm(Algorithm):
    """An Algorithm that simulates ``source`` with ``n_simulators``."""

    def __init__(self,
                 source: Algorithm,
                 n_simulators: int,
                 resilience: int,
                 snap_agreement: AgreementFactory,
                 obj_agreement: Optional[AgreementFactory] = None,
                 policy_factory: Optional[
                     Callable[[int], DecisionPolicy]] = None,
                 policy_class: type = FirstDecisionPolicy,
                 label: str = "sim",
                 per_object_mutex2: bool = True,
                 eager_spin: bool = False) -> None:
        super().__init__(n_simulators, resilience)
        self.source = source
        self.snap_agreement = snap_agreement
        self.obj_agreement = obj_agreement or snap_agreement
        self.policy_class = policy_class
        self.policy_factory = (policy_factory or
                               (lambda sim_id: policy_class()))
        self.name = f"{label}({source.name})"
        self._config = SimulationConfig(
            source_specs=source.object_specs(),
            source_program=source.program,
            n_simulated=source.n,
            n_simulators=n_simulators,
            snap_agreement=self.snap_agreement,
            obj_agreement=self.obj_agreement,
            policy_factory=self.policy_factory,
            mem_name=MEM_NAME,
            per_object_mutex2=per_object_mutex2,
            eager_spin=eager_spin,
        )

    # ------------------------------------------------------------------
    def object_specs(self) -> List[ObjectSpec]:
        specs = [make_spec("snapshot", MEM_NAME, size=self.n)]
        specs.extend(self.snap_agreement.object_specs())
        if self.obj_agreement is not self.snap_agreement:
            specs.extend(self.obj_agreement.object_specs())
        specs.extend(self.policy_class.extra_specs(self.n))
        return specs

    def program(self, pid: int, value: Any) -> Generator:
        return simulator_process(self._config, pid, value)
