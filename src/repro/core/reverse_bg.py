"""Section 4: simulating ASM(n, t, 1) in ASM(n, t', x).

Given a t-resilient read/write algorithm A, `simulate_with_xcons` produces
a t'-resilient algorithm using consensus-number-x objects that solves the
same colorless task, provided t >= ⌊t'/x⌋ (Theorem 3) -- i.e. the target
tolerates up to t' = t·x + (x-1) crashes: *the multiplicative power of
consensus numbers*.

The construction replaces the safe-agreement objects of the BG simulation
with x-safe-agreement objects (Figure 6): killing one agreement object now
costs the adversary x simulator crashes (its dynamically elected owners),
so t' crashes block at most ⌊t'/x⌋ simulated processes (Lemma 7).
"""

from __future__ import annotations

from ..agreement.x_safe_agreement import XSafeAgreementFactory
from ..algorithms.protocol import Algorithm
from ..core.model import ASM, ModelViolation
from .simulation import SimulationAlgorithm


def max_target_resilience(source: Algorithm, x: int) -> int:
    """The largest t' for which Theorem 3 applies: t·x + (x-1)."""
    return source.resilience * x + (x - 1)


def simulate_with_xcons(source: Algorithm,
                        t_prime: int,
                        x: int,
                        n_simulators: int = None,
                        check: bool = True) -> SimulationAlgorithm:
    """Build the ASM(n', t', x) algorithm simulating ``source``.

    ``source`` is an algorithm for ASM(n, t, 1) (more generally, any
    algorithm whose one-shot objects the translator supports -- Section 5.5
    uses the same machinery with x_cons objects in the source).  With
    ``check`` (default) the precondition t >= ⌊t'/x⌋ of Theorem 3 is
    enforced.  ``n_simulators`` defaults to source.n (the paper's Section 4
    setting); the generalized BG reduction of Section 5.2 passes t+1.
    """
    if x < 1:
        raise ModelViolation(f"x must be >= 1, got {x}")
    if check and source.resilience < t_prime // x:
        raise ModelViolation(
            f"Theorem 3 requires t >= floor(t'/x) = {t_prime // x}; "
            f"source {source.name} is only {source.resilience}-resilient")
    n_sims = source.n if n_simulators is None else n_simulators
    if t_prime >= n_sims:
        raise ModelViolation(
            f"t' must be < n_simulators (t'={t_prime}, n'={n_sims})")
    factory = XSafeAgreementFactory(n_sims, min(x, n_sims), prefix="XSA")
    return SimulationAlgorithm(
        source,
        n_simulators=n_sims,
        resilience=t_prime,
        snap_agreement=factory,
        obj_agreement=factory,
        label=f"sec4_to_ASM({n_sims},{t_prime},{x})",
    )


def target_model(source: Algorithm, t_prime: int, x: int) -> ASM:
    """The target model ASM(n, t', x) of the Section 4 simulation."""
    return ASM(source.n, t_prime, x)
