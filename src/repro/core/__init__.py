"""The paper's contribution: ASM(n, t, x) models, the two simulations,
the floor(t/x) equivalence calculus, and transfer chains."""

from .classic_bg import bg_reduce, generalized_bg_reduce
from .colored import colored_simulation_possible, simulate_colored
from .equivalence import (EquivalenceClass, at_least_as_strong, canonical,
                          class_of, consensus_solvable, equivalence_classes,
                          equivalent, in_band, kset_solvable,
                          max_xcons_resilience, min_x_for_resilience,
                          multiplicative_band, partition_table,
                          resilience_index, stronger, task_solvable,
                          useless_boost, useless_extra_failures,
                          x_band_for_index)
from .extended_bg import simulate_in_read_write
from .model import ASM, ModelViolation
from .reverse_bg import simulate_with_xcons
from .set_agreement_hierarchy import (GroupedKSetFromSetObjects,
                                      bg_set_hierarchy_implementable,
                                      gafni_simulatable_rounds,
                                      grouping_outputs,
                                      herlihy_rajsbaum_min_k,
                                      herlihy_rajsbaum_solvable,
                                      mrt_sync_rounds)
from .simulation import SimulationAlgorithm
from .transfer import (TransferStep, equivalence_certificate, plan_transfer,
                       transfer_algorithm, transfer_impossibility)

__all__ = [
    "ASM", "ModelViolation",
    "SimulationAlgorithm",
    "bg_reduce", "generalized_bg_reduce",
    "simulate_in_read_write", "simulate_with_xcons",
    "colored_simulation_possible", "simulate_colored",
    "EquivalenceClass", "at_least_as_strong", "canonical", "class_of",
    "consensus_solvable", "equivalence_classes", "equivalent", "in_band",
    "kset_solvable", "max_xcons_resilience", "min_x_for_resilience",
    "multiplicative_band", "partition_table", "resilience_index",
    "stronger", "task_solvable", "useless_boost", "useless_extra_failures",
    "x_band_for_index",
    "TransferStep", "equivalence_certificate", "plan_transfer",
    "transfer_algorithm", "transfer_impossibility",
    "GroupedKSetFromSetObjects", "bg_set_hierarchy_implementable",
    "gafni_simulatable_rounds", "grouping_outputs",
    "herlihy_rajsbaum_min_k", "herlihy_rajsbaum_solvable",
    "mrt_sync_rounds",
]
