"""The Algorithm abstraction.

An :class:`Algorithm` packages everything the paper means by "an algorithm
A solving a task T in ASM(n, t, x)":

* ``n`` processes and the resilience ``t`` it is designed for,
* the shared objects it uses (as declarative specs, so a BG-style
  simulation can translate them instead of materializing them),
* a ``program(pid, input)`` factory returning the process generator.

Both hand-written algorithms (`repro.algorithms.*`) and the outputs of the
simulations (`repro.core.*`) implement this interface, which is what makes
the paper's Figure 7 equivalence chains *composable*: a simulation takes an
Algorithm for the source model and returns an Algorithm for the target
model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Generator, List, Optional, Sequence

from ..model import ASM, ModelViolation
from ..memory.specs import ObjectSpec, build_store
from ..runtime.adversary import Adversary
from ..runtime.crash import CrashPlan
from ..runtime.run import RunResult, run_processes


class Algorithm(ABC):
    """A distributed algorithm for some ASM(n, t, x) model."""

    #: Human-readable identifier (used in bench output).
    name: str = "algorithm"

    def __init__(self, n: int, resilience: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 <= resilience < n:
            raise ValueError(
                f"resilience must satisfy 0 <= t < n, got t={resilience}, "
                f"n={n}")
        self.n = n
        self.resilience = resilience

    # ------------------------------------------------------------------
    @abstractmethod
    def object_specs(self) -> List[ObjectSpec]:
        """Declarative list of the shared objects the algorithm uses."""

    @abstractmethod
    def program(self, pid: int, value: Any) -> Generator:
        """Process generator for ``pid`` with input ``value``."""

    # ------------------------------------------------------------------
    def build_store(self):
        """Fresh store with one object per spec (one store per run)."""
        return build_store(self.object_specs())

    def consensus_power(self) -> float:
        """Largest consensus number among the algorithm's objects: the x
        its model must provide.  1 for pure read/write algorithms."""
        cns = [spec.consensus_number for spec in self.object_specs()]
        return max(cns, default=1)

    def model(self) -> ASM:
        """The weakest ASM model this algorithm is designed for."""
        x = self.consensus_power()
        if x != math.inf:
            x = int(x)
        return ASM(self.n, self.resilience, x)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} in {self.model()}>"


def run_algorithm(algorithm: Algorithm,
                  inputs: Sequence[Any],
                  adversary: Optional[Adversary] = None,
                  crash_plan: Optional[CrashPlan] = None,
                  max_steps: int = 1_000_000,
                  record_trace: bool = False,
                  enforce_model: bool = True) -> RunResult:
    """Execute an algorithm on the given input vector.

    ``enforce_model`` validates that the store conforms to the algorithm's
    ASM model and that the crash plan stays within its resilience; pass
    False to deliberately over-crash (e.g. to demonstrate that a t-resilient
    algorithm loses liveness beyond t failures).
    """
    if len(inputs) != algorithm.n:
        raise ValueError(
            f"{algorithm.name} has n={algorithm.n} processes, got "
            f"{len(inputs)} inputs")
    store = algorithm.build_store()
    plan = crash_plan or CrashPlan.none()
    if enforce_model:
        model = algorithm.model()
        model.validate_store(store)
        model.validate_crashes(len(plan))
    programs = {pid: algorithm.program(pid, inputs[pid])
                for pid in range(algorithm.n)
                }
    return run_processes(programs, store, adversary=adversary,
                         crash_plan=plan, max_steps=max_steps,
                         record_trace=record_trace)
