"""Concrete algorithms: the inputs the paper's simulations quantify over."""

from .consensus_from_xcons import (ConsensusFromXCons, GroupedKSetFromXCons,
                                   group_of, groups)
from .kset_rw import ConsensusReadWriteFailureFree, KSetReadWrite
from .omega_consensus import OmegaConsensus, OmegaXClusterConsensus
from .protocol import Algorithm, run_algorithm
from .renaming_tas import RenamingFromTAS
from .splitter_renaming import (ImmediateSnapshotRenaming,
                                SplitterGridRenaming)
from .trivial import IdentityAlgorithm, WriteThenSnapshot

__all__ = [
    "Algorithm", "run_algorithm",
    "ConsensusFromXCons", "GroupedKSetFromXCons", "group_of", "groups",
    "ConsensusReadWriteFailureFree", "KSetReadWrite",
    "OmegaConsensus", "OmegaXClusterConsensus",
    "ImmediateSnapshotRenaming",
    "RenamingFromTAS", "SplitterGridRenaming",
    "IdentityAlgorithm", "WriteThenSnapshot",
]
