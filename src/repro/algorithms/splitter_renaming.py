"""Wait-free renaming in pure read/write memory (Moir-Anderson grid).

The paper cites renaming as *the* colored task and notes it is solvable
wait-free with 2n-1 names in read/write memory (Section 2.2, Attiya et
al.).  This module provides the classic constructive algorithm family:
a grid of *splitters*.

A splitter (Lamport/Moir-Anderson) is built from two registers X, Y:

    X := pid
    if Y: return RIGHT
    Y := True
    if X == pid: return STOP
    return DOWN

Among the k processes that enter one splitter, at most one STOPs, at
most k-1 go RIGHT and at most k-1 go DOWN.  Processes walk a triangular
grid; each splitter's coordinates encode a name, and every process stops
within n-1 moves, so names fit in the triangle of size n(n+1)/2.

(The optimal 2n-1-name algorithms are substantially more involved; the
grid is the standard teaching construction and suffices as the
read/write colored-task witness.  Tight renaming from test&set -- n
names, needs x >= 2 -- lives in `repro.algorithms.renaming_tas`.)
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from ..memory.base import BOTTOM
from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy
from .protocol import Algorithm

#: Splitter outcomes.
STOP, RIGHT, DOWN = "stop", "right", "down"

X = "SPL_X"   # register family: (r, d) -> last entrant
Y = "SPL_Y"   # register family: (r, d) -> True once occupied


def splitter(x: ObjectProxy, y: ObjectProxy, key: Tuple[int, int],
             pid: int) -> Generator:
    """``outcome = yield from splitter(x, y, (r, d), pid)``."""
    yield x.write(key, pid)
    occupied = yield y.read(key)
    if occupied is not BOTTOM:
        return RIGHT
    yield y.write(key, True)
    last = yield x.read(key)
    if last == pid:
        return STOP
    return DOWN


def grid_name(r: int, d: int, n: int) -> int:
    """Triangular numbering of the grid position (row r, depth d)."""
    diag = r + d
    return diag * (diag + 1) // 2 + d


class SplitterGridRenaming(Algorithm):
    """Wait-free renaming with n(n+1)/2 names from registers only."""

    def __init__(self, n: int) -> None:
        super().__init__(n, resilience=n - 1)
        self.namespace = n * (n + 1) // 2
        self.name = f"splitter_grid_renaming(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("register_family", X),
                make_spec("register_family", Y)]

    def program(self, pid: int, value: Any) -> Generator:
        x, y = ObjectProxy(X), ObjectProxy(Y)
        r = d = 0
        while True:
            outcome = yield from splitter(x, y, (r, d), pid)
            if outcome == STOP:
                return grid_name(r, d, self.n)
            if outcome == RIGHT:
                r += 1
            else:
                d += 1
            if r + d >= self.n:
                raise AssertionError(
                    f"p{pid} walked off the grid: more than n-1 moves, "
                    f"impossible with n processes")


class ImmediateSnapshotRenaming(Algorithm):
    """Wait-free renaming from ONE immediate snapshot.

    The participating-set route to renaming: take an immediate snapshot;
    with view V of size s, decide the name

        s·(s-1)/2 + rank of own id in V.

    Distinctness: two processes with |V| = s have the *same* view
    (containment: equal-size comparable sets are equal), so their ranks
    differ; different sizes map to disjoint name blocks.  Names live in
    0 .. n(n+1)/2 - 1, matching the splitter grid's namespace but in a
    single (wait-free) object access pattern.
    """

    def __init__(self, n: int, t: int = None) -> None:
        super().__init__(n, resilience=n - 1 if t is None else t)
        self.namespace = n * (n + 1) // 2
        self.name = f"immediate_snapshot_renaming(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        from ..memory.immediate_snapshot import ImmediateSnapshot
        return ImmediateSnapshot("ISR", self.n).object_specs()

    def program(self, pid: int, value: Any) -> Generator:
        from ..memory.immediate_snapshot import ImmediateSnapshot
        view = yield from ImmediateSnapshot(
            "ISR", self.n).write_snapshot(pid, pid)
        size = len(view)
        rank = sorted(view).index(pid)
        return size * (size - 1) // 2 + rank
