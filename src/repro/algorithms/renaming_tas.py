"""Colored tasks: adaptive strong renaming from test&set.

A *colored* task forbids two processes from deciding the same value (paper
Sections 2.1 and 5.5); renaming is the canonical example.  With test&set
objects (available whenever x >= 2, paper Section 4.3 citing [19]) strong
renaming is wait-free solvable: scan a T&S array and decide the index of
the first object won.  Names are adaptive: with p participants the names
decided are a subset of {0..p-1}... more precisely each winner's name is
bounded by the number of processes that started before it finished.

This is the colored algorithm the Section 5.5 simulation (`repro.core.
colored`) is exercised with.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy
from .protocol import Algorithm

SLOTS = "slots"


class RenamingFromTAS(Algorithm):
    """Wait-free strong renaming: decide the first T&S slot you win.

    Each of the n slots is won by at most one process and every correct
    process wins some slot (it can lose a slot only to a distinct winner,
    and there are n slots for <= n processes), so decided names are distinct
    values in {0..n-1}: a colored task, solvable in any ASM(n, t, x>=2).
    """

    consensus_number_needed = 2

    def __init__(self, n: int, t: int = None) -> None:
        super().__init__(n, resilience=n - 1 if t is None else t)
        self.name = f"renaming_tas(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("tas", f"{SLOTS}[{s}]") for s in range(self.n)]

    def program(self, pid: int, value: Any) -> Generator:
        for s in range(self.n):
            slot = ObjectProxy(f"{SLOTS}[{s}]")
            won = yield slot.test_and_set()
            if won:
                return s
        raise AssertionError(
            f"p{pid} lost all {self.n} slots to {self.n} distinct winners "
            f"-- more winners than processes")
