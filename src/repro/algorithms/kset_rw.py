"""t-resilient k-set agreement in the read/write model, for t < k.

The classic algorithm ("it is trivial to solve k-set agreement in
asynchronous read/write systems prone to t < k crashes", paper Section 1.1,
after Chaudhuri 1993): write your input, snapshot until at least n - t
inputs are visible, decide the minimum value seen.

Why at most t + 1 <= k distinct values are decided: every snapshot with
n - t non-⊥ entries misses at most t entries, so it contains at least one
of the t + 1 smallest written inputs; its minimum is therefore one of those
t + 1 values.

This is the canonical *colorless* task algorithm fed to both simulations in
the tests and benchmarks.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..memory.base import BOTTOM
from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy, wait_until
from .protocol import Algorithm

MEM = "mem"


class KSetReadWrite(Algorithm):
    """k-set agreement via write + snapshot-until-(n-t), decide min."""

    def __init__(self, n: int, t: int, k: int) -> None:
        super().__init__(n, resilience=t)
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}")
        if t >= k:
            raise ValueError(
                f"this algorithm requires t < k (k-set agreement is "
                f"impossible in ASM(n, t, 1) for t >= k); got t={t}, k={k}")
        self.k = k
        self.name = f"kset_rw(n={n}, t={t}, k={k})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("snapshot", MEM, size=self.n)]

    def program(self, pid: int, value: Any) -> Generator:
        mem = ObjectProxy(MEM)
        threshold = self.n - self.resilience
        yield mem.write(pid, value)
        snap = yield from wait_until(
            lambda: mem.snapshot(),
            lambda s: sum(1 for e in s if e is not BOTTOM) >= threshold)
        return min(e for e in snap if e is not BOTTOM)


class ConsensusReadWriteFailureFree(KSetReadWrite):
    """Consensus in ASM(n, 0, 1): the degenerate t = 0 instance.

    With no crashes every process waits for all n inputs and decides the
    global minimum -- the failure-free read/write model solves consensus,
    which is why Section 5.4 can place ASM(n, 8, x >= 9) in the same class
    as ASM(n, 0, 1).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n, t=0, k=1)
        self.name = f"consensus_rw_t0(n={n})"
