"""Trivial tasks: the bottom of the set-consensus hierarchy.

"Class n contains the trivial tasks that can be solved asynchronously in a
crash-prone read/write shared memory system" (paper Section 1.1).  These
algorithms are used as base cases in tests and as minimal simulated
workloads when exercising the BG machinery itself.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..memory.base import BOTTOM
from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy
from .protocol import Algorithm

MEM = "mem"


class IdentityAlgorithm(Algorithm):
    """Decide your own input, no communication: solvable wait-free in
    ASM(n, n-1, 1) (a trivial colored-or-colorless task)."""

    def __init__(self, n: int) -> None:
        super().__init__(n, resilience=n - 1)
        self.name = f"identity(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        return []

    def program(self, pid: int, value: Any) -> Generator:
        return value
        yield  # pragma: no cover - makes this a generator function


class WriteThenSnapshot(Algorithm):
    """Write the input, take one snapshot, decide (own input, #values seen).

    A minimal exerciser of the write/snapshot simulation path: its decision
    depends on the snapshot content, so divergent simulators would be
    caught by the agreement checks in the tests.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n, resilience=n - 1)
        self.name = f"write_then_snapshot(n={n})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("snapshot", MEM, size=self.n)]

    def program(self, pid: int, value: Any) -> Generator:
        mem = ObjectProxy(MEM)
        yield mem.write(pid, value)
        snap = yield mem.snapshot()
        seen = sum(1 for e in snap if e is not BOTTOM)
        return (value, seen)
