"""Indulgent consensus from Ω (the Section 1.3 boosting, x = 1 instance).

Consensus is unsolvable in ASM(n, t, 1) for every t >= 1 (the paper's
running impossibility).  Enriching the model with the leader oracle Ω
makes it wait-free solvable -- failure detectors boost computability
exactly as Section 1.3 recounts (Ω = Ω1 is the weakest such oracle;
Guerraoui-Kuznetsov generalize to Ωx).

The algorithm is the classic round-based *indulgent* scheme:

round r:
  1. exit if the decision register is set;
  2. wait until the CURRENT leader's round-r proposal is visible (writing
     our own if we are the leader) -- re-querying Ω while waiting, so a
     crashed or demoted leader cannot block us;
  3. adopt the leader proposal and run the round's adopt-commit object;
     COMMIT -> write the decision register and decide; ADOPT -> carry the
     value to round r+1.

Safety (agreement + validity) comes from adopt-commit *alone* and holds
even while Ω misbehaves -- that is indulgence.  Termination needs Ω's
eventual guarantee: once all correct processes see the same correct
leader forever, that leader's proposal reaches everyone within one round
and the round's adopt-commit is unanimous.

The same skeleton with coordinator *sets* and per-subset consensus
objects gives the Ωx variant -- see OmegaXClusterConsensus.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Generator, List

from ..agreement.adopt_commit import COMMIT, AdoptCommit, adopt_commit_specs
from ..memory.base import BOTTOM
from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy
from .protocol import Algorithm

OMEGA = "omega"
LEAD = "LEAD"      # register family: (round, leader) -> proposal
DEC = "DEC"        # decision register


class OmegaConsensus(Algorithm):
    """Wait-free consensus in ASM(n, n-1, 1) + Ω."""

    def __init__(self, n: int, stabilize_after: int = 0,
                 max_rounds: int = 10_000) -> None:
        super().__init__(n, resilience=n - 1)
        self.stabilize_after = stabilize_after
        self.max_rounds = max_rounds
        self.name = f"omega_consensus(n={n}, stab={stabilize_after})"

    def object_specs(self) -> List[ObjectSpec]:
        return [
            make_spec("omega", OMEGA, stabilize_after=self.stabilize_after),
            make_spec("register_family", LEAD),
            make_spec("register", DEC),
        ] + adopt_commit_specs(self.n)

    def program(self, pid: int, value: Any) -> Generator:
        omega = ObjectProxy(OMEGA)
        lead = ObjectProxy(LEAD)
        dec = ObjectProxy(DEC)
        est = value
        for r in range(self.max_rounds):
            # (1) fast exit on a published decision.
            decided = yield dec.read()
            if decided is not BOTTOM:
                return decided
            # (2) obtain the round-r proposal of a current leader.
            while True:
                leader = yield omega.query()
                if leader == pid:
                    yield lead.write((r, pid), est)
                    proposal = est
                    break
                proposal = yield lead.read((r, leader))
                if proposal is not BOTTOM:
                    break
                decided = yield dec.read()
                if decided is not BOTTOM:
                    return decided
            # (3) one adopt-commit round on the adopted proposal.
            outcome, est = yield from AdoptCommit((r,), self.n).propose(
                pid, proposal)
            if outcome == COMMIT:
                yield dec.write(est)
                return est
        raise AssertionError(
            f"omega_consensus: no decision within {self.max_rounds} "
            f"rounds -- Omega never stabilized?")


class OmegaXClusterConsensus(Algorithm):
    """Wait-free consensus in ASM(n, n-1, x) + Ωx.

    The Ωx generalization of the same skeleton: the oracle outputs a
    *set* S of x processes.  Members of S funnel their estimates through
    the round's x-consensus object for S (one statically-ported object
    per (round, size-x subset), exactly the SET_LIST indexing of the
    paper's Figure 6) and publish the result; everybody adopts a
    published coordinator value and runs the round's adopt-commit.

    Once Ωx stabilizes on a set S* containing a correct process, that
    process publishes S*'s agreed value every round, so some round
    becomes unanimous and commits.  Safety is adopt-commit's, so wrong
    oracle outputs never violate agreement.  This is the operational
    face of "Ωx boosts consensus-number-x objects" (Section 1.3).
    """

    def __init__(self, n: int, x: int, stabilize_after: int = 0,
                 max_rounds: int = 10_000) -> None:
        super().__init__(n, resilience=n - 1)
        if not 1 <= x <= n:
            raise ValueError(f"need 1 <= x <= n, got x={x}")
        self.x = x
        self.subsets = list(combinations(range(n), x))
        self.stabilize_after = stabilize_after
        self.max_rounds = max_rounds
        self.name = (f"omega_x_consensus(n={n}, x={x}, "
                     f"stab={stabilize_after})")

    def object_specs(self) -> List[ObjectSpec]:
        return [
            make_spec("omega_x", OMEGA, x=self.x,
                      stabilize_after=self.stabilize_after),
            make_spec("register_family", LEAD),
            make_spec("register", DEC),
            make_spec("xcons_family", "RCONS",
                      subsets=tuple(self.subsets)),
        ] + adopt_commit_specs(self.n)

    def program(self, pid: int, value: Any) -> Generator:
        omega = ObjectProxy(OMEGA)
        lead = ObjectProxy(LEAD)
        dec = ObjectProxy(DEC)
        rcons = ObjectProxy("RCONS")
        subset_index = {s: i for i, s in enumerate(self.subsets)}
        est = value
        for r in range(self.max_rounds):
            decided = yield dec.read()
            if decided is not BOTTOM:
                return decided
            while True:
                coord = yield omega.query()
                ell = subset_index.get(tuple(sorted(coord)))
                if ell is None:        # oracle answered nonsense
                    continue
                if pid in coord:
                    # coordinators agree through the subset's consensus
                    # object for this round, then publish.
                    agreed = yield rcons.propose(r, ell, est)
                    yield lead.write((r, pid), agreed)
                    proposal = agreed
                    break
                proposal = BOTTOM
                for member in coord:
                    proposal = yield lead.read((r, member))
                    if proposal is not BOTTOM:
                        break
                if proposal is not BOTTOM:
                    break
                decided = yield dec.read()
                if decided is not BOTTOM:
                    return decided
            outcome, est = yield from AdoptCommit((r,), self.n).propose(
                pid, proposal)
            if outcome == COMMIT:
                yield dec.write(est)
                return est
        raise AssertionError(
            f"omega_x_consensus: no decision within {self.max_rounds} "
            f"rounds -- Omega_x never stabilized?")
