"""Consensus and k-set agreement from consensus-number-x objects.

Two wait-free algorithms living at the "possibility" frontier of the
paper's calculus:

* :class:`ConsensusFromXCons` -- for n <= x, one x-ported consensus object
  solves consensus outright (objects of consensus number x are universal in
  systems of at most x processes, paper Section 1.1).
* :class:`GroupedKSetFromXCons` -- for any n, partition the processes into
  ⌈n/x⌉ statically-defined groups of size <= x, give each group one
  consensus object: at most ⌈n/x⌉ distinct decisions, wait-free.  This
  witnesses that ⌈n/x⌉-set agreement is wait-free solvable in
  ASM(n, n-1, x), matching the paper's k > ⌊t/x⌋ solvability bound at
  t = n-1 (⌈n/x⌉ >= ⌊(n-1)/x⌋ + 1 always holds).
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..memory.specs import ObjectSpec, make_spec
from ..runtime.ops import ObjectProxy
from .protocol import Algorithm

CONS = "cons"


def group_of(pid: int, x: int) -> int:
    """Index of pid's group in the size-x partition (0-based)."""
    return pid // x


def groups(n: int, x: int) -> List[List[int]]:
    """Partition 0..n-1 into ⌈n/x⌉ blocks of size <= x."""
    return [list(range(start, min(start + x, n)))
            for start in range(0, n, x)]


class ConsensusFromXCons(Algorithm):
    """Wait-free consensus for n <= x processes: propose to one object."""

    def __init__(self, n: int, x: int) -> None:
        super().__init__(n, resilience=n - 1)
        if x < n:
            raise ValueError(
                f"one consensus object serves at most x processes; "
                f"need x >= n, got x={x}, n={n}")
        self.x = x
        self.name = f"consensus_from_xcons(n={n}, x={x})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("xcons", CONS, ports=range(self.n))]

    def program(self, pid: int, value: Any) -> Generator:
        cons = ObjectProxy(CONS)
        decided = yield cons.propose(value)
        return decided


class GroupedKSetFromXCons(Algorithm):
    """Wait-free ⌈n/x⌉-set agreement from per-group consensus objects."""

    def __init__(self, n: int, x: int) -> None:
        super().__init__(n, resilience=n - 1)
        if not 1 <= x <= n:
            raise ValueError(f"need 1 <= x <= n, got x={x}, n={n}")
        self.x = x
        self.k = -(-n // x)  # ceil(n/x): max distinct decisions
        self.name = f"grouped_kset(n={n}, x={x}, k={self.k})"

    def object_specs(self) -> List[ObjectSpec]:
        return [make_spec("xcons", f"{CONS}[{g}]", ports=members)
                for g, members in enumerate(groups(self.n, self.x))]

    def program(self, pid: int, value: Any) -> Generator:
        g = group_of(pid, self.x)
        cons = ObjectProxy(f"{CONS}[{g}]")
        decided = yield cons.propose(value)
        return decided
