"""A synchronous round-based crash-prone engine.

The related results the paper cites in Section 1.3 (Mostéfaoui-Raynal-
Travers round optimality, Gafni's round reduction) live in the
*synchronous* message-passing model: computation proceeds in rounds; in
each round every alive process may access shared one-shot objects, then
broadcasts a message, then receives the round's messages and updates its
state.  A process crashing *during* its broadcast delivers to an
arbitrary adversary-chosen subset of receivers -- the classic synchronous
crash semantics that drives all round lower bounds.

This engine executes that model deterministically:

* object-access order within a round is a (seeded or explicit)
  adversary permutation;
* crashes are scripted :class:`SyncCrash` events (victim, round, phase,
  partial delivery set);
* the algorithm is a :class:`SyncAlgorithm` with pure per-round hooks.

It is intentionally *not* built on the asynchronous runtime: synchrony
is a different substrate, and having both lets the test suite exhibit
Gafni's "dividing" and the paper's "multiplying" phenomena side by side.
"""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..memory.store import ObjectStore


class SyncPhase(enum.Enum):
    """Where in its round a victim crashes."""

    BEFORE_OBJECTS = "before-objects"    # contributes nothing this round
    BEFORE_BROADCAST = "before-broadcast"  # object access done, no message
    DURING_BROADCAST = "during-broadcast"  # message reaches a subset


@dataclass(frozen=True)
class SyncCrash:
    """One scripted crash."""

    victim: int
    round: int
    phase: SyncPhase = SyncPhase.DURING_BROADCAST
    #: receivers of the partial broadcast (DURING_BROADCAST only).
    delivered_to: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")


class SyncAlgorithm(ABC):
    """A synchronous full-information-style algorithm."""

    n: int
    rounds: int

    @abstractmethod
    def build_store(self) -> ObjectStore:
        """Fresh shared objects for one run."""

    @abstractmethod
    def initial_state(self, pid: int, value: Any) -> Any:
        ...

    def object_phase(self, pid: int, state: Any, r: int,
                     store: ObjectStore) -> Any:
        """Optional shared-object access at the start of round r; returns
        the (possibly updated) state.  Object calls are atomic."""
        return state

    @abstractmethod
    def message(self, pid: int, state: Any, r: int) -> Any:
        """The value pid broadcasts in round r (None = silent)."""

    @abstractmethod
    def update(self, pid: int, state: Any, r: int,
               received: Dict[int, Any]) -> Any:
        """New state after receiving round r's messages."""

    @abstractmethod
    def decide(self, pid: int, state: Any) -> Any:
        ...


@dataclass
class SyncResult:
    decisions: Dict[int, Any]
    crashed: Set[int]
    rounds_run: int
    store: ObjectStore

    @property
    def decided_values(self) -> Set[Any]:
        return set(self.decisions.values())


def run_sync(algorithm: SyncAlgorithm,
             inputs: Sequence[Any],
             crashes: Sequence[SyncCrash] = (),
             seed: int = 0) -> SyncResult:
    """Execute the algorithm for ``algorithm.rounds`` rounds."""
    n = algorithm.n
    if len(inputs) != n:
        raise ValueError(f"expected {n} inputs, got {len(inputs)}")
    victims = {}
    for crash in crashes:
        if crash.victim in victims:
            raise ValueError(f"duplicate crash for p{crash.victim}")
        victims[crash.victim] = crash
    rng = random.Random(seed)
    store = algorithm.build_store()
    states = {pid: algorithm.initial_state(pid, inputs[pid])
              for pid in range(n)}
    crashed: Set[int] = set()

    for r in range(algorithm.rounds):
        alive = [pid for pid in range(n) if pid not in crashed]
        # -- object phase, in an adversarial order ---------------------
        order = list(alive)
        rng.shuffle(order)
        skip_objects = {pid for pid in alive
                        if pid in victims and victims[pid].round == r
                        and victims[pid].phase is
                        SyncPhase.BEFORE_OBJECTS}
        for pid in order:
            if pid in skip_objects:
                continue
            states[pid] = algorithm.object_phase(pid, states[pid], r,
                                                 store)
        # -- broadcast --------------------------------------------------
        inboxes: Dict[int, Dict[int, Any]] = {pid: {} for pid in alive}
        for pid in alive:
            crash = victims.get(pid)
            crashing_now = crash is not None and crash.round == r
            if crashing_now and crash.phase is not \
                    SyncPhase.DURING_BROADCAST:
                continue
            message = algorithm.message(pid, states[pid], r)
            if message is None:
                continue
            receivers = (crash.delivered_to if crashing_now
                         else inboxes.keys())
            for receiver in receivers:
                if receiver in inboxes:
                    inboxes[receiver][pid] = message
        # -- crashes take effect -----------------------------------------
        for pid in list(alive):
            crash = victims.get(pid)
            if crash is not None and crash.round == r:
                crashed.add(pid)
        # -- state update for survivors ----------------------------------
        for pid in alive:
            if pid in crashed:
                continue
            states[pid] = algorithm.update(pid, states[pid], r,
                                           inboxes[pid])

    decisions = {pid: algorithm.decide(pid, states[pid])
                 for pid in range(n) if pid not in crashed}
    return SyncResult(decisions=decisions, crashed=crashed,
                      rounds_run=algorithm.rounds, store=store)
