"""Synchronous k-set agreement with (m, ℓ)-set agreement objects in the
optimal ⌊t / (m·⌊k/ℓ⌋ + (k mod ℓ))⌋ + 1 rounds (Mostéfaoui-Raynal-
Travers; paper Section 1.3).

Structure: round r is owned by a *committee* of d = m·⌊k/ℓ⌋ + (k mod ℓ)
processes, disjoint across rounds.  The committee is organized as
⌊k/ℓ⌋ groups of m sharing one (m, ℓ)-set agreement object plus
(k mod ℓ) singleton coordinators.  A committee member funnels its
estimate through its group's object (singletons keep their own) and
broadcasts the result; every process that receives any committee message
adopts the smallest.

Why it is correct, and why the round count is exactly MRT's:

* in any round, at most ℓ values leave each group and one each
  singleton: ≤ ℓ·⌊k/ℓ⌋ + (k mod ℓ) = k distinct broadcast values;
* to leave *some* process with an empty round, the adversary must crash
  all d committee members of that round (committees are disjoint, so
  dead processes from earlier sabotage don't help), paying d crashes;
* with budget t it can ruin ⌊t/d⌋ rounds; in the first un-ruined round
  every process adopts one of ≤ k values, and set-agreement validity
  keeps later rounds inside that set -- so ⌊t/d⌋ + 1 rounds suffice,
  matching the formula (and the matching lower bound is MRT's theorem).

Requires n >= t + d so the committees are disjoint.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..memory.specs import build_store, make_spec
from ..memory.store import ObjectStore
from .engine import SyncAlgorithm


def committee_size(k: int, m: int, ell: int) -> int:
    """d = m·⌊k/ℓ⌋ + (k mod ℓ)."""
    if min(k, m, ell) < 1:
        raise ValueError("k, m, ell must be >= 1")
    return m * (k // ell) + (k % ell)


def mrt_rounds(t: int, k: int, m: int, ell: int) -> int:
    """⌊t/d⌋ + 1, the MRT-optimal round count."""
    if t < 0:
        raise ValueError("t must be >= 0")
    return t // committee_size(k, m, ell) + 1


class SyncKSetMRT(SyncAlgorithm):
    """The committee algorithm described above."""

    def __init__(self, n: int, t: int, k: int, m: int, ell: int) -> None:
        if ell > m:
            raise ValueError(
                "an (m, ell)-object with ell > m is trivial; use ell <= m")
        self.n = n
        self.t = t
        self.k = k
        self.m = m
        self.ell = ell
        self.d = committee_size(k, m, ell)
        self.rounds = mrt_rounds(t, k, m, ell)
        if n < t + self.d:
            raise ValueError(
                f"need n >= t + d = {t + self.d} for disjoint committees "
                f"(got n={n})")
        self.name = (f"sync_kset_mrt(n={n}, t={t}, k={k}, "
                     f"objects=({m},{ell}))")

    # -- committee geometry ------------------------------------------------
    def committee(self, r: int) -> List[int]:
        start = r * self.d
        return list(range(start, start + self.d))

    def group_of(self, pid: int, r: int) -> int:
        """Group index within round r's committee; -1 for singletons,
        -2 for non-members."""
        members = self.committee(r)
        if pid not in members:
            return -2
        offset = pid - members[0]
        if offset < self.m * (self.k // self.ell):
            return offset // self.m
        return -1

    # -- SyncAlgorithm hooks -------------------------------------------------
    def build_store(self) -> ObjectStore:
        specs = []
        for r in range(self.rounds):
            base = self.committee(r)[0]
            for g in range(self.k // self.ell):
                ports = range(base + g * self.m, base + (g + 1) * self.m)
                specs.append(make_spec("kset", f"SA[{r}][{g}]",
                                       ports=ports, ell=self.ell))
        return build_store(specs)

    def initial_state(self, pid: int, value: Any) -> Any:
        return value

    def object_phase(self, pid: int, state: Any, r: int,
                     store: ObjectStore) -> Any:
        g = self.group_of(pid, r)
        if g >= 0:
            obj = store[f"SA[{r}][{g}]"]
            return obj.apply(pid, "propose", (state,))
        return state

    def message(self, pid: int, state: Any, r: int) -> Any:
        if self.group_of(pid, r) == -2:
            return None            # only committee members broadcast
        return state

    def update(self, pid: int, state: Any, r: int,
               received: Dict[int, Any]) -> Any:
        if received:
            return min(received.values())
        return state

    def decide(self, pid: int, state: Any) -> Any:
        return state
