"""Synchronous round-based substrate (Section 1.3 related results)."""

from .engine import (SyncAlgorithm, SyncCrash, SyncPhase, SyncResult,
                     run_sync)
from .kset_mrt import SyncKSetMRT, committee_size, mrt_rounds

__all__ = [
    "SyncAlgorithm", "SyncCrash", "SyncPhase", "SyncResult", "run_sync",
    "SyncKSetMRT", "committee_size", "mrt_rounds",
]
