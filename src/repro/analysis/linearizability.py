"""Linearizability checking.

The runtime's *base* objects are linearizable by construction (one atomic
step per operation).  The checkers here exist for the *derived*
constructions -- above all the Afek et al. snapshot built from registers
(`repro.memory.afek_snapshot`) -- and for history-level sanity checks on
simulation outputs.

Two tools:

* :func:`check_linearizable` -- a Wing & Gong style exhaustive checker for
  small histories against a sequential specification;
* :func:`check_snapshot_history` -- a specialized (polynomial) checker for
  single-writer snapshot histories: snapshots must be monotone (totally
  ordered componentwise by per-writer progress) and consistent with
  real-time order and with each writer's write sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class OpRecord:
    """One completed high-level operation with its real-time interval.

    ``start``/``end`` are global step indices: start strictly before end;
    two operations overlap unless one's end precedes the other's start.
    """

    pid: int
    start: int
    end: int
    op: str
    args: Tuple[Any, ...]
    result: Any


class SequentialSpec:
    """Sequential specification: a deterministic state machine."""

    def initial(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, op: str, args: Tuple[Any, ...]
              ) -> Tuple[Any, Any]:
        """Returns (new_state, result)."""
        raise NotImplementedError


class SnapshotSpec(SequentialSpec):
    """Sequential single-writer snapshot object of a given size."""

    def __init__(self, size: int, initial: Any = None) -> None:
        self.size = size
        self._initial = initial

    def initial(self) -> Tuple[Any, ...]:
        return tuple([self._initial] * self.size)

    def apply(self, state, op, args):
        if op == "write":
            index, value = args
            new = list(state)
            new[index] = value
            return tuple(new), None
        if op == "snapshot":
            return state, state
        if op == "read":
            (index,) = args
            return state, state[index]
        raise ValueError(f"unknown op {op!r}")


class RegisterSpec(SequentialSpec):
    """Sequential read/write register."""

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    def initial(self) -> Any:
        return self._initial

    def apply(self, state, op, args):
        if op == "write":
            (value,) = args
            return value, None
        if op == "read":
            return state, state
        raise ValueError(f"unknown op {op!r}")


def check_linearizable(records: Sequence[OpRecord],
                       spec: SequentialSpec,
                       max_ops: int = 14) -> bool:
    """Exhaustive linearizability check (exponential; small histories only).

    Searches for a total order of the operations that (a) respects
    real-time precedence and (b) replays through the sequential spec
    producing exactly the recorded results.
    """
    if len(records) > max_ops:
        raise ValueError(
            f"history of {len(records)} ops exceeds max_ops={max_ops}; "
            f"use the specialized checkers for long histories")
    ops = list(records)
    n = len(ops)
    # precedence[i] = indices that must be linearized before i.
    precedes = [set() for _ in range(n)]
    for a in range(n):
        for b in range(n):
            if a != b and ops[a].end < ops[b].start:
                precedes[b].add(a)

    seen: set = set()

    def search(done: frozenset, state: Any) -> bool:
        if len(done) == n:
            return True
        key = (done, repr(state))
        if key in seen:
            return False
        seen.add(key)
        for i in range(n):
            if i in done or not precedes[i] <= done:
                continue
            new_state, result = spec.apply(state, ops[i].op, ops[i].args)
            if ops[i].op in ("snapshot", "read") and result != ops[i].result:
                continue
            if search(done | {i}, new_state):
                return True
        return False

    return search(frozenset(), spec.initial())


def check_snapshot_history(writes: Dict[int, List[Any]],
                           snapshots: Sequence[OpRecord],
                           initial: Any = None) -> Optional[str]:
    """Polynomial check of a single-writer snapshot history.

    ``writes[w]`` is the sequence of values written by writer ``w`` (in its
    program order); ``snapshots`` are completed snapshot operations whose
    results are full vectors.  Requires all written values of one writer to
    be distinct (tests tag values with counters).

    Checks:

    1. every snapshot entry is ``initial`` or a value its writer wrote;
    2. snapshots are totally ordered by componentwise writer progress
       (no two snapshots disagree on direction);
    3. real-time: if snapshot A completes before snapshot B starts, then
       A's progress vector is <= B's.

    Returns None if consistent, else a violation description.
    """
    index_of: Dict[int, Dict[Any, int]] = {}
    for w, values in writes.items():
        if len(set(map(repr, values))) != len(values):
            return f"writer {w} wrote duplicate values; history untaggable"
        index_of[w] = {repr(v): k + 1 for k, v in enumerate(values)}

    def progress(record: OpRecord) -> Tuple[int, ...]:
        vec = []
        for w, entry in enumerate(record.result):
            if entry == initial or (initial is None and entry is None):
                vec.append(0)
                continue
            pos = index_of.get(w, {}).get(repr(entry))
            if pos is None:
                raise AssertionError(
                    f"snapshot saw {entry!r} at {w}, never written")
            vec.append(pos)
        return tuple(vec)

    try:
        vectors = [(r, progress(r)) for r in snapshots]
    except AssertionError as exc:
        return str(exc)

    def leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
        return all(ai <= bi for ai, bi in zip(a, b))

    for (ra, va) in vectors:
        for (rb, vb) in vectors:
            if not leq(va, vb) and not leq(vb, va):
                return (f"snapshots of p{ra.pid} and p{rb.pid} are "
                        f"incomparable: {va} vs {vb}")
            if ra.end < rb.start and not leq(va, vb):
                return (f"real-time violation: p{ra.pid}'s snapshot {va} "
                        f"completed before p{rb.pid}'s {vb} started but "
                        f"is not <=")
    return None
