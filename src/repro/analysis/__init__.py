"""Verification and measurement: linearizability checking, blocking
certificates for the paper's lemmas, run statistics, and observability
records for exploration/audit/benchmark runs."""

from .certificates import BlockingCertificate, blocking_certificate
from .linearizability import (OpRecord, RegisterSpec, SequentialSpec,
                              SnapshotSpec, check_linearizable,
                              check_snapshot_history)
from .metrics import (METRICS_SCHEMA_VERSION, PHASES, TIMING_KEYS,
                      ExplorationMetrics, RunMetrics, atomic_write_text,
                      deterministic_view, render_metrics_table,
                      write_jsonl)
from .stats import RunStats, collect_stats

__all__ = [
    "BlockingCertificate", "blocking_certificate",
    "OpRecord", "RegisterSpec", "SequentialSpec", "SnapshotSpec",
    "check_linearizable", "check_snapshot_history",
    "METRICS_SCHEMA_VERSION", "PHASES", "TIMING_KEYS",
    "ExplorationMetrics", "RunMetrics", "atomic_write_text",
    "deterministic_view", "render_metrics_table", "write_jsonl",
    "RunStats", "collect_stats",
]
