"""Verification and measurement: linearizability checking, blocking
certificates for the paper's lemmas, run statistics."""

from .certificates import BlockingCertificate, blocking_certificate
from .linearizability import (OpRecord, RegisterSpec, SequentialSpec,
                              SnapshotSpec, check_linearizable,
                              check_snapshot_history)
from .stats import RunStats, collect_stats

__all__ = [
    "BlockingCertificate", "blocking_certificate",
    "OpRecord", "RegisterSpec", "SequentialSpec", "SnapshotSpec",
    "check_linearizable", "check_snapshot_history",
    "RunStats", "collect_stats",
]
