"""Run certificates: measuring the paper's lemmas on actual executions.

The blocking lemmas are the quantitative heart of the paper:

* Lemma 1 (Section 3): the crash of a simulator blocks at most x simulated
  processes; hence t simulator crashes block at most t·x.
* Lemma 2: each correct simulator computes decisions of >= n - t' simulated
  processes (t' >= t·x).
* Lemma 7 (Section 4): t' simulator crashes block at most ⌊t'/x⌋ simulated
  processes.
* Lemma 8: each correct simulator computes decisions of >= n - t simulated
  processes.

These are measured by running a simulation under
:class:`~repro.bg.policy.CollectAllPolicy` (simulators never stop early and
announce every simulated decision) and inspecting the announcement
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set

from ..bg.policy import read_announcements
from ..runtime.run import RunResult


@dataclass
class BlockingCertificate:
    """Per-run accounting of simulated progress and blocking."""

    n_simulators: int
    n_simulated: int
    crashed_simulators: Set[int]
    #: pid -> set of simulated processes it obtained decisions for.
    completed: Dict[int, Set[int]]
    #: simulated decisions agreed across simulators (j -> value), with a
    #: flag recording whether any simulator pair disagreed.
    simulated_decisions: Dict[int, Any]
    divergent: bool

    # ------------------------------------------------------------------
    @property
    def live_simulators(self) -> Set[int]:
        return set(range(self.n_simulators)) - self.crashed_simulators

    def blocked_for(self, sim_id: int) -> Set[int]:
        """Simulated processes simulator ``sim_id`` never completed."""
        return set(range(self.n_simulated)) - self.completed.get(sim_id,
                                                                 set())

    @property
    def max_blocked(self) -> int:
        """Worst per-live-simulator count of uncompleted simulated
        processes (the quantity Lemmas 1/7 bound)."""
        if not self.live_simulators:
            return 0
        return max(len(self.blocked_for(i)) for i in self.live_simulators)

    @property
    def min_completed(self) -> int:
        """Best lower bound on per-live-simulator completed simulations
        (the quantity Lemmas 2/8 bound)."""
        if not self.live_simulators:
            return self.n_simulated
        return min(len(self.completed.get(i, set()))
                   for i in self.live_simulators)

    def lemma1_holds(self, x: int) -> bool:
        """<= tau * x blocked, tau = number of crashed simulators."""
        return self.max_blocked <= len(self.crashed_simulators) * x

    def lemma7_holds(self, x: int) -> bool:
        """<= floor(tau / x) blocked."""
        return self.max_blocked <= len(self.crashed_simulators) // x

    def summary(self) -> str:
        return (f"crashed={sorted(self.crashed_simulators)} "
                f"max_blocked={self.max_blocked} "
                f"min_completed={self.min_completed} "
                f"divergent={self.divergent}")


def blocking_certificate(result: RunResult,
                         n_simulators: int,
                         n_simulated: int) -> BlockingCertificate:
    """Build the certificate from a CollectAllPolicy run.

    Uses both the announcement snapshot (progress of simulators that later
    crashed or blocked) and the simulators' final return values (their full
    decision maps) when available.
    """
    announced = read_announcements(result.store, n_simulators)
    completed: Dict[int, Set[int]] = {
        i: set(mapping) for i, mapping in announced.items()}
    simulated_decisions: Dict[int, Any] = {}
    divergent = False
    for i, final in result.decisions.items():
        if isinstance(final, dict):
            completed.setdefault(i, set()).update(final)
            mappings = [final]
        else:
            mappings = []
        mappings.append(announced.get(i, {}))
        for mapping in mappings:
            for j, value in mapping.items():
                if j in simulated_decisions and \
                        simulated_decisions[j] != value:
                    divergent = True
                simulated_decisions[j] = value
    for i, mapping in announced.items():
        for j, value in mapping.items():
            if j in simulated_decisions and simulated_decisions[j] != value:
                divergent = True
            simulated_decisions.setdefault(j, value)
    return BlockingCertificate(
        n_simulators=n_simulators,
        n_simulated=n_simulated,
        crashed_simulators=result.crashed_pids,
        completed=completed,
        simulated_decisions=simulated_decisions,
        divergent=divergent,
    )
