"""Run statistics: step counts and object usage.

Used by the benchmark harness to report the cost profile of the
simulations (how many agreement instances a run spawned, how many shared
steps it took, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..memory.store import ObjectStore
from ..runtime.run import RunResult


@dataclass
class RunStats:
    steps: int
    store_ops: int
    decided: int
    crashed: int
    blocked: int
    deadlocked: bool
    out_of_steps: bool
    #: object name -> instance count for family objects / op counters.
    objects: Dict[str, int] = field(default_factory=dict)

    def row(self) -> str:
        flags = []
        if self.deadlocked:
            flags.append("deadlock")
        if self.out_of_steps:
            flags.append("out-of-steps")
        extra = f" [{','.join(flags)}]" if flags else ""
        return (f"steps={self.steps:>8} ops={self.store_ops:>8} "
                f"decided={self.decided} crashed={self.crashed} "
                f"blocked={self.blocked}{extra}")


def collect_stats(result: RunResult) -> RunStats:
    """Extract the cost/outcome profile of a finished run."""
    objects: Dict[str, int] = {}
    store = result.store
    if isinstance(store, ObjectStore):
        for obj in store:
            count = getattr(obj, "instance_count", None)
            if count is not None:
                objects[obj.name] = count
    return RunStats(
        steps=result.steps,
        store_ops=store.op_count if isinstance(store, ObjectStore) else 0,
        decided=len(result.decisions),
        crashed=len(result.crashed_pids),
        blocked=len(result.blocked_pids),
        deadlocked=result.deadlocked,
        out_of_steps=result.out_of_steps,
        objects=objects,
    )
