"""ASCII timelines of executions.

Renders a recorded :class:`~repro.runtime.trace.Trace` as one lane per
process, one column per global step -- the picture distributed-computing
papers draw by hand.  Useful for debugging adversarial schedules and for
teaching what an interleaving *is*.

Legend: ``w`` write, ``s`` snapshot, ``r`` read, ``p`` propose,
``t`` test&set, ``o`` other op, ``.`` failed spin re-check, ``X`` crash,
``D`` decision, ``B`` retired as blocked, space = not scheduled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runtime.trace import EventKind, Trace

#: method name -> lane glyph.
GLYPHS = {
    "write": "w",
    "update": "w",
    "snapshot": "s",
    "read": "r",
    "propose": "p",
    "test_and_set": "t",
    "query": "q",
    "compare_and_swap": "c",
}


def _glyph(event) -> str:
    if event.kind is EventKind.SPIN:
        return "."
    if event.kind is EventKind.CRASH:
        return "X"
    if event.kind is EventKind.DECIDE:
        return "D"
    if event.kind is EventKind.BLOCKED:
        return "B"
    if event.invocation is None:
        return "o"
    return GLYPHS.get(event.invocation.method, "o")


def render_timeline(trace: Trace,
                    pids: Optional[List[int]] = None,
                    width: int = 72) -> str:
    """Multi-line lanes, wrapped in blocks of ``width`` columns."""
    if pids is None:
        pids = sorted({e.pid for e in trace})
    columns = len(trace.events)
    lanes: Dict[int, List[str]] = {pid: [" "] * columns for pid in pids}
    for idx, event in enumerate(trace.events):
        if event.pid in lanes:
            lanes[event.pid][idx] = _glyph(event)

    label_width = max((len(f"p{pid}") for pid in pids), default=2) + 1
    blocks: List[str] = []
    for start in range(0, max(columns, 1), width):
        segment: List[str] = []
        for pid in pids:
            lane = "".join(lanes[pid][start:start + width])
            segment.append(f"{f'p{pid}':<{label_width}}|{lane}")
        blocks.append("\n".join(segment))
    header = (f"steps 0..{columns - 1}  "
              f"(w=write s=snapshot r=read p=propose t=T&S .=spin "
              f"X=crash D=decide B=blocked)")
    return header + "\n" + "\n\n".join(blocks)


def lane_summary(trace: Trace) -> Dict[int, Dict[str, int]]:
    """Per-process glyph counts (op mix), for quick profiling."""
    summary: Dict[int, Dict[str, int]] = {}
    for event in trace.events:
        bucket = summary.setdefault(event.pid, {})
        glyph = _glyph(event)
        bucket[glyph] = bucket.get(glyph, 0) + 1
    return summary
