"""Observability records for exploration, audit, and benchmark runs.

The exploration/simulation stack proves properties; this module measures
the proving.  It defines versioned, JSON-serializable *run records* --
:class:`ExplorationMetrics` for ``check``-style exhaustive sweeps,
:class:`RunMetrics` for everything else (audits, benchmark reports) --
plus the atomic-write helpers every emitter in the repo shares.

Two invariants, pinned by ``tests/analysis/test_metrics.py``:

* **Schema stability.**  Every record carries
  ``schema_version = METRICS_SCHEMA_VERSION``; the exact key set of an
  exploration record is a golden fixture, so accidental field drift
  fails a test instead of silently breaking downstream diffs.
* **Determinism split.**  Fields are partitioned into deterministic
  content (run counts, prune ratios, counterexample shape -- identical
  for ``jobs=1`` and ``jobs=N`` by the sharding contract of
  :mod:`repro.runtime.parallel`) and timing/worker fields (wall-clock
  phases, per-worker busy time, ``jobs`` itself).
  :func:`deterministic_view` strips the latter, which is how two runs
  are diffed (see ``docs/observability.md``).

The runtime engines never import this module (``repro.analysis.stats``
imports ``repro.runtime``, so the reverse import would cycle); they
accept an optional collector and fill it duck-typed.  Only the CLI,
benchmarks, and tests construct the records defined here.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Bump on any change to the key set or meaning of emitted records.
#: v2 added ``partial`` / ``interrupt_reason`` (graceful degradation
#: under ``--timeout`` / ``--max-runs`` budgets, see
#: ``docs/fault_injection.md``).  v3 added ``cache_hits`` /
#: ``cache_skipped_runs`` (the DPOR state cache, see
#: ``docs/performance.md``).  v4 added ``net`` (socket-transport
#: frame/retry/reconnect tallies from ``python -m repro serve``, see
#: ``docs/distributed_exploration.md``).
METRICS_SCHEMA_VERSION = 4

#: The wall-clock phases of a sharded exploration, in execution order.
#: Serial engines report their whole walk as ``shard_execution`` (a
#: serial run is one shard) and leave the coordinator-only phases at 0.
PHASES = ("frontier_expansion", "shard_execution", "merge", "shrink")

#: Keys stripped by :func:`deterministic_view`: wall-clock measurements
#: and worker-topology facts, which legitimately differ between runs of
#: the same exploration (``jobs`` included -- it is the knob under test
#: in the jobs=1 vs jobs=N differential).
#: ``cache_hits`` / ``cache_skipped_runs`` are stripped too: the state
#: cache is per shard (to keep merged ExplorationStats jobs-invariant),
#: so its hit counts depend on the shard topology, i.e. on ``jobs``.
#: ``net`` is stripped for the same reason: which worker served which
#: shard over which connection (and how many frames or retries that
#: took) is transport topology, never exploration content -- the
#: ``network`` differential demands serial == fork-pool == socket runs
#: be identical after the strip.
TIMING_KEYS = frozenset({
    "phases", "wall_seconds", "runs_per_sec", "busy_seconds",
    "workers", "jobs", "cache_hits", "cache_skipped_runs", "net",
})


def deterministic_view(record: Any) -> Any:
    """Recursively drop :data:`TIMING_KEYS` from a decoded record.

    The result depends only on what was explored, never on how fast or
    by how many workers -- two runs of the same scenario at any job
    counts must produce byte-identical deterministic views.
    """
    if isinstance(record, dict):
        return {key: deterministic_view(value)
                for key, value in record.items() if key not in TIMING_KEYS}
    if isinstance(record, list):
        return [deterministic_view(item) for item in record]
    return record


def fsync_directory(directory: str) -> None:
    """``fsync`` a directory so a just-renamed entry survives a crash.

    ``os.replace`` makes a rename atomic with respect to *readers*, but
    the new directory entry itself lives in the page cache until the
    directory inode is flushed -- after a power loss the file can be
    missing entirely even though the rename returned.  Platforms whose
    directories cannot be opened or fsynced (some network filesystems)
    degrade silently: atomicity still holds, only crash-durability of
    the rename is lost.
    """
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform-specific degradation
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific degradation
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, durable: bool = True) -> str:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    An interrupted writer leaves either the old file or the new one,
    never a truncated hybrid -- required for every report that other
    documents embed or other tools parse.

    With ``durable=True`` (the default) the write is also *crash*-safe:
    the temp file is fsynced before the rename and the directory after
    it, so once this function returns the new content survives a host
    crash or power loss.  Atomicity alone (the pre-fix behaviour) only
    protects against a crashed *writer* -- the rename could still be
    sitting unflushed in the page cache, leaving an empty or missing
    file after a machine crash, which is fatal for checkpoints other
    runs resume from.  ``durable=False`` opts back out for hot-loop
    emitters (e.g. benchmark report twins regenerated on every run)
    where an extra pair of fsyncs per write is pure overhead.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=f".{os.path.basename(path)}.")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if durable:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def write_jsonl(path: str, records: Iterable[Dict[str, Any]],
                durable: bool = True) -> str:
    """Atomically write one JSON object per line (JSON-lines)."""
    lines = [json.dumps(record, sort_keys=False) for record in records]
    return atomic_write_text(path, "\n".join(lines) + "\n" if lines else "",
                             durable=durable)


@dataclass
class RunMetrics:
    """A generic versioned run record: ``kind`` + ``name`` + ``data``.

    Used for audits and benchmark reports, where the interesting content
    is a small free-form dictionary; exhaustive explorations get the
    richer :class:`ExplorationMetrics` instead.  Timing values inside
    ``data`` should use the key names in :data:`TIMING_KEYS` (e.g.
    ``wall_seconds``) so :func:`deterministic_view` strips them.
    """

    kind: str
    name: str
    schema_version: int = METRICS_SCHEMA_VERSION
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "name": self.name,
            "data": dict(self.data),
        }


class ExplorationMetrics:
    """Mutable collector + versioned record for one exhaustive sweep.

    Created by the caller (CLI, benchmark, test), handed to
    :func:`repro.runtime.explore.explore` /
    :func:`repro.runtime.parallel.explore_parallel` via ``metrics=``,
    and filled as the exploration proceeds.  All run-count and
    structure fields live here or in the engine's
    :class:`~repro.runtime.explore.ExplorationStats`; **no timing field
    ever enters ``ExplorationStats``**, so the jobs=1 == jobs=N
    bit-for-bit guarantee on merged statistics is untouched.

    The engines talk to this object through four duck-typed methods --
    :meth:`record_phase`, :meth:`absorb_counters`, :meth:`record_stats`,
    :meth:`record_worker_tasks` -- so ``repro.runtime`` never has to
    import ``repro.analysis``.
    """

    def __init__(self, scenario: Optional[str] = None,
                 engine: str = "dpor", jobs: int = 1) -> None:
        self.scenario = scenario
        self.engine = engine
        self.jobs = jobs
        self.outcome = "passed"
        # Set when an exploration budget (max_runs / timeout) stopped
        # the sweep before the state space was exhausted.  The counters
        # below then describe *partial* coverage and must not be read
        # as a proof of absence of violations.
        self.partial = False
        self.interrupt_reason: Optional[str] = None
        # Deterministic counters.
        self.complete_runs = 0
        self.truncated_runs = 0
        self.pruned_runs = 0
        self.max_depth_seen = 0
        self.shard_count = 0
        self.peak_frontier_size = 0
        self.sleep_set_hits = 0
        self.sleep_set_checks = 0
        self.cache_hits = 0
        self.cache_skipped_runs = 0
        self.ddmin_replays = 0
        self.violation: Optional[Dict[str, Any]] = None
        # Timing / worker topology (stripped by deterministic_view).
        self.phases: Dict[str, float] = {name: 0.0 for name in PHASES}
        self.wall_seconds = 0.0
        self.workers: List[Dict[str, Any]] = []
        # Socket-transport tallies (``serve`` runs only; also stripped
        # by deterministic_view -- frames and retries are topology).
        self.net: Dict[str, Any] = {}

    # -- interface the runtime engines call (duck-typed) ---------------

    def record_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time into one named phase."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def absorb_counters(self, counters: Optional[Dict[str, Any]]) -> None:
        """Fold an engine's plain-dict counter channel into this record.

        The engines (and their forked shard workers, whose counters come
        back over the result pipe) report into picklable plain dicts;
        additive counters sum, watermarks take the max, and shrink time
        lands in the ``shrink`` phase.
        """
        if not counters:
            return
        self.sleep_set_hits += counters.get("sleep_hits", 0)
        self.sleep_set_checks += counters.get("sleep_checks", 0)
        self.cache_hits += counters.get("cache_hits", 0)
        self.cache_skipped_runs += counters.get("cache_skipped_runs", 0)
        self.ddmin_replays += counters.get("ddmin_replays", 0)
        self.peak_frontier_size = max(self.peak_frontier_size,
                                      counters.get("peak_frontier", 0))
        if counters.get("shrink_seconds"):
            self.record_phase("shrink", counters["shrink_seconds"])

    def record_stats(self, stats: Any) -> None:
        """Copy the final (merged) ExplorationStats run counts."""
        self.complete_runs = stats.complete_runs
        self.truncated_runs = stats.truncated_runs
        self.pruned_runs = stats.pruned_runs
        self.max_depth_seen = stats.max_depth_seen

    def record_network(self, tallies: Dict[str, Any]) -> None:
        """Record socket-transport tallies from a ``serve`` run.

        ``tallies`` is :attr:`repro.runtime.netshard.ShardServer.
        tallies`: total and per-connection frame counts, reconnects,
        stale-completion rejections, re-grants, and the remote vs
        in-process shard split.  Pure transport observability --
        :func:`deterministic_view` strips it along with the other
        topology fields.
        """
        self.net = dict(tallies)

    def record_worker_tasks(self, task_log: Iterable[Dict[str, Any]]
                            ) -> None:
        """Aggregate a pool task log into per-worker shard/busy rows.

        Worker ``-1`` is the coordinator process (in-process execution:
        degraded pools and orphaned-shard recovery).
        """
        per_worker: Dict[int, Dict[str, Any]] = {}
        for entry in task_log:
            row = per_worker.setdefault(
                entry["worker"],
                {"worker": entry["worker"], "shards": 0,
                 "busy_seconds": 0.0})
            row["shards"] += 1
            row["busy_seconds"] += entry["seconds"]
        self.workers = [per_worker[wid] for wid in sorted(per_worker)]

    # -- caller-side recording -----------------------------------------

    def record_violation(self, error_type: str,
                         prefix: Optional[List[int]] = None,
                         schedule: Optional[List[int]] = None) -> None:
        self.outcome = "violation"
        self.violation = {
            "error_type": error_type,
            "prefix": list(prefix) if prefix is not None else None,
            "schedule": list(schedule) if schedule is not None else None,
        }

    def record_interrupted(self, reason: str, stats: Any = None) -> None:
        """Mark the record as a budget-interrupted partial sweep.

        ``reason`` is :attr:`ExplorationInterrupted.reason` (``max_runs``
        or ``timeout``); ``stats`` is the partial
        :class:`~repro.runtime.explore.ExplorationStats` carried by the
        exception, folded in so the record reflects how far the sweep
        got before the budget fired.
        """
        self.outcome = "interrupted"
        self.partial = True
        self.interrupt_reason = reason
        if stats is not None:
            self.record_stats(stats)

    def record_budget_exceeded(self) -> None:
        """Legacy alias kept for older callers (pre-v2 records)."""
        self.outcome = "budget_exceeded"

    def finalize(self, wall_seconds: Optional[float] = None
                 ) -> "ExplorationMetrics":
        """Fix the total wall clock (defaults to the sum of phases)."""
        if wall_seconds is None:
            wall_seconds = sum(self.phases.values())
        self.wall_seconds = wall_seconds
        return self

    # -- derived quantities --------------------------------------------

    @property
    def total_runs(self) -> int:
        return self.complete_runs + self.truncated_runs

    @property
    def prune_ratio(self) -> float:
        """Fraction of known branches pruned (0.0 = no reduction)."""
        denominator = self.total_runs + self.pruned_runs
        return self.pruned_runs / denominator if denominator else 0.0

    @property
    def sleep_set_hit_rate(self) -> float:
        """Fraction of candidate inspections suppressed by sleep sets."""
        if not self.sleep_set_checks:
            return 0.0
        return self.sleep_set_hits / self.sleep_set_checks

    @property
    def runs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_runs / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        """The versioned JSON record, deterministic keys first."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "kind": "exploration",
            "scenario": self.scenario,
            "engine": self.engine,
            "outcome": self.outcome,
            "partial": self.partial,
            "interrupt_reason": self.interrupt_reason,
            "complete_runs": self.complete_runs,
            "truncated_runs": self.truncated_runs,
            "total_runs": self.total_runs,
            "pruned_runs": self.pruned_runs,
            "prune_ratio": self.prune_ratio,
            "max_depth_seen": self.max_depth_seen,
            "shard_count": self.shard_count,
            "peak_frontier_size": self.peak_frontier_size,
            "sleep_set_hits": self.sleep_set_hits,
            "sleep_set_checks": self.sleep_set_checks,
            "sleep_set_hit_rate": self.sleep_set_hit_rate,
            "cache_hits": self.cache_hits,
            "cache_skipped_runs": self.cache_skipped_runs,
            "ddmin_replays": self.ddmin_replays,
            "violation": self.violation,
            "jobs": self.jobs,
            "phases": dict(self.phases),
            "wall_seconds": self.wall_seconds,
            "runs_per_sec": self.runs_per_sec,
            "workers": [dict(row) for row in self.workers],
            "net": dict(self.net),
        }


def render_metrics_table(records: List[Dict[str, Any]]) -> List[str]:
    """A human summary table for ``--metrics`` (one row per record).

    Accepts decoded record dicts of any kind; exploration records get
    the full column set, other kinds a compact fallback row.
    """
    lines = [f"{'scenario':<20} {'outcome':>10} {'runs':>8} "
             f"{'pruned':>8} {'sleep%':>7} {'shards':>7} "
             f"{'wall_s':>8} {'runs/s':>9}"]
    for record in records:
        if record.get("kind") != "exploration":
            name = record.get("name", "?")
            data = record.get("data", {})
            wall = data.get("wall_seconds", 0.0)
            lines.append(f"{name:<20} {record.get('kind', '?'):>10} "
                         f"{'-':>8} {'-':>8} {'-':>7} {'-':>7} "
                         f"{wall:>8.2f} {'-':>9}")
            continue
        lines.append(
            f"{(record.get('scenario') or '?'):<20} "
            f"{record['outcome']:>10} {record['total_runs']:>8} "
            f"{record['pruned_runs']:>8} "
            f"{100 * record['sleep_set_hit_rate']:>6.1f}% "
            f"{record['shard_count']:>7} {record['wall_seconds']:>8.2f} "
            f"{record['runs_per_sec']:>9.0f}")
    return lines
