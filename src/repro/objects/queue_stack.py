"""Shared FIFO queues and stacks (consensus number 2).

"The consensus number of shared stacks or shared queues is 2" (paper,
Section 1.1).  These objects are hierarchy witnesses for the tests: the
classic Herlihy construction of 2-process consensus from a queue
pre-loaded with a winner token is provided as :func:`consensus2_from_queue`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Iterable, Optional

from ..memory.base import BOTTOM, SharedObject
from ..runtime.ops import ObjectProxy

#: Tokens used by the queue-based 2-consensus construction.
WINNER = "winner"
LOSER = "loser"


class SharedQueue(SharedObject):
    """A linearizable FIFO queue; dequeue on empty returns ⊥."""

    consensus_number = 2
    READONLY = frozenset({"peek"})

    def __init__(self, name: str, initial: Iterable[Any] = ()) -> None:
        super().__init__(name, None)
        self.items: deque = deque(initial)

    def op_enqueue(self, pid: int, value: Any) -> None:
        self.items.append(value)

    def op_dequeue(self, pid: int) -> Any:
        if not self.items:
            return BOTTOM
        return self.items.popleft()

    def op_peek(self, pid: int) -> Any:
        return self.items[0] if self.items else BOTTOM


class SharedStack(SharedObject):
    """A linearizable LIFO stack; pop on empty returns ⊥."""

    consensus_number = 2
    READONLY = frozenset({"peek"})

    def __init__(self, name: str, initial: Iterable[Any] = ()) -> None:
        super().__init__(name, None)
        self.items: list = list(initial)

    def op_push(self, pid: int, value: Any) -> None:
        self.items.append(value)

    def op_pop(self, pid: int) -> Any:
        if not self.items:
            return BOTTOM
        return self.items.pop()

    def op_peek(self, pid: int) -> Any:
        return self.items[-1] if self.items else BOTTOM


def consensus2_from_queue(queue: ObjectProxy, announce: ObjectProxy,
                          pid: int, other: int, value: Any) -> Generator:
    """Herlihy's 2-process consensus from a queue initialized to
    [WINNER, LOSER] plus an announcement register array.

    Each process writes its proposal to ``announce[pid]`` and dequeues; the
    process that draws WINNER decides its own value, the other decides the
    winner's announced value.

    Usage::

        decided = yield from consensus2_from_queue(q, ann, pid, other, v)
    """
    yield announce.write(pid, value)
    token = yield queue.dequeue()
    if token == WINNER:
        return value
    other_value = yield announce.read(other)
    return other_value
