"""Consensus objects with a static port set ("consensus number x objects").

The paper's models ASM(n, t, x) provide "as many consensus objects with
consensus number x as they want, but a given object cannot be accessed by
more than x (statically defined) processes" (Section 2.3).
:class:`XConsensusObject` is that primitive: a one-shot consensus object
whose port set is fixed at creation; its consensus number equals its number
of ports.

The object is *wait-free*: ``propose(v)`` returns in one atomic step, with
the first proposed value winning (agreement + validity by construction).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Optional

from ..memory.base import BOTTOM, ProtocolViolation, SharedObject


class XConsensusObject(SharedObject):
    """One-shot consensus among a statically-defined set of processes."""

    READONLY = frozenset({"peek"})

    def __init__(self, name: str, ports: Iterable[int]) -> None:
        port_set: FrozenSet[int] = frozenset(ports)
        if not port_set:
            raise ValueError("a consensus object needs at least one port")
        super().__init__(name, port_set)
        self.consensus_number = len(port_set)
        self.decided: Any = BOTTOM
        self.winner: Optional[int] = None
        self._proposers: set = set()

    def op_propose(self, pid: int, value: Any) -> Any:
        """Propose ``value``; returns the object's decided value.

        One-shot per process: a second propose by the same process is a
        protocol violation (the paper's x_cons objects are invoked at most
        once per process).
        """
        if pid in self._proposers:
            raise ProtocolViolation(
                f"p{pid} proposed twice to consensus object {self.name!r}")
        self._proposers.add(pid)
        if self.decided is BOTTOM:
            self.decided = value
            self.winner = pid
        return self.decided

    def op_peek(self, pid: int) -> Any:
        """Read the decided value (⊥ if none yet).  Debug/analysis only."""
        return self.decided


def consensus_array(prefix: str, port_sets: Iterable[Iterable[int]]
                    ) -> list:
    """Build objects ``prefix[0..k-1]``, one per port set.

    This is how the reverse simulation's ``XCONS[1..m]`` array (Figure 6) is
    materialized: one x-consensus object per size-x subset of simulators.
    """
    return [XConsensusObject(f"{prefix}[{i}]", ports)
            for i, ports in enumerate(port_sets)]
