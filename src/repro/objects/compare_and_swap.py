"""Compare&swap objects (consensus number +∞).

Included to exercise the top of Herlihy's hierarchy in tests and examples:
"the consensus number of Compare&Swap objects is +∞, which means that
consensus can be solved for any number of processes, despite any number of
crashes" (paper, Section 1.1).
"""

from __future__ import annotations

import math
from typing import Any, Generator

from ..memory.base import BOTTOM, SharedObject
from ..runtime.ops import ObjectProxy


class CompareAndSwapObject(SharedObject):
    """A linearizable compare&swap cell."""

    consensus_number = math.inf
    READONLY = frozenset({"read"})

    def __init__(self, name: str, initial: Any = BOTTOM) -> None:
        super().__init__(name, None)
        self.value = initial

    def op_compare_and_swap(self, pid: int, expected: Any, new: Any) -> Any:
        """Atomically: if value == expected, set to new.  Returns the value
        read (the classic CAS return convention: success iff it equals
        ``expected``)."""
        old = self.value
        if old == expected or (old is BOTTOM and expected is BOTTOM):
            self.value = new
        return old

    def op_read(self, pid: int) -> Any:
        return self.value


def consensus_from_cas(cas: ObjectProxy, value: Any) -> Generator:
    """Wait-free n-process consensus from one CAS cell.

    The canonical universality witness: CAS(⊥ -> v); the first writer wins.
    Usage: ``decided = yield from consensus_from_cas(proxy, v)``.
    """
    old = yield cas.compare_and_swap(BOTTOM, value)
    if old is BOTTOM:
        return value
    return old
