"""Typed shared objects above registers: consensus-number-x objects,
test&set, (m,l)-set agreement, compare&swap, queues/stacks, and the
universal construction."""

from .compare_and_swap import CompareAndSwapObject, consensus_from_cas
from .consensus import XConsensusObject, consensus_array
from .kset import KSetObject, kset_object_implementable
from .queue_stack import (LOSER, WINNER, SharedQueue, SharedStack,
                          consensus2_from_queue)
from .test_and_set import (TestAndSetObject, consensus2_from_tas,
                           tas_from_consensus)
from .universal import PerformSession, UniversalObject

__all__ = [
    "CompareAndSwapObject", "consensus_from_cas",
    "XConsensusObject", "consensus_array",
    "KSetObject", "kset_object_implementable",
    "LOSER", "WINNER", "SharedQueue", "SharedStack",
    "consensus2_from_queue",
    "TestAndSetObject", "consensus2_from_tas", "tas_from_consensus",
    "PerformSession", "UniversalObject",
]
