"""One-shot test&set objects.

Test&set has consensus number 2 (Herlihy 1991).  The paper's Section 4 uses
one-shot test&set objects shared by all simulators and notes they "can be
implemented from consensus number x objects [19]" whenever x >= 2, so in any
ASM(n, t, x) model with x > 1 they are a legitimate derived object.  We
provide:

* :class:`TestAndSetObject` -- the base-atomic primitive (one step).
* :func:`tas_from_consensus` -- the trivial derivation of one-shot
  test&set from a consensus object shared by the same port set (propose your
  id; you won iff your id was decided), witnessing the reduction the paper
  cites.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..memory.base import BOTTOM, ProtocolViolation, SharedObject
from ..runtime.ops import ObjectProxy


class TestAndSetObject(SharedObject):
    """One-shot test&set: True to the first caller, False afterwards."""

    __test__ = False  # not a pytest class, despite the Test* name
    consensus_number = 2
    READONLY = frozenset({"peek"})

    def __init__(self, name: str, ports=None) -> None:
        super().__init__(name, ports)
        self.winner: Optional[int] = None
        self._callers: set = set()

    def op_test_and_set(self, pid: int) -> bool:
        if pid in self._callers:
            raise ProtocolViolation(
                f"p{pid} invoked one-shot test&set {self.name!r} twice")
        self._callers.add(pid)
        if self.winner is None:
            self.winner = pid
            return True
        return False

    def op_peek(self, pid: int) -> Optional[int]:
        """Current winner id (None if unset).  Debug/analysis only."""
        return self.winner


def consensus2_from_tas(tas: ObjectProxy, announce: ObjectProxy,
                        pid: int, other: int, value: Any) -> Generator:
    """2-process consensus from one-shot test&set plus registers.

    The other half of "test&set has consensus number 2" (Herlihy 1991):
    each process announces its value and plays the T&S; the winner
    decides its own value, the loser adopts the winner's announcement
    (which is already written: announce-before-compete).

    Usage::

        decided = yield from consensus2_from_tas(t, ann, pid, other, v)
    """
    yield announce.write(pid, value)
    won = yield tas.test_and_set()
    if won:
        return value
    other_value = yield announce.read(other)
    return other_value


def tas_from_consensus(cons: ObjectProxy, pid: int
                       ) -> Generator:
    """One-shot test&set derived from a consensus object.

    Every process in the consensus object's port set proposes its own id;
    exactly the process whose id is decided obtains True.  This is the
    standard consensus-number argument run forward: consensus number x >= 2
    implements test&set for any 2..x statically-known processes.

    Usage: ``won = yield from tas_from_consensus(proxy, pid)``.
    """
    decided = yield cons.propose(pid)
    return decided == pid
