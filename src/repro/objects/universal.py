"""Herlihy's universal construction from consensus objects.

"Enriching asynchronous read/write shared memory systems with consensus
objects is fundamental as these objects make it possible to wait-free
implement any concurrent object that has a sequential specification"
(paper, Section 1.1).  This module witnesses that claim for the library's
x-ported consensus objects: a wait-free linearizable implementation of an
arbitrary deterministic sequential object shared by x processes.

Construction (state-machine replication with helping):

* an announcement snapshot holds each process's pending operation
  (pid, seq, op);
* an unbounded sequence of consensus objects CONS[r] decides which pending
  operation occupies log position r;
* to make round r wait-free-fair, processes prefer helping the process
  with id r mod x if it has an unapplied pending operation, else propose
  their own -- after at most x rounds with a pending op, your priority
  round arrives and every proposal names your operation.

Each process replays the decided log against a local replica, so all
replicas agree and every operation returns the result the sequential
specification assigns at its log position.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from ..memory.base import BOTTOM
from ..runtime.ops import ObjectProxy
from .consensus import XConsensusObject


class ConsensusSequence:
    """An unbounded array CONS[0..] of consensus objects with fixed ports.

    Backed by a single store object implementing lazy instances, reusing
    :class:`~repro.memory.families.XConsFamily` with one subset.
    """

    def __init__(self, name: str) -> None:
        self.proxy = ObjectProxy(name)

    def propose(self, r: int, value: Any):
        return self.proxy.propose(r, 0, value)


class UniversalObject:
    """Per-process views of one universal object shared by ``ports``.

    ``apply_fn(state, op) -> (new_state, result)`` must be deterministic;
    ``initial`` is the initial abstract state.  Shared store requirements
    (build them from :meth:`object_specs`): an announcement snapshot and a
    consensus family.
    """

    def __init__(self, name: str, ports: List[int],
                 apply_fn: Callable[[Any, Any], Tuple[Any, Any]],
                 initial: Any) -> None:
        self.name = name
        self.ports = list(ports)
        self.x = len(ports)
        self.apply_fn = apply_fn
        self.initial = initial
        self.announce = ObjectProxy(f"{name}_ann")
        self.cons = ConsensusSequence(f"{name}_cons")

    # ------------------------------------------------------------------
    def object_specs(self) -> List:
        from ..memory.specs import make_spec
        return [
            make_spec("snapshot", f"{self.name}_ann", size=self.x),
            make_spec("xcons_family", f"{self.name}_cons",
                      subsets=(tuple(self.ports),)),
        ]

    def _slot(self, pid: int) -> int:
        return self.ports.index(pid)

    # ------------------------------------------------------------------
    def session(self, pid: int) -> "PerformSession":
        """The per-process session driving this object.

        Create exactly one session per process (sessions hold the process's
        replica and consensus-round cursor; the consensus objects are
        one-shot per process, so a second session would re-propose).
        """
        return PerformSession(self, pid)


class PerformSession:
    """One process's ongoing interaction with a universal object.

    Keeps the replica and log position *across* operations of the same
    process, so repeated ``perform`` calls stay O(ops) instead of
    replaying from scratch.  Use one session object per process and call
    ``run(op)`` for each operation:

        session = universal.session(pid)
        result = yield from session.run(op)
    """

    def __init__(self, universal: UniversalObject, pid: int,
                 op: Any = None) -> None:
        self.u = universal
        self.pid = pid
        self.slot = universal._slot(pid)
        self.op = op
        self.state = universal.initial
        self.log_len = 0
        self.seq = 0
        self.applied_seq = [0] * universal.x  # per-slot applied seq

    def run(self, op: Any = None) -> Generator:
        """Generator performing one operation; returns its result."""
        u = self.u
        if op is None:
            op = self.op
        self.seq += 1
        my_entry = (self.slot, self.seq, op)
        yield u.announce.write(self.slot, my_entry)
        my_result: Any = None
        while True:
            announced = yield u.announce.snapshot()
            pending = []
            for slot, entry in enumerate(announced):
                if entry is BOTTOM:
                    continue
                if entry[1] > self.applied_seq[slot]:
                    pending.append(entry)
            if not any(e[0] == self.slot and e[1] == self.seq
                       for e in pending):
                # Our operation was applied at some earlier log position.
                return my_result
            # Helping: prefer the priority process of this round.
            priority = self.log_len % u.x
            choice = next((e for e in pending if e[0] == priority),
                          None)
            if choice is None:
                choice = next(e for e in pending
                              if e[0] == self.slot and e[1] == self.seq)
            decided = yield u.cons.propose(self.log_len, choice)
            slot, seq, dop = decided
            # A decided entry is pending for its issuer (never applied
            # before: the issuer only announces seq after seq-1 applied).
            self.state, result = u.apply_fn(self.state, dop)
            self.applied_seq[slot] = seq
            self.log_len += 1
            if (slot, seq) == (self.slot, self.seq):
                my_result = result
                return my_result
