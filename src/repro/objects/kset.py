"""(m, ℓ)-set agreement objects.

An (m, ℓ)-set agreement object solves ℓ-set agreement among a set of m
processes: every correct invoker obtains a proposed value, and at most ℓ
distinct values are returned overall.  These objects appear in the related
work the paper builds on (Borowsky-Gafni set-consensus hierarchy,
Chaudhuri-Reiners; paper Section 1.3) and are used by the test suite to
cross-check the ⌊t/x⌋ calculus against the set-consensus-number view.

Sequential (atomic) semantics used here: the first ℓ distinct *proposals*
become anchors; an invoker whose value became an anchor gets its own value
back, later invokers get the first anchor.  Any rule with outputs ⊆ inputs
and ≤ ℓ distinct outputs realizes the type.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..memory.base import ProtocolViolation, SharedObject


class KSetObject(SharedObject):
    """One-shot (m, ℓ)-set agreement object with static ports."""

    READONLY = frozenset({"peek"})

    def __init__(self, name: str, ports: Iterable[int], ell: int) -> None:
        port_set = frozenset(ports)
        if not port_set:
            raise ValueError("a set-agreement object needs ports")
        if ell < 1:
            raise ValueError("ell must be >= 1")
        super().__init__(name, port_set)
        self.m = len(port_set)
        self.ell = ell
        # An (m, ℓ)-set agreement object is wait-free implementable from
        # x-consensus objects iff ceil(m / x) <= ℓ (group the m ports into ℓ
        # groups of size <= x, one consensus per group); its "power" in the
        # paper's calculus is therefore that of consensus number
        # ceil(m / ℓ).  Exposed for the model validator.
        self.consensus_number = -(-self.m // self.ell)
        self.anchors: List[Any] = []
        self._invokers: set = set()

    def op_propose(self, pid: int, value: Any) -> Any:
        if pid in self._invokers:
            raise ProtocolViolation(
                f"p{pid} proposed twice to set-agreement {self.name!r}")
        self._invokers.add(pid)
        if len(self.anchors) < self.ell:
            self.anchors.append(value)
            return value
        return self.anchors[0]

    def op_peek(self, pid: int) -> List[Any]:
        return list(self.anchors)


def kset_object_implementable(m: int, ell: int, x: int) -> bool:
    """Can an (m, ℓ)-set agreement object be wait-free built from
    x-consensus objects (plus registers)?

    Sufficient and necessary: ⌈m/x⌉ <= ℓ.  Possibility: partition the m
    ports into ℓ groups of size <= x and give each group one x-consensus
    object (≤ ℓ distinct decisions).  Impossibility: with ⌈m/x⌉ > ℓ the
    Borowsky-Gafni set-consensus hierarchy (n/k > m/ℓ criterion, paper
    Section 1.3) rules it out.
    """
    if m < 1 or ell < 1 or x < 1:
        raise ValueError("m, ell, x must be >= 1")
    return -(-m // x) <= ell
