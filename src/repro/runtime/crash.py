"""Crash-failure injection.

The ASM(n, t, x) model allows an arbitrary subset of at most ``t`` processes
to crash at arbitrary points (paper, Section 2.3).  A :class:`CrashPlan`
makes the adversary's choice explicit and reproducible: each victim is
paired with a :class:`CrashPoint` saying *when* (before which of its own
atomic steps, or before the k-th operation matching a predicate) the process
stops executing steps.

Crashing "while executing sa_propose()" -- the scenario at the heart of the
paper's blocking lemmas -- is expressed with an operation predicate, e.g.
crash before the process's second write to the safe-agreement snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional

from .ops import Invocation, SpinOp


@dataclass
class CrashPoint:
    """When a victim process crashes.

    Exactly one trigger is used:

    * ``own_step`` -- crash immediately *before* executing its ``own_step``-th
      atomic step (1-based).  ``own_step=1`` means the process never executes
      any step ("initially dead").
    * ``before_matching`` + ``occurrence`` -- crash immediately before
      executing the ``occurrence``-th (1-based) operation for which the
      predicate returns True.  The predicate receives the underlying
      :class:`Invocation` (spin ops are unwrapped).
    """

    own_step: Optional[int] = None
    before_matching: Optional[Callable[[Invocation], bool]] = None
    occurrence: int = 1
    _matches_seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if (self.own_step is None) == (self.before_matching is None):
            raise ValueError(
                "specify exactly one of own_step / before_matching")
        if self.own_step is not None and self.own_step < 1:
            raise ValueError("own_step is 1-based and must be >= 1")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based and must be >= 1")

    def should_crash(self, steps_taken: int, op: Any) -> bool:
        """Decide whether the victim crashes instead of executing ``op``.

        ``steps_taken`` is the number of steps the process has already
        executed.  Mutates the match counter for predicate triggers, so this
        must be called exactly once per scheduled step of the victim.
        """
        if self.own_step is not None:
            return steps_taken + 1 >= self.own_step
        inv = op.invocation if isinstance(op, SpinOp) else op
        if isinstance(inv, Invocation) and self.before_matching(inv):
            self._matches_seen += 1
            return self._matches_seen >= self.occurrence
        return False

    def reset(self) -> None:
        """Zero the predicate match counter so the point can be reused.

        Predicate triggers count matches across calls; a point carried
        into a second run without a reset would fire ``occurrence``
        matches too early.  The scheduler resets every plan it is handed
        (see :class:`~repro.runtime.scheduler.Scheduler`), so one plan
        object may safely back many runs (e.g. a ``crash_plan_factory``
        returning a shared instance to ``explore``).
        """
        self._matches_seen = 0

    def fingerprint_state(self) -> tuple:
        """Configuration plus mutable trigger state, for the DPOR state
        fingerprint (:mod:`repro.runtime.fingerprint`): two system
        states whose crash points have seen different match counts must
        never share a fingerprint."""
        return (self.own_step, self.before_matching, self.occurrence,
                self._matches_seen)


class CrashPlan:
    """Maps victim pids to crash points.

    The plan is validated against a model's ``t`` by the run harness.
    Predicate triggers keep per-run counters, but the scheduler calls
    :meth:`reset` at the start of every run, so a single plan object may
    back any number of runs (a ``crash_plan_factory`` returning a shared
    instance is safe).
    """

    def __init__(self, points: Optional[Dict[int, CrashPoint]] = None) -> None:
        self.points: Dict[int, CrashPoint] = dict(points or {})

    @classmethod
    def none(cls) -> "CrashPlan":
        return cls()

    @classmethod
    def initially_dead(cls, pids: Iterable[int]) -> "CrashPlan":
        """Victims crash before taking any step."""
        return cls({pid: CrashPoint(own_step=1) for pid in pids})

    @classmethod
    def at_own_step(cls, schedule: Dict[int, int]) -> "CrashPlan":
        """``schedule[pid] = k``: pid crashes before its k-th step."""
        return cls({pid: CrashPoint(own_step=k)
                    for pid, k in schedule.items()})

    @classmethod
    def before_operation(cls, pid: int,
                         predicate: Callable[[Invocation], bool],
                         occurrence: int = 1) -> "CrashPlan":
        """Single victim, crashing before a matching operation."""
        return cls({pid: CrashPoint(before_matching=predicate,
                                    occurrence=occurrence)})

    @classmethod
    def before_operation_each(cls, pids: Iterable[int],
                              predicate: Callable[[Invocation], bool],
                              occurrence: int = 1) -> "CrashPlan":
        """Every listed victim crashes before its own matching operation.

        Each victim gets a private :class:`CrashPoint` (match counters
        are per-point), all sharing the same stateless ``predicate`` --
        e.g. ``op_on("XSA_REG", "write")`` to crash each victim right
        before it would publish.  A victim whose execution never reaches
        a matching operation simply never crashes, which is exactly the
        semantics the blocking-lemma scenarios need: only processes
        that *win* ownership can die inside the window that matters.
        """
        return cls({pid: CrashPoint(before_matching=predicate,
                                    occurrence=occurrence)
                    for pid in pids})

    def add(self, pid: int, point: CrashPoint) -> "CrashPlan":
        if pid in self.points:
            raise ValueError(f"pid {pid} already has a crash point")
        self.points[pid] = point
        return self

    def merge(self, other: "CrashPlan") -> "CrashPlan":
        merged = CrashPlan(dict(self.points))
        for pid, point in other.points.items():
            merged.add(pid, point)
        return merged

    @property
    def victims(self) -> frozenset:
        return frozenset(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def should_crash(self, pid: int, steps_taken: int, op: Any) -> bool:
        point = self.points.get(pid)
        if point is None:
            return False
        return point.should_crash(steps_taken, op)

    def reset(self) -> None:
        """Reset every crash point's per-run state (match counters)."""
        for point in self.points.values():
            point.reset()

    # -- state-fingerprint hooks ---------------------------------------
    def fingerprint_state(self) -> tuple:
        """Canonicalisable view of the plan: per-victim point state,
        sorted by pid (see :mod:`repro.runtime.fingerprint`)."""
        return tuple(sorted(
            (pid, point.fingerprint_state())
            for pid, point in self.points.items()))

    def fingerprint_step_pids(self) -> frozenset:
        """Pids whose own-step counters this plan's behaviour depends
        on.  Only ``own_step`` victims are step-sensitive; predicate
        points key on operation matches, whose counters
        :meth:`fingerprint_state` already pins."""
        return frozenset(pid for pid, point in self.points.items()
                         if point.own_step is not None)

    def __repr__(self) -> str:
        return f"CrashPlan({self.points!r})"


def op_on(obj: str, method: Optional[str] = None
          ) -> Callable[[Invocation], bool]:
    """Predicate factory: match invocations on an object (and method)."""

    def predicate(inv: Invocation) -> bool:
        if inv.obj != obj:
            return False
        return method is None or inv.method == method

    return predicate
