"""The atomic-step scheduler.

Serializes all shared-memory operations: at each global step the adversary
picks one enabled process, the scheduler executes that process's pending
operation atomically against the object store, and resumes the process
generator with the result.  Linearizability of base objects is therefore by
construction -- there is never more than one operation in flight.

Termination of a run:

* all processes reach a terminal status (decided / crashed / blocked), or
* the deadlock detector proves every still-running process is spinning on a
  read-only condition that can never become true (all are "spin-verified"
  and no state-changing step intervened), in which case the spinners are
  marked BLOCKED -- this is how a simulated process "crashed" by the crash
  of its simulator (paper, Lemma 1 / Lemma 7) becomes an observable outcome,
  or
* the step budget is exhausted (remaining processes stay RUNNING, and the
  result is flagged; tests treat this as a failure unless expected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .adversary import Adversary
from .crash import CrashPlan
from .ops import SPIN_FAILED, Invocation, LocalOp, SpinOp
from .process import NO_DECISION, ProcessHandle, ProcessStatus
from .trace import EventKind, Trace


class ScheduleError(RuntimeError):
    """A process yielded something the scheduler cannot execute."""


@dataclass
class SchedulerOutcome:
    """Raw outcome of driving the schedule to completion."""

    steps: int
    deadlocked: bool
    out_of_steps: bool


class Scheduler:
    """Drives a set of process handles against a shared-object store."""

    def __init__(self,
                 handles: Dict[int, ProcessHandle],
                 store,
                 adversary: Adversary,
                 crash_plan: Optional[CrashPlan] = None,
                 trace: Optional[Trace] = None,
                 max_steps: int = 1_000_000) -> None:
        self.handles = handles
        self.store = store
        self.adversary = adversary
        # `is None`, not truthiness: a FaultPlan with behaviors but no
        # crash points has len() == 0 and must still be honoured.
        self.crash_plan = (CrashPlan.none() if crash_plan is None
                           else crash_plan)
        # Every run builds a fresh Scheduler (run(), the explorers'
        # manual drives, the DPOR _System), so resetting here guarantees
        # a plan object shared across runs starts each run pristine.
        reset = getattr(self.crash_plan, "reset", None)
        if reset is not None:
            reset()
        # Byzantine rewrite hooks (see repro.runtime.faults.FaultPlan)
        # are duck-typed: plain CrashPlans skip both branches entirely,
        # keeping the no-fault path bit-for-bit unchanged.
        self._rewrites = hasattr(self.crash_plan, "rewrite_invocation")
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.max_steps = max_steps
        self.steps = 0

    # ------------------------------------------------------------------
    def run(self) -> SchedulerOutcome:
        self.adversary.reset()
        while True:
            enabled = self._enabled()
            if not enabled:
                return SchedulerOutcome(self.steps, False, False)
            if self._deadlocked(enabled):
                self._retire_blocked(enabled)
                return SchedulerOutcome(self.steps, True, False)
            if self.steps >= self.max_steps:
                return SchedulerOutcome(self.steps, False, True)
            pid = self.adversary.pick(enabled, self.steps)
            if pid not in self.handles or not self.handles[pid].alive:
                raise ScheduleError(
                    f"adversary picked non-enabled pid {pid}")
            self._step(self.handles[pid])

    # ------------------------------------------------------------------
    def _enabled(self) -> List[int]:
        return sorted(pid for pid, h in self.handles.items() if h.alive)

    def _deadlocked(self, enabled: List[int]) -> bool:
        """True iff every enabled process is provably stuck.

        A process is spin-verified once it accumulated ``period`` consecutive
        failed (read-only) spin steps.  Failed spins cannot change shared
        state, so if *every* enabled process is spin-verified with no
        state-changing step in between, no predicate can ever flip: the
        configuration is a permanent deadlock.
        """
        for pid in enabled:
            handle = self.handles[pid]
            op = handle.pending
            if not isinstance(op, SpinOp):
                return False
            if handle.spin_failures < max(1, op.period):
                return False
        return True

    def _retire_blocked(self, enabled: List[int]) -> None:
        for pid in enabled:
            self.handles[pid].mark_blocked()
            self.trace.record(EventKind.BLOCKED, pid)

    def _reset_spin_verification(self) -> None:
        for handle in self.handles.values():
            handle.spin_failures = 0

    # ------------------------------------------------------------------
    def _step(self, handle: ProcessHandle) -> None:
        if handle.pending is None:
            op = handle.advance()
            if op is None:
                self._record_decision(handle)
                return
        op = handle.pending

        if self.crash_plan.should_crash(handle.pid, handle.steps_taken, op):
            handle.crash()
            self.trace.record(EventKind.CRASH, handle.pid)
            # The crash may have unblocked nobody, but conservatively a
            # change in the enabled set does not affect spin predicates
            # (they read shared state only), so no spin reset is needed.
            return

        if isinstance(op, SpinOp):
            self._spin_step(handle, op)
        elif isinstance(op, Invocation):
            self._invoke_step(handle, op)
        elif isinstance(op, LocalOp):
            raise ScheduleError(
                f"p{handle.pid} yielded a LocalOp to the top-level "
                f"scheduler: {op!r}. Local ops must be resolved by a "
                f"simulator trampoline.")
        else:
            raise ScheduleError(
                f"p{handle.pid} yielded unschedulable {op!r}")

    def _spin_step(self, handle: ProcessHandle, op: SpinOp) -> None:
        if not self.store.is_readonly(op.invocation):
            raise ScheduleError(
                f"spin on non-read-only operation {op.invocation!r}")
        taken = handle.steps_taken
        result = self.store.apply(handle.pid, op.invocation)
        if self._rewrites:
            result = self.crash_plan.rewrite_result(
                handle.pid, taken, op.invocation, result)
        self.steps += 1
        handle.steps_taken += 1
        if op.predicate(result):
            handle.spin_failures = 0
            self.trace.record(EventKind.STEP, handle.pid,
                              op.invocation, result)
            self._resume(handle, result)
        else:
            handle.spin_failures += 1
            self.trace.record(EventKind.SPIN, handle.pid, op.invocation)
            # Resume with the sentinel: the process decides what to spin on
            # next (same condition, or -- for a simulator -- another
            # thread's condition).  spin_failures persists until a success
            # or a state-changing step elsewhere.
            self._resume(handle, SPIN_FAILED)

    def _invoke_step(self, handle: ProcessHandle, op: Invocation) -> None:
        if self._rewrites:
            taken = handle.steps_taken
            op = self.crash_plan.rewrite_invocation(handle.pid, taken, op)
            result = self.store.apply(handle.pid, op)
            result = self.crash_plan.rewrite_result(
                handle.pid, taken, op, result)
        else:
            result = self.store.apply(handle.pid, op)
        self.steps += 1
        handle.steps_taken += 1
        self.trace.record(EventKind.STEP, handle.pid, op, result)
        # A real (non-spin) step breaks this process's consecutive-failed-
        # spin chain: it is demonstrably not stuck.  Without this, a
        # simulator interleaving spins of blocked threads with the
        # read-only steps of a live thread could be retired as deadlocked
        # one quantum before that thread's state-changing write.
        handle.spin_failures = 0
        if not self.store.is_readonly(op):
            # Shared state changed: previously failed spin checks are stale.
            self._reset_spin_verification()
        self._resume(handle, result)

    def _resume(self, handle: ProcessHandle, result) -> None:
        handle.inbox = result
        next_op = handle.advance()
        if next_op is None:
            self._record_decision(handle)

    def _record_decision(self, handle: ProcessHandle) -> None:
        value = (handle.decision if handle.decision is not NO_DECISION
                 else None)
        self.trace.record(EventKind.DECIDE, handle.pid, result=value)
