"""Schedule adversaries.

The adversary chooses, at every step, which enabled process executes next.
Asynchrony in the ASM model *is* this adversary: any interleaving of atomic
steps is legal, and algorithm correctness must hold against all of them.

Three adversaries cover the needs of the test suite and benchmarks:

* :class:`RoundRobinAdversary` -- fair, deterministic; the workhorse for
  liveness tests (every correct process is scheduled infinitely often).
* :class:`SeededRandomAdversary` -- reproducible random interleavings for
  property-based tests (fair with probability 1).
* :class:`PriorityAdversary` -- deterministic targeting: runs preferred
  processes as long as they are enabled.  Used to manufacture the worst-case
  schedules behind the paper's blocking scenarios.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence


class Adversary(ABC):
    """Strategy choosing the next process to execute one atomic step."""

    @abstractmethod
    def pick(self, enabled: Sequence[int], step: int) -> int:
        """Return the pid (from ``enabled``, non-empty) to schedule."""

    def reset(self) -> None:
        """Forget any internal state; called once per run."""


class RoundRobinAdversary(Adversary):
    """Cycles over pids in increasing order, skipping disabled ones."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def pick(self, enabled: Sequence[int], step: int) -> int:
        if self._last is None:
            choice = enabled[0]
        else:
            choice = next((pid for pid in enabled if pid > self._last),
                          enabled[0])
        self._last = choice
        return choice

    def reset(self) -> None:
        self._last = None

    def __repr__(self) -> str:
        return "RoundRobinAdversary()"


class SeededRandomAdversary(Adversary):
    """Uniform random choice among enabled processes, from a fixed seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, enabled: Sequence[int], step: int) -> int:
        return enabled[self._rng.randrange(len(enabled))]

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        # The seed must survive into reports: a failing randomized run
        # is only reproducible if its repr round-trips the RNG state.
        return f"SeededRandomAdversary(seed={self.seed})"


class PriorityAdversary(Adversary):
    """Runs the highest-priority enabled process.

    ``priority`` lists pids most-preferred first; pids absent from the list
    share the lowest priority and are scheduled round-robin among themselves.
    This builds "process p runs alone until it finishes" schedules, the
    standard adversarial building block for solo-execution arguments.
    """

    def __init__(self, priority: Sequence[int]) -> None:
        self.priority = list(priority)
        self._rank = {pid: i for i, pid in enumerate(self.priority)}
        self._rr = RoundRobinAdversary()

    def pick(self, enabled: Sequence[int], step: int) -> int:
        ranked = [pid for pid in enabled if pid in self._rank]
        if ranked:
            return min(ranked, key=self._rank.__getitem__)
        return self._rr.pick(enabled, step)

    def reset(self) -> None:
        self._rr.reset()


class ScriptedAdversary(Adversary):
    """Replays an explicit pid script, then falls back to round-robin.

    If the scripted pid is not enabled at its step, the fallback is used for
    that step (the script does not stall the run).  Useful for regression
    tests that pin down one specific interleaving.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self.script = list(script)
        self._cursor = 0
        self._fallback = RoundRobinAdversary()

    def pick(self, enabled: Sequence[int], step: int) -> int:
        while self._cursor < len(self.script):
            candidate = self.script[self._cursor]
            self._cursor += 1
            if candidate in enabled:
                return candidate
        return self._fallback.pick(enabled, step)

    def reset(self) -> None:
        self._cursor = 0
        self._fallback.reset()
